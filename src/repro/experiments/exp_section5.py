"""EXP-S5 — Section 5: vertex cover in the broadcast model.

Measures the three things the section claims:

* **equivalence** — the history-rebroadcast simulation computes exactly
  the output of the Section 4 algorithm run directly on the bipartite
  encoding H (same covers, same per-node packing multisets);
* **rounds** — the G-round count equals the A-round count (plus the one
  readout round this implementation adds), i.e. ``O(Δ² + Δ log* W)``;
* **message growth** — rounds are preserved "at the cost of increasing
  message complexity": per-round message bits grow linearly as full
  histories are rebroadcast every round.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.bounds import bvc_rounds_exact
from repro.core.fractional_packing import maximal_fractional_packing
from repro.core.vertex_cover import vertex_cover_broadcast
from repro.experiments.common import ExperimentTable
from repro.graphs import families
from repro.graphs.setcover import vc_to_setcover
from repro.graphs.weights import unit_weights

__all__ = ["run", "main"]


def _cases() -> List[Tuple[str, object, List[int]]]:
    return [
        ("path4", families.path_graph(4), [1, 3, 2, 1]),
        ("cycle5", families.cycle_graph(5), unit_weights(5)),
        ("cycle6/weighted", families.cycle_graph(6), [2, 1, 2, 1, 2, 1]),
        ("star3", families.star_graph(3), [4, 1, 1, 1]),
    ]


def run() -> ExperimentTable:
    table = ExperimentTable(
        experiment_id="EXP-S5",
        title="Section 5: broadcast-model VC by simulating the Section 4 machine",
        columns=[
            "instance",
            "Δ",
            "rounds measured",
            "rounds formula",
            "cover == direct run",
            "cover valid",
            "bits round 1",
            "bits last round",
            "growth factor",
        ],
    )
    for name, g, w in _cases():
        sim = vertex_cover_broadcast(g, w)
        delta = g.max_degree
        W = max(w)

        inst = vc_to_setcover(g, w)
        matches = None
        if (inst.f, inst.k) == (2, delta):
            direct = maximal_fractional_packing(inst)
            matches = sim.cover == direct.saturated_subsets

        bits = sim.run.per_round_bits
        table.add_row(
            instance=name,
            **{
                "Δ": delta,
                "rounds measured": sim.rounds,
                "rounds formula": bvc_rounds_exact(delta, W),
                "cover == direct run": matches,
                "cover valid": sim.is_cover(),
                "bits round 1": bits[0],
                "bits last round": bits[-1],
                "growth factor": bits[-1] / max(bits[0], 1),
            },
        )
    assert all(m in (True, None) for m in table.column("cover == direct run"))
    assert all(table.column("cover valid"))
    table.add_note(
        "equivalence with the direct Section 4 run HOLDS wherever the "
        "instance realises f=2, k=Δ exactly"
    )
    table.add_note(
        "round count unchanged by the simulation (one readout round "
        "added); message size pays for it — the growth factor column"
    )
    return table


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
