"""Shared experiment scaffolding: typed tables, ASCII rendering, and
batched execution over instance/seed sweeps."""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro._util.parallel import map_jobs

__all__ = ["ExperimentTable", "fmt", "parallel_map"]


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    n_workers: Optional[int] = None,
    backend: Optional[str] = None,
) -> List[Any]:
    """Order-preserving map over experiment configurations.

    The experiment-side face of the batched execution API (see
    :func:`repro.simulator.runtime.run_many` / ``sweep``): drivers map
    a per-configuration kernel over their sweep values and get results
    in input order — serially by default, on a thread pool with
    ``n_workers > 1``, or on a warm process pool with
    ``backend="process"`` (the kernel must then be a module-level
    function and configurations/results must pickle; experiment
    kernels written as closures should use ``backend="auto"``, which
    falls back to threads for them).  Deterministic results are
    identical whatever the backend; kernels that *time themselves*
    must run serially, since concurrent kernels — threads on the GIL,
    or processes oversubscribing cores — inflate wall clocks.
    """
    return map_jobs(fn, list(items), n_workers, backend=backend)


def fmt(value: Any) -> str:
    """Human-friendly cell formatting."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return str(value.numerator)
        return f"{value.numerator}/{value.denominator} ({float(value):.3f})"
    if isinstance(value, float):
        return f"{value:.3f}"
    if value is None:
        return "—"
    return str(value)


@dataclass
class ExperimentTable:
    """A rendered-comparable experiment outcome.

    ``rows`` are dicts keyed by column name; missing keys render as
    "—".  ``notes`` carry the qualitative claims being checked (and
    whether they held), so a rendered table is self-contained.
    """

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **cells: Any) -> None:
        unknown = set(cells) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns {sorted(unknown)}")
        self.rows.append(cells)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> List[Any]:
        return [row.get(name) for row in self.rows]

    # -- rendering -------------------------------------------------------

    def render(self) -> str:
        cells = [
            [fmt(row.get(col)) for col in self.columns] for row in self.rows
        ]
        widths = [
            max(len(col), *(len(r[i]) for r in cells)) if cells else len(col)
            for i, col in enumerate(self.columns)
        ]
        sep = "+".join("-" * (w + 2) for w in widths)
        header = " | ".join(col.ljust(w) for col, w in zip(self.columns, widths))
        lines = [
            f"[{self.experiment_id}] {self.title}",
            header,
            sep,
        ]
        for r in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
        for note in self.notes:
            lines.append(f"  * {note}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable view of the table (for ``--json`` CLIs).

        Cells keep their type when JSON has one (bool/int/float/str/
        null); Fractions become ``"p/q"`` strings, everything else
        falls back to ``str``.  Consumers that plot should prefer the
        numeric columns.
        """

        def cell(value: Any) -> Any:
            if value is None or isinstance(value, (bool, int, float, str)):
                return value
            if isinstance(value, Fraction):
                return f"{value.numerator}/{value.denominator}"
            return str(value)

        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [
                {col: cell(row.get(col)) for col in self.columns if col in row}
                for row in self.rows
            ],
            "notes": list(self.notes),
        }

    def to_markdown(self) -> str:
        lines = [
            f"### {self.experiment_id}: {self.title}",
            "",
            "| " + " | ".join(self.columns) + " |",
            "|" + "|".join("---" for _ in self.columns) + "|",
        ]
        for row in self.rows:
            lines.append(
                "| " + " | ".join(fmt(row.get(c)) for c in self.columns) + " |"
            )
        if self.notes:
            lines.append("")
            for note in self.notes:
                lines.append(f"- {note}")
        return "\n".join(lines)
