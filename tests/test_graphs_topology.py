"""Tests for PortNumberedGraph and port-numbering strategies."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.graphs import families, ports
from repro.graphs.topology import PortNumberedGraph
from tests.conftest import gnp_graphs


class TestConstruction:
    def test_from_edges_basic(self):
        g = PortNumberedGraph.from_edges(3, [(0, 1), (1, 2)])
        assert g.n == 3
        assert g.m == 2
        assert g.degree(1) == 2
        assert g.max_degree == 2
        assert g.neighbours(1) == [0, 2]

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            PortNumberedGraph.from_edges(2, [(0, 0)])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            PortNumberedGraph.from_edges(2, [(0, 5)])

    def test_duplicate_edges_collapse(self):
        g = PortNumberedGraph.from_edges(2, [(0, 1), (1, 0), (0, 1)])
        assert g.m == 1

    def test_rejects_inconsistent_ports(self):
        # 0:0 -> (1, 0) but 1:0 -> (0, 1): reverse port mismatch
        with pytest.raises(ValueError, match="inconsistent|out of range"):
            PortNumberedGraph([[(1, 0)], [(0, 1)]])

    def test_explicit_neighbour_order(self):
        g = PortNumberedGraph.from_edges(
            3, [(0, 1), (0, 2)], neighbour_order=[[2, 1], [0], [0]]
        )
        assert g.neighbours(0) == [2, 1]
        # reverse consistency
        u, q = g.port_target(0, 0)
        assert u == 2
        assert g.port_target(2, q) == (0, 0)

    def test_bad_neighbour_order_rejected(self):
        with pytest.raises(ValueError, match="permutation"):
            PortNumberedGraph.from_edges(
                3, [(0, 1)], neighbour_order=[[1, 1], [0], []]
            )


class TestAccessors:
    def test_edge_ids_stable_and_sorted(self):
        g = families.cycle_graph(4)
        assert list(g.edges) == sorted(g.edges)
        for e, (u, v) in enumerate(g.edges):
            assert g.edge_id(u, v) == e
            assert g.edge_id(v, u) == e

    def test_port_of_inverse_of_neighbours(self):
        g = families.complete_graph(5)
        for v in g.nodes():
            for p, u in enumerate(g.neighbours(v)):
                assert g.port_of(v, u) == p

    def test_port_of_missing_raises(self):
        g = families.path_graph(3)
        with pytest.raises(KeyError):
            g.port_of(0, 2)

    def test_incident_edges(self):
        g = families.star_graph(3)
        assert sorted(g.incident_edges(0)) == [0, 1, 2]
        for leaf in (1, 2, 3):
            assert len(g.incident_edges(leaf)) == 1

    def test_connected_components(self):
        g = PortNumberedGraph.from_edges(5, [(0, 1), (2, 3)])
        comps = {frozenset(c) for c in g.connected_components()}
        assert comps == {frozenset({0, 1}), frozenset({2, 3}), frozenset({4})}

    @given(gnp_graphs())
    @settings(max_examples=30, deadline=None)
    def test_port_consistency_invariant(self, g):
        for v in g.nodes():
            for p in range(g.degree(v)):
                u, q = g.port_target(v, p)
                assert g.port_target(u, q) == (v, p)

    @given(gnp_graphs())
    @settings(max_examples=30, deadline=None)
    def test_degree_sum_is_twice_edges(self, g):
        assert sum(g.degrees()) == 2 * g.m


class TestRelabel:
    def test_relabel_roundtrip(self):
        g = families.petersen_graph()
        perm = [(v + 3) % g.n for v in g.nodes()]
        h = g.relabel(perm)
        inverse = [0] * g.n
        for v, t in enumerate(perm):
            inverse[t] = v
        assert h.relabel(inverse) == g

    def test_relabel_preserves_structure(self):
        g = families.cycle_graph(5)
        h = g.relabel([4, 3, 2, 1, 0])
        assert h.m == g.m
        assert sorted(h.degrees()) == sorted(g.degrees())

    def test_relabel_rejects_non_bijection(self):
        g = families.path_graph(3)
        with pytest.raises(ValueError):
            g.relabel([0, 0, 1])


class TestNetworkxRoundtrip:
    def test_roundtrip(self):
        import networkx as nx

        g = families.grid_2d(3, 3)
        nxg = g.to_networkx()
        back = PortNumberedGraph.from_networkx(nxg)
        assert back.n == g.n
        assert set(back.edges) == set(g.edges)
        assert nx.is_isomorphic(nxg, back.to_networkx())


class TestPortStrategies:
    def test_canonical_sorts_neighbours(self):
        g = ports.reversed_ports(families.star_graph(4))
        c = ports.canonical_ports(g)
        for v in c.nodes():
            assert c.neighbours(v) == sorted(c.neighbours(v))

    def test_random_ports_same_graph(self):
        g = families.grid_2d(3, 3)
        r = ports.random_ports(g, seed=5)
        assert set(r.edges) == set(g.edges)
        assert r.degrees() == g.degrees()

    def test_random_ports_deterministic_in_seed(self):
        g = families.grid_2d(3, 3)
        assert ports.random_ports(g, seed=5) == ports.random_ports(g, seed=5)
        assert ports.random_ports(g, seed=5) != ports.random_ports(g, seed=6)

    def test_reversed_ports(self):
        g = families.star_graph(4)
        r = ports.reversed_ports(g)
        assert r.neighbours(0) == list(reversed(g.neighbours(0)))

    def test_symmetric_kpp_is_valid_and_complete_bipartite(self):
        for p in (1, 2, 3, 5):
            g = ports.symmetric_complete_bipartite(p)
            assert g.n == 2 * p
            assert g.m == p * p
            for left in range(p):
                assert set(g.neighbours(left)) == {p + j for j in range(p)}

    def test_symmetric_kpp_shift_automorphism_preserves_ports(self):
        p = 4
        g = ports.symmetric_complete_bipartite(p)
        # sigma: left i -> i+1, right p+j -> p+(j+1)  (mod p)
        sigma = {i: (i + 1) % p for i in range(p)}
        sigma.update({p + j: p + (j + 1) % p for j in range(p)})
        for v in g.nodes():
            for t in range(g.degree(v)):
                u, q = g.port_target(v, t)
                u2, q2 = g.port_target(sigma[v], t)
                assert u2 == sigma[u], "shift must preserve port structure"
                assert q2 == q

    def test_symmetric_cycle_orientation(self):
        g = ports.symmetric_cycle(6)
        for v in g.nodes():
            cw, q = g.port_target(v, 0)
            assert cw == (v + 1) % 6
            assert q == 1


class TestCSRView:
    def test_csr_matches_port_map(self):
        from repro.graphs import families

        for g in (
            families.path_graph(5),
            families.star_graph(4),
            families.grid_2d(3, 3),
            families.petersen_graph(),
            families.empty_graph(3),
        ):
            offsets, targets, rev = g.csr()
            assert len(offsets) == g.n + 1
            assert offsets[0] == 0
            assert offsets[g.n] == len(targets) == len(rev) == 2 * g.m
            for v in g.nodes():
                assert offsets[v + 1] - offsets[v] == g.degree(v)
                for p in range(g.degree(v)):
                    u, q = g.port_target(v, p)
                    i = offsets[v] + p
                    assert targets[i] == u
                    assert rev[i] == q
                    # CSR consistency: the reverse half-edge points back.
                    assert targets[offsets[u] + q] == v

    def test_csr_is_cached(self):
        from repro.graphs import families

        g = families.cycle_graph(4)
        assert g.csr() is g.csr()
        assert g.flat_targets is g.csr()[1]
        assert g.offsets is g.csr()[0]
        assert g.flat_reverse_ports is g.csr()[2]

    def test_degree_array_cached_and_degrees_copy(self):
        from repro.graphs import families

        g = families.star_graph(3)
        assert g.degree_array == (3, 1, 1, 1)
        assert g.degree_array is g.degree_array
        d = g.degrees()
        d[0] = 99  # mutating the copy must not poison the cache
        assert g.degree_array == (3, 1, 1, 1)
        assert g.degrees() == [3, 1, 1, 1]
