"""The human view of a trace: ``summarize_trace``.

Works on any loaded Chrome trace-event object (the dict
:meth:`repro.obs.tracer.Tracer.chrome` returns, or ``json.load`` of a
``--trace`` output file), so ``python -m repro.cli trace summarize
out.json`` and :meth:`Tracer.summarize` share one implementation.
"""

from __future__ import annotations

from typing import Any, Dict, List

__all__ = ["summarize_trace"]


def _fmt_us(us: float) -> str:
    if us >= 1e6:
        return f"{us / 1e6:.2f}s"
    if us >= 1e3:
        return f"{us / 1e3:.2f}ms"
    return f"{us:.0f}us"


def _percentile(sorted_vals: List[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(round(q * (len(sorted_vals) - 1))))
    return sorted_vals[idx]


def summarize_trace(data: Dict[str, Any]) -> str:
    """Render a Chrome trace-event object as a human-readable report.

    Sections: the per-pid lanes (process names + event volume), span
    duration stats per span name, instant-event counts per name, and
    the counter / histogram registries from ``metadata``.
    """
    events = data.get("traceEvents", [])
    meta = data.get("metadata", {})

    lane_names: Dict[int, str] = {}
    lane_counts: Dict[int, int] = {}
    spans: Dict[str, List[float]] = {}
    instants: Dict[str, int] = {}
    counter_samples: Dict[str, Any] = {}

    for e in events:
        ph = e.get("ph")
        pid = e.get("pid", 0)
        if ph == "M":
            if e.get("name") == "process_name":
                lane_names[pid] = e.get("args", {}).get("name", str(pid))
            continue
        lane_counts[pid] = lane_counts.get(pid, 0) + 1
        if ph == "X":
            spans.setdefault(e.get("name", "?"), []).append(
                float(e.get("dur", 0.0)))
        elif ph == "i":
            name = e.get("name", "?")
            instants[name] = instants.get(name, 0) + 1
        elif ph == "C":
            counter_samples.update(e.get("args", {}))

    counters = dict(counter_samples)
    counters.update(meta.get("counters", {}))
    hists = meta.get("histograms", {})

    lines: List[str] = []
    label = meta.get("label")
    title = f"trace summary ({label})" if label else "trace summary"
    lines.append(title)
    lines.append("=" * len(title))

    lines.append("")
    lines.append("lanes:")
    all_pids = sorted(set(lane_names) | set(lane_counts))
    if not all_pids:
        lines.append("  (no events)")
    for pid in all_pids:
        name = lane_names.get(pid, "main" if pid == 0 else f"pid {pid}")
        lines.append(f"  [{pid}] {name}: {lane_counts.get(pid, 0)} event(s)")

    if spans:
        lines.append("")
        lines.append("spans:")
        for name in sorted(spans):
            durs = sorted(spans[name])
            total = sum(durs)
            lines.append(
                f"  {name}: n={len(durs)} total={_fmt_us(total)} "
                f"p50={_fmt_us(_percentile(durs, 0.50))} "
                f"p99={_fmt_us(_percentile(durs, 0.99))} "
                f"max={_fmt_us(durs[-1])}")

    if instants:
        lines.append("")
        lines.append("events:")
        for name in sorted(instants):
            lines.append(f"  {name}: {instants[name]}")

    if counters:
        lines.append("")
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name}: {counters[name]}")

    if hists:
        lines.append("")
        lines.append("histograms:")
        for name in sorted(hists):
            vals = sorted(float(v) for v in hists[name])
            if not vals:
                continue
            mean = sum(vals) / len(vals)
            lines.append(
                f"  {name}: n={len(vals)} mean={mean:.3f} "
                f"p50={_percentile(vals, 0.50):.3f} "
                f"max={vals[-1]:.3f}")

    return "\n".join(lines)
