"""repro — reproduction of Åstrand & Suomela (SPAA 2010).

*Fast Distributed Approximation Algorithms for Vertex Cover and Set
Cover in Anonymous Networks.*

The package provides:

* a synchronous anonymous-network simulator (:mod:`repro.simulator`)
  supporting the port-numbering and broadcast models of Section 1.3;
* the paper's algorithms (:mod:`repro.core`): maximal edge packing in
  ``O(Δ + log* W)`` rounds (Section 3), maximal fractional packing in
  ``O(f²k² + fk log* W)`` rounds in the broadcast model (Section 4),
  and the broadcast-model vertex cover simulation (Section 5);
* prior-work baselines for Table 1 (:mod:`repro.baselines`);
* exact verifiers, round-bound formulas and symmetry analysis
  (:mod:`repro.analysis`);
* the lower-bound constructions of Section 6
  (:mod:`repro.lowerbounds`);
* a self-stabilising transformer (:mod:`repro.selfstab`);
* a dynamic-network engine maintaining covers under edge/vertex churn
  with dirty-region warm restarts (:mod:`repro.dynamic`);
* experiment harnesses regenerating every table and figure
  (:mod:`repro.experiments`).

Quickstart::

    from repro import vertex_cover_2approx
    from repro.graphs import families

    g = families.cycle_graph(9)
    result = vertex_cover_2approx(g, weights=[1] * 9)
    print(result.cover, result.rounds, result.certificate_ratio)
"""

from repro.core.vertex_cover import (
    VertexCoverResult,
    vertex_cover_2approx,
    vertex_cover_broadcast,
)
from repro.core.set_cover import SetCoverResult, set_cover_f_approx
from repro.core.edge_packing import maximal_edge_packing
from repro.core.fractional_packing import maximal_fractional_packing
from repro.dynamic import DynamicRun
from repro.graphs import PortNumberedGraph, SetCoverInstance

__version__ = "1.0.0"

__all__ = [
    "DynamicRun",
    "PortNumberedGraph",
    "SetCoverInstance",
    "SetCoverResult",
    "VertexCoverResult",
    "maximal_edge_packing",
    "maximal_fractional_packing",
    "set_cover_f_approx",
    "vertex_cover_2approx",
    "vertex_cover_broadcast",
    "__version__",
]
