"""Tests for the self-stabilising transformer."""

from __future__ import annotations

import pytest

from repro.analysis.verify import check_edge_packing, check_vertex_cover
from repro.core.edge_packing import EdgePackingMachine, schedule_length
from repro.graphs import families
from repro.graphs.weights import uniform_weights, unit_weights
from repro.selfstab.transformer import SelfStabilisingMachine, run_self_stabilising
from repro.simulator.faults import RandomStateCorruption


def _reference_outputs(graph, weights, delta, W):
    from repro.core.edge_packing import maximal_edge_packing

    res = maximal_edge_packing(graph, weights, delta=delta, W=W)
    return res.run.outputs, res


def _selfstab_outputs(graph, weights, delta, W, rounds, adversary=None):
    horizon = schedule_length(delta, W)
    result = run_self_stabilising(
        graph,
        EdgePackingMachine(),
        horizon=horizon,
        rounds=rounds,
        inputs=list(weights),
        globals_map={"delta": delta, "W": W},
        fault_adversary=adversary,
    )
    return result


class TestFaultFreeConvergence:
    def test_converges_to_reference_within_horizon(self):
        g = families.cycle_graph(5)
        w = unit_weights(5)
        delta, W = 2, 1
        horizon = schedule_length(delta, W)
        ref, _ = _reference_outputs(g, w, delta, W)
        res = _selfstab_outputs(g, w, delta, W, rounds=horizon)
        assert res.outputs == ref

    def test_output_stable_after_convergence(self):
        g = families.path_graph(4)
        w = [2, 1, 1, 2]
        delta, W = 2, 2
        horizon = schedule_length(delta, W)
        ref, _ = _reference_outputs(g, w, delta, W)
        res = _selfstab_outputs(g, w, delta, W, rounds=horizon + 10)
        assert res.outputs == ref


class TestFaultRecovery:
    @pytest.mark.parametrize("rate", [0.1, 0.4])
    def test_recovers_after_random_corruption(self, rate):
        g = families.cycle_graph(6)
        w = uniform_weights(6, 3, seed=2)
        delta, W = 2, 3
        horizon = schedule_length(delta, W)
        faulty_rounds = 12
        adversary = RandomStateCorruption(
            until_round=faulty_rounds, rate=rate, seed=5
        )
        ref, _ = _reference_outputs(g, w, delta, W)
        res = _selfstab_outputs(
            g, w, delta, W,
            rounds=faulty_rounds + horizon,
            adversary=adversary,
        )
        assert adversary.corruptions > 0, "adversary must actually corrupt"
        assert res.outputs == ref

    def test_output_valid_packing_after_recovery(self):
        g = families.grid_2d(2, 3)
        w = uniform_weights(6, 4, seed=7)
        delta, W = g.max_degree, 4
        horizon = schedule_length(delta, W)
        adversary = RandomStateCorruption(until_round=8, rate=0.5, seed=9)
        res = _selfstab_outputs(
            g, w, delta, W, rounds=8 + horizon, adversary=adversary
        )
        # assemble the packing from outputs and verify exactly
        y = {}
        for v in g.nodes():
            for p in range(g.degree(v)):
                e = g.edge_of_port(v, p)
                val = res.outputs[v]["y"][p]
                assert y.setdefault(e, val) == val, "endpoint disagreement"
        check_edge_packing(g, w, y).require()
        cover = [v for v in g.nodes() if res.outputs[v]["in_cover"]]
        ok, _ = check_vertex_cover(g, cover)
        assert ok

    def test_corruption_during_run_visible_before_horizon(self):
        """Sanity: the adversary really perturbs the pipeline (the run
        differs from the reference if we stop before re-convergence)."""
        g = families.cycle_graph(6)
        w = unit_weights(6)
        delta, W = 2, 1
        adversary = RandomStateCorruption(until_round=6, rate=0.9, seed=1)
        res = _selfstab_outputs(g, w, delta, W, rounds=6, adversary=adversary)
        # no assertion on equality here — only that the run completes and
        # produces *some* outputs without crashing
        assert len(res.outputs) == 6


class TestTransformerMechanics:
    def test_never_halts(self):
        g = families.path_graph(2)
        machine = SelfStabilisingMachine(EdgePackingMachine(), horizon=5)
        from repro.simulator.runtime import run

        res = run(
            g,
            machine,
            inputs=[1, 1],
            globals_map={"delta": 1, "W": 1},
            max_rounds=7,
        )
        assert not res.all_halted
        assert res.rounds == 7

    def test_message_size_scales_with_horizon(self):
        g = families.path_graph(2)
        from repro.simulator.runtime import run

        sizes = []
        for horizon in (4, 16):
            machine = SelfStabilisingMachine(EdgePackingMachine(), horizon=horizon)
            res = run(
                g,
                machine,
                inputs=[1, 1],
                globals_map={"delta": 1, "W": 1},
                max_rounds=3,
            )
            sizes.append(res.message_bits)
        assert sizes[1] > sizes[0]

    def test_rejects_negative_horizon(self):
        with pytest.raises(ValueError):
            SelfStabilisingMachine(EdgePackingMachine(), horizon=-1)
