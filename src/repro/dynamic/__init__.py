"""Dynamic-network engine: covers maintained under edge/vertex churn.

The first subsystem whose unit of work is a *stream* rather than a
run: a :class:`DynamicRun` session holds a solved cover and applies
batches of :class:`GraphEdit` values, re-deriving the cover either
from scratch (``mode="scratch"``, the paper-literal reference) or via
a dirty-region warm restart (``mode="incremental"``, bit-for-bit
identical, see :mod:`repro.dynamic.session`).  Edit streams — random
churn, targeted hub churn, sliding windows — live in
:mod:`repro.dynamic.streams`.  :class:`ServingHost`
(:mod:`repro.dynamic.serving`) multiplexes many such sessions over
warm worker pools with checkpoint-replay crash recovery.
"""

from repro.dynamic.edits import (
    EDIT_KINDS,
    AppliedBatch,
    EditError,
    GraphEdit,
    add_edge,
    add_vertex,
    apply_edits,
    remove_edge,
    remove_vertex,
    reweight,
)
from repro.dynamic.overlay import MutableTopology, OverlayBatch
from repro.dynamic.serving import HostReport, ServingHost, latency_summary
from repro.dynamic.session import (
    DYNAMIC_MODES,
    SNAPSHOT_VERSION,
    BatchStats,
    CoverView,
    DynamicRun,
    validate_dynamic_mode,
)
from repro.dynamic.streams import (
    EditStream,
    HubChurn,
    RandomChurn,
    SetCoverChurn,
    SlidingWindowStream,
)

__all__ = [
    "EDIT_KINDS",
    "DYNAMIC_MODES",
    "SNAPSHOT_VERSION",
    "AppliedBatch",
    "BatchStats",
    "CoverView",
    "DynamicRun",
    "EditError",
    "EditStream",
    "GraphEdit",
    "HostReport",
    "HubChurn",
    "MutableTopology",
    "OverlayBatch",
    "RandomChurn",
    "ServingHost",
    "SetCoverChurn",
    "SlidingWindowStream",
    "latency_summary",
    "add_edge",
    "add_vertex",
    "apply_edits",
    "remove_edge",
    "remove_vertex",
    "reweight",
    "validate_dynamic_mode",
]
