"""Unified observability: spans, typed events, counters, Chrome export.

Every execution substrate in this tree — the object and columnar
engines, the sharded intra-run fleet, the crash-recovering process
pools, the dynamic incremental sessions and the multiplexed serving
host — previously explained itself through scattered ad-hoc artifacts
(``sharding.LAST_DECISION``, memo hit counters, ``BatchStats``,
``FailureReport``).  This package gives them one vocabulary:

* a **span** API (``run`` → ``round`` → phase) recording wall-clock
  intervals,
* **typed structured events** (engine selection and every fallback
  reason, shard boundary-exchange sizes, pool retries, memo hit/miss,
  dynamic batch light-cone stats, serving checkpoint/recovery/replay,
  injected faults — see :mod:`repro.obs.events` for the taxonomy),
* **counter/histogram registries**, and
* an exporter producing Chrome trace-event JSON (loadable in Perfetto
  / ``chrome://tracing``) plus a human ``summarize`` view.

The contract every consumer relies on:

* **Disabled is free.**  With no tracer installed,
  :func:`current` returns ``None`` and every instrumentation site is
  a single global read + ``None`` check (gated by
  ``benchmarks/bench_obs.py``).
* **Tracing never changes results.**  A tracer only reads the clock
  and appends to its own buffers — it never touches RNG, metering or
  scheduling, so tracing on ≡ tracing off bit-for-bit on every
  ``RunResult`` field (pinned by ``tests/test_obs.py``).
* **One merged trace per run.**  Worker processes (shard sessions,
  process-pool chunks) buffer their spans locally and ship them back
  with their results; the parent tracer absorbs them under distinct
  pid lanes, so a sharded or process-backend run still produces a
  single loadable trace.

Install a tracer for a region with :func:`tracing`::

    from repro import obs

    tracer = obs.Tracer()
    with obs.tracing(tracer):
        result = run(graph, machine, shards=4)
    tracer.dump("out.json")          # Chrome trace-event JSON
    print(tracer.summarize())        # human view

or from the CLI: ``python -m repro.cli vc --trace out.json ...`` and
``python -m repro.cli trace summarize out.json``.
"""

from repro.obs.events import (
    COUNTER_NAMES,
    CTR_FAULT_EVENTS,
    CTR_MEMO_HIT,
    CTR_MEMO_MISS,
    CTR_POOL_RESTARTS,
    CTR_SERVING_CHECKPOINTS,
    CTR_SERVING_RECOVERIES,
    CTR_SERVING_REPLAYED,
    EV_DYNAMIC_BATCH,
    EV_ENGINE_FALLBACK,
    EV_ENGINE_SELECTED,
    EV_FAULT_INJECTED,
    EV_POOL_RETRY,
    EV_SERVING_CHECKPOINT,
    EV_SERVING_RECOVERY,
    EV_SERVING_REPLAY,
    EV_SHARD_BOUNDARY,
    EV_SHARD_DECISION,
    EVENT_NAMES,
    SPAN_BATCH,
    SPAN_NAMES,
    SPAN_PHASE,
    SPAN_ROUND,
    SPAN_RUN,
)
from repro.obs.export import summarize_trace
from repro.obs.tracer import (
    Tracer,
    clock,
    current,
    install,
    tracing,
    uninstall,
)

__all__ = [
    "COUNTER_NAMES",
    "EVENT_NAMES",
    "SPAN_NAMES",
    "CTR_FAULT_EVENTS",
    "CTR_MEMO_HIT",
    "CTR_MEMO_MISS",
    "CTR_POOL_RESTARTS",
    "CTR_SERVING_CHECKPOINTS",
    "CTR_SERVING_RECOVERIES",
    "CTR_SERVING_REPLAYED",
    "EV_DYNAMIC_BATCH",
    "EV_ENGINE_FALLBACK",
    "EV_ENGINE_SELECTED",
    "EV_FAULT_INJECTED",
    "EV_POOL_RETRY",
    "EV_SERVING_CHECKPOINT",
    "EV_SERVING_RECOVERY",
    "EV_SERVING_REPLAY",
    "EV_SHARD_BOUNDARY",
    "EV_SHARD_DECISION",
    "SPAN_BATCH",
    "SPAN_PHASE",
    "SPAN_ROUND",
    "SPAN_RUN",
    "Tracer",
    "clock",
    "current",
    "install",
    "summarize_trace",
    "tracing",
    "uninstall",
]
