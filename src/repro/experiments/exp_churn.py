"""EXP-CHURN — dynamic covers: quality and repaired fraction vs churn rate.

The dynamic-network engine (:mod:`repro.dynamic`) claims that under
churn (a) covers stay valid 2-approximations with the certificate to
prove it, whatever the edit rate, and (b) the incremental mode repairs
only the dirty region — a fraction of the network that grows with the
churn rate and stays well below 1 on low-churn streams (the locality
of the paper's algorithms made quantitative).  This experiment sweeps
the churn rate (edits per batch) on one instance, runs an incremental
and a scratch session in lockstep at every rate, and tabulates

* mean repaired fraction and mean repaired node count (incremental),
* per-batch repair latency percentiles (the shared ``latency_ms``
  vocabulary of :func:`repro.dynamic.latency_summary` — the same
  shape ``repro.cli dynamic --json`` and the serving benchmark emit),
* the final cover weight and the *worst* certificate ratio over the
  whole stream (``<= 1`` certifies every intermediate cover),
* whether every intermediate cover was valid, and
* whether incremental ≡ scratch held on every batch (the
  ``tests/test_dynamic.py`` contract, re-checked live).

Each churn rate is one independent, picklable kernel configuration, so
the sweep runs through :func:`repro.experiments.common.parallel_map`
with ``n_workers``/``backend`` (``backend="process"`` for multi-core).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.dynamic import DynamicRun, RandomChurn, latency_summary
from repro.obs import CTR_MEMO_HIT, CTR_MEMO_MISS, EV_DYNAMIC_BATCH
from repro.experiments.common import ExperimentTable, parallel_map
from repro.graphs import families
from repro.graphs.weights import uniform_weights, unit_weights

__all__ = ["run", "main"]


def _churn_cell(cfg: Tuple[str, int, int, int, int, int]) -> Dict[str, Any]:
    """One churn rate: lockstep incremental + scratch sessions.

    Module-level (picklable) so the sweep can use ``backend="process"``.
    """
    family, n, W, rate, batches, seed = cfg
    graph = families.sized(family, n, seed=seed)
    weights = (
        unit_weights(graph.n) if W <= 1 else uniform_weights(graph.n, W, seed=seed)
    )
    kwargs = dict(delta=graph.max_degree, W=max(1, W), metering="none")
    inc = DynamicRun.vertex_cover(graph, weights, mode="incremental", **kwargs)
    scr = DynamicRun.vertex_cover(graph, weights, mode="scratch", **kwargs)
    stream = RandomChurn(
        edits_per_batch=rate, seed=seed, W=max(1, W),
        max_degree=graph.max_degree,
    )
    worst_ratio = inc.certificate_ratio()
    always_cover = inc.is_cover()
    always_equal = True
    applied = 0
    # A cell-local tracer: the memo and batch counters below are the
    # trace-derived view of the same stream (tracing never changes
    # results — the tests/test_obs.py contract).
    tracer = obs.Tracer(f"exp-churn rate {rate}")
    with obs.tracing(tracer):
        for _ in range(batches):
            batch = stream.next_batch(inc.graph, inc.inputs)
            if not batch:
                continue
            inc.apply(batch)
            scr.apply(batch)
            applied += 1
            r_inc, r_scr = inc.result, scr.result
            always_equal = always_equal and (
                r_inc.outputs == r_scr.outputs
                and r_inc.states == r_scr.states
                and r_inc.rounds == r_scr.rounds
            )
            view = inc.cover_view()
            always_cover = always_cover and view.covered
            worst_ratio = max(worst_ratio, view.certificate_ratio)
    stats = inc.stats
    counters = tracer.counters
    return {
        "rate": rate,
        "batches": applied,
        "mean_fraction": (
            sum(s.repaired_fraction for s in stats) / len(stats) if stats else 0.0
        ),
        "mean_nodes": (
            sum(s.repaired_nodes for s in stats) / len(stats) if stats else 0.0
        ),
        # per-batch repair wall clock, in the shared latency shape
        "latency_ms": latency_summary([s.wall_ms for s in stats]),
        # trace-derived counters for the whole cell (both sessions)
        "counters": counters,
        "traced_batches": len(tracer.events(EV_DYNAMIC_BATCH)),
        "final_weight": inc.cover_weight(),
        "worst_ratio": worst_ratio,
        "always_cover": always_cover,
        "always_equal": always_equal,
    }


def run(
    rates: Optional[List[int]] = None,
    n: int = 192,
    batches: int = 4,
    family: str = "cycle",
    W: int = 1,
    seed: int = 0,
    n_workers: Optional[int] = None,
    backend: Optional[str] = None,
) -> ExperimentTable:
    """Sweep churn rates; one lockstep session pair per rate."""
    rates = rates or [1, 2, 4]
    table = ExperimentTable(
        experiment_id="EXP-CHURN",
        title=(
            f"dynamic covers under churn ({family} n={n}, W={max(1, W)}): "
            f"repaired fraction vs edits per batch"
        ),
        columns=[
            "edits / batch",
            "batches",
            "mean repaired fraction",
            "mean repaired nodes",
            "p50 latency (ms)",
            "p99 latency (ms)",
            "memo hit / miss",
            "final cover weight",
            "worst certificate ratio",
            "covers valid",
            "incremental == scratch",
        ],
    )
    cells = parallel_map(
        _churn_cell,
        [(family, n, W, rate, batches, seed) for rate in rates],
        n_workers=n_workers,
        backend=backend,
    )
    for cell in cells:
        table.add_row(
            **{
                "edits / batch": cell["rate"],
                "batches": cell["batches"],
                "mean repaired fraction": round(cell["mean_fraction"], 4),
                "mean repaired nodes": round(cell["mean_nodes"], 1),
                "p50 latency (ms)": round(cell["latency_ms"]["p50_ms"], 3),
                "p99 latency (ms)": round(cell["latency_ms"]["p99_ms"], 3),
                "memo hit / miss": (
                    f"{cell['counters'].get(CTR_MEMO_HIT, 0)}"
                    f"/{cell['counters'].get(CTR_MEMO_MISS, 0)}"
                ),
                "final cover weight": cell["final_weight"],
                "worst certificate ratio": cell["worst_ratio"],
                "covers valid": cell["always_cover"],
                "incremental == scratch": cell["always_equal"],
            }
        )

    assert all(cell["always_cover"] for cell in cells)
    assert all(cell["always_equal"] for cell in cells)
    assert all(cell["worst_ratio"] <= 1 for cell in cells)
    table.add_note(
        "every intermediate cover valid and certified <= 2·OPT; "
        "incremental == scratch on every batch (HOLDS)"
    )
    lo = min(cells, key=lambda c: c["rate"])
    hi = max(cells, key=lambda c: c["rate"])
    grows = hi["mean_fraction"] >= lo["mean_fraction"]
    table.add_note(
        f"repaired fraction grows with churn rate: "
        f"{lo['mean_fraction']:.3f} @ {lo['rate']} -> "
        f"{hi['mean_fraction']:.3f} @ {hi['rate']} "
        f"({'HOLDS' if grows else 'FAILS'})"
    )
    assert grows
    return table


def main() -> None:
    print(run(rates=[1, 2, 4, 8], n=512, batches=6).render())


if __name__ == "__main__":
    main()
