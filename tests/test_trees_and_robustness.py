"""Tree-specific properties and misuse/robustness tests."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings, HealthCheck

from repro.analysis.verify import check_edge_packing, check_vertex_cover
from repro.baselines.exact import exact_min_vertex_cover
from repro.core.edge_packing import EdgePackingMachine, maximal_edge_packing
from repro.core.fractional_packing import FractionalPackingMachine
from repro.graphs import families
from repro.graphs.weights import uniform_weights, unit_weights
from repro.simulator.machine import LocalContext
from repro.simulator.runtime import run_port_numbering
from tests.conftest import trees


class TestTrees:
    """Trees are the worst case for symmetry-free arguments (leaves and
    internal nodes look different) and the best case for optimality:
    VC is poly-time on trees, so ratios can be checked tightly."""

    @given(trees(max_n=12))
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_edge_packing_on_random_trees(self, g):
        w = unit_weights(g.n)
        res = maximal_edge_packing(g, w)
        check_edge_packing(g, w, res.y).require()
        ok, _ = check_vertex_cover(g, res.saturated)
        assert ok

    @given(trees(max_n=10))
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_two_approx_on_trees(self, g):
        if g.m == 0:
            return
        w = uniform_weights(g.n, 6, seed=1)
        res = maximal_edge_packing(g, w)
        opt, _ = exact_min_vertex_cover(g, w)
        assert res.cover_weight() <= 2 * opt

    def test_deep_path_star_combination(self):
        # caterpillar: spine + legs; Δ larger than path's 2
        g = families.caterpillar(5, 3)
        w = uniform_weights(g.n, 9, seed=2)
        res = maximal_edge_packing(g, w)
        check_edge_packing(g, w, res.y).require()


class TestMachineMisuse:
    def test_edge_packing_requires_int_weight(self):
        ctx = LocalContext(degree=1, input="heavy", globals={"delta": 1, "W": 1})
        with pytest.raises(ValueError, match="positive int"):
            EdgePackingMachine().start(ctx)

    def test_edge_packing_rejects_bool_weight(self):
        ctx = LocalContext(degree=0, input=True, globals={"delta": 0, "W": 1})
        with pytest.raises(ValueError):
            EdgePackingMachine().start(ctx)

    def test_edge_packing_missing_globals(self):
        ctx = LocalContext(degree=0, input=1, globals={})
        with pytest.raises(KeyError, match="delta"):
            EdgePackingMachine().start(ctx)

    def test_fractional_packing_requires_role(self):
        ctx = LocalContext(degree=1, input={}, globals={"f": 1, "k": 1, "W": 1})
        with pytest.raises(ValueError, match="role"):
            FractionalPackingMachine().start(ctx)

    def test_fractional_packing_element_degree_zero(self):
        ctx = LocalContext(
            degree=0, input={"role": "element"}, globals={"f": 1, "k": 1, "W": 1}
        )
        with pytest.raises(ValueError, match="infeasible"):
            FractionalPackingMachine().start(ctx)

    def test_subset_weight_above_W_rejected(self):
        ctx = LocalContext(
            degree=0,
            input={"role": "subset", "weight": 9},
            globals={"f": 1, "k": 1, "W": 3},
        )
        with pytest.raises(ValueError, match="exceeds"):
            FractionalPackingMachine().start(ctx)


class TestRuntimeEdgeCases:
    def test_machine_error_propagates_with_context(self):
        """A machine raising inside step must surface, not be swallowed."""

        class Exploding(EdgePackingMachine):
            def step(self, ctx, state, inbox):
                raise RuntimeError("intentional")

        g = families.path_graph(2)
        with pytest.raises(RuntimeError, match="intentional"):
            run_port_numbering(
                g,
                Exploding(),
                inputs=[1, 1],
                globals_map={"delta": 1, "W": 1},
                max_rounds=5,
            )

    def test_single_node_graph(self):
        g = families.empty_graph(1)
        res = maximal_edge_packing(g, [5])
        assert res.saturated == frozenset()
        assert res.y == {}

    def test_two_disconnected_components_independent(self):
        """Strict locality: components cannot influence each other."""
        from repro.graphs.topology import PortNumberedGraph

        combined = PortNumberedGraph.from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        w = [1, 5, 1, 2, 2, 2]
        res_combined = maximal_edge_packing(combined, w, delta=2, W=5)

        left = PortNumberedGraph.from_edges(3, [(0, 1), (1, 2)])
        res_left = maximal_edge_packing(left, [1, 5, 1], delta=2, W=5)
        right = PortNumberedGraph.from_edges(3, [(0, 1), (1, 2)])
        res_right = maximal_edge_packing(right, [2, 2, 2], delta=2, W=5)

        assert {v for v in res_combined.saturated if v < 3} == set(res_left.saturated)
        assert {v - 3 for v in res_combined.saturated if v >= 3} == set(
            res_right.saturated
        )

    def test_parallel_weight_scaling_scales_packing(self):
        """Scaling all weights by c scales the packing by c (the
        algorithm is scale-equivariant on exact rationals)."""
        g = families.gnp_random(8, 0.4, seed=1)
        w = uniform_weights(8, 4, seed=2)
        res1 = maximal_edge_packing(g, w, W=4)
        res2 = maximal_edge_packing(g, [3 * x for x in w], W=12)
        # Note: W changes the schedule length but not Phase I arithmetic;
        # the colour *sequences* scale, preserving order, so Phase II
        # makes the same decisions.
        for e in range(g.m):
            assert res2.y[e] == 3 * res1.y[e]
        assert res1.saturated == res2.saturated
