#!/usr/bin/env python
"""A tour of the Section 6 lower bounds — why f-approximation is optimal.

Three stops:

1. the symmetric K_{p,p} instance (Figure 3): deterministic anonymous
   algorithms cannot beat ratio p = min{f, k}, and ours lands on it
   exactly — the analysis is tight;
2. the same instance with a *benign* port numbering: the trivial
   k-approximation suddenly achieves ratio 1 — the hardness lives in
   the symmetry of the ports;
3. the cycle reduction (Figure 4): a too-good set cover algorithm
   would yield a constant-time independent set algorithm on numbered
   cycles, which Lemma 4 (Czygrinow et al., Lenzen–Wattenhofer)
   forbids — demonstrated by the adversarial numbering that starves
   the classic local-max rule.

Run:  python examples/lower_bound_tour.py
"""

import random

from repro.core.set_cover import set_cover_f_approx
from repro.lowerbounds.cycle_reduction import (
    adversarial_increasing_ids,
    cycle_setcover_instance,
    extract_independent_set,
    local_max_independent_set,
)
from repro.lowerbounds.symmetric import (
    symmetric_lower_bound_demo,
    trivial_algorithm_port_sensitivity,
)


def main() -> None:
    print("=== stop 1: the symmetric instance forces ratio p ===")
    for p in (2, 3, 4):
        demo = symmetric_lower_bound_demo(p)
        print(
            f"  K_{{{p},{p}}}: optimum 1, our f-approx picks "
            f"{len(demo.cover)} subsets  ->  ratio {demo.ratio:.0f} = p"
        )

    print("\n=== stop 2: the hardness lives in the ports ===")
    for p in (3, 5):
        sizes = trivial_algorithm_port_sensitivity(p)
        print(
            f"  trivial k-approx on K_{{{p},{p}}}: canonical ports -> "
            f"{sizes['canonical']} subset(s); symmetric ports -> {sizes['symmetric']}"
        )

    print("\n=== stop 3: the cycle reduction (Figure 4) ===")
    n, p = 12, 3
    inst = cycle_setcover_instance(n, p)
    res = set_cover_f_approx(inst)
    ratio = res.cover_weight / (n // p)
    ind = extract_independent_set(n, p, res.cover)
    print(f"  H({n},{p}): f=k={p}, optimum {n // p}")
    print(f"  our anonymous algorithm: cover {len(res.cover)}, ratio {ratio:.0f} (= p)")
    print(f"  extracted independent set: {sorted(ind)} (empty, as it must be)")

    print("\n  and the reason no clever id-based local algorithm can do better:")
    n = 60
    rng = random.Random(1)
    shuffled = list(range(1, n + 1))
    rng.shuffle(shuffled)
    for name, ids in (
        ("random ids      ", shuffled),
        ("adversarial ids ", adversarial_increasing_ids(n)),
    ):
        ind = local_max_independent_set(ids, radius=2)
        print(f"    {name}: local-max IS on the {n}-cycle has size {len(ind)}")
    print("  a constant-time rule that is great on random numberings returns")
    print("  ONE node on the adversarial one — Lemma 4, hence the (p-ε) bound.")


if __name__ == "__main__":
    main()
