#!/usr/bin/env python
"""Observability-layer gates: disabled overhead, equality, merged traces.

Three hard contracts of :mod:`repro.obs` (see ``docs/observability.md``),
re-checked on the ``bench_columnar.py`` workload (large unit-weight
cycle, metering off) and recorded in the ``obs`` section of
``BENCH_perf.json``:

1. **Disabled tracing is (near-)free.**  With no tracer installed,
   every instrumentation site is one ``current()`` read plus a ``None``
   check.  The gate measures the cost of exactly as many such no-op
   checks as the traced run emits records, and requires that total to
   be <= 5% of the untraced workload's wall time.  (Measuring the
   checks directly, rather than differencing two noisy end-to-end
   timings, keeps the gate stable on busy hosts — timing jitter
   between two runs of the full workload routinely exceeds the
   microseconds the checks cost.)
2. **Tracing on == tracing off, bit for bit.**  The traced run's
   ``RunResult`` agrees with the untraced run on all seven fields.
3. **One merged trace.**  A sharded run (workers in separate
   processes) yields a single trace containing worker-side ``round``
   spans under shard lanes.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py --update

Like ``bench_columnar.py``, this is not part of the pytest-benchmark
baseline; ``compare.py check`` ignores the section, ``update``
preserves it.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import obs  # noqa: E402
from repro.core.edge_packing import edge_packing_job  # noqa: E402
from repro.graphs import families  # noqa: E402
from repro.graphs.weights import unit_weights  # noqa: E402
from repro.obs import SPAN_ROUND  # noqa: E402
from repro.simulator import sharding  # noqa: E402
from repro.simulator.runtime import run  # noqa: E402

BASELINE = Path(__file__).with_name("BENCH_perf.json")

RUN_RESULT_FIELDS = (
    "outputs", "rounds", "all_halted", "messages_sent",
    "message_bits", "per_round_bits", "states",
)


def workload(n):
    graph = families.cycle_graph(n)
    job = edge_packing_job(graph, unit_weights(n), metering="none")
    job.pop("graph")
    machine = job.pop("machine")
    return graph, machine, job


def timed(fn, repeats):
    """Best-of-``repeats`` wall time, cyclic GC paused per repeat."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        gc_was_enabled = gc.isenabled()
        gc.disable()
        t0 = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - t0
        if gc_was_enabled:
            gc.enable()
        gc.collect()
        best = min(best, elapsed)
    return best, value


def noop_check_cost(visits, repeats):
    """Best-of wall time of ``visits`` disabled instrumentation checks."""
    current = obs.current

    def probe():
        for _ in range(visits):
            tr = current()
            if tr is not None:  # pragma: no cover - tracing is off here
                raise AssertionError("tracer installed during probe")

    best, _ = timed(probe, repeats)
    return best


def host_record():
    return {
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "platform": platform.system().lower(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=8192,
                        help="cycle size (default 8192, engages sharding)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="best-of repeats per timing (default 5)")
    parser.add_argument("--shards", type=int, default=2,
                        help="shard count for the merged-trace gate")
    parser.add_argument("--update", action="store_true",
                        help="write the obs section of BENCH_perf.json")
    args = parser.parse_args(argv)

    graph, machine, job = workload(args.n)
    print(f"edge packing, cycle n={args.n}, unit weights, metering none, "
          f"best of {args.repeats}")

    # Gate 2 first (it also produces the record count gate 1 needs).
    untraced_s, base = timed(lambda: run(graph, machine, **job), args.repeats)
    tracer = obs.Tracer("bench_obs")
    with obs.tracing(tracer):
        traced = run(graph, machine, **job)
    for field in RUN_RESULT_FIELDS:
        assert getattr(base, field) == getattr(traced, field), (
            f"traced run differs from untraced on RunResult.{field}"
        )
    print("equality gate (traced == untraced, all 7 fields): PASS")

    # Gate 1: the disabled fast path.  The traced run emitted
    # `visits` records; an untraced run visits the same sites and pays
    # one current()-is-None check at each.
    visits = len(tracer.events()) + sum(tracer.counters.values())
    overhead_s = noop_check_cost(visits, args.repeats)
    ratio = overhead_s / untraced_s
    print(f"disabled-path checks: {visits} visits, "
          f"{overhead_s * 1e6:.1f}us vs workload {untraced_s * 1e3:.1f}ms "
          f"({ratio * 100:.3f}%)")
    assert ratio <= 0.05, (
        f"disabled-tracer overhead {ratio * 100:.2f}% exceeds the 5% gate"
    )
    print("disabled-overhead gate (<=5%): PASS")

    # Gate 3: sharded run -> one merged trace with worker round spans.
    assert args.n >= sharding.MIN_SHARD_NODES, (
        f"n={args.n} is below MIN_SHARD_NODES={sharding.MIN_SHARD_NODES}; "
        f"the merged-trace gate needs sharding to engage"
    )
    shard_tracer = obs.Tracer("bench_obs sharded")
    with obs.tracing(shard_tracer):
        sharded = run(graph, machine, shards=args.shards, **job)
    decision = sharding.last_shard_decision()
    assert decision is not None and decision.engaged, (
        f"sharding did not engage: {decision}"
    )
    for field in RUN_RESULT_FIELDS:
        assert getattr(base, field) == getattr(sharded, field), (
            f"sharded traced run differs on RunResult.{field}"
        )
    data = shard_tracer.chrome()
    lanes = {
        e["pid"]: e["args"]["name"]
        for e in data["traceEvents"]
        if e.get("ph") == "M" and e["name"] == "process_name"
    }
    shard_lanes = {p for p, name in lanes.items() if name.startswith("shard ")}
    worker_rounds = sum(
        1
        for e in data["traceEvents"]
        if e["name"] == SPAN_ROUND and e.get("pid") in shard_lanes
    )
    assert len(shard_lanes) == args.shards, (
        f"expected {args.shards} shard lanes, got {sorted(lanes.values())}"
    )
    assert worker_rounds > 0, "no worker-side round spans in merged trace"
    print(f"merged-trace gate ({len(shard_lanes)} shard lanes, "
          f"{worker_rounds} worker round spans): PASS")

    record = {
        "workload": (
            f"edge packing, cycle n={args.n}, unit weights, metering none"
        ),
        "untraced_s": round(untraced_s, 4),
        "instrumentation_visits": visits,
        "disabled_overhead_s": round(overhead_s, 6),
        "disabled_overhead_pct": round(ratio * 100, 4),
        "traced_equals_untraced_all_fields": True,
        "sharded_trace_worker_round_spans": worker_rounds,
        "sharded_trace_lanes": len(shard_lanes),
        "host": host_record(),
    }
    print(json.dumps({"obs": record}, indent=2))

    if args.update:
        baseline = json.loads(BASELINE.read_text()) if BASELINE.exists() else {}
        baseline["obs"] = record
        BASELINE.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
        print(f"wrote obs section -> {BASELINE}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
