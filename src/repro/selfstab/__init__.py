"""Self-stabilisation via the pipeline transformer of [23]."""

from repro.selfstab.transformer import (
    SelfStabilisingMachine,
    run_self_stabilising,
)

__all__ = ["SelfStabilisingMachine", "run_self_stabilising"]
