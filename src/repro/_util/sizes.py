"""Structural bit-size metering for messages.

The paper notes (Section 5) that the broadcast-model simulation keeps
the *round* complexity unchanged "at the cost of increasing message
complexity".  To measure that cost, the runtime meters the structural
size of every message in bits.  The measure is deliberately simple and
deterministic (it is an accounting device, not a wire format):

* ``None`` costs 1 bit (presence flag);
* ``bool`` costs 1 bit;
* ``int n`` costs ``bit_length(|n|) + 1`` bits (sign/zero);
* ``Fraction p/q`` costs the cost of ``p`` plus the cost of ``q``;
* ``str s`` costs ``8·len(s)`` bits;
* containers cost the sum of their items plus ``ceil(log2(len+1)) + 1``
  bits of length framing.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any

__all__ = ["message_size_bits"]


def _int_bits(n: int) -> int:
    return abs(n).bit_length() + 1


def _length_framing_bits(length: int) -> int:
    return (length + 1).bit_length() + 1


def message_size_bits(value: Any) -> int:
    """Structural size of ``value`` in bits (see module docstring)."""
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return _int_bits(value)
    if isinstance(value, Fraction):
        return _int_bits(value.numerator) + _int_bits(value.denominator)
    if isinstance(value, float):
        raise TypeError("floats are not permitted in messages")
    if isinstance(value, str):
        return 8 * len(value) + _length_framing_bits(len(value))
    if isinstance(value, (tuple, list)):
        return _length_framing_bits(len(value)) + sum(
            message_size_bits(v) for v in value
        )
    if isinstance(value, dict):
        return _length_framing_bits(len(value)) + sum(
            message_size_bits(k) + message_size_bits(v) for k, v in value.items()
        )
    raise TypeError(
        f"unsupported message value of type {type(value).__name__}: {value!r}"
    )
