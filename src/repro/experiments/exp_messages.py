"""EXP-MSG — message complexity across the three protocols.

The paper trades message size for model weakness twice: the Section 5
simulation keeps the *round* count of Section 4 "at the cost of
increasing message complexity", and the self-stabilising transformer
[23] multiplies message size by the horizon T.  This experiment puts
the three protocols side by side on one instance and measures total
messages, total bits, and peak per-round bits — making both trade-offs
quantitative.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.edge_packing import EdgePackingMachine, schedule_length
from repro.core.vertex_cover import vertex_cover_2approx, vertex_cover_broadcast
from repro.experiments.common import ExperimentTable
from repro.graphs import families
from repro.graphs.weights import unit_weights
from repro.selfstab.transformer import run_self_stabilising

__all__ = ["run", "main"]


def run(n: int = 8) -> ExperimentTable:
    g = families.cycle_graph(n)
    w = unit_weights(n)
    delta, W = 2, 1
    table = ExperimentTable(
        experiment_id="EXP-MSG",
        title=f"message complexity on the {n}-cycle (Δ=2, W=1)",
        columns=[
            "protocol",
            "model",
            "rounds",
            "messages",
            "total kbits",
            "peak round kbits",
            "bits / (message)",
        ],
    )

    port = vertex_cover_2approx(g, w)
    table.add_row(
        protocol="§3 edge packing",
        model="port numbering",
        rounds=port.rounds,
        messages=port.run.messages_sent,
        **{
            "total kbits": port.run.message_bits / 1000,
            "peak round kbits": port.run.max_round_bits / 1000,
            "bits / (message)": port.run.message_bits / max(1, port.run.messages_sent),
        },
    )

    broadcast = vertex_cover_broadcast(g, w)
    table.add_row(
        protocol="§5 history simulation",
        model="broadcast",
        rounds=broadcast.rounds,
        messages=broadcast.run.messages_sent,
        **{
            "total kbits": broadcast.run.message_bits / 1000,
            "peak round kbits": broadcast.run.max_round_bits / 1000,
            "bits / (message)": broadcast.run.message_bits
            / max(1, broadcast.run.messages_sent),
        },
    )

    horizon = schedule_length(delta, W)
    ss = run_self_stabilising(
        g,
        EdgePackingMachine(),
        horizon=horizon,
        rounds=horizon,  # one stabilisation window
        inputs=list(w),
        globals_map={"delta": delta, "W": W},
    )
    table.add_row(
        protocol=f"self-stabilising §3 (T={horizon})",
        model="port numbering",
        rounds=ss.rounds,
        messages=ss.messages_sent,
        **{
            "total kbits": ss.message_bits / 1000,
            "peak round kbits": ss.max_round_bits / 1000,
            "bits / (message)": ss.message_bits / max(1, ss.messages_sent),
        },
    )

    base_bits = table.rows[0]["total kbits"]
    table.add_note(
        f"§5 pays ~{table.rows[1]['total kbits'] / base_bits:.0f}x the bits of "
        "§3 for working in the strictly weaker broadcast model"
    )
    table.add_note(
        f"the self-stabilising wrapper pays ~{table.rows[2]['total kbits'] / base_bits:.0f}x "
        f"(the factor-T pipeline) for tolerating arbitrary transient faults"
    )
    assert table.rows[1]["total kbits"] > base_bits
    assert table.rows[2]["total kbits"] > base_bits
    return table


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
