"""Property-style fuzzer: ``MutableTopology`` ≡ ``apply_edits`` rebuild.

The overlay applies an edit batch in O(dirty region); the reference
semantics (:func:`repro.dynamic.edits.apply_edits` followed by a full
``PortNumberedGraph.from_edges`` rebuild) pays O(n + m).  This suite
pins the equivalence contract under seeded random batches — edge
churn, reweights, membership churn including orphaning vertex
removals, and deliberately invalid edits — checking after every batch:

* **edges** — the overlay's edge set equals the reference's;
* **canonical ports** — ``materialise()`` equals
  ``PortNumberedGraph.from_edges`` on the same edges (``__eq__`` is
  port-structure equality), and the overlay's patched per-node routes
  equal the rebuilt graph's;
* **node maps** — the ``OverlayBatch`` relabelling matches
  ``AppliedBatch.node_map`` (with ``None`` standing for identity),
  and the touched sets coincide;
* **rejection** — a batch ``apply_edits`` rejects is rejected by the
  overlay too, leaving overlay state and inputs bit-identical to
  before the attempt (rollback), and vice versa: the overlay never
  rejects a batch the reference accepts.
"""

from __future__ import annotations

import random

import pytest

from repro.dynamic import MutableTopology, apply_edits
from repro.dynamic.edits import (
    EditError,
    add_edge,
    add_vertex,
    remove_edge,
    remove_vertex,
    reweight,
)
from repro.graphs import families
from repro.graphs.topology import PortNumberedGraph


def _random_batch(rng, n, edge_set, allow_invalid=False):
    """A random edit batch generated against the current state."""
    batch = []
    cur_n = n
    cur_edges = set(edge_set)
    for _ in range(rng.randint(1, 4)):
        kinds = ["add_edge", "remove_edge", "reweight"]
        if cur_n < 24:
            kinds.append("add_vertex")
        if cur_n > 4:
            kinds.append("remove_vertex")
        if allow_invalid:
            kinds.append("invalid")
        kind = rng.choice(kinds)
        if kind == "add_edge" and cur_n >= 2:
            u, v = rng.sample(range(cur_n), 2)
            e = (min(u, v), max(u, v))
            if e in cur_edges:
                continue
            cur_edges.add(e)
            batch.append(add_edge(*e))
        elif kind == "remove_edge":
            if not cur_edges:
                continue
            e = rng.choice(sorted(cur_edges))
            cur_edges.discard(e)
            batch.append(remove_edge(*e))
        elif kind == "reweight":
            batch.append(reweight(rng.randrange(cur_n), rng.randint(1, 5)))
        elif kind == "add_vertex":
            k = rng.randint(0, min(3, cur_n))
            attach = rng.sample(range(cur_n), k)
            batch.append(add_vertex(rng.randint(1, 5), attach))
            cur_edges.update(
                (min(u, cur_n), max(u, cur_n)) for u in attach
            )
            cur_n += 1
        elif kind == "remove_vertex":
            # Deliberately biased towards high-degree nodes now and
            # then: orphaning removals are the interesting case.
            if rng.random() < 0.5 and cur_edges:
                v = rng.choice(rng.choice(sorted(cur_edges)))
            else:
                v = rng.randrange(cur_n)
            batch.append(remove_vertex(v))
            cur_edges = {
                (min(a2, b2), max(a2, b2))
                for (a, b) in cur_edges
                if a != v and b != v
                for a2, b2 in [(a - (a > v), b - (b > v))]
            }
            cur_n -= 1
        else:  # invalid: pick a rejection mode at random
            roll = rng.random()
            if roll < 0.25:
                batch.append(add_edge(0, 0))  # self-loop
            elif roll < 0.5:
                batch.append(remove_edge(cur_n + 3, cur_n + 4))  # range
            elif roll < 0.75 and cur_edges:
                e = rng.choice(sorted(cur_edges))
                batch.append(add_edge(*e))  # duplicate
            else:
                batch.append(remove_vertex(cur_n + 7))  # range
    return batch


def _assert_states_equal(topo, inputs, n, edges, ref_inputs):
    assert topo.n == n
    assert topo.edges_sorted() == sorted(edges)
    assert inputs == list(ref_inputs)
    rebuilt = PortNumberedGraph.from_edges(n, edges)
    # __eq__ compares the full port structure, not just the edge set.
    assert topo.materialise() == rebuilt
    for v in range(n):
        assert topo.degree(v) == rebuilt.degree(v)
        assert list(topo.neighbours(v)) == rebuilt.neighbours(v)
        assert topo.ports(v) == rebuilt.ports(v)


def _fuzz(seed, steps=40, allow_invalid=False):
    rng = random.Random(f"overlay-fuzz:{seed}")
    g = families.gnp_random(10, 0.3, seed=seed)
    n, edges = g.n, list(g.edges)
    ref_inputs = [rng.randint(1, 5) for _ in range(n)]
    topo = MutableTopology(n, edges)
    inputs = list(ref_inputs)
    _assert_states_equal(topo, inputs, n, edges, ref_inputs)
    rejected = 0
    for step in range(steps):
        batch = _random_batch(rng, n, set(edges), allow_invalid=allow_invalid)
        if not batch:
            continue
        try:
            ab = apply_edits(n, edges, ref_inputs, batch)
        except EditError:
            rejected += 1
            with pytest.raises(EditError):
                topo.apply_batch(batch, inputs)
            # rollback: the overlay is bit-identical to before the try
            _assert_states_equal(topo, inputs, n, edges, ref_inputs)
            continue
        ob = topo.apply_batch(batch, inputs)
        n, edges, ref_inputs = ab.n, list(ab.edges), list(ab.inputs)
        _assert_states_equal(topo, inputs, n, edges, ref_inputs)
        # node map: None is the identity shorthand
        assert ob.n == ab.n
        assert ob.touched == ab.touched
        if ob.node_map is None:
            assert ab.node_map == tuple(range(len(ab.node_map)))
        else:
            assert ob.node_map == ab.node_map
        # old_degrees covers exactly the touched survivors
        assert set(ob.old_degrees) >= set(ob.touched)
    return rejected


@pytest.mark.parametrize("seed", range(8))
def test_fuzz_valid_batches(seed):
    _fuzz(seed, steps=40, allow_invalid=False)


@pytest.mark.parametrize("seed", range(8, 14))
def test_fuzz_with_rejections(seed):
    rejected = _fuzz(seed, steps=40, allow_invalid=True)
    assert rejected > 0  # the adversarial kinds must actually fire


def test_orphaning_removal_explicit():
    """Removing a star centre orphans every edge and relabels every
    higher node — the worst case for the O(dirty) bookkeeping."""
    g = families.star_graph(5)  # centre 0, leaves 1..5
    n, edges = g.n, list(g.edges)
    topo = MutableTopology(n, edges)
    inputs = [1] * n
    ref_inputs = [1] * n
    ab = apply_edits(n, edges, ref_inputs, [remove_vertex(0)])
    ob = topo.apply_batch([remove_vertex(0)], inputs)
    assert topo.n == 5 and topo.m == 0
    assert ob.node_map == ab.node_map == (None, 0, 1, 2, 3, 4)
    assert ob.touched == ab.touched == frozenset(range(5))
    assert ob.removed == ((0, 5),)
    _assert_states_equal(topo, inputs, ab.n, list(ab.edges), list(ab.inputs))


def test_rollback_last_round_trips():
    """The session-layer escape hatch: a structurally valid batch that
    fails a *session* bound is rolled back wholesale."""
    g = families.cycle_graph(6)
    topo = MutableTopology(g.n, list(g.edges))
    inputs = [1] * 6
    before_edges = topo.edges_sorted()
    topo.apply_batch([add_edge(0, 3), reweight(2, 9)], inputs)
    topo.rollback_last(inputs)
    assert topo.edges_sorted() == before_edges
    assert inputs == [1] * 6
    _assert_states_equal(topo, inputs, 6, before_edges, [1] * 6)
    with pytest.raises(RuntimeError, match="no batch to roll back"):
        topo.rollback_last(inputs)  # one-shot: already consumed


def test_membership_churn_sequence():
    """A scripted add/remove interleaving crossing label shifts."""
    n, edges = 4, [(0, 1), (1, 2), (2, 3)]
    topo = MutableTopology(n, edges)
    inputs = [1, 2, 3, 4]
    ref_inputs = [1, 2, 3, 4]
    script = [
        [add_vertex(9, [0, 2])],
        [remove_vertex(1)],          # shifts every higher label down
        [add_edge(0, 1), remove_vertex(3)],
        [add_vertex(7, []), reweight(0, 5)],  # isolated newcomer
    ]
    for batch in script:
        ab = apply_edits(n, edges, ref_inputs, batch)
        ob = topo.apply_batch(batch, inputs)
        n, edges, ref_inputs = ab.n, list(ab.edges), list(ab.inputs)
        assert ob.touched == ab.touched
        if ob.node_map is not None:
            assert ob.node_map == ab.node_map
        _assert_states_equal(topo, inputs, n, edges, ref_inputs)
