"""Cole–Vishkin colour reduction and its two variants used by the paper.

Three related procedures live here:

1. The classical **Cole–Vishkin step** for nodes with a (pseudo-)
   parent: given own colour ``c`` and a *different* parent colour
   ``c_p``, the new colour is ``2i + bit_i(c)`` where ``i`` is the
   lowest bit position where ``c`` and ``c_p`` differ.  Any two
   adjacent (child, parent) nodes end up with different new colours.
   Iterating shrinks any initial palette of size χ to at most **6**
   colours in ``O(log* χ)`` steps (the 3-bit fixpoint).

2. The **Goldberg–Plotkin–Shannon shift-down + class elimination** for
   *rooted forests*, which turns the 6-colouring into a proper
   **3-colouring** (used by Phase II of the Section 3 algorithm, where
   the multicoloured edges are partitioned into genuine rooted
   forests).

3. The **weak colour reduction** of Section 4.5 for bounded-outdegree
   DAGs where every node's *chosen* successors share one colour: the
   CV step applies verbatim with that common colour as the
   pseudo-parent, and preserves the invariant that every node with a
   successor retains at least one differently coloured successor.  We
   stop this variant at the 6-colour fixpoint — see DESIGN.md,
   "Documented deviations" (the paper states 3; GPS shift-down does not
   transfer verbatim to the weak/DAG setting, and the subsequent
   trivial colour reduction absorbs the difference at no asymptotic
   cost).

The per-node update rules are pure functions so that the distributed
machines (:mod:`repro.core.edge_packing`,
:mod:`repro.core.fractional_packing`) and the sequential reference
implementations below share exactly the same arithmetic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro._util.logstar import ilog2_ceil

__all__ = [
    "cv_step_colour",
    "cv_pseudo_parent",
    "cv_schedule_length",
    "shift_down_root_colour",
    "eliminate_class_colour",
    "three_colour_rooted_forest",
    "weak_colour_reduction_dag",
    "is_weak_colouring",
    "is_proper_forest_colouring",
    "CV_FIXPOINT_COLOURS",
]

#: Size of the palette at the Cole–Vishkin fixpoint (values ``0..5``).
CV_FIXPOINT_COLOURS = 6


def cv_step_colour(own: int, parent: int) -> int:
    """One Cole–Vishkin step: ``2i + bit_i(own)``, ``i`` = lowest differing bit.

    Requires ``own != parent`` (guaranteed along tree edges by
    induction, and for roots by :func:`cv_pseudo_parent`).
    """
    if own == parent:
        raise ValueError(f"CV step requires differing colours, both are {own}")
    diff = own ^ parent
    i = (diff & -diff).bit_length() - 1  # lowest set bit index
    return 2 * i + ((own >> i) & 1)


def cv_pseudo_parent(own: int) -> int:
    """The fictitious parent colour used by roots: flip the lowest bit."""
    return own ^ 1


def cv_schedule_length(chi: int) -> int:
    """Number of CV steps guaranteed to reach the 6-colour fixpoint.

    Computed by iterating the palette bound: colours in ``[0, K)`` fit
    in ``L = max(1, ceil(log2 K))`` bits, and one step maps them into
    ``[0, 2L)``.  This is a deterministic function of χ only, so every
    node can follow the same schedule without communication —
    essential in an anonymous network, where termination cannot be
    detected by consensus.
    """
    if chi < 1:
        raise ValueError(f"chi must be >= 1, got {chi}")
    steps = 0
    K = max(chi, 1)
    while K > CV_FIXPOINT_COLOURS:
        K = 2 * max(1, ilog2_ceil(K) if K > 1 else 1)
        steps += 1
    return steps


def shift_down_root_colour(own: int) -> int:
    """Root rule for GPS shift-down: smallest colour in {0,1,2} != own.

    Children adopt the root's *old* colour, so the root only needs to
    differ from its own old colour; choosing from ``{0, 1, 2}`` keeps
    the palette from regrowing during repeated shift-downs.
    """
    return 0 if own != 0 else 1


def eliminate_class_colour(
    own: int, target: int, parent_colour: Optional[int], children_colour: Optional[int]
) -> int:
    """Recolouring rule for eliminating colour class ``target``.

    After a shift-down, all children of a node share one colour (the
    node's own pre-shift colour), so avoiding ``parent_colour`` and
    ``children_colour`` leaves at least one colour of ``{0, 1, 2}``
    free.
    """
    if own != target:
        return own
    banned = {parent_colour, children_colour}
    for c in (0, 1, 2):
        if c not in banned:
            return c
    raise AssertionError(
        "unreachable: {0,1,2} minus two banned colours cannot be empty"
    )


# ----------------------------------------------------------------------
# Sequential reference: rooted forests -> proper 3-colouring
# ----------------------------------------------------------------------


def three_colour_rooted_forest(
    parent: Sequence[Optional[int]],
    initial_colours: Sequence[int],
    chi: int,
) -> Tuple[List[int], int]:
    """Proper 3-colouring of a rooted forest, sequential reference.

    ``parent[v]`` is ``v``'s parent or ``None`` for roots; initial
    colours must be a proper colouring (e.g. distinct identifiers) with
    values in ``[0, chi)``.  Returns ``(colours, cv_steps)`` where
    ``colours[v] ∈ {0, 1, 2}``.

    This mirrors, step for step, what the distributed Phase II machine
    computes per forest; tests cross-check the two.
    """
    n = len(parent)
    colours = list(initial_colours)
    for v in range(n):
        p = parent[v]
        if p is not None and colours[v] == colours[p]:
            raise ValueError(
                f"initial colouring is not proper: node {v} and parent {p} "
                f"share colour {colours[v]}"
            )

    steps = cv_schedule_length(chi)
    for _ in range(steps):
        colours = [
            cv_step_colour(
                colours[v],
                colours[parent[v]] if parent[v] is not None else cv_pseudo_parent(colours[v]),
            )
            for v in range(n)
        ]

    # GPS: for each colour class in {3, 4, 5}: shift down, then eliminate.
    for target in (3, 4, 5):
        pre_shift = list(colours)
        colours = [
            pre_shift[parent[v]] if parent[v] is not None else shift_down_root_colour(pre_shift[v])
            for v in range(n)
        ]
        children_colour = pre_shift  # all children of v now wear v's old colour
        post_shift = list(colours)
        colours = [
            eliminate_class_colour(
                post_shift[v],
                target,
                post_shift[parent[v]] if parent[v] is not None else None,
                children_colour[v],
            )
            for v in range(n)
        ]
    return colours, steps


def is_proper_forest_colouring(
    parent: Sequence[Optional[int]], colours: Sequence[int]
) -> bool:
    """Every child differs from its parent."""
    return all(
        parent[v] is None or colours[v] != colours[parent[v]]
        for v in range(len(parent))
    )


# ----------------------------------------------------------------------
# Sequential reference: weak colour reduction on DAGs (Section 4.5)
# ----------------------------------------------------------------------


def weak_colour_reduction_dag(
    successors: Sequence[Sequence[int]],
    initial_colours: Sequence[int],
    chi: int,
    record_trace: bool = False,
) -> Tuple[List[int], Optional[List[List[int]]]]:
    """Weak colour reduction on an explicit DAG (sequential reference).

    ``successors[u]`` lists the successors of ``u`` in the DAG ``B``.
    The initial colouring must be *weakly proper*: every node with a
    successor has at least one successor of a different colour (true in
    the paper because colours come from the strictly decreasing
    ``p``-values of Lemma 3).

    Implements Section 4.5: at each step every node computes
    ``L(u) = {c(v) : v successor, c(v) != c(u)}`` and, if non-empty,
    treats ``ℓ(u) = min L(u)`` as its pseudo-parent colour (all chosen
    successors — the subgraph ``B'`` — share that colour).  Nodes with
    ``L(u) = ∅`` use the flipped-bit pseudo-parent.

    Returns the colours after reaching the 6-colour fixpoint, plus the
    full per-step trace when ``record_trace`` (used by the Figure 2
    experiment).
    """
    n = len(successors)
    colours = list(initial_colours)
    if not is_weak_colouring(successors, colours):
        raise ValueError("initial colouring is not a weak colouring of the DAG")
    trace = [list(colours)] if record_trace else None

    for _ in range(cv_schedule_length(chi)):
        new_colours = []
        for u in range(n):
            L = {colours[v] for v in successors[u] if colours[v] != colours[u]}
            pseudo = min(L) if L else cv_pseudo_parent(colours[u])
            new_colours.append(cv_step_colour(colours[u], pseudo))
        colours = new_colours
        if record_trace:
            trace.append(list(colours))
        # Invariant of Section 4.5: weak properness is maintained.
        if not is_weak_colouring(successors, colours):
            raise AssertionError(
                "weak colouring invariant broken — implementation bug"
            )
    return colours, trace


def is_weak_colouring(
    successors: Sequence[Sequence[int]], colours: Sequence[int]
) -> bool:
    """Every node with positive outdegree has a differing successor."""
    for u in range(len(successors)):
        if successors[u] and all(colours[v] == colours[u] for v in successors[u]):
            return False
    return True
