"""Differential suite: ``replay="incremental"`` ≡ ``replay="scratch"``.

The replay-memo subsystem (:mod:`repro._util.memo`) may only ever
change wall-clock time.  This suite pins that contract field-for-field
on both consumers:

* the Section 5 history machine
  (:class:`repro.core.broadcast_vc.BroadcastVertexCoverMachine`),
  across graph families, metering modes, arithmetic modes and seeds —
  including the incremental history metering / canonical-keying fast
  path, which only incremental-mode machines feed;
* the self-stabilising transformer
  (:class:`repro.selfstab.transformer.SelfStabilisingMachine`), across
  fault-free runs, random corruption, targeted corruption that dirties
  arbitrary pipeline levels, metering modes, both communication
  models, and seeded runs (where incremental falls back to the
  scratch path per node because a ``ctx.rng`` defeats fingerprinting).

Plus unit tests for the memo primitives themselves.
"""

from __future__ import annotations

import random

import pytest

from repro._util.memo import (
    REPLAY_INCREMENTAL,
    REPLAY_MODES,
    REPLAY_SCRATCH,
    FingerprintCache,
    GenerationalMemo,
    ReplayMemo,
    content_fingerprint,
    extension_parent,
    note_extension,
    validate_replay,
)
from repro._util.ordering import canonical_key
from repro._util.sizes import message_size_bits
from repro.core.broadcast_vc import BroadcastVertexCoverMachine, bvc_round_count
from repro.core.edge_packing import EdgePackingMachine, schedule_length
from repro.core.fractional_packing import FractionalPackingMachine
from repro.graphs import families
from repro.graphs.setcover import random_instance
from repro.graphs.weights import uniform_weights, unit_weights
from repro.selfstab.transformer import SelfStabilisingMachine, _PipelineState
from repro.simulator.faults import RandomStateCorruption
from repro.simulator.runtime import run, run_reference


def assert_same_result(a, b):
    """Every RunResult field identical — the replay contract."""
    assert a.outputs == b.outputs
    assert a.rounds == b.rounds
    assert a.all_halted == b.all_halted
    assert a.messages_sent == b.messages_sent
    assert a.message_bits == b.message_bits
    assert a.per_round_bits == b.per_round_bits
    assert a.states == b.states


# ----------------------------------------------------------------------
# Section 5 broadcast VC: incremental ≡ scratch
# ----------------------------------------------------------------------

_BVC_FAMILIES = {
    "path4": (lambda: families.path_graph(4), [1, 3, 2, 1]),
    "cycle5": (lambda: families.cycle_graph(5), unit_weights(5)),
    "star3": (lambda: families.star_graph(3), [2, 1, 1, 1]),
    "gnp5": (lambda: families.gnp_random(5, 0.45, seed=2), [2, 1, 2, 1, 2]),
}


def _bvc_pair(name, metering="bits", arithmetic="scaled", seed=None):
    make_graph, weights = _BVC_FAMILIES[name]
    g = make_graph()
    W = max(weights)
    kwargs = dict(
        inputs=list(weights),
        globals_map={"delta": g.max_degree, "W": W},
        max_rounds=bvc_round_count(g.max_degree, W),
        metering=metering,
        seed=seed,
    )
    inc = run(
        g,
        BroadcastVertexCoverMachine(arithmetic=arithmetic, replay="incremental"),
        **kwargs,
    )
    scr = run(
        g,
        BroadcastVertexCoverMachine(arithmetic=arithmetic, replay="scratch"),
        **kwargs,
    )
    return inc, scr


@pytest.mark.parametrize("name", sorted(_BVC_FAMILIES))
def test_bvc_incremental_matches_scratch(name):
    inc, scr = _bvc_pair(name)
    assert_same_result(inc, scr)
    assert inc.all_halted


@pytest.mark.parametrize("metering", ["counts", "none"])
def test_bvc_metering_modes(metering):
    inc, scr = _bvc_pair("path4", metering=metering)
    assert_same_result(inc, scr)


def test_bvc_fraction_arithmetic():
    inc, scr = _bvc_pair("cycle5", arithmetic="fraction")
    assert_same_result(inc, scr)


def test_bvc_seeded_run():
    # A seed materialises per-node RNGs; the (deterministic) machines
    # ignore them, and replay equality must be unaffected.
    inc, scr = _bvc_pair("path4", seed=7)
    assert_same_result(inc, scr)


def test_bvc_cross_engine_cross_mode():
    """Strongest cross-check: fast engine + incremental vs reference
    engine + scratch — two engines, two replay strategies, one answer."""
    make_graph, weights = _BVC_FAMILIES["cycle5"]
    g = make_graph()
    kwargs = dict(
        inputs=list(weights),
        globals_map={"delta": g.max_degree, "W": max(weights)},
        max_rounds=bvc_round_count(g.max_degree, max(weights)),
    )
    fast_inc = run(g, BroadcastVertexCoverMachine(replay="incremental"), **kwargs)
    ref_scr = run_reference(
        g, BroadcastVertexCoverMachine(replay="scratch"), **kwargs
    )
    assert fast_inc.outputs == ref_scr.outputs
    assert fast_inc.rounds == ref_scr.rounds
    assert fast_inc.messages_sent == ref_scr.messages_sent
    assert fast_inc.message_bits == ref_scr.message_bits
    assert fast_inc.per_round_bits == ref_scr.per_round_bits


def test_bvc_incremental_memo_actually_hits():
    """Guard against the incremental path silently degrading to scratch."""
    make_graph, weights = _BVC_FAMILIES["cycle5"]
    g = make_graph()
    machine = BroadcastVertexCoverMachine(replay="incremental")
    run(
        g,
        machine,
        inputs=list(weights),
        globals_map={"delta": g.max_degree, "W": max(weights)},
        max_rounds=bvc_round_count(g.max_degree, max(weights)),
    )
    assert machine._memo.hits > machine._memo.misses


# ----------------------------------------------------------------------
# Self-stabilising transformer: incremental ≡ scratch
# ----------------------------------------------------------------------


def _selfstab_pair(
    rounds,
    adversary_factory=None,
    metering="bits",
    seed=None,
    n=6,
):
    g = families.cycle_graph(n)
    w = uniform_weights(n, 3, seed=4)
    horizon = schedule_length(2, 3)
    kwargs = dict(
        inputs=list(w),
        globals_map={"delta": 2, "W": 3},
        max_rounds=rounds if rounds is not None else 2 * horizon,
        metering=metering,
        seed=seed,
    )
    results = {}
    for mode in REPLAY_MODES:
        machine = SelfStabilisingMachine(EdgePackingMachine(), horizon, replay=mode)
        adversary = adversary_factory() if adversary_factory is not None else None
        results[mode] = run(g, machine, fault_adversary=adversary, **kwargs)
    return results[REPLAY_INCREMENTAL], results[REPLAY_SCRATCH]


def test_selfstab_fault_free():
    inc, scr = _selfstab_pair(rounds=None)
    assert_same_result(inc, scr)


@pytest.mark.parametrize("seed", range(3))
@pytest.mark.parametrize("rate", [0.2, 0.6])
def test_selfstab_random_faults(seed, rate):
    inc, scr = _selfstab_pair(
        rounds=None,
        adversary_factory=lambda: RandomStateCorruption(
            until_round=8, rate=rate, seed=seed
        ),
    )
    assert_same_result(inc, scr)


def _dirty_pipeline_level(rng: random.Random, state):
    """Corrupt one arbitrary pipeline level of a transformer state:
    structurally-invalid garbage (forces the reset path), a wrong but
    plausible level copied from elsewhere in the pipeline, or None."""
    if not isinstance(state, _PipelineState):
        return state
    levels = list(state.pipeline)
    i = rng.randrange(len(levels))
    roll = rng.random()
    if roll < 0.4:
        levels[i] = ("garbage", rng.randrange(100))
    elif roll < 0.8:
        levels[i] = levels[rng.randrange(len(levels))]
    else:
        levels[i] = None
    return _PipelineState(tuple(levels))


@pytest.mark.parametrize("seed", range(4))
def test_selfstab_dirtied_arbitrary_levels(seed):
    """Fault injection aimed at single pipeline levels — exactly the
    dirtying granularity the incremental mode claims to re-do."""
    inc, scr = _selfstab_pair(
        rounds=None,
        adversary_factory=lambda: RandomStateCorruption(
            until_round=10, rate=0.5, seed=seed, corruptor=_dirty_pipeline_level
        ),
    )
    assert_same_result(inc, scr)


@pytest.mark.parametrize("metering", ["counts", "none"])
def test_selfstab_metering_modes(metering):
    inc, scr = _selfstab_pair(rounds=None, metering=metering)
    assert_same_result(inc, scr)


def test_selfstab_seeded_rng_fallback():
    """With per-node RNGs present the incremental machine falls back to
    the scratch path node by node — and must still agree."""
    inc, scr = _selfstab_pair(rounds=None, seed=11)
    assert_same_result(inc, scr)


def test_selfstab_broadcast_model_inner():
    """The broadcast-model level projection path, via a wrapped
    Section 4 machine on a bipartite set-cover layout."""
    inst = random_instance(n_subsets=3, n_elements=4, k=2, f=2, W=2, seed=5)
    g = inst.to_bipartite_graph()
    kwargs = dict(
        inputs=inst.node_inputs(),
        globals_map=inst.global_params(),
        max_rounds=12,
    )
    results = {}
    for mode in REPLAY_MODES:
        machine = SelfStabilisingMachine(
            FractionalPackingMachine(), horizon=8, replay=mode
        )
        results[mode] = run(g, machine, **kwargs)
    assert_same_result(results[REPLAY_INCREMENTAL], results[REPLAY_SCRATCH])


def test_selfstab_incremental_memo_actually_hits():
    g = families.cycle_graph(6)
    w = uniform_weights(6, 3, seed=4)
    horizon = schedule_length(2, 3)
    machine = SelfStabilisingMachine(
        EdgePackingMachine(), horizon, replay="incremental"
    )
    run(
        g,
        machine,
        inputs=list(w),
        globals_map={"delta": 2, "W": 3},
        max_rounds=3 * horizon,
    )
    assert machine._step_memo.hits > machine._step_memo.misses


# ----------------------------------------------------------------------
# The replay knob plumbing
# ----------------------------------------------------------------------


def test_with_replay_reconfigures_replay_aware_machines():
    bvc = BroadcastVertexCoverMachine(replay="incremental")
    assert bvc.with_replay("incremental") is bvc
    scr = bvc.with_replay("scratch")
    assert scr is not bvc and scr.replay == "scratch"
    assert scr.arithmetic == bvc.arithmetic

    ss = SelfStabilisingMachine(EdgePackingMachine(), horizon=4)
    assert ss.with_replay("incremental") is ss
    ss_scr = ss.with_replay("scratch")
    assert ss_scr.replay == "scratch" and ss_scr.horizon == 4
    assert ss_scr.inner is ss.inner


def test_with_replay_is_a_noop_for_plain_machines():
    m = EdgePackingMachine()
    assert m.with_replay("incremental") is m
    assert m.with_replay("scratch") is m
    with pytest.raises(ValueError):
        m.with_replay("bogus")


def test_run_replay_kwarg():
    """run(..., replay=...) reconfigures replay-aware machines without
    mutating the caller's machine, and validates the mode."""
    g = families.path_graph(4)
    w = [1, 3, 2, 1]
    machine = BroadcastVertexCoverMachine(replay="incremental")
    kwargs = dict(
        inputs=w,
        globals_map={"delta": 2, "W": 3},
        max_rounds=bvc_round_count(2, 3),
    )
    scr = run(g, machine, replay="scratch", **kwargs)
    assert machine.replay == "incremental"  # caller's machine untouched
    inc = run(g, machine, **kwargs)
    assert_same_result(inc, scr)
    with pytest.raises(ValueError):
        run(g, machine, replay="bogus", **kwargs)


def test_invalid_replay_mode_rejected_at_construction():
    with pytest.raises(ValueError):
        BroadcastVertexCoverMachine(replay="bogus")
    with pytest.raises(ValueError):
        SelfStabilisingMachine(EdgePackingMachine(), 4, replay="bogus")
    with pytest.raises(ValueError):
        validate_replay("bogus")
    assert validate_replay(REPLAY_SCRATCH) == "scratch"


# ----------------------------------------------------------------------
# Memo primitives
# ----------------------------------------------------------------------


def test_note_extension_registry():
    parent = (("a", 1), ("b", 2))
    child = parent + (("c", 3),)
    assert note_extension(parent, child) is child
    assert extension_parent(child) is parent
    # Wrong shapes are ignored, never trusted.
    note_extension(parent, parent + (("d", 4), ("e", 5)))
    assert extension_parent(parent + (("d", 4), ("e", 5))) is None


def test_extension_metering_matches_full_scan():
    """Sizes/keys derived through the extension chain must equal the
    plain full scan of a content-equal, never-registered tuple."""
    rng = random.Random(9)
    history = ()
    for i in range(40):
        msg = (f"m{i}", rng.randrange(1000), (True, None, rng.randrange(7)))
        new = history + (msg,)
        note_extension(history, new)
        history = new
        # A content-equal tuple built without registration: forces the
        # full scan on fresh objects.
        twin = tuple((a, b, (c, d, e)) for (a, b, (c, d, e)) in history)
        assert twin == history and twin is not history
        assert message_size_bits(history) == message_size_bits(twin)
        assert canonical_key(history) == canonical_key(twin)


def test_replay_memo_bounds_and_stats():
    memo = ReplayMemo(limit=4)
    assert memo.get("a") is None
    assert memo.misses == 1
    memo.put("a", 1)
    assert memo.get("a") == 1 and memo.hits == 1
    for i in range(5):
        memo.put(f"k{i}", i)  # crosses the limit: wholesale clear
    assert len(memo) <= 4
    memo.clear()
    assert len(memo) == 0


def test_generational_memo_retires_stale_buckets():
    memo = GenerationalMemo()
    memo.put(0, "x", "s0")
    memo.put(1, "y", "s1")
    assert memo.get(0, "x") == "s0"
    memo.put(5, "z", "s5")  # retires everything before generation 4
    assert memo.get(0, "x") is None
    assert memo.get(5, "z") == "s5"


def test_fingerprint_cache_identity_reuse():
    cache = FingerprintCache(limit=8)
    obj = ("payload", 1, 2)
    fp1 = cache.of(obj)
    assert cache.of(obj) is fp1  # identity hit returns the cached bytes
    equal = ("payload", 1, 2)
    assert cache.of(equal) == fp1  # equal values, equal fingerprints
    assert content_fingerprint(obj) == fp1


# ----------------------------------------------------------------------
# Adaptive fingerprinting (wall-clock only; results pinned unchanged)
# ----------------------------------------------------------------------


def test_adaptive_policy_disables_and_reprobes():
    from repro.selfstab.transformer import _AdaptiveFingerprinting

    adapt = _AdaptiveFingerprinting(probe=4, backoff=3)
    # Cheap steps (1e-5 each), expensive fingerprints (2e-3 per call),
    # plenty of hits: the saved stepping is worth less than the
    # fingerprints, so the probe window must disable them.
    for _ in range(4):
        assert adapt.use_fingerprints()
        adapt.note(fp_seconds=2e-3, step_seconds=4e-5, stepped=4, avoided=8)
    assert not adapt.use_fingerprints()
    assert not adapt.use_fingerprints()
    assert not adapt.use_fingerprints()
    # Back-off exhausted: probing resumes.
    assert adapt.use_fingerprints()
    # Steady state: whole-step hits avoid a large pipeline recompute at
    # near-zero fingerprint cost — must stay enabled.
    for _ in range(8):
        adapt.note(fp_seconds=1e-6, step_seconds=0.0, stepped=0, avoided=48)
        assert adapt.use_fingerprints()


def test_adaptive_policy_keeps_fingerprints_when_steps_dominate():
    from repro.selfstab.transformer import _AdaptiveFingerprinting

    adapt = _AdaptiveFingerprinting(probe=4, backoff=3)
    # Expensive steps: every avoided step is worth far more than the
    # fingerprints that found it.
    for _ in range(12):
        adapt.note(fp_seconds=1e-5, step_seconds=5e-3, stepped=2, avoided=6)
        assert adapt.use_fingerprints()


def test_adaptive_policy_needs_a_step_sample_first():
    from repro.selfstab.transformer import _AdaptiveFingerprinting

    adapt = _AdaptiveFingerprinting(probe=2, backoff=4)
    # All hits, no real step ever measured: no basis to disable.
    for _ in range(6):
        adapt.note(fp_seconds=1e-3, step_seconds=0.0, stepped=0, avoided=3)
        assert adapt.use_fingerprints()
    assert adapt.avg_step is None


def test_selfstab_results_identical_under_forced_adaptivity_toggling():
    """Force the policy through plain/fingerprint flips every few calls:
    the run must still equal scratch field-for-field."""
    from repro.selfstab.transformer import _AdaptiveFingerprinting

    g = families.cycle_graph(6)
    w = uniform_weights(6, 3, seed=4)
    horizon = schedule_length(2, 3)
    kwargs = dict(
        inputs=list(w),
        globals_map={"delta": 2, "W": 3},
        max_rounds=2 * horizon,
    )
    machine = SelfStabilisingMachine(
        EdgePackingMachine(), horizon, replay="incremental"
    )
    # Tiny windows + a fake cost model that always reads "unprofitable"
    # while missing, so the machine keeps flipping between paths.
    machine._adapt = _AdaptiveFingerprinting(probe=2, backoff=3)
    adversary = RandomStateCorruption(until_round=6, rate=0.4, seed=1)
    toggled = run(g, machine, fault_adversary=adversary, **kwargs)
    scratch = run(
        g,
        SelfStabilisingMachine(EdgePackingMachine(), horizon, replay="scratch"),
        fault_adversary=RandomStateCorruption(until_round=6, rate=0.4, seed=1),
        **kwargs,
    )
    assert_same_result(toggled, scratch)


def test_adaptive_fingerprinting_engages_on_unprofitable_workload():
    """A cheap wrapped machine whose levels are perpetually dirtied
    (continuous corruption injecting unique content) makes every
    fingerprint a fresh pickle that saves nothing: the policy must
    actually disable fingerprinting — and the run must still equal
    scratch field-for-field."""
    from repro.simulator.machine import PORT_NUMBERING, Machine

    class CheapUniqueStates(Machine):
        model = PORT_NUMBERING

        def __init__(self, horizon):
            self.h = horizon

        def start(self, ctx):
            return (0, ())

        def emit(self, ctx, state):
            return [state[0]] * ctx.degree

        def step(self, ctx, state, inbox):
            c, trail = state
            if c >= self.h:
                return state
            entry = tuple(m if m is not None else -1 for m in inbox) * 16
            return (c + 1, trail + (entry,))

        def halted(self, ctx, state):
            return state[0] >= self.h

        def output(self, ctx, state):
            return state[0]

    def unique_level(rng, st):
        if not isinstance(st, _PipelineState):
            return st
        levels = list(st.pipeline)
        i = rng.randrange(len(levels))
        lv = levels[i]
        if isinstance(lv, tuple) and len(lv) == 2:
            levels[i] = (lv[0], lv[1] + ((rng.getrandbits(64),) * 16,))
        return _PipelineState(tuple(levels))

    horizon = 40
    g = families.cycle_graph(12)
    kwargs = dict(max_rounds=2 * horizon, metering="none")

    def adversary():
        return RandomStateCorruption(
            until_round=10 ** 9, rate=0.6, seed=3, corruptor=unique_level
        )

    # The disable decision is a wall-clock measurement, which a loaded
    # host can perturb on any single run; the correctness assertion is
    # checked every attempt, the timing assertion gets a bounded retry.
    for _ in range(3):
        machine = SelfStabilisingMachine(
            CheapUniqueStates(horizon), horizon, replay="incremental"
        )
        inc = run(g, machine, fault_adversary=adversary(), **kwargs)
        scr = run(
            g,
            SelfStabilisingMachine(
                CheapUniqueStates(horizon), horizon, replay="scratch"
            ),
            fault_adversary=adversary(),
            **kwargs,
        )
        assert_same_result(inc, scr)
        if machine._adapt.disables > 0:
            break
    else:
        pytest.fail(
            "adaptive fingerprinting never disabled on the unprofitable "
            "workload across 3 runs"
        )
