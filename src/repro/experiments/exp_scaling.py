"""EXP-SCALE — large-n scaling of the core protocols (the first n ≥ 10⁴ runs).

The paper's bounds are *strictly local*: round counts depend on Δ and
W only, never on n, so the protocols should scale to arbitrarily large
instances with rounds flat and message volume exactly linear in n.
The small-n experiments verify the bounds; this one verifies — and
produces the figure data for — the scaling claim itself at sizes
comparable to the large-scale covering evaluations in the related
work (Koufogiannakis–Young 2011; Ben-Basat et al. 2018):

* **§3 edge packing** on the n-cycle, run directly on G;
* **§4 fractional packing** on the bipartite encoding H(G) of the
  same instance (2n nodes for a cycle) — the machine the Section 5
  simulation replays.

Both job families are picklable, so this is also the showcase workload
for ``sweep(..., backend="process")``: each (n, protocol) pair is one
independent sweep instance, and one warm process pool amortises across
the whole table.  ``benchmarks/bench_sweep_scaling.py`` times exactly
this workload serial vs thread vs process and records the speedups in
``BENCH_perf.json``.

The §5 history-rebroadcast machine is deliberately *not* swept here at
large n: its replay loop is the repo's slowest path (ROADMAP item) and
it keeps the same rounds as §4 by construction — measured in
``exp_section5``/``exp_messages`` at the sizes it can reach.

``main()`` runs the n ≥ 10⁴ parameterisation and writes the figure
data to ``benchmarks/figures/large_n_scaling.json`` (machine-readable,
for plotting).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.bounds import (
    edge_packing_rounds_exact,
    fractional_packing_rounds_exact,
)
from repro.core.edge_packing import edge_packing_job
from repro.core.fractional_packing import (
    FractionalPackingMachine,
    fp_schedule_length,
)
from repro.experiments.common import ExperimentTable
from repro.graphs import families
from repro.graphs.setcover import vc_to_setcover
from repro.graphs.weights import unit_weights
from repro.simulator.runtime import sweep

__all__ = ["run", "figure_data", "write_figure", "main", "FIGURE_PATH"]

#: Where ``main()`` drops the machine-readable figure data.
FIGURE_PATH = Path(__file__).resolve().parents[3] / "benchmarks" / "figures" / "large_n_scaling.json"


def _jobs_for(n: int) -> List[Tuple[str, Dict[str, Any]]]:
    """The two protocol jobs on the n-cycle, labelled."""
    g = families.cycle_graph(n)
    w = unit_weights(n)
    inst = vc_to_setcover(g, w)
    direct = {
        "graph": inst.to_bipartite_graph(),
        "machine": FractionalPackingMachine(),
        "inputs": inst.node_inputs(),
        "globals_map": inst.global_params(),
        "max_rounds": fp_schedule_length(inst.f, inst.k, inst.W),
        "metering": "counts",
    }
    return [
        ("§3 edge packing (G)", edge_packing_job(g, w, metering="counts")),
        ("§4 fractional packing (H(G))", direct),
    ]


def run(
    ns: Optional[List[int]] = None,
    n_workers: Optional[int] = None,
    backend: Optional[str] = None,
) -> ExperimentTable:
    """Sweep both protocols over ``ns`` and tabulate rounds/messages.

    Defaults stay small so the tier-1 suite stays fast; ``main()`` (and
    the CLI with ``--workers``/``--backend``) pushes past n = 10⁴.
    """
    ns = ns or [64, 256]
    table = ExperimentTable(
        experiment_id="EXP-SCALE",
        title="large-n scaling on cycles (Δ=2, W=1): rounds flat, messages linear",
        columns=[
            "n",
            "protocol",
            "nodes simulated",
            "rounds",
            "rounds formula",
            "messages",
            "messages / n",
        ],
    )

    labelled = [(n, label, job) for n in ns for label, job in _jobs_for(n)]
    results = sweep(
        [job for _n, _label, job in labelled],
        n_workers=n_workers,
        backend=backend,
    )

    for (n, label, job), res in zip(labelled, results):
        if not res.all_halted:
            raise RuntimeError(f"{label} did not halt at n={n}")
        formula = (
            edge_packing_rounds_exact(2, 1)
            if label.startswith("§3")
            else fractional_packing_rounds_exact(2, 2, 1)
        )
        table.add_row(
            n=n,
            protocol=label,
            **{
                "nodes simulated": job["graph"].n,
                "rounds": res.rounds,
                "rounds formula": formula,
                "messages": res.messages_sent,
                "messages / n": res.messages_sent / n,
            },
        )

    for label in ("§3", "§4"):
        rows = [r for r in table.rows if r["protocol"].startswith(label)]
        rounds = {r["rounds"] for r in rows}
        per_n = {r["messages / n"] for r in rows}
        flat = len(rounds) == 1
        linear = max(per_n) - min(per_n) < 1e-9
        table.add_note(
            f"{label}: rounds constant in n ({'HOLDS' if flat else 'FAILS'}); "
            f"messages exactly linear in n ({'HOLDS' if linear else 'FAILS'})"
        )
        assert flat and linear
    return table


def figure_data(table: ExperimentTable) -> Dict[str, Any]:
    """Reshape the table into per-protocol curves for plotting."""
    curves: Dict[str, Dict[str, List[Any]]] = {}
    for row in table.rows:
        curve = curves.setdefault(
            row["protocol"], {"n": [], "rounds": [], "messages": []}
        )
        curve["n"].append(row["n"])
        curve["rounds"].append(row["rounds"])
        curve["messages"].append(row["messages"])
    return {
        "figure": "large-n scaling (cycles, Δ=2, W=1)",
        "x_axis": "n",
        "claims": list(table.notes),
        "curves": curves,
    }


def write_figure(table: ExperimentTable, path: Optional[Path] = None) -> Path:
    path = path or FIGURE_PATH
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(figure_data(table), indent=2) + "\n")
    return path


def main() -> None:
    table = run(ns=[1_000, 4_000, 10_000, 16_384], n_workers=4, backend="process")
    print(table.render())
    print(f"figure data -> {write_figure(table)}")


if __name__ == "__main__":
    main()
