"""Tests for the edge-colouring-based packing baseline (Section 2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.analysis.verify import check_edge_packing, check_vertex_cover
from repro.baselines.edge_colouring import (
    edge_packing_from_colouring,
    greedy_edge_colouring,
    is_proper_edge_colouring,
)
from repro.baselines.exact import exact_min_vertex_cover
from repro.graphs import families
from repro.graphs.weights import uniform_weights, unit_weights
from tests.conftest import gnp_graphs, small_graph_suite

SMALL = [(n, g) for n, g in small_graph_suite() if g.n <= 12]


class TestGreedyEdgeColouring:
    @pytest.mark.parametrize("name,graph", SMALL, ids=[n for n, _ in SMALL])
    def test_proper_and_bounded(self, name, graph):
        colouring = greedy_edge_colouring(graph)
        assert is_proper_edge_colouring(graph, colouring)
        if graph.m:
            assert max(colouring.values()) + 1 <= max(1, 2 * graph.max_degree - 1)

    @given(gnp_graphs(max_n=12))
    @settings(max_examples=30, deadline=None)
    def test_property(self, g):
        colouring = greedy_edge_colouring(g)
        assert is_proper_edge_colouring(g, colouring)
        assert set(colouring) == set(range(g.m))

    def test_detects_improper(self):
        g = families.path_graph(3)
        assert not is_proper_edge_colouring(g, {0: 0, 1: 0})


class TestEdgeColouringPacking:
    @pytest.mark.parametrize("name,graph", SMALL, ids=[n for n, _ in SMALL])
    def test_maximal_packing_and_cover(self, name, graph):
        w = uniform_weights(graph.n, 7, seed=5)
        res = edge_packing_from_colouring(graph, w)
        check_edge_packing(graph, w, res.y).require()
        ok, _ = check_vertex_cover(graph, res.saturated)
        assert ok

    def test_rounds_equal_colour_count(self):
        g = families.grid_2d(3, 3)
        res = edge_packing_from_colouring(g, unit_weights(9))
        assert res.rounds == res.n_colours
        assert res.n_colours <= 2 * g.max_degree - 1

    def test_two_approximation(self):
        for name, g in SMALL:
            if g.m == 0:
                continue
            w = uniform_weights(g.n, 6, seed=2)
            res = edge_packing_from_colouring(g, w)
            opt, _ = exact_min_vertex_cover(g, w)
            assert res.cover_weight() <= 2 * opt, name

    def test_custom_colouring_order_changes_packing_not_validity(self):
        g = families.path_graph(4)
        w = [2, 3, 3, 2]
        a = edge_packing_from_colouring(g, w, {0: 0, 1: 1, 2: 0})
        b = edge_packing_from_colouring(g, w, {0: 1, 1: 0, 2: 1})
        for res in (a, b):
            check_edge_packing(g, w, res.y).require()
        # different class orders may produce different packings
        assert a.is_cover() and b.is_cover()

    def test_improper_colouring_rejected(self):
        g = families.path_graph(3)
        with pytest.raises(ValueError, match="not proper"):
            edge_packing_from_colouring(g, [1, 1, 1], {0: 0, 1: 0})

    def test_empty_graph(self):
        g = families.empty_graph(3)
        res = edge_packing_from_colouring(g, [1, 1, 1])
        assert res.saturated == frozenset()

    def test_contrast_with_paper_algorithm(self):
        """Same guarantee, different assumptions: the paper's algorithm
        needs no colouring input (anonymous!), this one does — but both
        produce maximal packings."""
        from repro.core.edge_packing import maximal_edge_packing

        g = families.petersen_graph()
        w = uniform_weights(10, 8, seed=9)
        paper = maximal_edge_packing(g, w)
        coloured = edge_packing_from_colouring(g, w)
        for res_y in (paper.y, coloured.y):
            check_edge_packing(g, w, res_y).require()
