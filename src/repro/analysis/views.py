"""View-equivalence refinement: what anonymous algorithms *can* see.

A deterministic anonymous algorithm running for ``T`` rounds computes,
at each node, a function of the node's radius-``T`` *view*.  Two nodes
with identical views must produce identical outputs — the fundamental
indistinguishability fact behind every lower bound in the paper
(Section 6) and the symmetry discussion (Section 7).

Views are infinite trees, but view *equivalence at radius T* is
computable by colour refinement (a 1-WL-style partition refinement):

* **Broadcast model**: ``class_0(v) = (deg v, input v)`` and
  ``class_{t+1}(v) = (class_t(v), multiset of class_t(u) over
  neighbours u)``.  This is exactly the information a broadcast
  algorithm can accumulate in ``t+1`` rounds.
* **Port-numbering model**: ``class_{t+1}(v) = (class_t(v), tuple over
  ports p of (class_t(u_p), reverse port q_p))`` — messages are
  tagged with the sending and receiving port.

The property tests check that every machine in this library respects
view equivalence: nodes in the same class after ``T`` refinements
produce the same output after ``T`` rounds.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.graphs.topology import PortNumberedGraph

__all__ = ["broadcast_view_classes", "port_view_classes", "refine_until_stable"]


def _canonicalise(
    signatures: List[Hashable], table: Dict[Hashable, int]
) -> List[int]:
    out = []
    for sig in signatures:
        if sig not in table:
            table[sig] = len(table)
        out.append(table[sig])
    return out


def broadcast_view_classes(
    graph: PortNumberedGraph,
    inputs: Optional[Sequence[Any]] = None,
    rounds: int = 0,
) -> List[int]:
    """Equivalence classes of radius-``rounds`` broadcast views.

    Returns small integer class ids; equal ids mean *no deterministic
    broadcast algorithm running for that many rounds can distinguish
    the two nodes*.
    """
    table: Dict[Hashable, int] = {}
    base = [
        (graph.degree(v), repr(None if inputs is None else inputs[v]))
        for v in graph.nodes()
    ]
    classes = _canonicalise(base, table)
    for _ in range(rounds):
        signatures: List[Hashable] = [
            (
                classes[v],
                tuple(sorted(classes[u] for u in graph.neighbours(v))),
            )
            for v in graph.nodes()
        ]
        classes = _canonicalise(signatures, table)
    return classes


def port_view_classes(
    graph: PortNumberedGraph,
    inputs: Optional[Sequence[Any]] = None,
    rounds: int = 0,
) -> List[int]:
    """Equivalence classes of radius-``rounds`` port-numbered views."""
    table: Dict[Hashable, int] = {}
    base = [
        (graph.degree(v), repr(None if inputs is None else inputs[v]))
        for v in graph.nodes()
    ]
    classes = _canonicalise(base, table)
    for _ in range(rounds):
        signatures: List[Hashable] = []
        for v in graph.nodes():
            ports = tuple(
                (classes[u], q) for (u, q) in graph.ports(v)
            )
            signatures.append((classes[v], ports))
        classes = _canonicalise(signatures, table)
    return classes


def refine_until_stable(
    graph: PortNumberedGraph,
    inputs: Optional[Sequence[Any]] = None,
    model: str = "broadcast",
    max_rounds: Optional[int] = None,
) -> Tuple[List[int], int]:
    """Refine until the partition stops changing; return (classes, depth).

    The partition stabilises after at most ``n`` refinements; the
    stable partition equals view equivalence at *every* larger radius.
    """
    fn = broadcast_view_classes if model == "broadcast" else port_view_classes
    limit = graph.n + 1 if max_rounds is None else max_rounds
    prev = fn(graph, inputs, 0)
    for t in range(1, limit + 1):
        cur = fn(graph, inputs, t)
        if _partition_of(cur) == _partition_of(prev):
            return cur, t - 1
        prev = cur
    return prev, limit


def _partition_of(classes: Sequence[int]) -> frozenset:
    groups: Dict[int, List[int]] = {}
    for v, c in enumerate(classes):
        groups.setdefault(c, []).append(v)
    return frozenset(frozenset(g) for g in groups.values())
