"""EXP-S7 — Section 7 symmetry experiments as benchmarks."""

from __future__ import annotations

from fractions import Fraction

from conftest import once
from repro.core.vertex_cover import vertex_cover_broadcast
from repro.graphs import families
from repro.graphs.weights import unit_weights


def test_s7_frucht_forced_packing(benchmark):
    """The paper's Section 7 showcase: y(e) = 1/3 on the Frucht graph."""
    g = families.frucht_graph()
    res = once(benchmark, vertex_cover_broadcast, g, unit_weights(12))
    for v in g.nodes():
        for (y, sat) in res.run.outputs[v]["incident"]:
            assert y == Fraction(1, 3)
            assert sat


def test_s7_symmetry_harness_fast(benchmark):
    from repro.experiments.exp_symmetry import run

    table = once(benchmark, run, False)  # skip the slow Δ=3 graphs
    assert all(table.column("broadcast auto-invariant"))


def test_s7_automorphism_computation(benchmark):
    from repro.analysis.symmetry import automorphisms

    g = families.petersen_graph()
    autos = once(benchmark, automorphisms, g)
    assert len(autos) == 120  # Aut(Petersen) = S5
