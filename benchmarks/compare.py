#!/usr/bin/env python
"""Regression guard for the perf benchmark baseline.

``BENCH_perf.json`` pins the expected timings of the hot paths
exercised by ``bench_perf.py`` (plus, under ``"seed"``, the timings the
pristine seed tree produced, so headline speedups stay honest).  CI —
or anyone touching the simulator — regenerates fresh numbers and checks
them against the baseline:

    PYTHONPATH=src python -m pytest benchmarks/bench_perf.py \
        --benchmark-only --benchmark-json=/tmp/bench.json -q
    python benchmarks/compare.py check /tmp/bench.json

``check`` exits non-zero if any baselined benchmark got more than 25%
slower (override with ``--threshold``), or vanished from the run.
After an intentional perf change, refresh the baseline with

    python benchmarks/compare.py update /tmp/bench.json

which rewrites ``BENCH_perf.json`` in place, preserving the recorded
seed timings and recomputing the headline speedups.

Auxiliary sections (``sweep_scaling`` from
``bench_sweep_scaling.py``; ``bvc_replay``/``selfstab`` from
``bench_replay.py``; ``dynamic``/``dynamic_snapshot`` from
``bench_dynamic.py``; ``columnar`` from ``bench_columnar.py``;
``serving`` from ``bench_serving.py``; ``obs`` from
``bench_obs.py``) are
host- or configuration-comparisons, not
hot-path history: ``check`` never
gates on them and a baseline without them still compares cleanly
(missing section = skip, not fail); ``update`` preserves whatever of
them is present.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).with_name("BENCH_perf.json")
DEFAULT_THRESHOLD = 1.25

# Sections recorded by the standalone harnesses; informational only.
# check skips them whether present or missing, update preserves them.
AUX_SECTIONS = (
    "sweep_scaling", "bvc_replay", "selfstab", "dynamic",
    "dynamic_snapshot", "columnar", "shards", "serving", "obs",
)

# (numerator benchmark or seed entry, denominator benchmark) pairs the
# baseline reports as headline speedups.
HEADLINES = {
    "edge_packing_n128_speedup_metering_on": (
        ("seed", "test_perf_edge_packing_n128"),
        ("benchmarks", "test_perf_edge_packing_n128"),
    ),
    "edge_packing_n128_speedup_metering_off": (
        ("seed", "test_perf_edge_packing_n128"),
        ("benchmarks", "test_perf_edge_packing_n128_nometer"),
    ),
    "fast_engine_vs_reference_engine": (
        ("benchmarks", "test_perf_reference_engine_n128"),
        ("benchmarks", "test_perf_fast_engine_n128"),
    ),
    "scaled_vs_fraction_arithmetic": (
        ("benchmarks", "test_perf_edge_packing_n128_fraction_mode"),
        ("benchmarks", "test_perf_edge_packing_n128_nometer"),
    ),
    "edge_packing_n128_vs_pr1_metering_off": (
        ("pr1", "test_perf_edge_packing_n128_nometer"),
        ("benchmarks", "test_perf_edge_packing_n128_nometer"),
    ),
}


def load_run(path: Path) -> dict:
    """Extract {name: {"min": s, "mean": s}} from pytest-benchmark JSON."""
    data = json.loads(path.read_text())
    out = {}
    for bench in data["benchmarks"]:
        out[bench["name"]] = {
            "min": bench["stats"]["min"],
            "mean": bench["stats"]["mean"],
        }
    return out


def compute_headlines(baseline: dict) -> dict:
    headlines = {}
    for key, ((num_sec, num_name), (den_sec, den_name)) in HEADLINES.items():
        num = baseline.get(num_sec, {}).get(num_name, {}).get("min")
        den = baseline.get(den_sec, {}).get(den_name, {}).get("min")
        if num and den:
            headlines[key] = round(num / den, 2)
    return headlines


def cmd_check(current: dict, baseline: dict, threshold: float) -> int:
    failures = []
    for section in AUX_SECTIONS:
        state = "present" if section in baseline else "absent"
        print(f"skip {section}: auxiliary section ({state}); not a gate")
    for name, base in baseline.get("benchmarks", {}).items():
        cur = current.get(name)
        if cur is None:
            failures.append(f"{name}: missing from this run")
            continue
        ratio = cur["min"] / base["min"]
        status = "FAIL" if ratio > threshold else "ok"
        print(
            f"{status:4s} {name}: {cur['min'] * 1e3:8.2f} ms "
            f"vs baseline {base['min'] * 1e3:8.2f} ms ({ratio:.2f}x)"
        )
        if ratio > threshold:
            failures.append(
                f"{name}: {ratio:.2f}x slower than baseline "
                f"(threshold {threshold:.2f}x)"
            )
    if failures:
        print("\nregressions:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nall hot paths within threshold")
    return 0


def cmd_update(current: dict, baseline: dict, baseline_path: Path) -> int:
    baseline["benchmarks"] = current
    baseline["headline"] = compute_headlines(baseline)
    baseline_path.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    print(f"wrote {baseline_path}")
    for key, value in baseline["headline"].items():
        print(f"  {key}: {value}x")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("command", choices=["check", "update"])
    parser.add_argument("current", type=Path,
                        help="fresh pytest-benchmark JSON output")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD)
    args = parser.parse_args(argv)

    current = load_run(args.current)
    baseline = (
        json.loads(args.baseline.read_text()) if args.baseline.exists() else {}
    )
    if args.command == "check":
        if not baseline.get("benchmarks"):
            print(f"no baseline at {args.baseline}; run 'update' first",
                  file=sys.stderr)
            return 2
        return cmd_check(current, baseline, args.threshold)
    return cmd_update(current, baseline, args.baseline)


if __name__ == "__main__":
    raise SystemExit(main())
