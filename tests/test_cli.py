"""Tests for the library CLI (repro.cli)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestVcCommand:
    def test_default_run(self, capsys):
        assert main(["vc", "--family", "cycle", "--n", "8"]) == 0
        out = capsys.readouterr().out
        assert "vertex-cover" in out
        assert "is_cover" in out

    def test_json_output_parses(self, capsys):
        assert main(["vc", "--family", "petersen", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["problem"] == "vertex-cover"
        assert payload["is_cover"] is True
        assert payload["n"] == 10

    def test_exact_flag(self, capsys):
        assert main(["vc", "--family", "path", "--n", "6", "--exact", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cover_weight"] <= 2 * payload["optimum"]

    def test_weighted_run(self, capsys):
        assert main(["vc", "--family", "gnp", "--n", "10", "--W", "8", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["is_cover"] is True

    def test_broadcast_algorithm(self, capsys):
        assert main(["vc", "--family", "cycle", "--n", "5",
                     "--algorithm", "broadcast", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "broadcast"
        assert payload["is_cover"] is True

    def test_broadcast_replay_scratch_matches_incremental(self, capsys):
        argv = ["vc", "--family", "cycle", "--n", "5",
                "--algorithm", "broadcast", "--json"]
        assert main(argv + ["--replay", "scratch"]) == 0
        scratch = json.loads(capsys.readouterr().out)
        assert main(argv + ["--replay", "incremental"]) == 0
        incremental = json.loads(capsys.readouterr().out)
        assert scratch == incremental

    def test_unknown_family(self):
        with pytest.raises(SystemExit):
            main(["vc", "--family", "nope"])


class TestVcFaultFlags:
    @pytest.mark.parametrize(
        "kind", ["state", "loss", "duplication", "corruption", "crash"]
    )
    def test_every_fault_kind_recovers(self, kind, capsys):
        assert main(
            ["vc", "--family", "cycle", "--n", "8", "--W", "3",
             "--fault", kind, "--fault-rate", "0.3",
             "--fault-rounds", "6", "--fault-seed", "2", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["fault"] == kind
        assert payload["fault_events"] > 0
        assert payload["recovered_within_T"] is True
        assert payload["cover"]  # readout present once recovered

    def test_fault_schedule_is_seed_deterministic(self, capsys):
        argv = ["vc", "--family", "cycle", "--n", "8", "--fault", "loss",
                "--fault-seed", "5", "--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second
        assert main(argv[:-2] + ["7", "--json"]) == 0
        other_seed = json.loads(capsys.readouterr().out)
        assert other_seed["fault_events"] != first["fault_events"] or (
            other_seed["recovered_within_T"] and first["recovered_within_T"]
        )

    def test_fault_requires_port_algorithm(self):
        with pytest.raises(SystemExit, match="port"):
            main(["vc", "--family", "cycle", "--n", "5",
                  "--algorithm", "broadcast", "--fault", "loss"])


class TestScCommand:
    def test_default_run(self, capsys):
        assert main(["sc", "--subsets", "5", "--elements", "8", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["problem"] == "set-cover"
        assert payload["is_cover"] is True

    def test_exact_ratio_within_f(self, capsys):
        assert main(
            ["sc", "--subsets", "5", "--elements", "8", "--k", "3", "--f", "2",
             "--W", "4", "--exact", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cover_weight"] <= payload["f"] * payload["optimum"]


class TestFamiliesCommand:
    def test_lists_families(self, capsys):
        assert main(["families"]) == 0
        out = capsys.readouterr().out
        assert "petersen" in out and "cycle" in out


class TestSweepCommand:
    def test_json_runs_per_size_and_seed(self, capsys):
        assert main(
            ["sweep", "--family", "cycle", "--sizes", "8,12", "--seeds", "2",
             "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["problem"] == "vertex-cover"
        assert len(payload["runs"]) == 4
        assert {(r["size"], r["seed"]) for r in payload["runs"]} == {
            (8, 0), (8, 1), (12, 0), (12, 1)
        }
        assert all(r["rounds"] == 27 for r in payload["runs"])

    def test_process_backend_matches_serial(self, capsys):
        argv = ["sweep", "--family", "cycle", "--sizes", "8,10,12", "--json"]
        assert main(argv) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(argv + ["--workers", "2", "--backend", "process"]) == 0
        pooled = json.loads(capsys.readouterr().out)
        for a, b in zip(serial["runs"], pooled["runs"]):
            assert a == b
        assert pooled["backend"] == "process"

    def test_broadcast_algorithm_and_metering(self, capsys):
        assert main(
            ["sweep", "--family", "path", "--sizes", "6", "--algorithm",
             "broadcast", "--metering", "bits", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"][0]["message_bits"] > 0
        assert payload["replay"] == "incremental"

    def test_broadcast_replay_modes_agree(self, capsys):
        argv = ["sweep", "--family", "path", "--sizes", "6", "--algorithm",
                "broadcast", "--metering", "bits", "--json"]
        assert main(argv + ["--replay", "scratch"]) == 0
        scratch = json.loads(capsys.readouterr().out)
        assert main(argv + ["--replay", "incremental"]) == 0
        incremental = json.loads(capsys.readouterr().out)
        assert scratch["runs"] == incremental["runs"]
        assert scratch["replay"] == "scratch"

    def test_text_output(self, capsys):
        assert main(["sweep", "--family", "cycle", "--sizes", "8"]) == 0
        out = capsys.readouterr().out
        assert "rounds" in out and "cover_weight" in out

    def test_bad_sizes_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--sizes", "eight"])


class TestDynamicCommand:
    def test_incremental_with_verify(self, capsys):
        assert main(
            ["dynamic", "--family", "cycle", "--n", "64", "--batches", "3",
             "--verify", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["problem"] == "dynamic-vertex-cover"
        assert payload["mode"] == "incremental"
        assert payload["verified_against_scratch"] is True
        assert payload["batches"]
        for rec in payload["batches"]:
            assert rec["is_cover"] is True
            assert 0.0 < rec["repaired_fraction"] <= 1.0

    def test_modes_produce_identical_covers(self, capsys):
        argv = ["dynamic", "--family", "grid", "--n", "16", "--batches", "3",
                "--stream", "window", "--seed", "2", "--json"]
        assert main(argv + ["--mode", "incremental"]) == 0
        inc = json.loads(capsys.readouterr().out)
        assert main(argv + ["--mode", "scratch"]) == 0
        scr = json.loads(capsys.readouterr().out)
        drop = {"wall_ms", "repaired_nodes", "repaired_fraction"}
        for a, b in zip(inc["batches"], scr["batches"]):
            assert {k: v for k, v in a.items() if k not in drop} == {
                k: v for k, v in b.items() if k not in drop
            }
        assert all(r["repaired_fraction"] == 1.0 for r in scr["batches"])

    def test_hub_stream_and_text_output(self, capsys):
        assert main(
            ["dynamic", "--family", "star", "--n", "8", "--batches", "2",
             "--stream", "hubs"]
        ) == 0
        out = capsys.readouterr().out
        assert "repaired_fraction" in out and "dynamic-vertex-cover" in out

    def test_bad_batches_rejected(self):
        with pytest.raises(SystemExit):
            main(["dynamic", "--batches", "0"])


class TestDynamicSnapshotFlags:
    def test_snapshot_then_restore_continues_the_session(self, tmp_path, capsys):
        path = str(tmp_path / "session.bin")
        assert main(
            ["dynamic", "--family", "cycle", "--n", "32", "--batches", "3",
             "--snapshot", path, "--json"]
        ) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["snapshot_path"] == path
        assert first["snapshot_bytes"] > 0
        assert first["batches_applied_total"] == 3

        assert main(
            ["dynamic", "--restore", path, "--batches", "2", "--seed", "9",
             "--json"]
        ) == 0
        resumed = json.loads(capsys.readouterr().out)
        assert resumed["restored_from"] == path
        assert resumed["mode"] == first["mode"]  # pinned by the snapshot
        assert resumed["batches_applied_total"] == 5
        # batch numbering continues where the snapshot left off
        assert [r["batch"] for r in resumed["batches"]] == [4, 5]
        for rec in resumed["batches"]:
            assert rec["is_cover"] is True

    def test_restore_with_verify_rejected(self, tmp_path):
        path = str(tmp_path / "session.bin")
        assert main(
            ["dynamic", "--family", "cycle", "--n", "16", "--batches", "1",
             "--snapshot", path, "--json"]
        ) == 0
        with pytest.raises(SystemExit, match="--verify"):
            main(["dynamic", "--restore", path, "--verify"])

    def test_restore_garbage_rejected(self, tmp_path):
        path = tmp_path / "garbage.bin"
        path.write_bytes(b"not a snapshot")
        with pytest.raises(SystemExit, match="restore rejected"):
            main(["dynamic", "--restore", str(path)])

    def test_restore_missing_file_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            main(["dynamic", "--restore", str(tmp_path / "absent.bin")])


class TestVerifyDiagnostics:
    def test_diff_names_first_differing_node(self):
        from repro.cli import _verify_diff
        from repro.simulator.runtime import RunResult

        a = RunResult(outputs=[0, 1, 0], rounds=3, all_halted=True,
                      messages_sent=6, message_bits=None,
                      per_round_bits=None, states=None)
        b = RunResult(outputs=[0, 1, 1], rounds=3, all_halted=True,
                      messages_sent=7, message_bits=None,
                      per_round_bits=None, states=None)
        assert "node 2" in _verify_diff(a, b, "outputs")
        assert "6 != 7" in _verify_diff(a, b, "messages_sent")
