"""Command-line entry point: run experiments and print their tables.

Usage::

    python -m repro.experiments.cli --list
    python -m repro.experiments.cli table1 figure3
    python -m repro.experiments.cli --all
    python -m repro.experiments.cli --all --markdown > results.md
    python -m repro.experiments.cli scaling --workers 4 --backend process
    python -m repro.experiments.cli section5 messages --json > results.json

``--workers``/``--backend`` are forwarded to experiments whose ``run``
accepts them (the batched-sweep ones: section5, messages, scaling, ...)
— ``--backend process`` executes sweep instances on a warm process
pool for true multi-core parallelism, with results bit-identical to
the serial run.  ``--replay {incremental,scratch}`` is forwarded the
same way (section5, selfstab, messages) and selects the replay
strategy of the history-simulation / self-stabilising machines —
results are bit-identical, only wall-clock changes.  ``--json`` emits
every table as a machine-readable record (one JSON array over all
experiments run) for plotting.
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import json
import sys
from typing import List, Optional

from repro import obs
from repro.experiments import EXPERIMENT_MODULES
from repro.experiments.common import ExperimentTable
from repro._util.memo import REPLAY_MODES
from repro._util.parallel import BACKENDS
from repro.simulator.faults import FAULT_KINDS

__all__ = ["main"]


def _run_one(
    name: str,
    n_workers: Optional[int],
    backend: Optional[str],
    replay: Optional[str] = None,
    fault_kinds: Optional[List[str]] = None,
) -> List[ExperimentTable]:
    module = importlib.import_module(EXPERIMENT_MODULES[name])
    kwargs = {}
    accepted = inspect.signature(module.run).parameters
    if n_workers is not None and "n_workers" in accepted:
        kwargs["n_workers"] = n_workers
    if backend is not None and "backend" in accepted:
        kwargs["backend"] = backend
    if replay is not None and "replay" in accepted:
        kwargs["replay"] = replay
    if fault_kinds is not None and "fault_kinds" in accepted:
        kwargs["fault_kinds"] = fault_kinds
    result = module.run(**kwargs)
    return result if isinstance(result, list) else [result]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of Åstrand & Suomela (SPAA 2010).",
    )
    parser.add_argument("experiments", nargs="*", help="experiment names")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--list", action="store_true", help="list experiment names")
    parser.add_argument(
        "--markdown", action="store_true", help="emit markdown instead of ASCII"
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit one JSON array of table records (machine-readable)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="pool size for experiments that sweep (omitted = serial)",
    )
    parser.add_argument(
        "--backend", choices=list(BACKENDS), default=None,
        help="pool type for --workers (default: thread)",
    )
    parser.add_argument(
        "--replay", choices=list(REPLAY_MODES), default=None,
        help="replay strategy for history-simulation / self-stabilising "
        "experiments (results identical; default: incremental)",
    )
    parser.add_argument(
        "--fault-kinds", default=None, metavar="KIND[,KIND...]",
        help="comma-separated fault kinds for the self-stabilisation "
        f"experiment (subset of {FAULT_KINDS[1:]}; default: all)",
    )
    return parser


def main(argv: List[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for name, module in EXPERIMENT_MODULES.items():
            print(f"{name:10s} {module}")
        return 0

    names = list(EXPERIMENT_MODULES) if args.all else args.experiments
    if not names:
        parser.print_help()
        return 2
    unknown = [n for n in names if n not in EXPERIMENT_MODULES]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        print(f"known: {sorted(EXPERIMENT_MODULES)}", file=sys.stderr)
        return 2

    fault_kinds = None
    if args.fault_kinds is not None:
        fault_kinds = [k for k in args.fault_kinds.split(",") if k.strip()]
        bad = [k for k in fault_kinds if k not in FAULT_KINDS or k == "none"]
        if bad:
            print(
                f"unknown fault kinds: {bad}; expected a subset of "
                f"{FAULT_KINDS[1:]}",
                file=sys.stderr,
            )
            return 2

    records = []
    for name in names:
        started = obs.clock()
        tables = _run_one(
            name, args.workers, args.backend, args.replay, fault_kinds
        )
        elapsed = obs.clock() - started
        if args.json:
            for table in tables:
                record = table.to_dict()
                record["experiment"] = name
                record["wall_seconds"] = elapsed
                records.append(record)
            continue
        for table in tables:
            print(table.to_markdown() if args.markdown else table.render())
            print()
        print(f"({name} completed in {elapsed:.1f}s)\n")
    if args.json:
        print(json.dumps(records, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
