"""Internal utilities shared across the library.

This package deliberately has no dependencies on the rest of
:mod:`repro` so that every other subpackage can use it freely.
"""

from repro._util.logstar import (
    ilog2_ceil,
    ilog2_floor,
    iterated_log_sequence,
    log_star,
)
from repro._util.ordering import canonical_key, canonical_sorted
from repro._util.rationals import (
    ScaledInt,
    as_fraction,
    factorial,
    is_multiple_of,
    lcm_denominator,
)
from repro._util.sizes import message_size_bits

__all__ = [
    "ScaledInt",
    "as_fraction",
    "canonical_key",
    "canonical_sorted",
    "factorial",
    "ilog2_ceil",
    "ilog2_floor",
    "is_multiple_of",
    "iterated_log_sequence",
    "lcm_denominator",
    "log_star",
    "message_size_bits",
]
