"""EXP-TH1 — Theorem 1 kernels: O(Δ + log* W) maximal edge packing.

Parametrised timings across the three axes of the bound, asserting the
shape claims: rounds equal the closed form, flat in n, linear in Δ,
log*-flat in W.
"""

from __future__ import annotations

import pytest

from conftest import once
from repro.analysis.bounds import edge_packing_rounds_exact
from repro.analysis.verify import check_edge_packing
from repro.core.edge_packing import maximal_edge_packing
from repro.graphs import families
from repro.graphs.weights import unit_weights


@pytest.mark.parametrize("n", [16, 64, 256])
def test_th1a_rounds_flat_in_n(benchmark, n):
    g = families.random_regular(3, n, seed=1)
    res = once(benchmark, maximal_edge_packing, g, unit_weights(n))
    assert res.rounds == edge_packing_rounds_exact(3, 1)  # n-independent
    check_edge_packing(g, unit_weights(n), res.y).require()


@pytest.mark.parametrize("delta", [2, 4, 8])
def test_th1b_rounds_linear_in_delta(benchmark, delta):
    g = families.complete_graph(delta + 1)
    res = once(benchmark, maximal_edge_packing, g, unit_weights(delta + 1))
    assert res.rounds == edge_packing_rounds_exact(delta, 1)
    assert res.rounds <= 8 * delta + 20


@pytest.mark.parametrize("exponent", [0, 16, 256])
def test_th1c_rounds_logstar_in_w(benchmark, exponent):
    W = 2**exponent
    n = 12
    g = families.cycle_graph(n)
    weights = [W if v == 0 else 1 for v in range(n)]
    res = once(benchmark, maximal_edge_packing, g, weights, None, W)
    assert res.rounds == edge_packing_rounds_exact(2, W)
    # the whole W range costs at most a few extra rounds
    assert res.rounds - edge_packing_rounds_exact(2, 1) <= 8


def test_th1_sweep_harness(benchmark):
    from repro.experiments.exp_theorem1 import run_n_sweep

    table = once(benchmark, run_n_sweep, [8, 16, 32])
    assert len(set(table.column("rounds measured"))) == 1
