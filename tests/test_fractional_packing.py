"""Tests for the Section 4 fractional packing machine, incl. Figure 1."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings, HealthCheck

from repro.analysis.bounds import (
    fractional_packing_paper_bound,
    fractional_packing_rounds_exact,
)
from repro.analysis.verify import check_fractional_packing, check_set_cover
from repro.baselines.exact import exact_min_set_cover
from repro.core.fractional_packing import (
    build_fp_schedule,
    fp_out_degree_bound,
    fp_schedule_length,
    maximal_fractional_packing,
)
from repro.core.set_cover import set_cover_f_approx
from repro.graphs.setcover import (
    partition_instance,
    random_instance,
    symmetric_kpp_instance,
    vc_to_setcover,
)
from repro.graphs import families
from tests.conftest import setcover_instances


def figure1_instance():
    """The reconstructed Figure 1 instance (see DESIGN.md).

    Subsets (0-based elements): s0={u0,u1} w4, s1={u1,u2,u3} w9,
    s2={u3,u4} w8, s3={u3,u4,u5} w12.  Matches every legible value in
    the figure: x_i(s) = (2,3,4,4), p(u) = (2,2,3,3,4,4), first-phase
    saturation of exactly {u0,u1} (via s0), and B-outdegrees 0,0,+,+
    for the surviving elements.
    """
    return partition_instance(
        groups=[[0, 1], [1, 2, 3], [3, 4], [3, 4, 5]],
        weights=[4, 9, 8, 12],
        n_elements=6,
    )


def _check_full(instance):
    res = maximal_fractional_packing(instance)
    check_fractional_packing(instance, res.y).require()
    ok, uncovered = check_set_cover(instance, res.saturated_subsets)
    assert ok, f"saturated subsets do not cover: {uncovered}"
    assert res.cover_weight() <= instance.f * res.packing_value()
    return res


class TestScheduleAndBounds:
    def test_out_degree_bound(self):
        assert fp_out_degree_bound(2, 3) == 4
        assert fp_out_degree_bound(1, 1) == 0

    def test_schedule_rounds_formula_shape(self):
        # (D+1) iterations x [5(D+1) sat + 2 sync + 2 T_wcv + 10(D+1) tr]
        for (f, k, W) in [(1, 1, 1), (2, 2, 1), (2, 3, 4), (3, 3, 2)]:
            sched = build_fp_schedule(f, k, W)
            D = fp_out_degree_bound(f, k)
            kinds = [t[0] for t in sched]
            assert kinds.count("sat_y") == (D + 1) ** 2
            assert kinds.count("sync_y") == D + 1
            assert kinds.count("tr_elem") == 5 * (D + 1) ** 2
            assert len(sched) == fp_schedule_length(f, k, W)

    def test_rounds_below_paper_bound(self):
        for (f, k) in [(1, 1), (1, 3), (2, 2), (2, 4), (3, 3)]:
            for W in (1, 16, 2**16):
                assert fp_schedule_length(f, k, W) <= fractional_packing_paper_bound(
                    f, k, W
                )


class TestFigure1:
    def test_first_saturation_phase_trace(self):
        """Assert the exact x, p, q, y values of Figure 1(a)."""
        inst = figure1_instance()
        assert (inst.f, inst.k, inst.W) == (3, 3, 12)

        captured = {}

        def observer(round_index, states, outboxes):
            # Rounds are 1-based; after round 5 the colour-0 saturation
            # phase of iteration 0 (rounds 1..5) is complete.
            if round_index == 5:
                captured["states"] = [s.clone() for s in states]

        from repro.simulator.runtime import run_on_setcover
        from repro.core.fractional_packing import FractionalPackingMachine

        run_on_setcover(
            inst,
            FractionalPackingMachine(),
            observer=observer,
            max_rounds=fp_schedule_length(inst.f, inst.k, inst.W),
        )
        states = captured["states"]
        subsets = states[: inst.n_subsets]
        elements = states[inst.n_subsets :]

        # x_i(s) = r(s) / |U_yi(s)| for the first phase: 4/2, 9/3, 8/2, 12/3
        assert [s.x_by_colour[0] for s in subsets] == [
            Fraction(2),
            Fraction(3),
            Fraction(4),
            Fraction(4),
        ]
        # p(u) = min offer: 2 2 3 3 4 4  (the figure's p row)
        assert [e.p for e in elements] == [
            Fraction(2),
            Fraction(2),
            Fraction(3),
            Fraction(3),
            Fraction(4),
            Fraction(4),
        ]
        # q_i(s) = min p over members: 2, 2, 3, 3
        assert [s.q_by_colour[0] for s in subsets] == [
            Fraction(2),
            Fraction(2),
            Fraction(3),
            Fraction(3),
        ]
        # y(u) += p(u) happened
        assert [e.y for e in elements] == [e.p for e in elements]

    def test_first_phase_saturates_exactly_s0(self):
        """After phase one, s0 is saturated (y[s0]=4=w) and u0,u1 with it."""
        inst = figure1_instance()
        y_after = [Fraction(2), Fraction(2), Fraction(3), Fraction(3), Fraction(4), Fraction(4)]
        loads = [
            sum((y_after[u] for u in members), Fraction(0))
            for members in inst.subsets
        ]
        assert loads == [Fraction(4), Fraction(8), Fraction(7), Fraction(11)]
        saturated_subsets = [s for s, load in enumerate(loads) if load == inst.weights[s]]
        assert saturated_subsets == [0]
        # elements adjacent to s0: u0 and u1 — the black nodes of Fig 1(a)
        assert sorted(inst.subsets[0]) == [0, 1]

    def test_figure1_b_structure(self):
        """The effective DAG B of Fig 1(d): only u4 and u5 keep out-edges."""
        # From the trace above: p = (2,2,3,3,4,4), x = (2,3,4,4), q = (2,2,3,3).
        # B-edges (u,s,v): p(u) = x(s) and q(s) = p(v), both unsaturated.
        p = [2, 2, 3, 3, 4, 4]
        x = [2, 3, 4, 4]
        q = [2, 2, 3, 3]
        inst = figure1_instance()
        unsat = {2, 3, 4, 5}
        b_edges = set()
        for s, members in enumerate(inst.subsets):
            for u in members:
                for v in members:
                    if u != v and p[u] == x[s] and q[s] == p[v]:
                        if u in unsat and v in unsat:
                            b_edges.add((u, v))
        # u4 -> u3 (via s2 and s3), u5 -> u3 (via s3); u2, u3 have outdeg 0
        assert b_edges == {(4, 3), (5, 3)}

    def test_full_run_on_figure1(self):
        inst = figure1_instance()
        res = _check_full(inst)
        assert res.rounds == fp_schedule_length(3, 3, 12)
        opt, _ = exact_min_set_cover(inst)
        assert res.cover_weight() <= inst.f * opt


class TestSmallInstances:
    def test_single_subset_single_element(self):
        inst = partition_instance(groups=[[0]], weights=[5], n_elements=1)
        res = _check_full(inst)
        assert res.y[0] == 5
        assert res.saturated_subsets == frozenset({0})

    def test_two_disjoint_subsets(self):
        inst = partition_instance(
            groups=[[0], [1]], weights=[2, 3], n_elements=2
        )
        res = _check_full(inst)
        assert res.saturated_subsets == frozenset({0, 1})
        assert list(res.y) == [2, 3]

    def test_nested_subsets(self):
        # s0 = {0,1} cheap, s1 = {0} expensive: packing should saturate s0.
        inst = partition_instance(
            groups=[[0, 1], [0]], weights=[2, 10], n_elements=2
        )
        res = _check_full(inst)
        assert 0 in res.saturated_subsets

    def test_k_equals_one(self):
        # D = 0: single iteration, single colour
        inst = partition_instance(
            groups=[[0], [1], [2]], weights=[1, 2, 3], n_elements=3
        )
        res = _check_full(inst)
        assert res.rounds == fp_schedule_length(1, 1, 3)

    def test_symmetric_kpp_selects_everything(self):
        """Figure 3: on the fully symmetric instance the algorithm cannot
        break ties and must select all p subsets — ratio exactly p."""
        for p in (2, 3, 4):
            inst = symmetric_kpp_instance(p)
            res = _check_full(inst)
            assert res.saturated_subsets == frozenset(range(p))
            opt, _ = exact_min_set_cover(inst)
            assert opt == 1
            assert res.cover_weight() == p  # == min(f,k) * OPT: lower bound tight

    def test_weighted_instance(self):
        inst = partition_instance(
            groups=[[0, 1], [1, 2], [0, 2]], weights=[3, 5, 7], n_elements=3
        )
        _check_full(inst)


class TestVcEncoding:
    def test_cycle_as_setcover(self):
        g = families.cycle_graph(5)
        inst = vc_to_setcover(g, [1] * 5)
        res = _check_full(inst)
        # cover must be a vertex cover of the cycle
        cover = res.saturated_subsets
        for (u, v) in g.edges:
            assert u in cover or v in cover

    def test_path_weighted_as_setcover(self):
        g = families.path_graph(4)
        inst = vc_to_setcover(g, [1, 3, 1, 3])
        res = _check_full(inst)
        opt, _ = exact_min_set_cover(inst)
        assert res.cover_weight() <= 2 * opt  # f = 2


class TestFApproximation:
    @given(setcover_instances(max_subsets=5, max_elements=6, max_k=3, max_f=2, max_w=4))
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_property_random_instances(self, inst):
        res = _check_full(inst)
        opt, _ = exact_min_set_cover(inst)
        assert res.cover_weight() <= inst.f * opt
        assert res.rounds == fractional_packing_rounds_exact(inst.f, inst.k, inst.W)

    def test_deterministic(self):
        inst = random_instance(4, 6, k=3, f=2, W=5, seed=3)
        a = maximal_fractional_packing(inst)
        b = maximal_fractional_packing(inst)
        assert a.y == b.y and a.saturated_subsets == b.saturated_subsets


class TestSetCoverApi:
    def test_certificate(self):
        inst = random_instance(5, 7, k=3, f=3, W=6, seed=8)
        res = set_cover_f_approx(inst)
        assert res.is_cover()
        assert res.certificate_ratio <= 1
        assert res.cover_weight == res.instance.cover_weight(res.cover)
