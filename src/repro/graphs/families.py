"""Graph family generators.

Deterministic families are generated natively; randomised families use
a seeded :class:`random.Random` (or delegate to :mod:`networkx` where
its generator is the de-facto standard, e.g. random regular graphs).
All generators return :class:`~repro.graphs.topology.PortNumberedGraph`
with the canonical port numbering; use
:mod:`repro.graphs.ports` to re-number ports.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Tuple

from repro.graphs.topology import PortNumberedGraph

__all__ = [
    "empty_graph",
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "complete_bipartite",
    "star_graph",
    "grid_2d",
    "balanced_tree",
    "caterpillar",
    "hypercube",
    "petersen_graph",
    "frucht_graph",
    "random_tree",
    "random_regular",
    "gnp_random",
    "random_bipartite_regularish",
    "FAMILIES",
    "make",
    "sized",
]


def empty_graph(n: int) -> PortNumberedGraph:
    """``n`` isolated nodes."""
    return PortNumberedGraph.from_edges(n, [])


def path_graph(n: int) -> PortNumberedGraph:
    """Path on ``n`` nodes (Δ = 2 for n >= 3)."""
    return PortNumberedGraph.from_edges(n, [(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> PortNumberedGraph:
    """Cycle on ``n >= 3`` nodes."""
    if n < 3:
        raise ValueError(f"cycle needs n >= 3, got {n}")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return PortNumberedGraph.from_edges(n, edges)


def complete_graph(n: int) -> PortNumberedGraph:
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return PortNumberedGraph.from_edges(n, edges)


def complete_bipartite(a: int, b: int) -> PortNumberedGraph:
    """``K_{a,b}``: left nodes ``0..a-1``, right nodes ``a..a+b-1``."""
    edges = [(i, a + j) for i in range(a) for j in range(b)]
    return PortNumberedGraph.from_edges(a + b, edges)


def star_graph(leaves: int) -> PortNumberedGraph:
    """Star: centre node 0 with ``leaves`` leaves (Δ = leaves)."""
    return PortNumberedGraph.from_edges(
        leaves + 1, [(0, i) for i in range(1, leaves + 1)]
    )


def grid_2d(rows: int, cols: int) -> PortNumberedGraph:
    """``rows × cols`` grid (Δ <= 4)."""
    def nid(r: int, c: int) -> int:
        return r * cols + c

    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((nid(r, c), nid(r, c + 1)))
            if r + 1 < rows:
                edges.append((nid(r, c), nid(r + 1, c)))
    return PortNumberedGraph.from_edges(rows * cols, edges)


def balanced_tree(branching: int, height: int) -> PortNumberedGraph:
    """Complete ``branching``-ary tree of the given height."""
    if branching < 1:
        raise ValueError("branching must be >= 1")
    edges: List[Tuple[int, int]] = []
    nodes = [0]
    next_id = 1
    frontier = [0]
    for _ in range(height):
        new_frontier = []
        for v in frontier:
            for _ in range(branching):
                edges.append((v, next_id))
                nodes.append(next_id)
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    return PortNumberedGraph.from_edges(next_id, edges)


def caterpillar(spine: int, legs: int) -> PortNumberedGraph:
    """Path of ``spine`` nodes, each with ``legs`` pendant leaves."""
    edges = [(i, i + 1) for i in range(spine - 1)]
    next_id = spine
    for v in range(spine):
        for _ in range(legs):
            edges.append((v, next_id))
            next_id += 1
    return PortNumberedGraph.from_edges(next_id, edges)


def hypercube(dim: int) -> PortNumberedGraph:
    """``dim``-dimensional hypercube (``2^dim`` nodes, ``Δ = dim``)."""
    n = 1 << dim
    edges = [(v, v ^ (1 << b)) for v in range(n) for b in range(dim) if v < (v ^ (1 << b))]
    return PortNumberedGraph.from_edges(n, edges)


def petersen_graph() -> PortNumberedGraph:
    """The Petersen graph: 3-regular, vertex-transitive, 10 nodes."""
    outer = [(i, (i + 1) % 5) for i in range(5)]
    inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
    spokes = [(i, 5 + i) for i in range(5)]
    return PortNumberedGraph.from_edges(10, outer + inner + spokes)


def frucht_graph() -> PortNumberedGraph:
    """The Frucht graph: 3-regular with *trivial* automorphism group.

    Section 7 of the paper uses it to argue that broadcast-model
    algorithms must output the symmetric solution ``y(e) = 1/3`` even
    on graphs whose only automorphism is the identity, because the
    algorithm cannot distinguish the graph from its universal cover
    (the infinite 3-regular tree).
    """
    # Standard construction (LCF notation [-5,-2,-4,2,5,-2,2,5,-2,-5,4,2]).
    n = 12
    lcf = [-5, -2, -4, 2, 5, -2, 2, 5, -2, -5, 4, 2]
    edges = [(i, (i + 1) % n) for i in range(n)]
    for i, jump in enumerate(lcf):
        j = (i + jump) % n
        e = (min(i, j), max(i, j))
        if e not in edges:
            edges.append(e)
    return PortNumberedGraph.from_edges(n, set(edges))


def random_tree(n: int, seed: int = 0) -> PortNumberedGraph:
    """Uniform-ish random tree via a random Prüfer sequence."""
    if n <= 0:
        raise ValueError("random_tree needs n >= 1")
    if n == 1:
        return empty_graph(1)
    if n == 2:
        return PortNumberedGraph.from_edges(2, [(0, 1)])
    rng = random.Random(f"random-tree:{seed}")
    prufer = [rng.randrange(n) for _ in range(n - 2)]
    degree = [1] * n
    for v in prufer:
        degree[v] += 1
    edges: List[Tuple[int, int]] = []
    import heapq

    leaves = [v for v in range(n) if degree[v] == 1]
    heapq.heapify(leaves)
    for v in prufer:
        leaf = heapq.heappop(leaves)
        edges.append((leaf, v))
        degree[v] -= 1
        if degree[v] == 1:
            heapq.heappush(leaves, v)
    u = heapq.heappop(leaves)
    w = heapq.heappop(leaves)
    edges.append((u, w))
    return PortNumberedGraph.from_edges(n, edges)


def random_regular(d: int, n: int, seed: int = 0) -> PortNumberedGraph:
    """Random ``d``-regular graph on ``n`` nodes (via networkx)."""
    import networkx as nx

    if d >= n or (n * d) % 2 != 0:
        raise ValueError(f"no d-regular graph with d={d}, n={n}")
    g = nx.random_regular_graph(d, n, seed=seed)
    return PortNumberedGraph.from_networkx(g)


def gnp_random(n: int, p: float, seed: int = 0) -> PortNumberedGraph:
    """Erdős–Rényi ``G(n, p)`` (native implementation, seeded)."""
    rng = random.Random(f"gnp:{seed}")
    edges = [
        (i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < p
    ]
    return PortNumberedGraph.from_edges(n, edges)


def random_bipartite_regularish(
    a: int, b: int, d: int, seed: int = 0
) -> PortNumberedGraph:
    """Random bipartite graph where each left node has degree ``d``."""
    rng = random.Random(f"bip:{seed}")
    if d > b:
        raise ValueError(f"left degree {d} exceeds right side size {b}")
    edges = []
    for i in range(a):
        for j in rng.sample(range(b), d):
            edges.append((i, a + j))
    return PortNumberedGraph.from_edges(a + b, edges)


# Registry used by experiments/CLI: name -> zero-config small instance.
FAMILIES: Dict[str, object] = {
    "path": lambda n=16: path_graph(n),
    "cycle": lambda n=16: cycle_graph(n),
    "complete": lambda n=8: complete_graph(n),
    "star": lambda n=8: star_graph(n),
    "grid": lambda r=4, c=4: grid_2d(r, c),
    "tree": lambda b=2, h=3: balanced_tree(b, h),
    "caterpillar": lambda s=6, l=2: caterpillar(s, l),
    "hypercube": lambda d=3: hypercube(d),
    "petersen": petersen_graph,
    "frucht": frucht_graph,
    "regular": lambda d=3, n=16, seed=0: random_regular(d, n, seed),
    "gnp": lambda n=20, p=0.2, seed=0: gnp_random(n, p, seed),
}


def make(name: str, **kwargs) -> PortNumberedGraph:
    """Instantiate a registered family by name."""
    try:
        factory = FAMILIES[name]
    except KeyError:
        raise KeyError(
            f"unknown graph family {name!r}; known: {sorted(FAMILIES)}"
        ) from None
    return factory(**kwargs)


def sized(name: str, n: int, seed: int = 0) -> PortNumberedGraph:
    """A family instance of (roughly) ``n`` nodes, by name.

    The uniform size-parameterised face of the registry, shared by the
    CLIs and experiments: every family is reachable through one
    ``(name, n, seed)`` signature, with the family-specific parameter
    mapping (grid side length, hypercube dimension, ...) handled here.
    Fixed-size families (``petersen``, ``frucht``) ignore ``n``.
    """
    if name in ("petersen", "frucht"):
        return make(name)
    if name == "cycle":
        return cycle_graph(n)
    if name == "path":
        return path_graph(n)
    if name == "complete":
        return complete_graph(n)
    if name == "star":
        return star_graph(n)
    if name == "hypercube":
        return hypercube(n)
    if name == "grid":
        side = max(2, int(n ** 0.5))
        return grid_2d(side, side)
    if name == "caterpillar":
        return caterpillar(max(2, n // 3), 2)
    if name == "regular":
        return random_regular(3, n, seed=seed)
    if name == "gnp":
        return gnp_random(n, 0.3, seed=seed)
    if name == "tree":
        return random_tree(n, seed=seed)
    raise KeyError(
        f"unknown graph family {name!r}; known: {sorted(FAMILIES)}"
    )
