"""Serving-host suite: ``ServingHost`` ≡ a lone ``DynamicRun``.

The host multiplexes many dynamic sessions over warm worker pools; the
contract is that serving is *invisible* in the results — every session
served by the host (in-process or pooled, checkpointed or not, even
across a worker crash) must end in exactly the state a solo session
fed the same stream reaches, on all seven ``RunResult`` fields.

Pooled/crash tests spawn real worker processes; they are kept small
and retire the serving pools on module teardown.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.dynamic import (
    DynamicRun,
    EditError,
    RandomChurn,
    ServingHost,
    add_edge,
    latency_summary,
    remove_edge,
)
from repro.dynamic.session import BatchStats
from repro.graphs import families
from repro.graphs.weights import uniform_weights, unit_weights
from repro._util.parallel import retire_serve_pools, serve_pool

from helpers import assert_run_results_equal


@pytest.fixture(scope="module", autouse=True)
def _retire_pools_after_module():
    yield
    retire_serve_pools()


def _scripted_sessions(count, batches=5, n=14, mode="incremental"):
    """Per session: (initial snapshot, scripted batches, solo driver).

    The driver generates the stream batch by batch against its own
    evolving graph and ends in the exact state the served copy must
    reproduce — the same untimed-scripting/oracle trick the CLI and
    the serving benchmark use.
    """
    out = []
    for i in range(count):
        g = families.gnp_random(n, 0.3, seed=20 + i)
        w = uniform_weights(g.n, 3, seed=i)
        driver = DynamicRun.vertex_cover(
            g, w, mode=mode, delta=g.max_degree + 2, W=3
        )
        blob0 = driver.snapshot()
        stream = RandomChurn(
            edits_per_batch=2, seed=7 + i, W=3, max_degree=g.max_degree + 2
        )
        script = []
        for _ in range(batches):
            batch = stream.next_batch(driver.graph, driver.inputs)
            if not batch:
                continue
            driver.apply(batch)
            script.append(batch)
        out.append((blob0, script, driver))
    return out


def _assert_served_matches_solo(host, sid, driver):
    served = DynamicRun.restore(host.snapshot(sid))
    assert_run_results_equal(
        served.result, driver.result, label_a="served", label_b="solo"
    )
    assert served.batches_applied == driver.batches_applied
    assert served.cover() == driver.cover()


# ----------------------------------------------------------------------
# latency_summary — the shared latency vocabulary
# ----------------------------------------------------------------------


def test_latency_summary_empty():
    s = latency_summary([])
    assert s == {
        "count": 0, "mean_ms": 0.0, "p50_ms": 0.0, "p99_ms": 0.0, "max_ms": 0.0
    }


def test_latency_summary_nearest_rank():
    xs = [float(i) for i in range(1, 101)]  # 1..100 ms
    s = latency_summary(xs)
    assert s["count"] == 100
    assert s["mean_ms"] == pytest.approx(50.5)
    assert s["p50_ms"] == 50.0  # nearest-rank: ceil(0.5*100) = 50th
    assert s["p99_ms"] == 99.0
    assert s["max_ms"] == 100.0
    # Order-insensitive and exact on singletons.
    assert latency_summary([3.0]) == {
        "count": 1, "mean_ms": 3.0, "p50_ms": 3.0, "p99_ms": 3.0, "max_ms": 3.0
    }
    assert latency_summary(list(reversed(xs))) == s


# ----------------------------------------------------------------------
# In-process multiplexing (workers=0)
# ----------------------------------------------------------------------


def test_in_process_serving_matches_solo():
    scripts = _scripted_sessions(3, batches=6)
    host = ServingHost(workers=0)
    for i, (blob0, _, _) in enumerate(scripts):
        host.open(f"s{i}", blob0)
    assert sorted(host.sessions()) == ["s0", "s1", "s2"]
    for i, (_, script, _) in enumerate(scripts):
        for batch in script:
            stats = host.apply(f"s{i}", batch)
            assert isinstance(stats, BatchStats)
    for i, (_, _, driver) in enumerate(scripts):
        _assert_served_matches_solo(host, f"s{i}", driver)
    report = host.report()
    assert report.sessions == 3
    assert report.workers == 0
    assert report.batches_applied == sum(len(s) for _, s, _ in scripts)
    assert report.worker_recoveries == 0
    assert report.latency_ms["count"] == report.batches_applied
    assert report.latency_ms["p99_ms"] >= report.latency_ms["p50_ms"] > 0
    host.shutdown()


def test_apply_stats_match_solo_stats():
    """The served BatchStats is the session's own (wall_ms excluded
    from equality by the dataclass, so == is the full comparison)."""
    [(blob0, script, _)] = _scripted_sessions(1, batches=4)
    host = ServingHost()
    host.open("a", blob0)
    solo = DynamicRun.restore(blob0)
    for batch in script:
        assert host.apply("a", batch) == solo.apply(batch)
    host.shutdown()


def test_apply_each_orders_and_multiplexes():
    scripts = _scripted_sessions(3, batches=5)
    host = ServingHost()
    for i, (blob0, _, _) in enumerate(scripts):
        host.open(f"s{i}", blob0)
    waves = max(len(s) for _, s, _ in scripts)
    for w in range(waves):
        items = [
            (f"s{i}", s[w])
            for i, (_, s, _) in enumerate(scripts)
            if w < len(s)
        ]
        results = host.apply_each(items)
        assert len(results) == len(items)  # input order, one stat each
        for (sid, _), stats in zip(items, results):
            assert isinstance(stats, BatchStats)
    for i, (_, _, driver) in enumerate(scripts):
        _assert_served_matches_solo(host, f"s{i}", driver)
    host.shutdown()


def test_open_close_lifecycle_errors():
    [(blob0, script, _)] = _scripted_sessions(1, batches=2)
    host = ServingHost()
    host.open("a", blob0)
    with pytest.raises(ValueError, match="already open"):
        host.open("a", blob0)
    with pytest.raises(KeyError, match="no open session"):
        host.apply("ghost", script[0])
    with pytest.raises(KeyError, match="no open session"):
        host.snapshot("ghost")
    blob = host.close("a")
    assert DynamicRun.restore(blob).graph.n > 0
    with pytest.raises(KeyError, match="no open session"):
        host.close("a")
    host.shutdown()
    with pytest.raises(RuntimeError, match="shut down"):
        host.open("b", blob0)
    with pytest.raises(ValueError):
        ServingHost(workers=-1)
    with pytest.raises(ValueError):
        ServingHost(checkpoint_every=0)


def test_rejected_batch_leaves_session_untouched():
    g = families.cycle_graph(8)
    session = DynamicRun.vertex_cover(
        g, unit_weights(8), mode="incremental", delta=3, W=1
    )
    host = ServingHost()
    host.open("a", session.snapshot())
    before = host.snapshot("a")
    with pytest.raises(EditError):
        host.apply("a", [add_edge(0, 1)])  # already present
    assert host.snapshot("a") == before
    assert host.report().batches_applied == 0
    # The session still serves valid batches afterwards.
    stats = host.apply("a", [remove_edge(0, 1)])
    assert stats.batch == 1
    host.shutdown()


# ----------------------------------------------------------------------
# Pooled serving (workers>0) and crash recovery
# ----------------------------------------------------------------------


def test_pooled_serving_matches_solo():
    scripts = _scripted_sessions(3, batches=4, n=12)
    host = ServingHost(workers=2, checkpoint_every=2)
    for i, (blob0, _, _) in enumerate(scripts):
        host.open(f"s{i}", blob0)
    waves = max(len(s) for _, s, _ in scripts)
    for w in range(waves):
        items = [
            (f"s{i}", s[w])
            for i, (_, s, _) in enumerate(scripts)
            if w < len(s)
        ]
        host.apply_each(items)
    for i, (_, _, driver) in enumerate(scripts):
        _assert_served_matches_solo(host, f"s{i}", driver)
    report = host.report()
    assert report.workers == 2
    assert report.worker_recoveries == 0
    host.shutdown()


def test_worker_crash_recovers_from_checkpoint_and_log():
    """SIGKILL a serving worker mid-stream: the host must rebuild its
    sessions from checkpoint + committed-batch replay and keep going,
    still bit-for-bit equal to the solo reference."""
    scripts = _scripted_sessions(2, batches=6, n=12)
    # checkpoint_every=3 so recovery exercises checkpoint AND log replay.
    host = ServingHost(workers=1, checkpoint_every=3)
    for i, (blob0, _, _) in enumerate(scripts):
        host.open(f"s{i}", blob0)
    for i, (_, script, _) in enumerate(scripts):
        for batch in script[:4]:
            host.apply(f"s{i}", batch)

    pid = serve_pool(0).submit(os.getpid).result()
    os.kill(pid, signal.SIGKILL)

    for i, (_, script, _) in enumerate(scripts):
        for batch in script[4:]:
            host.apply(f"s{i}", batch)
    for i, (_, _, driver) in enumerate(scripts):
        _assert_served_matches_solo(host, f"s{i}", driver)
    assert host.report().worker_recoveries >= 1
    host.shutdown()
