"""Maximal edge packing in the port-numbering model (Section 3).

The algorithm finds a maximal edge packing ``y : E -> Q≥0`` (``y[v] <=
w_v`` for all nodes, every edge has a saturated endpoint) in
``O(Δ + log* W)`` synchronous rounds.  Saturated nodes then form a
2-approximate minimum-weight vertex cover (Bar-Yehuda–Even).

Structure (mirrors the paper):

**Phase I** (Section 3.2) runs Δ iterations of the offer/accept step:
every node with positive residual ``r(v)`` and at least one *active*
incident edge offers ``x(v) = r(v)/deg_active(v)``; each active edge
accepts ``min`` of its two offers.  An edge stays *active* while both
endpoints are unsaturated and their colour sequences agree; otherwise
it becomes permanently ``SATURATED`` or ``MULTICOLOURED`` (Lemma 1:
the maximum active degree drops each iteration, so Δ iterations empty
the active subgraph).  Nodes append their offers (or the element 1) to
their colour sequences; by Lemma 2 these sequences embed
order-preservingly into integers (:mod:`repro.core.colours`).

**Phase II** (Section 3.3) orients the unsaturated (= multicoloured)
edges from lower to higher colour — an acyclic orientation since
colours are totally ordered — and partitions them into Δ rooted
forests by the tail's port order.  Each forest is 3-coloured with
Cole–Vishkin + Goldberg–Plotkin–Shannon shift-down in ``O(log* χ)``
rounds, and the resulting ``3Δ`` colour classes of *stars* are
saturated one class at a time with the ``α``-ratio rule of the paper.

The machine follows a *global round schedule* computed from the public
parameters (Δ, W) only — every node is always in the same phase, which
is how an anonymous network sidesteps termination detection.

**Arithmetic modes.**  By Lemma 2 every Phase I quantity lies on the
``1/(Δ!)^Δ`` grid, so the default ``arithmetic="scaled"`` mode runs
Phase I offers, residual updates and colour-sequence growth on
:class:`repro._util.rationals.ScaledInt` — integer numerators against
the shared denominator ``(Δ!)^Δ``, no gcd normalisation — and falls
back to exact :class:`~fractions.Fraction` values only in the Phase II
star rounds (whose ``α``-ratio scaling leaves the grid) or if a value
ever left the Lemma 2 grid (asserted, never silent).
``arithmetic="fraction"`` keeps everything on ``Fraction``; the two
modes are observably identical — same outputs, same colour encodings,
same metered message bits — which ``tests/test_scaled_arithmetic.py``
pins differentially.

Implementation-level round accounting (asserted in tests):
``2Δ + 1`` rounds for Phase I, ``1`` forest-announcement round,
``T_cv(χ)`` Cole–Vishkin rounds, ``6`` shift-down/elimination rounds
and ``6Δ`` star rounds — total ``8Δ + T_cv(χ) + 8``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from functools import lru_cache, partial
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.colours import (
    chi_edge_packing,
    colour_radix,
    encode_colour_sequence,
)
from repro.core.cole_vishkin import (
    cv_pseudo_parent,
    cv_schedule_length,
    cv_step_colour,
    eliminate_class_colour,
    shift_down_root_colour,
)
from repro._util.identity import IdentityMemo
from repro._util.rationals import (
    FRACTION_ONE,
    FRACTION_ZERO,
    ScaledInt,
    column_scaled,
    factorial,
)
from repro.graphs.topology import PortNumberedGraph
from repro.graphs.weights import max_weight, validate_weights
from repro.simulator import state_layout
from repro.simulator.machine import PORT_NUMBERING, LocalContext, Machine
from repro.simulator.runtime import (
    MaxRoundsExceeded,
    RunResult,
    run_port_numbering,
)
from repro.simulator.state_layout import ColumnarPlan

__all__ = [
    "ACTIVE",
    "SATURATED",
    "MULTICOLOURED",
    "EdgePackingMachine",
    "EdgePackingResult",
    "build_schedule",
    "schedule_length",
    "edge_packing_job",
    "edge_packing_from_run",
    "maximal_edge_packing",
]

# Edge states (Lemma 1: transitions are one-way, ACTIVE -> {SAT, MULTI},
# MULTI -> SAT).
ACTIVE = "A"
SATURATED = "S"
MULTICOLOURED = "M"

# Integer codes for the columnar engine's estate column (index = code;
# ACTIVE must be 0, the column's fill value).
_EST_CODES = (ACTIVE, SATURATED, MULTICOLOURED)
_ACT, _SAT, _MUL = 0, 1, 2


def _decode_saturation(value: int) -> bool:
    """Wire payload of a columnar p1a/p1_settle emission, for metering."""
    return bool(value)


def _decode_offer(value: int, den: int) -> ScaledInt:
    """Wire payload of a columnar p1b emission, for metering."""
    return ScaledInt(value, den, den)


def _colour_digit(el: Any, scale: int, radix: int) -> int:
    """The Lemma 2 mixed-radix digit ``el · (Δ!)^Δ`` of a colour element.

    Validates the lemma's invariants (``0 < el <= W``, ``el·scale``
    integral) exactly as :func:`repro.core.colours.encode_colour_sequence`
    does per element, so accumulating digits round by round yields the
    identical encoding.
    """
    if type(el) is ScaledInt and el.den == scale:
        digit = el.num
    else:
        f = el.as_fraction() if type(el) is ScaledInt else el
        digit, rem = divmod(f.numerator * scale, f.denominator)
        if rem:
            raise ValueError(
                f"Lemma 2 violated: element {f} times (Δ!)^Δ is not integral"
            )
    if not 0 < digit < radix:
        raise ValueError(
            f"Lemma 2 violated: colour element outside (0, W] "
            f"(digit {digit}, radix {radix})"
        )
    return digit


# ----------------------------------------------------------------------
# Global round schedule
# ----------------------------------------------------------------------


@lru_cache(maxsize=None)
def build_schedule(delta: int, W: int) -> Tuple[Tuple, ...]:
    """The deterministic phase tag for every round, given (Δ, W).

    Identical at every node; a node's behaviour in a round is a pure
    function of its state and the tag.
    """
    if delta < 0 or W < 1:
        raise ValueError(f"need Δ >= 0 and W >= 1, got {delta}, {W}")
    schedule: List[Tuple] = []
    for t in range(delta):
        schedule.append(("p1a", t))
        schedule.append(("p1b", t))
    schedule.append(("p1_settle",))
    schedule.append(("announce",))
    chi = colour_radix(delta, W) ** delta  # bound for our exact encoding
    for s in range(cv_schedule_length(chi)):
        schedule.append(("cv", s))
    for x in (3, 4, 5):
        schedule.append(("sd", x))
        schedule.append(("elim", x))
    for i in range(delta):
        for j in range(3):
            schedule.append(("star_req", i, j))
            schedule.append(("star_rep", i, j))
    return tuple(schedule)


def schedule_length(delta: int, W: int) -> int:
    """Exact number of rounds the machine takes (deterministic)."""
    return len(build_schedule(delta, W))


# ----------------------------------------------------------------------
# Per-node state
# ----------------------------------------------------------------------


@dataclass
class _State:
    """Private per-node state; never mutated after a transition (purity).

    Transitions are copy-on-write: every ``step`` returns a *new*
    ``_State`` and only the containers it rewrites are fresh — the rest
    are shared with the predecessor.  Colour sequences are tuples
    precisely so sharing them is free.  The discipline that makes this
    safe: a shared container is never mutated in place; in-place
    mutation happens only on copies made by :meth:`clone` (or explicit
    ``dict``/``list`` copies) inside the same transition.
    """

    idx: int  # position in the global schedule
    w: int  # own weight
    r: Any  # residual weight  w - y[v] (ScaledInt or Fraction)
    y: List[Any]  # packing value per port (ScaledInt or Fraction)
    estate: List[str]  # edge state per port
    own_seq: Tuple[Any, ...]  # own colour sequence (Phase I)
    # Colour bookkeeping comes in two observably identical flavours,
    # chosen once per run (``digit_mode``, stamped by start):
    #
    # * **digit mode** (small ``radix``): encodings are accumulated
    #   digit-by-digit as the sequences grow (one mixed-radix Lemma 2
    #   digit per p1b round) — own_acc/nbr_acc *are* the encoded
    #   prefixes, identical integers to encode_colour_sequence on the
    #   full sequences, and _finish_phase_one has no encoding pass.
    # * **sequence mode** (large Δ/W, where every digit is a bignum and
    #   per-port Horner accumulation would be quadratic): neighbour
    #   sequences are retained as tuples and encoded lazily at the end
    #   of Phase I — memoised, and only for ports that actually ended
    #   multicoloured (the only colours Phase II reads).
    digit_mode: bool = True
    own_acc: int = 0
    nbr_acc: Tuple[int, ...] = ()
    nbr_seq: Tuple[Tuple[Any, ...], ...] = ()  # per-port sequences (seq mode)
    scale: int = 1  # (Δ!)^Δ — the Lemma 2 denominator
    radix: int = 2  # W·(Δ!)^Δ + 1 — the colour digit radix
    x_cur: Optional[Any] = None  # offer computed in the last p1a round
    unit: Any = FRACTION_ONE  # the colour element "1" in this run's arithmetic
    colour_int: Optional[int] = None
    nbr_colour: List[Optional[int]] = field(default_factory=list)
    out_ports: List[int] = field(default_factory=list)
    forest_of_out: Dict[int, int] = field(default_factory=dict)  # port -> forest
    forest_in: List[Optional[int]] = field(default_factory=list)  # per port
    colour_f: Dict[int, int] = field(default_factory=dict)  # forest -> colour
    children_colour_f: Dict[int, Optional[int]] = field(default_factory=dict)
    star_replies: Dict[int, Tuple] = field(default_factory=dict)  # port -> msg
    # Derived caches.  ``sched``/``sched_len`` are stamped by start()
    # (the shared schedule tuple — every hook needs it, and an attribute
    # read beats re-deriving it from the globals).  ``forests`` and
    # ``down_ports`` freeze once Phase II topology is known (the
    # announce round): the forests this node belongs to, and the ports
    # with a ``forest_in`` entry — the down-edges along which this
    # node, as a parent, announces colours.  ``coasting`` marks a node
    # that provably does nothing for the rest of the schedule (no
    # forests, no multicoloured edges, no pending replies): its emit is
    # ``None`` and its step only advances ``idx``, so both hooks can
    # short-circuit — pure wall-clock, the node still runs every round
    # as the anonymous model requires.
    sched: Optional[Tuple[Tuple, ...]] = None
    sched_len: int = 0
    forests: Tuple[int, ...] = ()
    down_ports: Tuple[int, ...] = ()
    coasting: bool = False

    def clone(self) -> "_State":
        """Full copy whose mutable containers are safe to mutate."""
        return _State(
            idx=self.idx,
            w=self.w,
            r=self.r,
            y=list(self.y),
            estate=list(self.estate),
            own_seq=self.own_seq,
            digit_mode=self.digit_mode,
            own_acc=self.own_acc,
            nbr_acc=self.nbr_acc,
            nbr_seq=self.nbr_seq,
            scale=self.scale,
            radix=self.radix,
            x_cur=self.x_cur,
            unit=self.unit,
            colour_int=self.colour_int,
            nbr_colour=list(self.nbr_colour),
            out_ports=list(self.out_ports),
            forest_of_out=dict(self.forest_of_out),
            forest_in=list(self.forest_in),
            colour_f=dict(self.colour_f),
            children_colour_f=dict(self.children_colour_f),
            star_replies=dict(self.star_replies),
            sched=self.sched,
            sched_len=self.sched_len,
            forests=self.forests,
            down_ports=self.down_ports,
            coasting=self.coasting,
        )

    def evolve(self, idx: int) -> "_State":
        """Shallow successor at schedule position ``idx``.

        Shares every container with ``self``; the caller must *assign*
        fresh containers for whatever it changes, never mutate shared
        ones.
        """
        new = _State.__new__(_State)
        d = self.__dict__.copy()
        d["idx"] = idx
        new.__dict__ = d
        return new

    # -- helpers -------------------------------------------------------

    def active_ports(self) -> List[int]:
        return [p for p, s in enumerate(self.estate) if s == ACTIVE]

    def parent_forests(self) -> set:
        return {i for i in self.forest_in if i is not None}

    def child_forests(self) -> Dict[int, int]:
        """forest -> the out-port realising it (at most one per forest)."""
        return {i: p for p, i in self.forest_of_out.items()}

    def my_forests(self) -> set:
        return self.parent_forests() | set(self.forest_of_out.values())


class EdgePackingMachine(Machine):
    """The Section 3 algorithm as an anonymous port-numbering machine.

    Local input: the node's integer weight ``w_v``.
    Globals: ``delta`` (degree bound Δ) and ``W`` (weight bound).
    Output: ``{"in_cover": bool, "y": tuple per port, "colour": int}``.

    ``arithmetic`` selects the exact number representation:
    ``"scaled"`` (default) runs Phase I on the Lemma 2
    fixed-denominator integer grid, ``"fraction"`` keeps the original
    all-``Fraction`` transitions.  Both are exact and observably
    identical; outputs always report plain ``Fraction`` values.
    """

    model = PORT_NUMBERING

    ARITHMETIC_MODES = ("scaled", "fraction")

    def __init__(self, arithmetic: str = "scaled") -> None:
        if arithmetic not in self.ARITHMETIC_MODES:
            raise ValueError(
                f"arithmetic must be one of {self.ARITHMETIC_MODES}, "
                f"got {arithmetic!r}"
            )
        self.arithmetic = arithmetic
        # Schedule lookup is on the hot path of every hook; key the
        # memo by the identity of the shared per-run globals mapping.
        self._sched_cache = IdentityMemo()
        # Per-run scaled constants (denominator, zero, one) shared by
        # every node so same-denominator fast paths hit on `is`.
        self._arith_cache = IdentityMemo()

    # -- lifecycle -----------------------------------------------------

    def start(self, ctx: LocalContext) -> _State:
        w = ctx.input
        if not isinstance(w, int) or isinstance(w, bool) or w < 1:
            raise ValueError(f"node weight must be a positive int, got {w!r}")
        delta = ctx.require_global("delta")
        W = ctx.require_global("W")
        if ctx.degree > delta:
            raise ValueError(f"node degree {ctx.degree} exceeds Δ={delta}")
        if w > W:
            raise ValueError(f"node weight {w} exceeds W={W}")
        d = ctx.degree
        sched, sched_len = self._sched(ctx)
        den, zero, one = self._scaled_constants(ctx)
        radix = W * den + 1
        digit_mode = radix.bit_length() <= 64
        # The scaled grid only pays while (Δ!)^Δ fits a machine word —
        # beyond that, fixed-denominator numerators are bignums where
        # reduced Fractions stay small, so the documented fallback to
        # Fraction applies to the whole run.
        if self.arithmetic == "scaled" and digit_mode:
            r: Any = ScaledInt(w * den, den, den)
            y0: Any = zero
            unit: Any = one
        else:
            r = Fraction(w)
            y0 = FRACTION_ZERO
            unit = FRACTION_ONE
        # Built via __new__ + a dict literal: the 20+-parameter
        # dataclass __init__ is measurable at n nodes per run.  Every
        # _State field must appear here (clone() is the cross-check).
        st = _State.__new__(_State)
        st.__dict__ = {
            "idx": 0,
            "w": w,
            "r": r,
            "y": [y0] * d,
            "estate": [ACTIVE] * d,
            "own_seq": (),
            "digit_mode": digit_mode,
            "own_acc": 0,
            "nbr_acc": (0,) * d,
            "nbr_seq": ((),) * d,
            "scale": den,
            "radix": radix,
            "x_cur": None,
            "unit": unit,
            "colour_int": None,
            "nbr_colour": [None] * d,
            "out_ports": [],
            "forest_of_out": {},
            "forest_in": [None] * d,
            "colour_f": {},
            "children_colour_f": {},
            "star_replies": {},
            "sched": sched,
            "sched_len": sched_len,
            "forests": (),
            "down_ports": (),
            "coasting": False,
        }
        return st

    def halted(self, ctx: LocalContext, state: _State) -> bool:
        # sched_len is stamped by start(); 0 means a hand-built state
        # (tests, fault injection) — fall back to the schedule.
        return state.idx >= (state.sched_len or self._sched(ctx)[1])

    # Quiescence protocol (see Machine): a coasting node is silent and
    # inbox-independent until the schedule runs out, so the fast engine
    # may park it and fast-forward its index in one go.

    def quiescent(self, ctx: LocalContext, state: _State) -> bool:
        return state.coasting and state.sched_len > 0

    def fast_forward(
        self, ctx: LocalContext, state: _State, max_elapsed: int
    ) -> Tuple[_State, int]:
        elapsed = min(max_elapsed, state.sched_len - state.idx)
        if elapsed <= 0:
            return state, 0
        return state.evolve(state.idx + elapsed), elapsed

    def output(self, ctx: LocalContext, state: _State) -> Dict[str, Any]:
        # Outputs are the external contract: always plain Fractions,
        # whichever internal arithmetic produced them.
        return {
            "in_cover": not state.r,
            "y": tuple(
                v.as_fraction() if type(v) is ScaledInt else v
                for v in state.y
            ),
            "colour": state.colour_int,
        }

    def _schedule(self, ctx: LocalContext) -> Tuple[Tuple, ...]:
        return self._sched(ctx)[0]

    def _scaled_constants(
        self, ctx: LocalContext
    ) -> Tuple[int, ScaledInt, ScaledInt]:
        """``(den, zero, one)`` with ``den = (Δ!)^Δ``, shared per run."""

        def build() -> Tuple[int, ScaledInt, ScaledInt]:
            den = factorial(ctx.require_global("delta")) ** ctx.require_global(
                "delta"
            )
            return den, ScaledInt(0, den, den), ScaledInt(den, den, den)

        return self._arith_cache.get_or_compute(ctx.globals, build)

    def _sched(self, ctx: LocalContext) -> Tuple[Tuple[Tuple, ...], int]:
        def build() -> Tuple[Tuple[Tuple, ...], int]:
            sched = build_schedule(
                ctx.require_global("delta"), ctx.require_global("W")
            )
            return sched, len(sched)

        return self._sched_cache.get_or_compute(ctx.globals, build)

    # -- emit ----------------------------------------------------------

    def emit(self, ctx: LocalContext, state: _State) -> Optional[List[Any]]:
        # Returning None means "silence on every port" (the runtime
        # expands it); the all-``None`` fast paths below keep the
        # star/colour rounds allocation-free for non-participants.
        if state.coasting:
            return None
        d = ctx.degree
        schedule = state.sched
        if schedule is None:  # hand-built state: recover the schedule
            schedule = self._sched(ctx)[0]
        idx = state.idx
        if idx >= (state.sched_len or len(schedule)):
            return None
        tag = schedule[idx]
        kind = tag[0]

        if kind == "star_req":
            _, i, j = tag
            p = self._port_of_forest(state, i)
            if (
                p is not None
                and state.estate[p] == MULTICOLOURED
                and state.r
                and state.colour_f.get(i) == j
            ):
                out: List[Any] = [None] * d
                out[p] = ("req", state.r)
                return out
            return None

        if kind == "star_rep":
            if not state.star_replies:
                return None
            out = [None] * d
            for p, msg in state.star_replies.items():
                out[p] = msg
            return out

        if kind in ("cv", "sd", "elim"):
            # Parents announce their per-forest colour down each in-edge.
            if not state.down_ports:
                return None
            out = [None] * d
            forest_in = state.forest_in
            colour_f = state.colour_f
            for p in state.down_ports:
                out[p] = colour_f[forest_in[p]]
            return out

        if kind in ("p1a", "p1_settle"):
            return [not state.r] * d

        if kind == "p1b":
            return [state.x_cur] * d

        if kind == "announce":
            if not state.forest_of_out:
                return None
            out = [None] * d
            for p, i in state.forest_of_out.items():
                out[p] = i
            return out

        raise AssertionError(f"unknown schedule tag {tag!r}")

    @staticmethod
    def _port_of_forest(state: _State, forest: int) -> Optional[int]:
        """The out-port realising ``forest``, i.e. ``child_forests().get``.

        Inlined scan (last match wins, like the dict comprehension it
        replaces) — building the inverse dict per hook call dominated
        the star rounds.
        """
        p = None
        for port, i in state.forest_of_out.items():
            if i == forest:
                p = port
        return p

    # -- step ----------------------------------------------------------

    def step(self, ctx: LocalContext, state: _State, inbox: Sequence[Any]) -> _State:
        idx = state.idx
        if state.coasting:
            # Spectator for the rest of the schedule: only idx advances.
            if idx >= state.sched_len:
                return state
            return state.evolve(idx + 1)
        schedule = state.sched
        if schedule is None:  # hand-built state: recover the schedule
            schedule = self._sched(ctx)[0]
        if idx >= (state.sched_len or len(schedule)):
            return state
        tag = schedule[idx]
        kind = tag[0]
        nxt = idx + 1

        # Dispatch ordered by round frequency: the 6Δ star rounds and
        # the colour pipeline dominate the schedule.
        if kind == "star_req":
            return self._head_process_requests(state, inbox, nxt, forest=tag[1])

        if kind == "star_rep":
            st = self._leaf_process_reply(state, inbox, nxt, forest=tag[1])
            if st.star_replies:
                st.star_replies = {}
            # All star business settled?  Nothing can reach this node in
            # the remaining rounds: requests only arrive over its
            # multicoloured edges, and it has no replies left to send.
            if MULTICOLOURED not in st.estate:
                st.coasting = True
            return st

        if kind == "cv":
            return self._cv_update(state, inbox, nxt)

        # Phase I rounds rewrite y/estate and the colour sequences
        # copy-on-write; everything untouched is shared with the
        # predecessor state.
        if kind == "p1b":
            st = state.evolve(nxt)
            self._p1b_update(st, inbox)
            return st

        if kind == "p1a":
            st = state.evolve(nxt)
            self._absorb_saturation_bits(st, inbox)
            r = st.r
            n_active = st.estate.count(ACTIVE) if r else 0
            if r and n_active:
                # Lemma 2: the residual stays on the (Δ!)^Δ grid under
                # division by the active degree — div_exact asserts it.
                st.x_cur = (
                    r.div_exact(n_active)
                    if type(r) is ScaledInt
                    else r / n_active
                )
            else:
                st.x_cur = None
            return st

        if kind == "sd":
            return self._shift_down_update(state, inbox, nxt)

        if kind == "elim":
            return self._eliminate_update(state, inbox, nxt, target=tag[1])

        if kind == "p1_settle":
            st = state.evolve(nxt)
            self._absorb_saturation_bits(st, inbox)
            self._finish_phase_one(st, ctx)
            return st

        if kind == "announce":
            st = state.evolve(nxt)
            forest_in = None
            for p, msg in enumerate(inbox):
                if msg is not None and state.estate[p] == MULTICOLOURED:
                    if forest_in is None:
                        forest_in = list(state.forest_in)
                        st.forest_in = forest_in
                        st.colour_f = dict(state.colour_f)
                    forest_in[p] = msg
                    st.colour_f.setdefault(msg, state.colour_int)
            # Phase II topology is now final: freeze the derived caches.
            st.down_ports = tuple(
                p for p, i in enumerate(st.forest_in) if i is not None
            )
            st.forests = tuple(st.my_forests())
            # No forests means no role in any remaining round: neither
            # the colour pipeline nor any star can involve this node.
            if not st.forests:
                st.coasting = True
            return st

        raise AssertionError(f"unknown schedule tag {tag!r}")

    # -- Phase I -------------------------------------------------------

    @staticmethod
    def _absorb_saturation_bits(st: _State, inbox: Sequence[Any]) -> None:
        """Neighbour saturation permanently saturates the shared edge.

        Copy-on-write: ``st.estate`` (shared with the predecessor) is
        replaced only if something actually changes.
        """
        estate = st.estate
        if not st.r:
            # Own saturation dominates: everything saturated.
            for s in estate:
                if s is not SATURATED and s != SATURATED:
                    st.estate = [SATURATED] * len(estate)
                    return
            return
        fresh: Optional[List[str]] = None
        for p, nbr_saturated in enumerate(inbox):
            if nbr_saturated and estate[p] != SATURATED:
                if fresh is None:
                    fresh = list(estate)
                    st.estate = fresh
                fresh[p] = SATURATED

    @staticmethod
    def _p1b_update(st: _State, inbox: Sequence[Any]) -> None:
        """Steps (ii)–(iii) of Phase I: accept offers, grow colours."""
        x_cur = st.x_cur
        own_el = x_cur if x_cur is not None else st.unit
        st.own_seq = st.own_seq + (own_el,)
        digit_mode = st.digit_mode
        if digit_mode:
            scale = st.scale
            radix = st.radix
            if x_cur is None:
                own_digit = scale
            elif type(x_cur) is ScaledInt and x_cur.den == scale:
                own_digit = x_cur.num  # the common case, inlined
                if not 0 < own_digit < radix:
                    raise ValueError(
                        f"Lemma 2 violated: colour element outside (0, W] "
                        f"(digit {own_digit}, radix {radix})"
                    )
            else:
                own_digit = _colour_digit(x_cur, scale, radix)
            st.own_acc = st.own_acc * radix + own_digit
            nbr_track: List[Any] = list(st.nbr_acc)
        else:
            nbr_track = list(st.nbr_seq)

        increments: Any = 0
        mismatched: List[int] = []
        estate = st.estate
        fresh_y: Optional[List[Any]] = None  # copy-on-write view of st.y
        for p, nbr_x in enumerate(inbox):
            nbr_el = nbr_x if nbr_x is not None else st.unit
            if digit_mode:
                if nbr_x is None:
                    nbr_digit = scale
                elif type(nbr_x) is ScaledInt and nbr_x.den == scale:
                    nbr_digit = nbr_x.num  # the common case, inlined
                    if not 0 < nbr_digit < radix:
                        raise ValueError(
                            f"Lemma 2 violated: colour element outside "
                            f"(0, W] (digit {nbr_digit}, radix {radix})"
                        )
                else:
                    nbr_digit = _colour_digit(nbr_x, scale, radix)
                nbr_track[p] = nbr_track[p] * radix + nbr_digit
                mismatch = own_digit != nbr_digit
            else:
                nbr_track[p] = nbr_track[p] + (nbr_el,)
                mismatch = None  # decided only where it matters (ACTIVE)
            if estate[p] == ACTIVE:
                # Both endpoints of an active edge made offers (an active
                # edge implies positive residuals and active degree >= 1
                # on both sides).
                if x_cur is None or nbr_x is None:
                    raise AssertionError(
                        "active edge without mutual offers — state desync"
                    )
                delta_y = min(x_cur, nbr_x)
                if fresh_y is None:
                    fresh_y = list(st.y)
                    st.y = fresh_y
                fresh_y[p] += delta_y
                increments += delta_y
                if mismatch is None:
                    mismatch = own_el != nbr_el
                if mismatch:
                    mismatched.append(p)
        if digit_mode:
            st.nbr_acc = tuple(nbr_track)
        else:
            st.nbr_seq = tuple(nbr_track)
        if increments:
            st.r = st.r - increments
        if st.r < 0:
            raise AssertionError("residual went negative — packing infeasible")
        if not st.r:
            # Own saturation dominates: all incident edges are saturated.
            for s in estate:
                if s is not SATURATED and s != SATURATED:
                    st.estate = [SATURATED] * len(estate)
                    break
        elif mismatched:
            fresh = list(estate)
            st.estate = fresh
            for p in mismatched:
                if fresh[p] == ACTIVE:
                    fresh[p] = MULTICOLOURED

    def _finish_phase_one(self, st: _State, ctx: LocalContext) -> None:
        """Read off colours, orient multicoloured edges, assign forests."""
        if any(s == ACTIVE for s in st.estate):
            raise AssertionError(
                "active edge survived Phase I — Lemma 1 violated (is the "
                "global Δ parameter really an upper bound on the degree?)"
            )
        if st.digit_mode:
            # The accumulators hold exactly encode_colour_sequence of
            # the grown sequences (same digits, same radix, same order).
            st.colour_int = st.own_acc
            st.nbr_colour = list(st.nbr_acc)
        else:
            delta = ctx.require_global("delta")
            W = ctx.require_global("W")
            st.colour_int = encode_colour_sequence(st.own_seq, delta, W)
            # Phase II only ever reads the colours of multicoloured
            # edges; skipping the rest avoids bignum encodes at scale.
            st.nbr_colour = [
                encode_colour_sequence(seq, delta, W)
                if st.estate[p] == MULTICOLOURED
                else None
                for p, seq in enumerate(st.nbr_seq)
            ]
        st.out_ports = [
            p
            for p in range(len(st.estate))
            if st.estate[p] == MULTICOLOURED and st.colour_int < st.nbr_colour[p]
        ]
        # Multicoloured edges have different colour sequences, hence
        # different encodings; ties are impossible.
        for p in range(len(st.estate)):
            if st.estate[p] == MULTICOLOURED and st.colour_int == st.nbr_colour[p]:
                raise AssertionError("multicoloured edge with equal colours")
        st.forest_of_out = {p: i for i, p in enumerate(st.out_ports)}
        st.colour_f = {i: st.colour_int for i in st.forest_of_out.values()}
        # A node with no multicoloured edges is out of the game one
        # round before announce can tell it so: nothing will ever be
        # addressed to it again.
        if MULTICOLOURED not in st.estate:
            st.coasting = True

    # -- Phase II colour pipeline ---------------------------------------

    def _cv_update(self, state: _State, inbox: Sequence[Any], nxt: int) -> _State:
        st = state.evolve(nxt)
        forests = state.forests
        if not forests:
            return st
        child = state.child_forests()
        colour_f = dict(state.colour_f)
        st.colour_f = colour_f
        for i in forests:
            if i in child:
                parent_colour = inbox[child[i]]
                if parent_colour is None:
                    raise AssertionError("missing parent colour in CV round")
                colour_f[i] = cv_step_colour(colour_f[i], parent_colour)
            else:  # root of its tree in forest i
                colour_f[i] = cv_step_colour(
                    colour_f[i], cv_pseudo_parent(colour_f[i])
                )
        return st

    def _shift_down_update(
        self, state: _State, inbox: Sequence[Any], nxt: int
    ) -> _State:
        st = state.evolve(nxt)
        forests = state.forests
        if not forests:
            return st
        child = state.child_forests()
        parents = state.parent_forests()
        colour_f = dict(state.colour_f)
        children_colour_f = dict(state.children_colour_f)
        st.colour_f = colour_f
        st.children_colour_f = children_colour_f
        for i in forests:
            prev = colour_f[i]
            if i in child:
                parent_colour = inbox[child[i]]
                if parent_colour is None:
                    raise AssertionError("missing parent colour in shift-down")
                colour_f[i] = parent_colour
            else:
                colour_f[i] = shift_down_root_colour(prev)
            # After shift-down all children of this node wear its old
            # colour; remember it for the elimination that follows.
            children_colour_f[i] = prev if i in parents else None
        return st

    def _eliminate_update(
        self, state: _State, inbox: Sequence[Any], nxt: int, target: int
    ) -> _State:
        st = state.evolve(nxt)
        hit = [i for i in state.forests if state.colour_f[i] == target]
        if not hit:
            return st
        child = state.child_forests()
        colour_f = dict(state.colour_f)
        st.colour_f = colour_f
        for i in hit:
            parent_colour = inbox[child[i]] if i in child else None
            colour_f[i] = eliminate_class_colour(
                colour_f[i], target, parent_colour,
                state.children_colour_f.get(i),
            )
        return st

    # -- Phase II star saturation ---------------------------------------

    @staticmethod
    def _head_process_requests(
        state: _State, inbox: Sequence[Any], nxt: int, forest: int
    ) -> _State:
        """The paper's α-rule: saturate all leaves or the root exactly."""
        st = state.evolve(nxt)
        forest_in = state.forest_in
        requests: Optional[List[Tuple[int, Any]]] = None
        for p, msg in enumerate(inbox):
            if msg is not None and forest_in[p] == forest and msg[0] == "req":
                if requests is None:
                    requests = []
                requests.append((p, msg[1]))
        if requests is None:
            return st
        st.y = list(state.y)
        st.estate = list(state.estate)
        st.star_replies = dict(state.star_replies)
        if not st.r:
            for p, _ru in requests:
                st.star_replies[p] = ("full",)
                st.estate[p] = SATURATED
            return st
        total = sum(ru for _p, ru in requests)
        scale_down = total > st.r
        for p, ru in requests:
            # alpha = total / r;  alpha <= 1: give each leaf its full
            # residual; alpha > 1: scale down so the root saturates.
            # The scaled-down value leaves the Lemma 2 grid, so this is
            # the documented fall-back to Fraction arithmetic.
            delta_y = ru * st.r / total if scale_down else ru
            st.y[p] += delta_y
            st.star_replies[p] = ("inc", delta_y)
            st.estate[p] = SATURATED
        st.r = st.r - (st.r if scale_down else total)
        if st.r < 0:
            raise AssertionError("residual went negative in star saturation")
        return st

    @staticmethod
    def _leaf_process_reply(
        state: _State, inbox: Sequence[Any], nxt: int, forest: int
    ) -> _State:
        st = state.evolve(nxt)
        p = EdgePackingMachine._port_of_forest(state, forest)
        if p is None:
            return st
        msg = inbox[p]
        if msg is None:
            return st
        st.estate = list(state.estate)
        if msg[0] == "full":
            st.estate[p] = SATURATED
        elif msg[0] == "inc":
            delta_y = msg[1]
            st.y = list(state.y)
            st.y[p] += delta_y
            st.r = st.r - delta_y
            if st.r < 0:
                raise AssertionError("residual went negative at a star leaf")
            st.estate[p] = SATURATED
        else:
            raise AssertionError(f"unexpected star reply {msg!r}")
        return st

    # -- columnar kernels (engine="columnar") ---------------------------
    #
    # Phase I on int64 columns: the Lemma 2 grid makes every Phase I
    # quantity a plain machine integer (numerators against the shared
    # (Δ!)^Δ denominator, mixed-radix colour digits), so the 2Δ+1
    # leading rounds vectorise as whole-array passes over a
    # StateLayout.  The kernels reproduce _absorb_saturation_bits /
    # the p1a offer / _p1b_update / _finish_phase_one *exactly* —
    # tests/test_columnar_engine.py pins bit-for-bit equality of every
    # RunResult field against the object engine and run_reference.

    #: int64 columns must never overflow; the largest value any column
    #: reaches is a colour accumulator < radix^Δ.
    _COLUMNAR_INT_BOUND = 2 ** 63

    def columnar_fields(
        self, graph: PortNumberedGraph, ctxs: Sequence[LocalContext]
    ) -> Optional[ColumnarPlan]:
        """Phase I (2Δ+1 rounds) as int64 columns, when the grid fits.

        Engages only for scaled-arithmetic digit-mode runs whose colour
        accumulators provably fit an ``int64`` (``radix^Δ < 2^63``).
        Anything else — fraction mode, bignum radix, missing/invalid
        globals (the object path raises the canonical error) — returns
        ``None``: falling back is always correct, engaging wrongly
        never is.
        """
        if self.arithmetic != "scaled" or not ctxs:
            return None
        g = ctxs[0].globals
        delta = g.get("delta")
        W = g.get("W")
        if not isinstance(delta, int) or isinstance(delta, bool):
            return None
        if not isinstance(W, int) or isinstance(W, bool):
            return None
        if delta < 1 or W < 1:
            return None
        den = factorial(delta) ** delta
        radix = W * den + 1
        if radix.bit_length() > 64:
            return None  # not digit mode: start() falls back to Fraction
        if radix ** delta >= self._COLUMNAR_INT_BOUND:
            return None  # colour accumulators would overflow int64
        return ColumnarPlan(
            rounds=2 * delta + 1,
            node_fields=(
                ("w", 0), ("r_num", 0), ("x_num", -1), ("own_acc", 0),
            ),
            edge_fields=(("y_num", 0), ("estate", _ACT), ("nbr_acc", 0)),
        )

    def start_columnar(
        self, layout: "state_layout.StateLayout", ctxs: Sequence[LocalContext]
    ) -> None:
        ctx0 = ctxs[0]
        delta = ctx0.require_global("delta")
        W = ctx0.require_global("W")
        den, _zero, one = self._scaled_constants(ctx0)
        sched, sched_len = self._sched(ctx0)
        weights = []
        for ctx in ctxs:  # same validation (and messages) as start()
            w = ctx.input
            if not isinstance(w, int) or isinstance(w, bool) or w < 1:
                raise ValueError(
                    f"node weight must be a positive int, got {w!r}"
                )
            if ctx.degree > delta:
                raise ValueError(f"node degree {ctx.degree} exceeds Δ={delta}")
            if w > W:
                raise ValueError(f"node weight {w} exceeds W={W}")
            weights.append(w)
        w_col = layout.node["w"]
        w_col[:] = weights
        layout.node["r_num"][:] = w_col * den
        # x_num stays -1 (no offer yet); own_acc/y_num/nbr_acc stay 0,
        # estate stays ACTIVE — the declared fill values.
        layout.aux["ep"] = {
            "delta": delta, "den": den, "radix": W * den + 1, "one": one,
            "sched": sched, "sched_len": sched_len,
            "offers": [],  # per-p1b-round offer columns (rebuilds own_seq)
        }

    def emit_columnar(self, layout: "state_layout.StateLayout", r: int):
        np = state_layout.np
        aux = layout.aux["ep"]
        if r % 2 == 0:  # p1a / p1_settle: the saturation bit, every port
            values = (layout.node["r_num"] == 0).astype(np.int64)
            return values, np.ones(layout.n, dtype=bool), _decode_saturation
        # p1b: the current offer; x_num < 0 encodes None (no offer)
        x_num = layout.node["x_num"]
        return x_num, x_num >= 0, partial(_decode_offer, den=aux["den"])

    def step_columnar(
        self, layout: "state_layout.StateLayout", r: int,
        inbox_vals, inbox_sent,
    ) -> None:
        np = state_layout.np
        aux = layout.aux["ep"]
        delta, den, radix = aux["delta"], aux["den"], aux["radix"]
        r_num = layout.node["r_num"]
        x_num = layout.node["x_num"]
        estate = layout.edge["estate"]
        owner = layout.edge_owner

        if r % 2 == 0:  # p1a / p1_settle
            # _absorb_saturation_bits: own saturation dominates (all
            # ports), a neighbour's bit saturates the one shared edge.
            estate[(r_num == 0)[owner] | (inbox_sent & (inbox_vals != 0))] \
                = _SAT
            if r == 2 * delta:
                self._settle_columnar(layout)
                return
            # p1a: offer r / deg_active where both are positive.
            active_deg = layout.node_count(estate == _ACT)
            x_num[:] = -1
            idx = np.nonzero((r_num > 0) & (active_deg > 0))[0]
            if len(idx):
                q, rem = np.divmod(r_num[idx], active_deg[idx])
                if rem.any():
                    raise AssertionError(
                        "inexact scaled division — the Lemma 2 denominator "
                        "bound does not cover a Phase I offer"
                    )
                x_num[idx] = q
            return

        # p1b: grow colour accumulators, accept offers on active edges.
        aux["offers"].append(x_num.copy())
        own_digit = np.where(x_num >= 0, x_num, den)
        nbr_digit = np.where(inbox_sent, inbox_vals, den)
        if (
            ((own_digit <= 0) | (own_digit >= radix)).any()
            or ((nbr_digit <= 0) | (nbr_digit >= radix)).any()
        ):
            raise ValueError(
                f"Lemma 2 violated: colour element outside (0, W] "
                f"(radix {radix})"
            )
        layout.node["own_acc"][:] = layout.node["own_acc"] * radix + own_digit
        layout.edge["nbr_acc"][:] = layout.edge["nbr_acc"] * radix + nbr_digit
        active = estate == _ACT
        own_on_edge = x_num[owner]
        if bool((active & ((own_on_edge < 0) | ~inbox_sent)).any()):
            raise AssertionError(
                "active edge without mutual offers — state desync"
            )
        delta_y = np.where(active, np.minimum(own_on_edge, inbox_vals), 0)
        layout.edge["y_num"] += delta_y
        r_num -= layout.node_sum(delta_y)
        if (r_num < 0).any():
            raise AssertionError("residual went negative — packing infeasible")
        # Own saturation dominates mismatch (the object engine's
        # `if not st.r ... elif mismatched` order).
        newly_sat = (r_num == 0)[owner]
        estate[active & (own_digit[owner] != nbr_digit) & ~newly_sat] = _MUL
        estate[newly_sat] = _SAT

    def _settle_columnar(self, layout: "state_layout.StateLayout") -> None:
        """The _finish_phase_one invariants, checked column-wise."""
        estate = layout.edge["estate"]
        if bool((estate == _ACT).any()):
            raise AssertionError(
                "active edge survived Phase I — Lemma 1 violated (is the "
                "global Δ parameter really an upper bound on the degree?)"
            )
        own = layout.node["own_acc"][layout.edge_owner]
        if bool(((estate == _MUL) & (own == layout.edge["nbr_acc"])).any()):
            raise AssertionError("multicoloured edge with equal colours")

    def finish_columnar(
        self, layout: "state_layout.StateLayout", ctxs: Sequence[LocalContext]
    ) -> List[_State]:
        """Materialise post-settle _State objects for the object engine.

        Field-for-field what 2Δ+1 object-engine rounds would have left:
        the differential suite compares these states (and everything
        derived from them) with ``==``, so every reconstruction below
        must match _finish_phase_one's read-off exactly.
        """
        aux = layout.aux["ep"]
        delta, den, radix = aux["delta"], aux["den"], aux["radix"]
        one, sched, sched_len = aux["one"], aux["sched"], aux["sched_len"]
        offsets = layout.offsets.tolist()
        w_col = layout.node["w"].tolist()
        # One interning table across every column on the shared grid:
        # Phase I produces a handful of distinct values over thousands
        # of entries, and the shared instances also pool the lazy
        # as_fraction caches the output() read-off hits later.
        interned: Dict[int, ScaledInt] = {}
        r_col = column_scaled(
            layout.node["r_num"].tolist(), den, den, cache=interned
        )
        x_col = layout.node["x_num"].tolist()
        acc_col = layout.node["own_acc"].tolist()
        y_col = column_scaled(
            layout.edge["y_num"].tolist(), den, den, cache=interned
        )
        est_col = [_EST_CODES[c] for c in layout.edge["estate"].tolist()]
        nbr_col = layout.edge["nbr_acc"].tolist()
        offer_cols = []
        for col in aux["offers"]:
            vals = []
            for o in col.tolist():
                if o < 0:
                    vals.append(one)  # no offer that round
                else:
                    v = interned.get(o)
                    if v is None:
                        v = ScaledInt(o, den, den)
                        interned[o] = v
                    vals.append(v)
            offer_cols.append(vals)
        idx0 = 2 * delta + 1
        # Per-node structures are built under the _State copy-on-write
        # discipline (see _State.evolve: shared containers are replaced,
        # never mutated), so identical values may share one object —
        # across rounds *and* across nodes.  The caches below exploit
        # that: most nodes end Phase I with no multicoloured edges, and
        # their empty containers, per-degree fillers and (on uniform
        # instances) whole colour sequences collapse to a handful of
        # shared objects.
        has_mul = (
            layout.node_count(layout.edge["estate"] == _MUL) > 0
        ).tolist()
        no_ports: List[int] = []
        no_forests: Dict[int, int] = {}
        no_colours: Dict[int, int] = {}
        empty_children: Dict[int, Optional[int]] = {}
        empty_replies: Dict[int, Tuple] = {}
        forest_in_by_d: Dict[int, List[Optional[int]]] = {}
        nbr_seq_by_d: Dict[int, Tuple] = {}
        own_seq_cache: Dict[Tuple, Tuple] = {}
        states: List[_State] = []
        for v in range(layout.n):
            s, e = offsets[v], offsets[v + 1]
            d = e - s
            estate_v = est_col[s:e]
            nbr_acc_v = tuple(nbr_col[s:e])
            colour_int = acc_col[v]
            x_v = x_col[v]
            if has_mul[v]:
                out_ports = [
                    p for p in range(d)
                    if estate_v[p] == MULTICOLOURED
                    and colour_int < nbr_acc_v[p]
                ]
                forest_of_out = {p: i for i, p in enumerate(out_ports)}
                colour_f = {i: colour_int for i in forest_of_out.values()}
            else:
                out_ports = no_ports
                forest_of_out = no_forests
                colour_f = no_colours
            forest_in = forest_in_by_d.get(d)
            if forest_in is None:
                forest_in = forest_in_by_d[d] = [None] * d
                nbr_seq_by_d[d] = ((),) * d
            own_seq = tuple(col[v] for col in offer_cols)
            own_seq = own_seq_cache.setdefault(own_seq, own_seq)
            st = _State.__new__(_State)
            st.__dict__ = {
                "idx": idx0,
                "w": w_col[v],
                "r": r_col[v],
                "y": y_col[s:e],
                "estate": estate_v,
                "own_seq": own_seq,
                "digit_mode": True,
                "own_acc": colour_int,
                "nbr_acc": nbr_acc_v,
                "nbr_seq": nbr_seq_by_d[d],
                "scale": den,
                "radix": radix,
                # A standing offer is always the node's last p1b column
                # entry, so it is already interned (offers are > 0).
                "x_cur": interned[x_v] if x_v >= 0 else None,
                "unit": one,
                "colour_int": colour_int,
                "nbr_colour": list(nbr_acc_v),
                "out_ports": out_ports,
                "forest_of_out": forest_of_out,
                "forest_in": forest_in,
                "colour_f": colour_f,
                "children_colour_f": empty_children,
                "star_replies": empty_replies,
                "sched": sched,
                "sched_len": sched_len,
                "forests": (),
                "down_ports": (),
                "coasting": not has_mul[v],
            }
            states.append(st)
        return states


# ----------------------------------------------------------------------
# Top-level convenience API
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class EdgePackingResult:
    """A maximal edge packing plus execution metadata.

    ``y`` maps each edge id of ``graph`` to its exact packing value;
    ``saturated`` is the set of saturated nodes (= the vertex cover);
    ``rounds`` is the measured synchronous round count.
    """

    graph: PortNumberedGraph
    weights: Tuple[int, ...]
    y: Dict[int, Fraction]
    saturated: frozenset
    rounds: int
    run: RunResult

    def packing_value(self) -> Fraction:
        """Σ_e y(e) — the dual objective (lower bound on OPT)."""
        return sum(self.y.values(), Fraction(0))

    def cover_weight(self) -> int:
        return sum(self.weights[v] for v in self.saturated)


def edge_packing_job(
    graph: PortNumberedGraph,
    weights: Sequence[int],
    delta: Optional[int] = None,
    W: Optional[int] = None,
    max_rounds: Optional[int] = None,
    metering: Any = "bits",
    arithmetic: str = "scaled",
    engine: str = "object",
    shards: int = 1,
) -> Dict[str, Any]:
    """A validated :func:`repro.simulator.runtime.run` kwargs mapping.

    Suitable as a :func:`repro.simulator.runtime.sweep` instance;
    assemble the resulting :class:`RunResult` with
    :func:`edge_packing_from_run`.  ``engine`` selects the execution
    substrate (see :data:`repro.simulator.runtime.ENGINES`) and
    ``shards`` the intra-run partition width (see
    :mod:`repro.simulator.sharding`); results are bit-for-bit
    identical across engines and shard counts.
    """
    weights = tuple(int(w) for w in weights)
    if delta is None:
        delta = graph.max_degree
    if W is None:
        W = max_weight(weights)
    validate_weights(weights, graph.n, W)
    needed = schedule_length(delta, W)
    job = {
        "graph": graph,
        "machine": EdgePackingMachine(arithmetic=arithmetic),
        "inputs": list(weights),
        "globals_map": {"delta": delta, "W": W},
        "max_rounds": needed if max_rounds is None else max_rounds,
        "metering": metering,
    }
    if engine != "object":
        # Included only when non-default, so the mapping stays a valid
        # run_reference() kwargs set for the default configuration.
        job["engine"] = engine
    if shards != 1:
        # Same rule: run_reference() takes no shards kwarg.
        job["shards"] = shards
    return job


def edge_packing_from_run(
    graph: PortNumberedGraph,
    weights: Sequence[int],
    result: RunResult,
) -> EdgePackingResult:
    """Assemble an :class:`EdgePackingResult` from a finished run.

    The per-edge values reported by the two endpoints are
    cross-checked; a mismatch would indicate a protocol bug, so it
    raises.
    """
    weights = tuple(int(w) for w in weights)
    if not result.all_halted:
        raise RuntimeError(
            f"edge packing did not halt within {result.rounds} rounds"
        )
    y: Dict[int, Fraction] = {}
    for v in graph.nodes():
        out_v = result.outputs[v]
        for p in range(graph.degree(v)):
            e = graph.edge_of_port(v, p)
            val = out_v["y"][p]
            if e in y:
                if y[e] != val:
                    raise AssertionError(
                        f"endpoint disagreement on edge {e}: {y[e]} vs {val}"
                    )
            else:
                y[e] = val
    saturated = frozenset(
        v for v in graph.nodes() if result.outputs[v]["in_cover"]
    )
    return EdgePackingResult(
        graph=graph,
        weights=weights,
        y=y,
        saturated=saturated,
        rounds=result.rounds,
        run=result,
    )


def maximal_edge_packing(
    graph: PortNumberedGraph,
    weights: Sequence[int],
    delta: Optional[int] = None,
    W: Optional[int] = None,
    max_rounds: Optional[int] = None,
    metering: Any = "bits",
    arithmetic: str = "scaled",
    engine: str = "object",
    shards: int = 1,
) -> EdgePackingResult:
    """Run the Section 3 algorithm and assemble the packing.

    ``delta`` and ``W`` default to the instance's true maximum degree
    and weight; the paper allows any upper bounds, which callers may
    pass to study the round-count dependence.  ``metering`` is passed
    through to the runtime (see
    :class:`repro.simulator.runtime.Metering`); pass ``"none"`` for
    large perf runs where only the packing matters.  ``arithmetic``
    selects the machine's exact number representation (see
    :class:`EdgePackingMachine`); ``engine`` the execution substrate
    (see :data:`repro.simulator.runtime.ENGINES`); ``shards`` the
    intra-run partition width (see :mod:`repro.simulator.sharding`,
    bit-for-bit identical across counts).  A ``max_rounds``
    too small for the schedule fails loudly with
    :class:`~repro.simulator.runtime.MaxRoundsExceeded` (round count
    and non-halted node ids) — never a partial packing.
    """
    job = edge_packing_job(
        graph, weights, delta=delta, W=W, max_rounds=max_rounds,
        metering=metering, arithmetic=arithmetic, engine=engine,
        shards=shards,
    )
    job.pop("graph")
    machine = job.pop("machine")
    try:
        result = run_port_numbering(
            graph, machine, on_max_rounds="raise", **job
        )
    except MaxRoundsExceeded as exc:
        needed = schedule_length(
            delta if delta is not None else graph.max_degree,
            W if W is not None else max_weight(tuple(int(w) for w in weights)),
        )
        raise MaxRoundsExceeded(
            exc.rounds, exc.non_halted,
            detail=f"the edge-packing schedule needs exactly {needed} rounds",
        ) from None
    return edge_packing_from_run(graph, weights, result)
