"""The tracer core: spans, events, counters, and the install plumbing.

One :class:`Tracer` per traced region.  The instrumented modules never
hold a tracer; they ask :func:`current` at their instrumentation site
and do nothing when it returns ``None`` — that single global read +
``None`` check is the entire cost of disabled tracing (the no-op fast
path ``benchmarks/bench_obs.py`` gates).

Worker processes cannot see the parent's tracer.  They build their own
(:func:`install` is per-process), and ship its buffers back with their
results via :meth:`Tracer.drain_remote`; the parent merges them with
:meth:`Tracer.absorb` under a distinct pid lane, yielding one trace
for the whole fleet.

Timestamps are microseconds since the tracer's creation, on
:func:`clock` (the monotonic performance counter).  Absorbed worker
lanes keep their own timebase — lanes are independent in the Chrome
trace model, and cross-process clock alignment would be a lie.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Tracer",
    "clock",
    "current",
    "install",
    "uninstall",
    "tracing",
]

#: The process-wide wall clock every timed code path in ``src/`` uses
#: (``tools/check_no_raw_timers.py`` forbids direct ``perf_counter``
#: use outside this package, so timing stays observable in one place).
clock = time.perf_counter

_CURRENT: Optional["Tracer"] = None


def current() -> Optional["Tracer"]:
    """The installed tracer, or ``None`` (tracing disabled).

    This is the no-op fast path: instrumentation sites call it once,
    check for ``None`` and pay nothing further when tracing is off.
    """
    return _CURRENT


def install(tracer: Optional["Tracer"]) -> Optional["Tracer"]:
    """Install ``tracer`` process-wide; returns the previous one."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = tracer
    return previous


def uninstall() -> None:
    """Remove the installed tracer (idempotent)."""
    install(None)


@contextmanager
def tracing(tracer: Optional["Tracer"]) -> Iterator[Optional["Tracer"]]:
    """Install ``tracer`` for a ``with`` region, restoring on exit.

    ``tracing(None)`` is a no-op region (tracing stays off), so
    callers can thread an optional tracer without branching.
    """
    previous = install(tracer)
    try:
        yield tracer
    finally:
        install(previous)


class Tracer:
    """Collects spans, typed events, counters and histograms.

    Append-only and lock-light: span/event records append pre-built
    dicts (atomic under the GIL); counter and histogram updates take a
    small lock (they read-modify-write).  All methods are safe to call
    from multiple threads — the thread id becomes the Chrome ``tid``
    lane, keeping per-thread spans properly nested.
    """

    def __init__(self, label: str = "main"):
        self.label = label
        self._t0 = clock()
        self._events: List[Dict[str, Any]] = []
        self._counters: Dict[str, int] = {}
        self._hists: Dict[str, List[float]] = {}
        self._lock = threading.Lock()
        self._tids: Dict[int, int] = {}
        self._lanes: List[str] = []  # absorbed worker lane labels

    # -- time ------------------------------------------------------------

    def now(self) -> float:
        """Microseconds since this tracer was created."""
        return (clock() - self._t0) * 1e6

    def _tid(self) -> int:
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            with self._lock:
                tid = self._tids.setdefault(ident, len(self._tids))
        return tid

    # -- spans -----------------------------------------------------------

    @contextmanager
    def span(self, name: str, **args: Any) -> Iterator[None]:
        """Record a complete-span ("X") event around a ``with`` body."""
        t0 = self.now()
        try:
            yield
        finally:
            self.complete(name, t0, **args)

    def complete(self, name: str, start_us: float, **args: Any) -> None:
        """Record a complete span begun at ``start_us`` (from :meth:`now`).

        The open-coded form of :meth:`span` for hot loops, where a
        context manager per round would dominate the measurement.
        """
        now = self.now()
        self._events.append({
            "name": name,
            "ph": "X",
            "ts": start_us,
            "dur": max(0.0, now - start_us),
            "pid": 0,
            "tid": self._tid(),
            "args": args,
        })

    # -- typed events / registries --------------------------------------

    def event(self, name: str, **args: Any) -> None:
        """Record an instant ("i") event with structured args."""
        self._events.append({
            "name": name,
            "ph": "i",
            "ts": self.now(),
            "pid": 0,
            "tid": self._tid(),
            "s": "t",
            "args": args,
        })

    def count(self, name: str, delta: int = 1) -> None:
        """Bump a monotonic counter."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + delta

    def observe(self, name: str, value: float) -> None:
        """Append a sample to a histogram series."""
        with self._lock:
            self._hists.setdefault(name, []).append(float(value))

    @property
    def counters(self) -> Dict[str, int]:
        """A snapshot of the counter registry."""
        with self._lock:
            return dict(self._counters)

    @property
    def histograms(self) -> Dict[str, List[float]]:
        """A snapshot of the histogram registry."""
        with self._lock:
            return {k: list(v) for k, v in self._hists.items()}

    def events(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        """The recorded events (optionally filtered by name), a copy."""
        if name is None:
            return list(self._events)
        return [e for e in self._events if e["name"] == name]

    # -- worker merge ----------------------------------------------------

    def drain_remote(self) -> Dict[str, Any]:
        """This tracer's buffers as one picklable payload.

        Called worker-side at the end of a chunk/op so the spans ride
        back with the results; the parent passes the payload to
        :meth:`absorb`.
        """
        with self._lock:
            return {
                "label": self.label,
                "os_pid": os.getpid(),
                "events": list(self._events),
                "counters": dict(self._counters),
                "hists": {k: list(v) for k, v in self._hists.items()},
            }

    def absorb(self, remote: Optional[Dict[str, Any]],
               lane: Optional[str] = None) -> None:
        """Merge a worker payload (:meth:`drain_remote`) into this trace.

        The payload's events land on a fresh pid lane (named ``lane``,
        default the payload's label), its counters add into the
        registry, and its histogram samples append.  ``None`` payloads
        are ignored, so callers can ship them unconditionally.
        """
        if not remote:
            return
        with self._lock:
            self._lanes.append(lane or remote.get("label", "worker"))
            pid = len(self._lanes)  # 0 is the parent lane
        for e in remote.get("events", ()):
            e = dict(e)
            e["pid"] = pid
            self._events.append(e)
        with self._lock:
            for name, delta in remote.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + delta
            for name, samples in remote.get("hists", {}).items():
                self._hists.setdefault(name, []).extend(samples)

    # -- export ----------------------------------------------------------

    def chrome(self) -> Dict[str, Any]:
        """The trace as a Chrome trace-event JSON object.

        ``traceEvents`` holds the spans/instants plus process-name
        metadata for every lane and a final counter ("C") sample;
        counters and histograms also appear under ``metadata`` for
        programmatic readers (the ``summarize`` view, ``HostReport``).
        """
        with self._lock:
            lanes = list(self._lanes)
            counters = dict(self._counters)
            hists = {k: list(v) for k, v in self._hists.items()}
        events: List[Dict[str, Any]] = [{
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": self.label},
        }]
        for i, lane in enumerate(lanes):
            events.append({
                "name": "process_name",
                "ph": "M",
                "pid": i + 1,
                "tid": 0,
                "args": {"name": lane},
            })
        events.extend(self._events)
        if counters:
            events.append({
                "name": "counters",
                "ph": "C",
                "ts": self.now(),
                "pid": 0,
                "tid": 0,
                "args": counters,
            })
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "metadata": {
                "label": self.label,
                "counters": counters,
                "histograms": hists,
            },
        }

    def dump(self, path: str) -> None:
        """Write :meth:`chrome` JSON to ``path``."""
        with open(path, "w") as fh:
            json.dump(self.chrome(), fh)

    def summarize(self) -> str:
        """The human view (see :func:`repro.obs.export.summarize_trace`)."""
        from repro.obs.export import summarize_trace

        return summarize_trace(self.chrome())
