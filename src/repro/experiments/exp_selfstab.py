"""EXP-SS — §1.5 remark: self-stabilisation via the [23] transformer.

The paper notes its algorithms convert into efficient self-stabilising
algorithms by standard techniques.  This experiment transforms the
Section 3 edge-packing machine, subjects it to every fault kind the
simulator models — transient state corruption plus the message-level
adversaries (loss, duplication, corruption) and crash-recover churn,
see :mod:`repro.simulator.faults` — at several fault rates, and
measures:

* whether the output equals the fault-free reference exactly T rounds
  after faults stop (T = the wrapped machine's schedule length);
* the message-size overhead (factor ~T, the price of the pipeline).

The per-case runs go through the batched
:func:`repro.simulator.runtime.sweep` API (each case carries its own
transformed machine, so replay memos stay per-instance); pass
``n_workers`` to execute cases on a pool.  The message/crash
adversaries are ``process_safe`` (their schedule is a pure hash of the
seed), so ``backend="process"`` is allowed for them; the ``"state"``
kind keeps a parent-side corruption counter and is rejected on the
process backend — use the default thread pool when it is in the mix.
Note the "corruptions injected" column reads the parent-side
``adversary.events`` counters, which worker processes do not transport
back: prefer the thread pool when the counts (not just recovery)
matter.
``replay`` selects the pipeline recompute strategy of the transformer
(``"incremental"`` skips levels whose inputs did not change,
``"scratch"`` recomputes all T+1 levels every round — identical
results, see :mod:`repro.selfstab.transformer`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.edge_packing import EdgePackingMachine, maximal_edge_packing, schedule_length
from repro.experiments.common import ExperimentTable
from repro.graphs import families
from repro.graphs.weights import uniform_weights
from repro.selfstab.transformer import SelfStabilisingMachine
from repro.simulator.faults import FAULT_KINDS, adversary_from_spec
from repro.simulator.runtime import sweep

__all__ = ["run", "main"]

#: Every adversary kind the experiment drills by default ("none" is
#: the degenerate fault-free row and is excluded).
ACTIVE_FAULT_KINDS = tuple(k for k in FAULT_KINDS if k != "none")


def run(
    rates: Optional[List[float]] = None,
    n: int = 6,
    n_workers: Optional[int] = None,
    backend: Optional[str] = None,
    replay: str = "incremental",
    fault_kinds: Optional[List[str]] = None,
) -> ExperimentTable:
    rates = rates or [0.0, 0.1, 0.3, 0.6]
    fault_kinds = list(fault_kinds or ACTIVE_FAULT_KINDS)
    g = families.cycle_graph(n)
    w = uniform_weights(n, 3, seed=4)
    delta, W = 2, 3
    horizon = schedule_length(delta, W)
    reference = maximal_edge_packing(g, w, delta=delta, W=W).run.outputs
    faulty_rounds = 10

    table = ExperimentTable(
        experiment_id="EXP-SS",
        title=(
            f"self-stabilising edge packing on the {n}-cycle "
            f"(T = {horizon} rounds, faults for {faulty_rounds} rounds)"
        ),
        columns=[
            "fault kind",
            "fault rate",
            "corruptions injected",
            "recovered within T",
            "output == reference",
        ],
    )
    cases = [(kind, rate) for kind in fault_kinds for rate in rates]
    adversaries = [
        adversary_from_spec(
            kind, until_round=faulty_rounds, rate=rate, seed=21
        )
        for kind, rate in cases
    ]
    jobs: List[Dict[str, Any]] = [
        {
            "graph": g,
            "machine": SelfStabilisingMachine(
                EdgePackingMachine(), horizon, replay=replay
            ),
            "inputs": list(w),
            "globals_map": {"delta": delta, "W": W},
            "max_rounds": faulty_rounds + horizon,
            "fault_adversary": adversary,
        }
        for adversary in adversaries
    ]
    results = sweep(jobs, n_workers=n_workers, backend=backend)

    for (kind, rate), adversary, res in zip(cases, adversaries, results):
        match = res.outputs == reference
        table.add_row(
            **{
                "fault kind": kind,
                "fault rate": rate,
                "corruptions injected": adversary.events,
                "recovered within T": match,
                "output == reference": match,
            }
        )
    assert all(table.column("recovered within T"))
    table.add_note(
        "paper claim (§1.5, via [23]): deterministic strictly-local "
        "algorithms self-stabilise with stabilisation time T — HOLDS for "
        "every fault kind at every rate tested"
    )
    return table


def main() -> None:
    print(run(n_workers=2).render())


if __name__ == "__main__":
    main()
