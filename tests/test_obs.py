"""Tracing on ≡ tracing off, bit for bit — plus trace well-formedness.

The observability layer (:mod:`repro.obs`) promises three things:

1. **No observer effect.**  Installing a tracer changes *nothing* about
   a run's results: every :class:`~repro.simulator.runtime.RunResult`
   field is identical traced and untraced, on every engine (object,
   columnar, reference, sharded), every pool backend, and every
   dynamic/serving mode.  This suite is that contract's differential
   pin, mirroring ``tests/test_shard_differential.py``.
2. **Disabled is a no-op.**  With no tracer installed, instrumentation
   sites reduce to one global read and a ``None`` check
   (``benchmarks/bench_obs.py`` gates the overhead; here we pin the
   API behaviour: ``current()`` is ``None``, nothing is recorded).
3. **One merged trace.**  Worker-side spans (process-pool chunks,
   shard sessions, serving workers) ship back with the results and
   land in the parent trace under distinct pid lanes, so a sharded or
   pooled run still yields a single loadable Chrome trace.

Also covers the :func:`repro.simulator.sharding.last_shard_decision`
accessor (the thread-local replacement for the racy ``LAST_DECISION``
global, which stays as a deprecated mirror).
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.core.edge_packing import EdgePackingMachine, schedule_length
from repro.dynamic import DynamicRun, RandomChurn, SetCoverChurn, ServingHost
from repro.graphs import families
from repro.graphs.setcover import random_instance
from repro.graphs.weights import uniform_weights, unit_weights
from repro.obs import (
    COUNTER_NAMES,
    EVENT_NAMES,
    EV_DYNAMIC_BATCH,
    EV_ENGINE_FALLBACK,
    EV_ENGINE_SELECTED,
    EV_SHARD_DECISION,
    SPAN_NAMES,
    SPAN_ROUND,
    SPAN_RUN,
    summarize_trace,
)
from repro.simulator import sharding
from repro.simulator.runtime import run, run_reference, sweep

from helpers import assert_run_results_equal

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


@pytest.fixture(autouse=True)
def no_leftover_tracer():
    """Every test starts and ends with tracing off."""
    obs.uninstall()
    yield
    obs.uninstall()


def _vc_case(n=24, W=3, seed=1):
    graph = families.cycle_graph(n)
    weights = (
        unit_weights(n) if W <= 1 else uniform_weights(n, W, seed=seed)
    )
    machine = EdgePackingMachine()
    delta = graph.max_degree
    return dict(
        graph=graph,
        machine=machine,
        inputs=list(weights),
        globals_map={"delta": delta, "W": max(weights)},
        max_rounds=schedule_length(delta, max(weights)),
    )


def _traced(fn, *args, **kwargs):
    tracer = obs.Tracer("test")
    with obs.tracing(tracer):
        result = fn(*args, **kwargs)
    return result, tracer


# ----------------------------------------------------------------------
# 1. No observer effect: traced ≡ untraced, field for field
# ----------------------------------------------------------------------


@pytest.mark.parametrize("engine", ["object", "columnar"])
def test_traced_equals_untraced_engines(engine):
    kw = _vc_case()
    base = run(**kw, engine=engine)
    traced, tracer = _traced(run, **kw, engine=engine)
    assert_run_results_equal(base, traced, "untraced", "traced")
    assert tracer.events(SPAN_RUN), "run span missing"
    assert tracer.events(EV_ENGINE_SELECTED)


def test_traced_equals_untraced_reference():
    kw = _vc_case()
    base = run_reference(**kw)
    traced, tracer = _traced(run_reference, **kw)
    assert_run_results_equal(base, traced, "untraced", "traced")
    (sel,) = tracer.events(EV_ENGINE_SELECTED)
    assert sel["args"]["engine"] == "reference"


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_traced_equals_untraced_sweep_backends(backend):
    from repro.core.edge_packing import edge_packing_job

    jobs = []
    for n in (16, 24):
        graph = families.cycle_graph(n)
        jobs.append(edge_packing_job(graph, unit_weights(n)))
    base = sweep(jobs, n_workers=2, backend=backend)
    traced, tracer = _traced(sweep, jobs, n_workers=2, backend=backend)
    for b, t in zip(base, traced):
        assert_run_results_equal(b, t, "untraced", "traced")
    # Worker (or worker-thread) round spans made it into the trace.
    assert tracer.events(SPAN_ROUND)


@pytest.mark.parametrize("shards", [2, 3])
def test_traced_equals_untraced_sharded(shards, monkeypatch):
    monkeypatch.setattr(sharding, "MIN_SHARD_NODES", 0)
    kw = _vc_case(n=32)
    base = run(**kw, shards=shards)
    assert sharding.last_shard_decision().engaged
    traced, tracer = _traced(run, **kw, shards=shards)
    assert_run_results_equal(base, traced, "untraced", "traced")
    data = tracer.chrome()
    lanes = {
        e["args"]["name"]
        for e in data["traceEvents"]
        if e.get("ph") == "M" and e["name"] == "process_name"
    }
    assert sum(1 for name in lanes if name.startswith("shard ")) == shards
    # Worker-side round spans live on non-parent lanes.
    worker_rounds = [
        e
        for e in data["traceEvents"]
        if e["name"] == SPAN_ROUND and e.get("pid", 0) > 0
    ]
    assert worker_rounds, "no worker-side round spans in the merged trace"
    assert tracer.events(EV_SHARD_DECISION)


@pytest.mark.parametrize("mode", ["incremental", "scratch"])
def test_traced_equals_untraced_dynamic(mode):
    def drive():
        graph = families.cycle_graph(24)
        session = DynamicRun.vertex_cover(
            graph, [2] * 24, mode=mode, delta=4
        )
        stream = RandomChurn(edits_per_batch=3, seed=7, max_degree=4)
        for _ in range(4):
            batch = stream.next_batch(session.graph, session.inputs)
            if batch:
                session.apply(batch)
        return session.result

    base = drive()
    traced, tracer = _traced(drive)
    assert_run_results_equal(base, traced, "untraced", "traced")
    assert tracer.events(EV_DYNAMIC_BATCH)


@pytest.mark.parametrize("mode", ["incremental", "scratch"])
def test_traced_equals_untraced_setcover_churn(mode):
    inst = random_instance(
        n_subsets=6, n_elements=10, k=4, f=3, W=3, seed=5
    )

    def drive():
        session = DynamicRun.set_cover(inst, mode=mode)
        stream = SetCoverChurn(
            edits_per_batch=3, seed=11, f=inst.f, k=inst.k, W=inst.W
        )
        applied = 0
        for _ in range(5):
            batch = stream.next_batch(session.graph, session.inputs)
            if batch:
                session.apply(batch)
                applied += len(batch)
        return session.result, applied

    (base, a0) = drive()
    (traced, a1), _ = _traced(drive)
    assert a0 == a1 and a0 > 0, "stream produced no edits"
    assert_run_results_equal(base, traced, "untraced", "traced")


def test_traced_equals_untraced_serving_inprocess():
    def drive():
        host = ServingHost(workers=0)
        graph = families.cycle_graph(16)
        solo = DynamicRun.vertex_cover(
            graph, [1] * 16, mode="incremental", delta=4
        )
        host.open_session("s", solo)
        stream = RandomChurn(edits_per_batch=2, seed=3, max_degree=4)
        for _ in range(3):
            batch = stream.next_batch(solo.graph, solo.inputs)
            if batch:
                host.apply("s", batch)
                solo.apply(batch)
        served = DynamicRun.restore(host.snapshot("s"))
        host.shutdown()
        return served.result

    base = drive()
    traced, _ = _traced(drive)
    assert_run_results_equal(base, traced, "untraced", "traced")


# ----------------------------------------------------------------------
# 2. Disabled tracing is a no-op
# ----------------------------------------------------------------------


def test_disabled_tracer_records_nothing():
    assert obs.current() is None
    kw = _vc_case()
    run(**kw)
    assert obs.current() is None


def test_tracing_none_is_noop_region():
    with obs.tracing(None):
        assert obs.current() is None


def test_tracing_restores_previous():
    outer = obs.Tracer("outer")
    with obs.tracing(outer):
        with obs.tracing(obs.Tracer("inner")):
            assert obs.current().label == "inner"
        assert obs.current() is outer
    assert obs.current() is None


# ----------------------------------------------------------------------
# 3. Trace well-formedness and export
# ----------------------------------------------------------------------


def test_chrome_trace_shape_and_vocabulary():
    kw = _vc_case()
    _, tracer = _traced(run, **kw)
    tracer.count("memo.hit", 3)
    tracer.observe("latency", 1.5)
    data = tracer.chrome()
    assert set(data) == {"traceEvents", "displayTimeUnit", "metadata"}
    known = set(SPAN_NAMES) | set(EVENT_NAMES) | {
        "process_name",
        "counters",
    }
    for e in data["traceEvents"]:
        assert e["name"] in known, e["name"]
        assert e["ph"] in ("X", "i", "C", "M")
        if e["ph"] == "X":
            assert e["dur"] >= 0.0
            assert e["ts"] >= 0.0
    assert data["metadata"]["counters"]["memo.hit"] == 3
    assert data["metadata"]["histograms"]["latency"] == [1.5]


def test_dump_roundtrip_and_summarize(tmp_path):
    kw = _vc_case()
    _, tracer = _traced(run, **kw)
    path = tmp_path / "trace.json"
    tracer.dump(str(path))
    data = json.loads(path.read_text())
    assert data["traceEvents"]
    text = summarize_trace(data)
    assert "run" in text and "round" in text
    assert "engine.selected" in text


def test_absorb_merges_lanes_and_counters():
    parent = obs.Tracer("parent")
    worker = obs.Tracer("worker")
    worker.event(EV_ENGINE_SELECTED, engine="object", shards=1, n=4, rounds=1)
    worker.count("memo.hit", 2)
    parent.count("memo.hit", 1)
    parent.absorb(worker.drain_remote(), lane="w0")
    parent.absorb(None)  # ignored
    assert parent.counters["memo.hit"] == 3
    data = parent.chrome()
    lanes = [
        e["args"]["name"]
        for e in data["traceEvents"]
        if e.get("ph") == "M"
    ]
    assert lanes == ["parent", "w0"]
    absorbed = [
        e
        for e in data["traceEvents"]
        if e.get("pid") == 1 and e.get("ph") != "M"
    ]
    assert absorbed and absorbed[0]["name"] == EV_ENGINE_SELECTED


def test_columnar_fallback_reason_recorded():
    # max_rounds below the columnar plan's horizon forces the typed
    # fallback to the object engine, with the reason in the event.
    kw = _vc_case()
    kw["max_rounds"] = 1
    tracer = obs.Tracer("t")
    with obs.tracing(tracer):
        run(**kw, engine="columnar", on_max_rounds="return")
    (selected,) = tracer.events(EV_ENGINE_SELECTED)
    assert selected["args"]["engine"] == "object"
    events = tracer.events(EV_ENGINE_FALLBACK)
    assert events
    assert events[0]["args"]["wanted"] == "columnar"
    assert "max_rounds" in events[0]["args"]["reason"]


def test_counter_names_vocabulary_is_exported():
    assert "memo.hit" in COUNTER_NAMES
    assert "serving.checkpoints" in COUNTER_NAMES
    assert all(isinstance(name, str) for name in COUNTER_NAMES)


# ----------------------------------------------------------------------
# 4. The last_shard_decision accessor (LAST_DECISION replacement)
# ----------------------------------------------------------------------


def test_last_shard_decision_accessor(monkeypatch):
    monkeypatch.setattr(sharding, "MIN_SHARD_NODES", 0)
    kw = _vc_case(n=32)
    run(**kw, shards=2)
    decision = sharding.last_shard_decision()
    assert decision is not None and decision.engaged
    assert decision.shards == 2
    # The deprecated module global mirrors the thread-local record.
    assert sharding.LAST_DECISION == decision


def test_last_shard_decision_fallback_reason():
    kw = _vc_case(n=8)  # far below MIN_SHARD_NODES
    run(**kw, shards=2)
    decision = sharding.last_shard_decision()
    assert decision is not None and not decision.engaged
    assert "MIN_SHARD_NODES" in decision.reason


def test_last_shard_decision_is_thread_local(monkeypatch):
    import threading

    monkeypatch.setattr(sharding, "MIN_SHARD_NODES", 0)
    kw = _vc_case(n=32)
    run(**kw, shards=2)
    seen = {}

    def probe():
        seen["other"] = sharding.last_shard_decision()

    t = threading.Thread(target=probe)
    t.start()
    t.join()
    assert seen["other"] is None  # fresh thread: no decision recorded
    assert sharding.last_shard_decision() is not None


def test_serving_report_counters_present():
    host = ServingHost(workers=0)
    report = host.report()
    assert set(report.counters) == {
        "serving.checkpoints",
        "serving.recoveries",
        "serving.replayed_batches",
    }
    assert all(v == 0 for v in report.counters.values())
