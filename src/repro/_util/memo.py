"""Content-addressed replay memoisation (the ``replay`` knob's engine).

Two hot paths in the tree re-derive machine states from inputs that
barely change between rounds:

* the Section 5 broadcast simulation
  (:class:`repro.core.broadcast_vc.BroadcastVertexCoverMachine`)
  replays every incident element machine from full message histories —
  histories that grow by exactly one entry per round;
* the self-stabilising transformer
  (:class:`repro.selfstab.transformer.SelfStabilisingMachine`)
  recomputes all T+1 pipeline levels every real round, although in a
  fault-free round almost every level sees exactly the (state, inbox)
  pair it saw the round before.

Both consumers share the machinery here.  Everything is
**content-addressed**: memo keys are (fingerprints of) the full input
values, so a hit is *semantically identical* to recomputing — caching
can change wall-clock time, never results.  The ``replay`` knob every
consumer exposes selects between

* ``"incremental"`` (default) — reuse content-matched work from the
  previous round; and
* ``"scratch"`` — the paper-literal recompute-everything path, kept as
  the executable reference contract (``tests/test_replay_memo.py``
  pins incremental ≡ scratch field-for-field).

Fingerprints are pickle byte strings.  That is safe in exactly one
direction, which is the direction we need: equal bytes reconstruct
equal values, so a fingerprint hit can never conflate two genuinely
different inputs.  Distinct bytes for equal values (pickle memo
effects, unreduced :class:`~repro._util.rationals.ScaledInt`
representations) only cause a spurious miss — a recompute, never a
wrong answer.  Hooks that depend on more than their arguments' values
(a per-node ``ctx.rng``) cannot be fingerprinted; consumers detect
that and fall back to the scratch path for the affected node.
"""

from __future__ import annotations

import pickle
from typing import Any, Dict, Hashable, Optional, Tuple

from repro._util.identity import IdentityMemo
from repro.obs import CTR_MEMO_HIT, CTR_MEMO_MISS
from repro.obs import current as _tracer

__all__ = [
    "REPLAY_INCREMENTAL",
    "REPLAY_SCRATCH",
    "REPLAY_MODES",
    "validate_replay",
    "content_fingerprint",
    "FingerprintCache",
    "ReplayMemo",
    "GenerationalMemo",
    "note_extension",
    "extension_parent",
]

REPLAY_INCREMENTAL = "incremental"
REPLAY_SCRATCH = "scratch"
REPLAY_MODES = (REPLAY_INCREMENTAL, REPLAY_SCRATCH)


def validate_replay(mode: str) -> str:
    """Validate a ``replay=`` argument, returning it unchanged."""
    if mode not in REPLAY_MODES:
        raise ValueError(
            f"unknown replay mode {mode!r}; expected one of {REPLAY_MODES}"
        )
    return mode


def content_fingerprint(value: Any) -> bytes:
    """A deterministic byte fingerprint of ``value``'s content.

    Equal fingerprints imply equal values (the bytes reconstruct the
    value), which is the only soundness direction a content-addressed
    memo needs.  Raises whatever :mod:`pickle` raises for
    unpicklable values — callers treat that as "not fingerprintable"
    and skip memoisation.
    """
    return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


class FingerprintCache:
    """Identity-memoised :func:`content_fingerprint` for reused objects.

    Machine states and contexts are treated as immutable values
    everywhere in this tree, and the same *objects* recur across rounds
    (a memo hit returns the stored state object; contexts live for the
    whole run).  Keying the fingerprint on object identity makes the
    steady-state cost of fingerprinting a dictionary lookup instead of
    a pickle.  Same pinning/re-check discipline as
    :class:`repro._util.identity.IdentityMemo`, open-coded because
    ``of`` sits inside per-level round loops.
    """

    __slots__ = ("_entries", "limit")

    def __init__(self, limit: int = 1 << 12):
        self._entries: Dict[int, Tuple[Any, bytes]] = {}
        self.limit = limit

    def of(self, obj: Any) -> bytes:
        entry = self._entries.get(id(obj))
        if entry is not None and entry[0] is obj:
            return entry[1]
        fp = content_fingerprint(obj)
        entries = self._entries
        if len(entries) >= self.limit:
            entries.clear()
        entries[id(obj)] = (obj, fp)
        return fp


class ReplayMemo:
    """A bounded content-addressed memo: hashable content key -> value.

    Values must never be ``None`` (``get`` returns ``None`` on a miss).
    When the memo grows past ``limit`` it is dropped wholesale — a miss
    recomputes, it never mis-answers.  ``hits``/``misses`` are kept for
    the benchmarks and the differential suite's sanity checks.
    """

    __slots__ = ("_entries", "limit", "hits", "misses")

    def __init__(self, limit: int = 1 << 14):
        self._entries: Dict[Hashable, Any] = {}
        self.limit = limit
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable) -> Optional[Any]:
        value = self._entries.get(key)
        tr = _tracer()
        if value is None:
            self.misses += 1
            if tr is not None:
                tr.count(CTR_MEMO_MISS)
        else:
            self.hits += 1
            if tr is not None:
                tr.count(CTR_MEMO_HIT)
        return value

    def put(self, key: Hashable, value: Any) -> Any:
        entries = self._entries
        if len(entries) >= self.limit:
            entries.clear()
        entries[key] = value
        return value

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class GenerationalMemo:
    """Content keys bucketed by generation, with stale-bucket eviction.

    The Section 5 replay pattern: at G-round ``t`` every replay key is
    a pair of length-``t`` histories, and the only useful prior entries
    are the length-``t-1`` ones from the previous round.  ``put``
    retires every bucket older than ``generation - 1`` so the memo
    holds at most two generations at a time, bounding memory by the
    live working set instead of the whole run.
    """

    __slots__ = ("_buckets", "hits", "misses")

    def __init__(self) -> None:
        self._buckets: Dict[int, Dict[Hashable, Any]] = {}
        self.hits = 0
        self.misses = 0

    def get(self, generation: int, key: Hashable) -> Optional[Any]:
        value = self._buckets.get(generation, {}).get(key)
        tr = _tracer()
        if value is None:
            self.misses += 1
            if tr is not None:
                tr.count(CTR_MEMO_MISS)
        else:
            self.hits += 1
            if tr is not None:
                tr.count(CTR_MEMO_HIT)
        return value

    def put(self, generation: int, key: Hashable, value: Any) -> Any:
        self._buckets.setdefault(generation, {})[key] = value
        stale = [g for g in self._buckets if g < generation - 1]
        for g in stale:
            # pop, not del: a machine shared across a thread pool may
            # retire the same bucket from two runs at once.
            self._buckets.pop(g, None)
        return value

    def clear(self) -> None:
        self._buckets.clear()


# ----------------------------------------------------------------------
# Tuple-extension registry (incremental history metering)
# ----------------------------------------------------------------------
#
# The Section 5 history machine broadcasts a tuple that grows by one
# element per round: ``new = old + (msg,)``.  Metering or canonically
# keying ``new`` from scratch costs O(len) every round — O(rounds²)
# over a run.  A producer that *knows* the extension relationship
# registers it here; repro._util.sizes and repro._util.ordering then
# derive the new tuple's size/key from the parent's cached one in O(1)
# recursion (plus the new element).  The registry is advisory: a
# missing entry just means the consumer does the full scan, and the
# consumers re-derive exactly what the scan would produce (pinned by
# the differential suite, where scratch-mode machines never register
# extensions).

_EXTENSIONS = IdentityMemo(limit=1 << 16)


def note_extension(parent: Tuple, child: Tuple) -> Tuple:
    """Record that ``child == parent + (child[-1],)``; returns ``child``.

    Caller contract (checked structurally, not element-wise — an
    element-wise check would cost the O(len) this exists to avoid):
    ``child`` must extend ``parent`` by exactly one trailing element.
    """
    if type(parent) is tuple and type(child) is tuple:
        if len(child) == len(parent) + 1:
            _EXTENSIONS.put(child, parent)
    return child


def extension_parent(child: Tuple) -> Optional[Tuple]:
    """The registered parent of ``child``, or ``None``."""
    parent = _EXTENSIONS.get(child)
    if parent is not None and len(child) == len(parent) + 1:
        return parent
    return None
