#!/usr/bin/env python
"""Replay-strategy benchmark: incremental vs scratch on both consumers.

Times the two replay-aware machines on the ``test_perf_message_
experiment`` workload (the ``exp_messages`` protocol jobs — see
:func:`repro.experiments.exp_messages._protocol_jobs`), verifies the
results are field-for-field identical across modes, and records the
measurements in the ``bvc_replay`` and ``selfstab`` sections of
``BENCH_perf.json``:

    PYTHONPATH=src python benchmarks/bench_replay.py --update

* ``bvc_replay`` — the Section 5 history-simulation job with metering
  on (``"bits"``, the experiment default).  Scratch replay re-simulates
  every element machine from its full history each G-round (quadratic
  in the round number); incremental replay extends the previous
  round's replay by one A-round and meters the growing histories
  incrementally.  **Gate: incremental must be >=2x faster** — this is
  algorithmic, not host-dependent, so the gate runs everywhere.
* ``selfstab`` — the transformer job from the same workload, measured
  over one stabilisation window (all convergence, where the
  content-addressed skip saves little on a tiny wrapped machine) *and*
  over ``--windows`` windows of continuous operation (the realistic
  regime: self-stabilising algorithms run forever, and in the
  fault-free steady state every pipeline level hash-matches).  The
  recorded headline speedup is the continuous-operation one; it is
  informational (no hard gate — it grows with the run length and the
  wrapped machine's step cost).

This script is not part of the pytest-benchmark baseline
(``bench_perf.py``); like ``bench_sweep_scaling.py`` it compares two
configurations against each other rather than a hot path against
history.  ``compare.py check`` ignores both sections (missing sections
in older baselines are fine); ``compare.py update`` preserves them.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments.exp_messages import _protocol_jobs  # noqa: E402
from repro.simulator.runtime import run  # noqa: E402

BASELINE = Path(__file__).with_name("BENCH_perf.json")


def mode_pair(job_index, n, repeats, stretch_rounds=None):
    """Time one protocol job in both replay modes (best-of-``repeats``,
    fresh machine — hence cold memo — per repeat); assert equality."""
    timings, results = {}, {}
    for mode in ("incremental", "scratch"):
        best, result = float("inf"), None
        for _ in range(repeats):
            job = dict(_protocol_jobs(n, replay=mode)[job_index])
            if stretch_rounds is not None:
                job["max_rounds"] = stretch_rounds
            graph = job.pop("graph")
            machine = job.pop("machine")
            t0 = time.perf_counter()
            out = run(graph, machine, **job)
            best = min(best, time.perf_counter() - t0)
            result = out
        timings[mode], results[mode] = best, result
    a, b = results["incremental"], results["scratch"]
    assert a.outputs == b.outputs
    assert a.rounds == b.rounds
    assert a.messages_sent == b.messages_sent
    assert a.message_bits == b.message_bits
    assert a.per_round_bits == b.per_round_bits
    assert a.states == b.states
    return timings


def host_record():
    return {
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "platform": platform.system().lower(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=6,
                        help="cycle size (default 6, the "
                             "test_perf_message_experiment workload)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of repeats per mode (default 3)")
    parser.add_argument("--windows", type=int, default=10,
                        help="stabilisation windows for the continuous "
                             "self-stabilising measurement (default 10)")
    parser.add_argument("--update", action="store_true",
                        help="write the bvc_replay/selfstab sections of "
                             "BENCH_perf.json")
    args = parser.parse_args(argv)

    n = args.n
    print(f"exp_messages protocol jobs on the {n}-cycle, "
          f"best of {args.repeats} per mode")

    # --- Section 5 broadcast VC (job 1), metering "bits" (its default).
    bvc = mode_pair(1, n, args.repeats)
    bvc_speedup = bvc["scratch"] / bvc["incremental"]
    bvc_record = {
        "workload": f"exp_messages §5 history-simulation job, cycle n={n}, "
                    f"metering bits",
        "incremental_s": round(bvc["incremental"], 4),
        "scratch_s": round(bvc["scratch"], 4),
        "incremental_vs_scratch_speedup": round(bvc_speedup, 2),
        "results_bit_identical_across_modes": True,
        "host": host_record(),
    }
    print(json.dumps({"bvc_replay": bvc_record}, indent=2))
    assert bvc_speedup >= 2.0, (
        f"incremental §5 replay should be >=2x scratch on the broadcast "
        f"workload with metering on; measured {bvc_speedup:.2f}x"
    )
    print("bvc_replay gate (>=2x vs scratch): PASS")

    # --- Self-stabilising transformer (job 2): one window + continuous.
    window = _protocol_jobs(n)[2]["max_rounds"]
    ss_window = mode_pair(2, n, args.repeats)
    ss_cont = mode_pair(2, n, args.repeats, stretch_rounds=args.windows * window)
    ss_record = {
        "workload": f"exp_messages self-stabilising §3 job, cycle n={n}, "
                    f"T={window}",
        "one_window_incremental_s": round(ss_window["incremental"], 4),
        "one_window_scratch_s": round(ss_window["scratch"], 4),
        "continuous_windows": args.windows,
        "continuous_incremental_s": round(ss_cont["incremental"], 4),
        "continuous_scratch_s": round(ss_cont["scratch"], 4),
        "incremental_vs_scratch_speedup": round(
            ss_cont["scratch"] / ss_cont["incremental"], 2
        ),
        "results_bit_identical_across_modes": True,
        "host": host_record(),
    }
    print(json.dumps({"selfstab": ss_record}, indent=2))

    if args.update:
        baseline = json.loads(BASELINE.read_text()) if BASELINE.exists() else {}
        baseline["bvc_replay"] = bvc_record
        baseline["selfstab"] = ss_record
        BASELINE.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
        print(f"wrote bvc_replay + selfstab sections -> {BASELINE}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
