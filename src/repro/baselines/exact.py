"""Exact minimum-weight vertex cover and set cover.

Ground truth for the approximation-ratio experiments.  The primary
solver formulates the integer program and hands it to scipy's HiGHS
MILP solver; an independent brute-force enumerator (usable up to ~20
decision variables) cross-checks it in the test suite, so a regression
in either is caught by the other.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Iterable, Sequence, Tuple

import numpy as np

from repro.graphs.setcover import SetCoverInstance
from repro.graphs.topology import PortNumberedGraph

__all__ = [
    "exact_min_vertex_cover",
    "exact_min_set_cover",
    "brute_force_vertex_cover",
    "brute_force_set_cover",
]


def exact_min_vertex_cover(
    graph: PortNumberedGraph, weights: Sequence[int]
) -> Tuple[int, FrozenSet[int]]:
    """Optimal weighted vertex cover via MILP (HiGHS).

    minimise  w·x   s.t.  x_u + x_v >= 1 for every edge, x binary.
    """
    from scipy.optimize import LinearConstraint, milp

    n = graph.n
    if graph.m == 0:
        return 0, frozenset()
    a = np.zeros((graph.m, n))
    for e, (u, v) in enumerate(graph.edges):
        a[e, u] = 1.0
        a[e, v] = 1.0
    res = milp(
        c=np.asarray(weights, dtype=float),
        integrality=np.ones(n),
        bounds=_unit_box(n),
        constraints=LinearConstraint(a, lb=1.0, ub=np.inf),
    )
    if not res.success:
        raise RuntimeError(f"MILP solver failed: {res.message}")
    chosen = frozenset(v for v in range(n) if res.x[v] > 0.5)
    weight = sum(weights[v] for v in chosen)
    _assert_is_cover(graph, chosen)
    return weight, chosen


def exact_min_set_cover(instance: SetCoverInstance) -> Tuple[int, FrozenSet[int]]:
    """Optimal weighted set cover via MILP (HiGHS)."""
    from scipy.optimize import LinearConstraint, milp

    n = instance.n_subsets
    m = instance.n_elements
    if m == 0:
        return 0, frozenset()
    a = np.zeros((m, n))
    for s, members in enumerate(instance.subsets):
        for u in members:
            a[u, s] = 1.0
    res = milp(
        c=np.asarray(instance.weights, dtype=float),
        integrality=np.ones(n),
        bounds=_unit_box(n),
        constraints=LinearConstraint(a, lb=1.0, ub=np.inf),
    )
    if not res.success:
        raise RuntimeError(f"MILP solver failed: {res.message}")
    chosen = frozenset(s for s in range(n) if res.x[s] > 0.5)
    ok, uncovered = _set_cover_check(instance, chosen)
    if not ok:
        raise AssertionError(f"MILP returned a non-cover; uncovered: {uncovered}")
    return instance.cover_weight(chosen), chosen


def _unit_box(n: int):
    from scipy.optimize import Bounds

    return Bounds(lb=np.zeros(n), ub=np.ones(n))


def _assert_is_cover(graph: PortNumberedGraph, cover: Iterable[int]) -> None:
    cset = set(cover)
    for (u, v) in graph.edges:
        if u not in cset and v not in cset:
            raise AssertionError(f"edge {(u, v)} uncovered by claimed optimum")


def _set_cover_check(instance: SetCoverInstance, chosen) -> Tuple[bool, Tuple[int, ...]]:
    covered = set()
    for s in chosen:
        covered |= instance.subsets[s]
    uncovered = tuple(sorted(set(range(instance.n_elements)) - covered))
    return (not uncovered, uncovered)


# ----------------------------------------------------------------------
# Independent brute force (for cross-checking the MILP path in tests)
# ----------------------------------------------------------------------


def brute_force_vertex_cover(
    graph: PortNumberedGraph, weights: Sequence[int], max_n: int = 22
) -> Tuple[int, FrozenSet[int]]:
    """Enumerate covers by increasing size, track the best weight.

    Exponential; guarded by ``max_n``.
    """
    n = graph.n
    if n > max_n:
        raise ValueError(f"brute force limited to n <= {max_n}, got {n}")
    if graph.m == 0:
        return 0, frozenset()
    best_weight = sum(weights) + 1
    best: FrozenSet[int] = frozenset(range(n))
    edges = graph.edges
    for size in range(0, n + 1):
        for cand in combinations(range(n), size):
            cset = set(cand)
            w = sum(weights[v] for v in cand)
            if w >= best_weight:
                continue
            if all(u in cset or v in cset for (u, v) in edges):
                best_weight = w
                best = frozenset(cand)
    return best_weight, best


def brute_force_set_cover(
    instance: SetCoverInstance, max_subsets: int = 20
) -> Tuple[int, FrozenSet[int]]:
    """Enumerate all subset selections; exponential, test-sized only."""
    n = instance.n_subsets
    if n > max_subsets:
        raise ValueError(f"brute force limited to {max_subsets} subsets, got {n}")
    universe = set(range(instance.n_elements))
    best_weight = sum(instance.weights) + 1
    best: FrozenSet[int] = frozenset(range(n))
    for mask in range(1 << n):
        chosen = [s for s in range(n) if mask >> s & 1]
        w = sum(instance.weights[s] for s in chosen)
        if w >= best_weight:
            continue
        covered = set()
        for s in chosen:
            covered |= instance.subsets[s]
        if covered == universe:
            best_weight = w
            best = frozenset(chosen)
    return best_weight, best
