"""Node weight generators and validation.

The paper assumes positive integer weights ``w_v ∈ {1, ..., W}`` with
the bound ``W`` known to all nodes (Section 1.4).  Everything here
returns plain Python ints so the core algorithms can run on exact
rationals.
"""

from __future__ import annotations

import random
from typing import List, Sequence

__all__ = [
    "validate_weights",
    "unit_weights",
    "uniform_weights",
    "geometric_weights",
    "adversarial_weights",
    "max_weight",
]


def validate_weights(weights: Sequence[int], n: int, W: int) -> None:
    """Check ``weights`` is a length-``n`` sequence of ints in ``1..W``."""
    if len(weights) != n:
        raise ValueError(f"expected {n} weights, got {len(weights)}")
    if W < 1:
        raise ValueError(f"W must be >= 1, got {W}")
    for v, w in enumerate(weights):
        if isinstance(w, bool) or not isinstance(w, int):
            raise TypeError(f"weight of node {v} must be an int, got {type(w).__name__}")
        if not (1 <= w <= W):
            raise ValueError(f"weight of node {v} is {w}, outside 1..{W}")


def max_weight(weights: Sequence[int]) -> int:
    """The parameter ``W`` implied by a weight vector (>= 1)."""
    return max(weights, default=1)


def unit_weights(n: int) -> List[int]:
    """All-ones weights (the unweighted case, ``W = 1``)."""
    return [1] * n


def uniform_weights(n: int, W: int, seed: int = 0) -> List[int]:
    """Independent uniform weights in ``1..W``."""
    if W < 1:
        raise ValueError(f"W must be >= 1, got {W}")
    rng = random.Random(f"uniform-weights:{seed}")
    return [rng.randint(1, W) for _ in range(n)]


def geometric_weights(n: int, W: int, seed: int = 0) -> List[int]:
    """Weights drawn as powers of two up to ``W`` (heavy-tailed).

    Exercises the ``log* W`` term with wildly differing magnitudes.
    """
    if W < 1:
        raise ValueError(f"W must be >= 1, got {W}")
    rng = random.Random(f"geometric-weights:{seed}")
    max_exp = max(0, W.bit_length() - 1)
    out = []
    for _ in range(n):
        w = 1 << rng.randint(0, max_exp)
        out.append(min(w, W))
    return out


def adversarial_weights(n: int, W: int) -> List[int]:
    """Deterministic worst-case-flavoured weights.

    Alternating extremes (1, W, 1, W, ...) force the edge-packing
    offers to saturate light nodes immediately while heavy nodes linger
    — a pattern that stresses Phase II of the Section 3 algorithm.
    """
    if W < 1:
        raise ValueError(f"W must be >= 1, got {W}")
    return [1 if v % 2 == 0 else W for v in range(n)]
