"""Dynamic churn demo: a sensor network repairing its cover live.

A ring of 360 battery-powered sensors around a perimeter fence
maintains a minimum-weight vertex cover (the sensors elected to run
the expensive monitoring duty: every radio link must touch one).
Radio links come and go — a storm knocks a stretch of links out, the
weather clears and they return, and one sensor dies outright.  A
:class:`repro.dynamic.DynamicRun` session repairs the standing cover
after every batch of link changes, re-executing only the dirty region
around the churn (the BFS ball whose radius is the algorithm's round
count — locality made operational), while a scratch session (the
paper-literal full re-solve) runs in lockstep to show every repaired
cover is bit-for-bit the one a full re-solve would produce.

Run:  PYTHONPATH=src python examples/dynamic_churn_demo.py
"""

from repro.dynamic import (
    DynamicRun,
    SlidingWindowStream,
    add_edge,
    remove_edge,
    remove_vertex,
)
from repro.graphs import families
from repro.graphs.weights import uniform_weights


def main() -> None:
    n = 360
    ring = families.cycle_graph(n)
    # Weight = cost of electing the sensor (battery level, 1..5).
    weights = uniform_weights(n, 5, seed=20)

    print(f"sensor ring: {n} sensors, {ring.m} radio links, weights 1..5")
    kwargs = dict(delta=3, W=5, metering="none")  # headroom for new links
    session = DynamicRun.vertex_cover(ring, weights, mode="incremental", **kwargs)
    shadow = DynamicRun.vertex_cover(ring, weights, mode="scratch", **kwargs)
    view = session.cover_view()
    print(f"initial cover: {len(view.cover)} sensors elected, "
          f"weight {view.cover_weight}, certificate "
          f"{float(view.certificate_ratio):.3f} (<= 1 proves <= 2*OPT)\n")

    events = [
        ("storm knocks out three links",
         [remove_edge(10, 11), remove_edge(11, 12), remove_edge(200, 201)]),
        ("weather clears, links return",
         [add_edge(10, 11), add_edge(11, 12), add_edge(200, 201)]),
        ("sensor 100 runs out of battery",
         [remove_vertex(100)]),
    ]
    for label, batch in events:
        stats = session.apply(batch)
        shadow.apply(batch)
        assert session.result.outputs == shadow.result.outputs
        assert session.result.states == shadow.result.states
        assert session.cover() == shadow.cover()
        view = session.cover_view()
        assert view.covered, "repair left a link uncovered!"
        print(f"{label}:")
        print(f"  repaired {stats.repaired_nodes}/{stats.n} sensors "
              f"({stats.repaired_fraction:.0%} of the ring), "
              f"cover weight {view.cover_weight}, certificate "
              f"{float(view.certificate_ratio):.3f}, "
              f"still a cover: {view.covered}")

    # Ongoing background churn: a sliding window of transient links.
    stream = SlidingWindowStream(window=3, edits_per_batch=1, seed=5,
                                max_degree=3)
    fractions = []
    for _ in range(5):
        batch = stream.next_batch(session.graph, session.inputs)
        if not batch:
            continue
        stats = session.apply(batch)
        shadow.apply(batch)
        assert session.cover() == shadow.cover()
        fractions.append(stats.repaired_fraction)
    if fractions:
        print(f"\nbackground churn ({len(fractions)} batches): mean "
              f"repaired fraction {sum(fractions) / len(fractions):.0%}; "
              f"every repair bit-identical to a full re-solve")
    print("final cover valid:", session.is_cover(),
          "| weight:", session.cover_weight(),
          "| batches applied:", session.batches_applied)


if __name__ == "__main__":
    main()
