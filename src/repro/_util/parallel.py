"""Order-preserving serial/thread/process-pooled mapping.

The shared seam under the batched execution APIs
(:func:`repro.simulator.runtime.run_many` / ``sweep``) and the
experiment drivers' :func:`repro.experiments.common.parallel_map`.
``n_workers`` of ``None``/``0``/``1`` runs serially (no pool overhead,
fully deterministic scheduling).  With workers, ``backend`` picks the
executor:

``"thread"`` (the default)
    a :class:`~concurrent.futures.ThreadPoolExecutor`.  Threads share
    the GIL, so pure-Python workloads gain mostly when they block or
    on free-threaded builds; no pickling is required, so any callable
    (closures, lambdas) and any job values work.
``"process"``
    a :class:`~concurrent.futures.ProcessPoolExecutor`.  True
    multi-core parallelism for the CPU-bound simulation kernels, at
    the price of pickling: the callable must be a module-level
    function (or a :func:`functools.partial` of one) and jobs/results
    must round-trip through :mod:`pickle`.  Machines, graphs and
    :class:`~repro.simulator.runtime.RunResult` all do — pinned by
    ``tests/test_parallel_backends.py``.
``"auto"``
    ``"process"`` when the callable and first job pickle, else
    ``"thread"``.  A safe default for callers that cannot know what
    they are handed.

Process pools are *warm*: one pool per distinct worker count is kept
alive for the life of the interpreter (shut down atexit), so a whole
experiment table of ``sweep`` calls amortises a single pool start-up.
Jobs are chunked (``chunksize``, default ``len(jobs)/(4·workers)``,
at least 1) so per-task IPC is amortised across a chunk of instances.

Results are always returned in job order, and — because every backend
runs the *same* per-job callable — are bit-for-bit identical across
``backend`` choices for deterministic workloads (pinned by
``tests/test_parallel_backends.py``).
"""

from __future__ import annotations

import atexit
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Sequence

__all__ = ["BACKENDS", "map_jobs", "resolve_backend", "shutdown_pools"]

#: Accepted ``backend=`` values (``None`` means ``"thread"``).
BACKENDS = ("thread", "process", "auto")

# Warm process pools, one per worker count; kept for the interpreter's
# lifetime so repeated map_jobs calls (a whole experiment table) pay
# pool start-up once.  Threads pools are cheap and stay per-call.
_PROCESS_POOLS: Dict[int, ProcessPoolExecutor] = {}


def shutdown_pools() -> None:
    """Shut down every warm process pool (idempotent; runs atexit)."""
    while _PROCESS_POOLS:
        _, pool = _PROCESS_POOLS.popitem()
        pool.shutdown(wait=False, cancel_futures=True)


atexit.register(shutdown_pools)


def _process_pool(n_workers: int) -> ProcessPoolExecutor:
    pool = _PROCESS_POOLS.get(n_workers)
    if pool is None:
        pool = _PROCESS_POOLS[n_workers] = ProcessPoolExecutor(
            max_workers=n_workers
        )
    return pool


def _picklable(*objs: Any) -> bool:
    try:
        for obj in objs:
            pickle.dumps(obj)
        return True
    except Exception:
        return False


def resolve_backend(
    backend: Optional[str], fn: Callable[[Any], Any], jobs: Sequence[Any]
) -> str:
    """Resolve a ``backend=`` argument to ``"thread"`` or ``"process"``.

    ``None`` keeps the historical thread default; ``"auto"`` probes
    whether ``fn`` and the first job pickle and falls back to threads
    when they do not (closures, open handles, ...).
    """
    if backend is None:
        return "thread"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS} or None"
        )
    if backend == "auto":
        probe = (fn, jobs[0]) if jobs else (fn,)
        return "process" if _picklable(*probe) else "thread"
    return backend


def map_jobs(
    fn: Callable[[Any], Any],
    jobs: Sequence[Any],
    n_workers: Optional[int],
    backend: Optional[str] = None,
    chunksize: Optional[int] = None,
) -> List[Any]:
    """Map ``fn`` over ``jobs``, returning results in job order.

    ``n_workers`` of ``None``/``0``/``1`` (or a single job) runs
    serially regardless of ``backend``.  See the module docstring for
    the backend semantics; ``chunksize`` only affects the process
    backend (how many jobs ride one IPC round-trip).
    """
    jobs = list(jobs)
    if n_workers is None or n_workers <= 1 or len(jobs) <= 1:
        return [fn(j) for j in jobs]
    workers = min(n_workers, len(jobs))
    if resolve_backend(backend, fn, jobs) == "thread":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, jobs))
    if chunksize is None:
        chunksize = max(1, len(jobs) // (4 * workers))
    # Pools are keyed by the *requested* count so a warm 4-worker pool
    # is never silently used for an n_workers=2 call (that would skew
    # scaling measurements).
    pool = _process_pool(n_workers)
    try:
        return list(pool.map(fn, jobs, chunksize=chunksize))
    except BrokenProcessPool:
        # A dead worker poisons the whole pool; drop it so the next
        # call starts fresh instead of failing forever.
        if _PROCESS_POOLS.get(n_workers) is pool:
            del _PROCESS_POOLS[n_workers]
        pool.shutdown(wait=False, cancel_futures=True)
        raise
