#!/usr/bin/env python
"""Docs smoke check: README/docs stay executable and current.

What it enforces (CI `docs` job; run locally with
``python tools/check_docs.py`` from the repo root):

1. every ``python -m repro...`` command in README.md's ``sh`` blocks
   *parses* against the real argparse parsers (flags that drift out of
   the CLIs fail here), and the ``python`` block in README.md actually
   executes;
2. the ``--help`` texts of both CLIs still advertise the flags the
   docs promise (``--workers``/``--backend``/``--json``/``--replay``,
   ``--shards`` on ``vc``/``sweep``), the library CLI advertises the
   ``dynamic`` subcommand, and that subcommand documents its knobs
   (``--mode``/``--stream``/...);
3. every ``repro.*`` module named in the README paper->code map
   imports, and so does every ``repro.*`` reference in
   ``docs/architecture.md`` (the simulation-layers doc);
4. ``docs/performance.md`` names the real knob values — metering
   modes, backends, replay modes, dynamic-session modes, execution
   engines and ``on_max_rounds`` modes are read from the code, not
   hard-coded here — and the dynamic and columnar layers are
   documented in both docs;
5. ``docs/robustness.md`` names every real fault kind, the failure-
   report/snapshot surfaces, and is linked from README and the
   architecture tour;
6. a tiny end-to-end CLI sweep runs (serial and process backend) and
   agrees with itself.

Exit code 0 = docs are honest.
"""

from __future__ import annotations

import importlib
import io
import json
import re
import shlex
import sys
from contextlib import redirect_stderr, redirect_stdout
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

FAILURES: list[str] = []


def fail(msg: str) -> None:
    FAILURES.append(msg)
    print(f"FAIL {msg}")


def ok(msg: str) -> None:
    print(f"ok   {msg}")


def fenced_blocks(text: str, language: str) -> list[str]:
    return re.findall(rf"```{language}\n(.*?)```", text, flags=re.DOTALL)


def doc_commands(blocks: list[str]) -> list[list[str]]:
    """Extract ``python -m repro...`` invocations, merging ``\\`` continuations."""
    commands = []
    for block in blocks:
        merged = block.replace("\\\n", " ")
        for line in merged.splitlines():
            line = line.strip()
            if line.startswith("python -m repro"):
                commands.append(shlex.split(line))
    return commands


def check_readme_commands(readme: str) -> None:
    from repro.cli import _build_parser as lib_parser
    from repro.experiments.cli import main as experiments_main

    # experiments.cli builds its parser inside main(); parse via a
    # --list probe plus real parses below.  repro.cli exposes a builder.
    for argv in doc_commands(fenced_blocks(readme, "sh")):
        module, args = argv[2], argv[3:]
        try:
            if module == "repro.cli":
                lib_parser().parse_args(args)
            elif module == "repro.experiments.cli":
                # parse-only against the CLI's real parser (no
                # execution — some documented runs are expensive), then
                # resolve experiment names against the real registry.
                from repro.experiments import EXPERIMENT_MODULES
                from repro.experiments.cli import _build_parser as exp_parser

                parsed = exp_parser().parse_args(args)
                unknown = [
                    e for e in parsed.experiments if e not in EXPERIMENT_MODULES
                ]
                if unknown:
                    raise SystemExit(f"unknown experiments {unknown}")
            elif module == "repro.experiments.exp_scaling":
                pass  # module main(), no flags to validate
            else:
                raise SystemExit(f"undocumented module {module}")
        except SystemExit as exc:
            if exc.code not in (0, None):
                fail(f"README command does not parse: {' '.join(argv)} ({exc})")
                continue
        ok(f"parses: {' '.join(argv[:6])}{' ...' if len(argv) > 6 else ''}")
    # the experiments CLI itself still runs
    buf = io.StringIO()
    with redirect_stdout(buf):
        code = experiments_main(["--list"])
    if code != 0 or "scaling" not in buf.getvalue():
        fail("python -m repro.experiments.cli --list broken or missing 'scaling'")
    else:
        ok("experiments CLI --list runs and knows 'scaling'")


def check_readme_python_blocks(readme: str) -> None:
    for i, block in enumerate(fenced_blocks(readme, "python")):
        try:
            with redirect_stdout(io.StringIO()):
                exec(compile(block, f"<README python block {i}>", "exec"), {})
            ok(f"README python block {i} executes")
        except Exception as exc:
            fail(f"README python block {i} raises {type(exc).__name__}: {exc}")


def check_help_texts() -> None:
    from repro.cli import _build_parser

    import argparse

    promised = ["--workers", "--backend", "--json", "--replay"]
    parser = _build_parser()
    sweep_parser = None
    dynamic_parser = None
    serve_parser = None
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            sweep_parser = action.choices.get("sweep")
            dynamic_parser = action.choices.get("dynamic")
            serve_parser = action.choices.get("serve")
    if sweep_parser is None:
        fail("repro.cli has no 'sweep' subcommand")
        return
    help_text = sweep_parser.format_help()
    for flag in promised + ["--engine"]:
        if flag not in help_text:
            fail(f"repro.cli sweep --help no longer documents {flag}")
        else:
            ok(f"repro.cli sweep --help documents {flag}")

    if "dynamic" not in parser.format_help():
        fail("repro.cli --help no longer advertises the 'dynamic' subcommand")
    else:
        ok("repro.cli --help advertises the 'dynamic' subcommand")
    if dynamic_parser is None:
        fail("repro.cli has no 'dynamic' subcommand")
        return
    dynamic_help = dynamic_parser.format_help()
    for flag in ("--mode", "--stream", "--batches", "--edits-per-batch",
                 "--verify", "--snapshot", "--restore", "--json"):
        if flag not in dynamic_help:
            fail(f"repro.cli dynamic --help no longer documents {flag}")
        else:
            ok(f"repro.cli dynamic --help documents {flag}")

    # the serving host rides the same CLI: the subcommand is
    # advertised and documents the knobs performance.md promises.
    if "serve" not in parser.format_help():
        fail("repro.cli --help no longer advertises the 'serve' subcommand")
    else:
        ok("repro.cli --help advertises the 'serve' subcommand")
    if serve_parser is None:
        fail("repro.cli has no 'serve' subcommand")
        return
    serve_help = serve_parser.format_help()
    for flag in ("--sessions", "--workers", "--checkpoint-every",
                 "--stream", "--mode", "--batches", "--edits-per-batch",
                 "--verify", "--json"):
        if flag not in serve_help:
            fail(f"repro.cli serve --help no longer documents {flag}")
        else:
            ok(f"repro.cli serve --help documents {flag}")

    vc_parser = None
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            vc_parser = action.choices.get("vc")
    if vc_parser is None:
        fail("repro.cli has no 'vc' subcommand")
        return
    vc_help = vc_parser.format_help()
    for flag in ("--fault", "--fault-rate", "--fault-rounds", "--fault-seed",
                 "--engine"):
        if flag not in vc_help:
            fail(f"repro.cli vc --help no longer documents {flag}")
        else:
            ok(f"repro.cli vc --help documents {flag}")
    # intra-run sharding is promised on both run surfaces
    for sub_name, sub_help in (("vc", vc_help), ("sweep", help_text)):
        if "--shards" not in sub_help:
            fail(f"repro.cli {sub_name} --help no longer documents --shards")
        else:
            ok(f"repro.cli {sub_name} --help documents --shards")
    # the engine choices themselves are read from the code, not
    # hard-coded: both subcommands must offer every runtime engine.
    from repro.simulator.runtime import ENGINES

    for sub_name, sub_help in (("vc", vc_help), ("sweep", help_text)):
        for eng in ENGINES:
            if eng not in sub_help:
                fail(f"repro.cli {sub_name} --help no longer offers "
                     f"engine {eng!r}")
            else:
                ok(f"repro.cli {sub_name} --help offers engine {eng!r}")
    from repro.simulator.faults import FAULT_KINDS

    for kind in FAULT_KINDS:
        if kind not in vc_help:
            fail(f"repro.cli vc --help no longer offers fault kind {kind!r}")
        else:
            ok(f"repro.cli vc --help offers fault kind {kind!r}")

    from repro.experiments.cli import _build_parser as exp_parser

    exp_help = exp_parser().format_help()
    for flag in promised + ["--fault-kinds"]:
        if flag not in exp_help:
            fail(f"repro.experiments.cli --help no longer documents {flag}")
        else:
            ok(f"repro.experiments.cli --help documents {flag}")


def check_repro_references(text: str, label: str) -> None:
    """Every backticked ``repro.*`` reference in ``text`` must import
    (as a module, or as an attribute of its parent module)."""
    modules = set(re.findall(r"`(repro(?:\.\w+)+)`", text))
    if not modules:
        fail(f"{label} names no repro modules")
    for name in sorted(modules):
        # entries name modules or module.attr; import the longest
        # importable prefix and require the attr to exist on it.
        parts = name.split(".")
        try:
            mod, attr = name, None
            try:
                importlib.import_module(mod)
            except ModuleNotFoundError:
                mod, attr = ".".join(parts[:-1]), parts[-1]
                loaded = importlib.import_module(mod)
                if not hasattr(loaded, attr):
                    raise
            ok(f"{label} target importable: {name}")
        except Exception:
            fail(f"{label} names {name} but it does not import")


def check_paper_code_map(readme: str) -> None:
    check_repro_references(readme, "README paper->code map")


def check_architecture_doc() -> None:
    doc_path = REPO / "docs" / "architecture.md"
    if not doc_path.exists():
        fail("docs/architecture.md missing")
        return
    doc = doc_path.read_text()
    check_repro_references(doc, "architecture.md")
    # The doc documents both replay data flows; it must name the knob
    # values and both consumers.
    from repro._util.memo import REPLAY_MODES

    for mode in REPLAY_MODES:
        if f'`replay="{mode}"`' in doc or f"`{mode}`" in doc or f'"{mode}"' in doc:
            ok(f"architecture.md documents replay mode {mode!r}")
        else:
            fail(f"architecture.md does not document replay mode {mode!r}")
    for consumer in ("broadcast_vc", "transformer", "memo"):
        if consumer in doc:
            ok(f"architecture.md covers {consumer}")
        else:
            fail(f"architecture.md does not mention {consumer}")
    # The dynamic layer and its data flow must be documented too.
    for piece in ("DynamicRun", "GraphEdit", "dirty", "repro.dynamic.streams"):
        if piece in doc:
            ok(f"architecture.md covers the dynamic layer: {piece}")
        else:
            fail(f"architecture.md does not mention {piece}")
    # ...and the columnar execution substrate.
    for piece in ("StateLayout", 'engine="columnar"',
                  "repro.simulator.state_layout"):
        if piece in doc:
            ok(f"architecture.md covers the columnar substrate: {piece}")
        else:
            fail(f"architecture.md does not mention {piece}")
    # ...and the sharded intra-run engine.
    for piece in ("repro.simulator.sharding", "shards=", "boundary",
                  "LAST_DECISION"):
        if piece in doc:
            ok(f"architecture.md covers the sharded engine: {piece}")
        else:
            fail(f"architecture.md does not mention {piece}")
    # ...and the serving host / overlay layer (PR 9).  The names are
    # read from the package, not hard-coded: they must stay importable
    # AND documented.
    import repro.dynamic as dynamic_pkg

    for name in ("ServingHost", "MutableTopology", "latency_summary"):
        if not hasattr(dynamic_pkg, name):
            fail(f"repro.dynamic no longer exports {name}")
        elif name in doc:
            ok(f"architecture.md covers the serving/overlay layer: {name}")
        else:
            fail(f"architecture.md does not mention {name}")
    for piece in ("repro.dynamic.serving", "repro.dynamic.overlay",
                  "light cone", "serve_pool", "checkpoint"):
        if piece in doc:
            ok(f"architecture.md covers the serving/overlay layer: {piece}")
        else:
            fail(f"architecture.md does not mention {piece}")


def check_performance_doc() -> None:
    doc_path = REPO / "docs" / "performance.md"
    if not doc_path.exists():
        fail("docs/performance.md missing")
        return
    doc = doc_path.read_text()
    from repro.simulator.runtime import ENGINES, ON_MAX_ROUNDS, Metering
    from repro._util.memo import REPLAY_MODES
    from repro._util.parallel import BACKENDS
    from repro.dynamic import DYNAMIC_MODES

    for mode in (Metering.NONE, Metering.COUNTS, Metering.BITS):
        if f'"{mode}"' not in doc and f"`{mode}`" not in doc:
            fail(f"docs/performance.md does not document metering mode {mode!r}")
        else:
            ok(f"performance.md documents metering {mode!r}")
    for backend in BACKENDS:
        if backend not in doc:
            fail(f"docs/performance.md does not document backend {backend!r}")
        else:
            ok(f"performance.md documents backend {backend!r}")
    for mode in REPLAY_MODES:
        if f'"{mode}"' not in doc and f"`{mode}`" not in doc:
            fail(f"docs/performance.md does not document replay mode {mode!r}")
        else:
            ok(f"performance.md documents replay mode {mode!r}")
    for mode in DYNAMIC_MODES:
        if f'"{mode}"' not in doc and f"`{mode}`" not in doc:
            fail(f"docs/performance.md does not document dynamic mode {mode!r}")
        else:
            ok(f"performance.md documents dynamic mode {mode!r}")
    for eng in ENGINES:
        if f'"{eng}"' not in doc and f"`{eng}`" not in doc:
            fail(f"docs/performance.md does not document engine {eng!r}")
        else:
            ok(f"performance.md documents engine {eng!r}")
    for mode in ON_MAX_ROUNDS:
        if f'"{mode}"' not in doc and f"`{mode}`" not in doc:
            fail(f"docs/performance.md does not document on_max_rounds "
                 f"mode {mode!r}")
        else:
            ok(f"performance.md documents on_max_rounds mode {mode!r}")
    for knob in ("arithmetic", "n_workers", "quiescence", "replay",
                 "DynamicRun", "repaired_fraction", "engine",
                 "MaxRoundsExceeded", "StateLayout", "bench_columnar",
                 "shards=", "bench_shards", "ServingHost", "workers=",
                 "checkpoint_every", "latency_summary", "MutableTopology",
                 "cone_node_rounds", "bench_serving"):
        if knob not in doc:
            fail(f"docs/performance.md does not mention {knob}")
        else:
            ok(f"performance.md mentions {knob}")
    # the serving defaults are read from the code, not hard-coded: the
    # doc must state the real checkpoint cadence.
    import inspect

    from repro.dynamic import ServingHost

    ckpt_default = inspect.signature(ServingHost.__init__).parameters[
        "checkpoint_every"
    ].default
    if f"`checkpoint_every` (default {ckpt_default})" in doc:
        ok(f"performance.md states checkpoint_every default = {ckpt_default}")
    else:
        fail(f"docs/performance.md does not state the real "
             f"checkpoint_every default ({ckpt_default})")
    # the sharding thresholds are read from the code, not hard-coded:
    # the doc must state the real engagement floor and width clamp.
    from repro.simulator import sharding

    for name, value in (("MIN_SHARD_NODES", sharding.MIN_SHARD_NODES),
                        ("MAX_SHARDS", sharding.MAX_SHARDS)):
        if f"`{name}` = {value}" in doc or f"{name} = {value}" in doc:
            ok(f"performance.md states {name} = {value}")
        else:
            fail(f"docs/performance.md does not state the real value "
                 f"{name} = {value}")


def check_robustness_doc() -> None:
    doc_path = REPO / "docs" / "robustness.md"
    if not doc_path.exists():
        fail("docs/robustness.md missing")
        return
    doc = doc_path.read_text()
    check_repro_references(doc, "robustness.md")
    # Fault-kind names are read from the code, not hard-coded here.
    from repro.simulator.faults import FAULT_KINDS

    for kind in FAULT_KINDS:
        if f'`"{kind}"`' in doc or f"`{kind}`" in doc:
            ok(f"robustness.md documents fault kind {kind!r}")
        else:
            fail(f"robustness.md does not document fault kind {kind!r}")
    for piece in ("FailureReport", "RetryEvent", "SNAPSHOT_VERSION",
                  "process_safe", "BrokenProcessPool", "snapshot",
                  "restore", "--fault", "--snapshot", "--restore",
                  "SelfStabilisingMachine"):
        if piece in doc:
            ok(f"robustness.md mentions {piece}")
        else:
            fail(f"robustness.md does not mention {piece}")
    # the doc is linked from README and the architecture tour
    for source, label in (
        (REPO / "README.md", "README.md"),
        (REPO / "docs" / "architecture.md", "architecture.md"),
    ):
        if "robustness.md" in source.read_text():
            ok(f"{label} links docs/robustness.md")
        else:
            fail(f"{label} does not link docs/robustness.md")


def check_observability_doc() -> None:
    doc_path = REPO / "docs" / "observability.md"
    if not doc_path.exists():
        fail("docs/observability.md missing")
        return
    doc = doc_path.read_text()
    check_repro_references(doc, "observability.md")
    # The span/event/counter vocabulary is read from the code, not
    # hard-coded here: every name the layer can emit must be documented.
    from repro.obs import COUNTER_NAMES, EVENT_NAMES, SPAN_NAMES

    for kind, names in (("span", SPAN_NAMES), ("event", EVENT_NAMES),
                        ("counter", COUNTER_NAMES)):
        for name in names:
            if f"`{name}`" in doc:
                ok(f"observability.md documents {kind} {name!r}")
            else:
                fail(f"observability.md does not document {kind} {name!r}")
    # The CLI surfaces the doc promises: --trace on every run-shaped
    # subcommand and the trace summarize subcommand.
    import argparse

    from repro.cli import _build_parser

    parser = _build_parser()
    subs = {}
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            subs = action.choices
    for cmd in ("vc", "sweep", "dynamic", "serve"):
        sub = subs.get(cmd)
        if sub is None or "--trace" not in sub.format_help():
            fail(f"repro.cli {cmd} --help no longer documents --trace")
        else:
            ok(f"repro.cli {cmd} --help documents --trace")
    if "trace" not in subs:
        fail("repro.cli has no 'trace' subcommand")
    else:
        ok("repro.cli advertises the 'trace' subcommand")
    for piece in ("--trace", "trace summarize", "last_shard_decision",
                  "drain_remote", "absorb", "HostReport.counters",
                  "check_no_raw_timers", "bench_obs"):
        if piece in doc:
            ok(f"observability.md mentions {piece}")
        else:
            fail(f"observability.md does not mention {piece}")
    # the doc is linked from README and the architecture tour
    for source, label in (
        (REPO / "README.md", "README.md"),
        (REPO / "docs" / "architecture.md", "architecture.md"),
    ):
        if "observability.md" in source.read_text():
            ok(f"{label} links docs/observability.md")
        else:
            fail(f"{label} does not link docs/observability.md")


def check_cli_end_to_end() -> None:
    from repro.cli import main as lib_main

    def run(argv):
        buf = io.StringIO()
        with redirect_stdout(buf):
            code = lib_main(argv)
        return code, buf.getvalue()

    base = ["sweep", "--family", "cycle", "--sizes", "8,12", "--seeds", "1", "--json"]
    code_a, out_a = run(base)
    code_b, out_b = run(base + ["--workers", "2", "--backend", "process"])
    if code_a != 0 or code_b != 0:
        fail("CLI sweep smoke run exited non-zero")
        return
    runs_a = json.loads(out_a)["runs"]
    runs_b = json.loads(out_b)["runs"]
    if runs_a != runs_b:
        fail("CLI sweep: process backend output differs from serial")
    else:
        ok("CLI sweep end-to-end: serial == process backend")


def main() -> int:
    readme_path = REPO / "README.md"
    if not readme_path.exists():
        fail("README.md missing at repo root")
        return 1
    readme = readme_path.read_text()
    check_readme_commands(readme)
    check_readme_python_blocks(readme)
    check_help_texts()
    check_paper_code_map(readme)
    check_architecture_doc()
    check_performance_doc()
    check_robustness_doc()
    check_observability_doc()
    check_cli_end_to_end()
    if FAILURES:
        print(f"\n{len(FAILURES)} docs check(s) failed")
        return 1
    print("\nall docs checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
