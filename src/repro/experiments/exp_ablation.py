"""EXP-AB — ablation: what Phase II buys (and what the colours buy).

DESIGN.md's ablation index.  Phase I of the Section 3 algorithm (the
offer/accept step with colour growth) guarantees, after Δ iterations,
that every edge is saturated *or multicoloured* — not that the
saturated nodes form a cover.  This experiment measures, across an
instance battery:

* how often Phase I alone already yields a valid cover (it often
  does — e.g. unit weights on regular graphs saturate in one step);
* how many edges are left for Phase II on instances engineered to
  defeat Phase I (unbalanced weights);
* that the full algorithm then covers everything, always.

The second ablation — dropping the colour bookkeeping entirely — is
the KVY baseline of :mod:`repro.baselines.kvy`: same offer/accept
core, but no Δ-round termination guarantee, and a (2+ε) factor instead
of 2.  Its measured rounds appear in EXP-T1.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.ablations import phase1_only_cover_attempt
from repro.core.vertex_cover import vertex_cover_2approx
from repro.experiments.common import ExperimentTable
from repro.graphs import families
from repro.graphs.topology import PortNumberedGraph
from repro.graphs.weights import adversarial_weights, uniform_weights, unit_weights

__all__ = ["run", "main", "phase2_witness_instance"]


def phase2_witness_instance() -> Tuple[PortNumberedGraph, List[int]]:
    """A minimal instance where Phase I alone fails to cover.

    Star K_{1,3}: centre weight 4, leaf weights 1, 1, 5.  The first
    iteration saturates the two light leaves; the centre (load 10/3)
    and the heavy leaf (load 4/3) both stay unsaturated, and their
    offers differ — the edge becomes multicoloured and survives
    Phase I.  Phase II's star saturation finishes it.
    """
    return families.star_graph(3), [4, 1, 1, 5]


def run() -> ExperimentTable:
    table = ExperimentTable(
        experiment_id="EXP-AB",
        title="ablation: Phase I alone vs the full two-phase algorithm",
        columns=[
            "instance",
            "edges",
            "uncovered after Phase I",
            "Phase I suffices",
            "full algorithm covers",
        ],
    )
    battery = [
        ("cycle8/unit", families.cycle_graph(8), unit_weights(8)),
        ("cycle8/uniform", families.cycle_graph(8), uniform_weights(8, 8, seed=1)),
        ("star witness", *phase2_witness_instance()),
        ("star8/adversarial", families.star_graph(8), adversarial_weights(9, 16)),
        ("grid3x3/uniform", families.grid_2d(3, 3), uniform_weights(9, 8, seed=3)),
        ("gnp12/uniform", families.gnp_random(12, 0.3, seed=2), uniform_weights(12, 8, seed=4)),
        ("petersen/adversarial", families.petersen_graph(), adversarial_weights(10, 16)),
    ]
    for name, g, w in battery:
        ablation = phase1_only_cover_attempt(g, w)
        full = vertex_cover_2approx(g, w)
        table.add_row(
            instance=name,
            edges=ablation.total_edges,
            **{
                "uncovered after Phase I": ablation.unsaturated_edges,
                "Phase I suffices": ablation.cover_is_valid,
                "full algorithm covers": full.is_cover(),
            },
        )
    assert all(table.column("full algorithm covers"))
    witness = [r for r in table.rows if r["instance"] == "star witness"][0]
    assert not witness["Phase I suffices"], (
        "the witness instance must defeat Phase I"
    )
    table.add_note(
        "Phase I alone is often enough (symmetric/balanced instances "
        "saturate immediately) but provably not always — the witness "
        "leaves an uncovered multicoloured edge, which is exactly the "
        "case Phase II's forest colouring + star saturation handles"
    )
    table.add_note(
        "dropping the colours instead (keeping only offer/accept) is the "
        "KVY (2+ε) baseline — measured separately in EXP-T1"
    )
    return table


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
