"""Tests for graph family generators and weights."""

from __future__ import annotations

import pytest

from repro.graphs import families, weights


class TestDeterministicFamilies:
    def test_empty(self):
        g = families.empty_graph(5)
        assert (g.n, g.m, g.max_degree) == (5, 0, 0)

    def test_path(self):
        g = families.path_graph(6)
        assert (g.n, g.m) == (6, 5)
        assert sorted(g.degrees()) == [1, 1, 2, 2, 2, 2]

    def test_cycle(self):
        g = families.cycle_graph(7)
        assert (g.n, g.m) == (7, 7)
        assert all(d == 2 for d in g.degrees())
        with pytest.raises(ValueError):
            families.cycle_graph(2)

    def test_complete(self):
        g = families.complete_graph(5)
        assert g.m == 10
        assert all(d == 4 for d in g.degrees())

    def test_complete_bipartite(self):
        g = families.complete_bipartite(2, 3)
        assert (g.n, g.m) == (5, 6)
        assert g.degree(0) == 3 and g.degree(2) == 2

    def test_star(self):
        g = families.star_graph(7)
        assert g.degree(0) == 7
        assert g.max_degree == 7

    def test_grid(self):
        g = families.grid_2d(3, 4)
        assert g.n == 12
        assert g.m == 3 * 3 + 2 * 4  # horizontal + vertical
        assert g.max_degree == 4 if min(3, 4) >= 3 else True

    def test_balanced_tree(self):
        g = families.balanced_tree(2, 3)
        assert g.n == 1 + 2 + 4 + 8
        assert g.m == g.n - 1

    def test_caterpillar(self):
        g = families.caterpillar(4, 2)
        assert g.n == 4 + 8
        assert g.m == 3 + 8

    def test_hypercube(self):
        g = families.hypercube(4)
        assert g.n == 16
        assert all(d == 4 for d in g.degrees())
        assert g.m == 16 * 4 // 2

    def test_petersen(self):
        import networkx as nx

        g = families.petersen_graph()
        assert all(d == 3 for d in g.degrees())
        assert nx.is_isomorphic(g.to_networkx(), nx.petersen_graph())

    def test_frucht(self):
        import networkx as nx

        g = families.frucht_graph()
        assert g.n == 12 and g.m == 18
        assert all(d == 3 for d in g.degrees())
        assert nx.is_isomorphic(g.to_networkx(), nx.frucht_graph())

    def test_frucht_has_trivial_automorphism_group(self):
        from repro.analysis.symmetry import automorphisms

        autos = automorphisms(families.frucht_graph())
        assert len(autos) == 1  # identity only


class TestRandomFamilies:
    def test_random_tree_is_tree(self):
        import networkx as nx

        for n in (1, 2, 5, 12):
            g = families.random_tree(n, seed=4)
            assert g.n == n
            assert g.m == max(0, n - 1)
            if n > 1:
                assert nx.is_tree(g.to_networkx())

    def test_random_tree_deterministic(self):
        assert families.random_tree(9, seed=1) == families.random_tree(9, seed=1)

    def test_random_regular_degrees(self):
        g = families.random_regular(3, 12, seed=0)
        assert all(d == 3 for d in g.degrees())
        with pytest.raises(ValueError):
            families.random_regular(3, 5, seed=0)  # odd product

    def test_gnp_seeded(self):
        a = families.gnp_random(15, 0.3, seed=2)
        b = families.gnp_random(15, 0.3, seed=2)
        assert a == b

    def test_bipartite_regularish(self):
        g = families.random_bipartite_regularish(4, 6, d=3, seed=1)
        for left in range(4):
            assert g.degree(left) == 3
        with pytest.raises(ValueError):
            families.random_bipartite_regularish(2, 2, d=3)

    def test_registry_make(self):
        g = families.make("petersen")
        assert g.n == 10
        with pytest.raises(KeyError):
            families.make("nonexistent")


class TestWeights:
    def test_unit(self):
        assert weights.unit_weights(4) == [1, 1, 1, 1]

    def test_uniform_within_bounds(self):
        ws = weights.uniform_weights(50, 9, seed=3)
        assert all(1 <= w <= 9 for w in ws)
        assert ws == weights.uniform_weights(50, 9, seed=3)

    def test_geometric_powers_of_two(self):
        ws = weights.geometric_weights(60, 64, seed=1)
        assert all(1 <= w <= 64 for w in ws)
        assert all((w & (w - 1)) == 0 for w in ws)  # powers of two

    def test_adversarial(self):
        ws = weights.adversarial_weights(5, 10)
        assert ws == [1, 10, 1, 10, 1]

    def test_validate_rejects_bad(self):
        with pytest.raises(ValueError):
            weights.validate_weights([1, 2], 3, 5)
        with pytest.raises(ValueError):
            weights.validate_weights([0, 1, 1], 3, 5)
        with pytest.raises(ValueError):
            weights.validate_weights([1, 6, 1], 3, 5)
        with pytest.raises(TypeError):
            weights.validate_weights([1, True, 1], 3, 5)

    def test_max_weight(self):
        assert weights.max_weight([3, 7, 1]) == 7
        assert weights.max_weight([]) == 1
