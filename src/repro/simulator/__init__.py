"""Synchronous anonymous-network simulator.

Implements the model of Section 1.3 of the paper: all nodes run the
same deterministic program; in each synchronous round every node
(i) computes, (ii) sends one message per neighbour (port-numbering
model) or a single message to all neighbours (broadcast model),
(iii) waits, and (iv) receives.  The runtime measures the number of
rounds, messages, and message bits; node programs never see node
identifiers.
"""

from repro.simulator.machine import (
    BROADCAST,
    PORT_NUMBERING,
    LocalContext,
    Machine,
)
from repro.simulator.runtime import (
    Metering,
    RunResult,
    run,
    run_broadcast,
    run_many,
    run_on_setcover,
    run_port_numbering,
    run_reference,
    sweep,
)
from repro.simulator.faults import (
    FAULT_KINDS,
    ComposedAdversary,
    FaultAdversary,
    MessageCorruption,
    MessageDuplication,
    MessageLoss,
    NodeCrash,
    RandomCrashes,
    RandomStateCorruption,
    TargetedCorruption,
    adversary_from_spec,
)

__all__ = [
    "BROADCAST",
    "ComposedAdversary",
    "FAULT_KINDS",
    "FaultAdversary",
    "LocalContext",
    "Machine",
    "MessageCorruption",
    "MessageDuplication",
    "MessageLoss",
    "Metering",
    "NodeCrash",
    "PORT_NUMBERING",
    "RandomCrashes",
    "RandomStateCorruption",
    "RunResult",
    "TargetedCorruption",
    "adversary_from_spec",
    "run",
    "run_broadcast",
    "run_many",
    "run_on_setcover",
    "run_port_numbering",
    "run_reference",
    "sweep",
]
