#!/usr/bin/env python
"""Section 7 demo: what broadcast algorithms *must* output.

The paper's discussion section proves a striking fact: a deterministic
broadcast-model algorithm cannot distinguish a graph from its
universal cover, so on the Frucht graph — 3-regular but with *no*
non-trivial automorphism — any maximal edge packing it computes is
forced to be y(e) = 1/3 on every single edge, and every node joins the
vertex cover.

This script verifies the forced solution, contrasts it with the
port-numbering model (where ports could break the tie), and shows the
view-equivalence classes that explain the phenomenon.

Run:  python examples/symmetry_demo.py
"""

from fractions import Fraction

from repro import vertex_cover_2approx, vertex_cover_broadcast
from repro.analysis.symmetry import automorphisms
from repro.analysis.views import broadcast_view_classes, refine_until_stable
from repro.graphs import families
from repro.graphs.weights import unit_weights


def main() -> None:
    g = families.frucht_graph()
    w = unit_weights(g.n)

    autos = automorphisms(g)
    print(f"Frucht graph: n={g.n}, 3-regular, |Aut| = {len(autos)} (trivial!)")

    classes, depth = refine_until_stable(g, inputs=w, model="broadcast")
    print(
        f"broadcast view-equivalence classes: {len(set(classes))} "
        f"(stable after {depth} refinements)"
    )
    print("  -> every node looks identical to a broadcast algorithm at")
    print("     every radius: the graph is 'a 3-regular tree' to them.\n")

    # --- broadcast model: the forced solution --------------------------
    res_b = vertex_cover_broadcast(g, w)
    ys = {
        y for v in g.nodes() for (y, _sat) in res_b.run.outputs[v]["incident"]
    }
    print("broadcast model (Section 5 algorithm):")
    print(f"  cover = all {len(res_b.cover)} nodes;  edge values = {ys}")
    assert ys == {Fraction(1, 3)}
    assert res_b.cover == frozenset(range(g.n))
    print("  -> exactly the y(e) = 1/3 solution the paper proves is forced.\n")

    # --- port-numbering model ------------------------------------------
    res_p = vertex_cover_2approx(g, w)
    distinct_port_values = sorted(set(res_p.run.outputs[0]["y"]))
    print("port-numbering model (Section 3 algorithm):")
    print(f"  cover weight {res_p.cover_weight}, node-0 edge values {distinct_port_values}")
    print("  -> the port-numbering algorithm is not *obliged* to be uniform;")
    print("     the paper notes a prior algorithm [2] never outputs 1/3 here.\n")

    # --- the contrast on an asymmetric graph ----------------------------
    path = families.path_graph(5)
    res_path = vertex_cover_broadcast(path, unit_weights(5))
    print("on a path (views differ near the ends), the broadcast algorithm")
    print(f"  picks a proper subset: cover = {sorted(res_path.cover)}")


if __name__ == "__main__":
    main()
