"""JSON (de)serialisation with exact rationals.

Fractions are stored as ``"numerator/denominator"`` strings so
round-trips are exact — serialising through floats would corrupt the
Lemma 2 invariants and invalidate the certificates.  Port numberings
are part of the graph format: two isomorphic graphs with different
port assignments are different instances for a port-numbering
algorithm, and the serialisation respects that.
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Any, Dict, Mapping, Sequence

from repro.graphs.setcover import SetCoverInstance
from repro.graphs.topology import PortNumberedGraph

__all__ = [
    "graph_to_json",
    "graph_from_json",
    "setcover_to_json",
    "setcover_from_json",
    "packing_to_json",
    "packing_from_json",
]

_FORMAT_GRAPH = "repro/port-numbered-graph/v1"
_FORMAT_SETCOVER = "repro/setcover-instance/v1"
_FORMAT_PACKING = "repro/edge-packing/v1"


def _frac_to_str(x: Fraction) -> str:
    return f"{x.numerator}/{x.denominator}"


def _frac_from_str(s: str) -> Fraction:
    return Fraction(s)


def graph_to_json(graph: PortNumberedGraph, indent: int | None = None) -> str:
    """Serialise a port-numbered graph (ports included)."""
    payload = {
        "format": _FORMAT_GRAPH,
        "n": graph.n,
        "ports": [
            [[u, q] for (u, q) in graph.ports(v)] for v in graph.nodes()
        ],
    }
    return json.dumps(payload, indent=indent)


def graph_from_json(text: str) -> PortNumberedGraph:
    payload = json.loads(text)
    if payload.get("format") != _FORMAT_GRAPH:
        raise ValueError(f"not a {_FORMAT_GRAPH} document")
    ports = [
        [(int(u), int(q)) for (u, q) in row] for row in payload["ports"]
    ]
    if len(ports) != payload["n"]:
        raise ValueError("n does not match the ports table")
    return PortNumberedGraph(ports)


def setcover_to_json(instance: SetCoverInstance, indent: int | None = None) -> str:
    payload = {
        "format": _FORMAT_SETCOVER,
        "n_elements": instance.n_elements,
        "weights": list(instance.weights),
        "subsets": [sorted(members) for members in instance.subsets],
    }
    return json.dumps(payload, indent=indent)


def setcover_from_json(text: str) -> SetCoverInstance:
    payload = json.loads(text)
    if payload.get("format") != _FORMAT_SETCOVER:
        raise ValueError(f"not a {_FORMAT_SETCOVER} document")
    return SetCoverInstance(
        subsets=tuple(frozenset(map(int, s)) for s in payload["subsets"]),
        weights=tuple(int(w) for w in payload["weights"]),
        n_elements=int(payload["n_elements"]),
    )


def packing_to_json(
    y: Mapping[int, Fraction],
    saturated: Sequence[int],
    weights: Sequence[int],
    indent: int | None = None,
) -> str:
    """Serialise an edge packing result with its cover."""
    payload = {
        "format": _FORMAT_PACKING,
        "weights": list(weights),
        "y": {str(e): _frac_to_str(Fraction(v)) for e, v in sorted(y.items())},
        "saturated": sorted(int(v) for v in saturated),
    }
    return json.dumps(payload, indent=indent)


def packing_from_json(text: str) -> Dict[str, Any]:
    payload = json.loads(text)
    if payload.get("format") != _FORMAT_PACKING:
        raise ValueError(f"not a {_FORMAT_PACKING} document")
    return {
        "weights": [int(w) for w in payload["weights"]],
        "y": {int(e): _frac_from_str(s) for e, s in payload["y"].items()},
        "saturated": frozenset(payload["saturated"]),
    }
