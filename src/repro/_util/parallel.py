"""Order-preserving serial/thread/process-pooled mapping.

The shared seam under the batched execution APIs
(:func:`repro.simulator.runtime.run_many` / ``sweep``) and the
experiment drivers' :func:`repro.experiments.common.parallel_map`.
``n_workers`` of ``None``/``0``/``1`` runs serially (no pool overhead,
fully deterministic scheduling).  With workers, ``backend`` picks the
executor:

``"thread"`` (the default)
    a :class:`~concurrent.futures.ThreadPoolExecutor`.  Threads share
    the GIL, so pure-Python workloads gain mostly when they block or
    on free-threaded builds; no pickling is required, so any callable
    (closures, lambdas) and any job values work.
``"process"``
    a :class:`~concurrent.futures.ProcessPoolExecutor`.  True
    multi-core parallelism for the CPU-bound simulation kernels, at
    the price of pickling: the callable must be a module-level
    function (or a :func:`functools.partial` of one) and jobs/results
    must round-trip through :mod:`pickle`.  Machines, graphs and
    :class:`~repro.simulator.runtime.RunResult` all do — pinned by
    ``tests/test_parallel_backends.py``.
``"auto"``
    ``"process"`` when the callable and first job pickle, else
    ``"thread"``.  A safe default for callers that cannot know what
    they are handed.

Process pools are *warm*: one pool per distinct worker count is kept
alive for the life of the interpreter (shut down atexit), so a whole
experiment table of ``sweep`` calls amortises a single pool start-up.
Jobs are chunked (``chunksize``, default ``len(jobs)/(4·workers)``,
at least 1) so per-task IPC is amortised across a chunk of instances.

**Crash recovery.**  A worker that dies (OOM-kill, segfault, SIGKILL)
poisons its whole :class:`ProcessPoolExecutor`; every pending future
raises :class:`BrokenProcessPool`.  Instead of propagating that, the
process backend walks a degradation ladder, per chunk of jobs:

1. **re-dispatch** — the broken pool is retired, a fresh one is built,
   and only the chunks that failed are resubmitted (completed chunks
   keep their results), with exponential backoff
   (``_BACKOFF_BASE_S · 2^(attempt-1)``, capped at ``_BACKOFF_CAP_S``);
2. **per-chunk serial** — a chunk that failed ``_MAX_CHUNK_REDISPATCH``
   times is assumed to *cause* the crash and runs serially in the
   parent, where a genuine job exception surfaces normally;
3. **full serial** — after ``_MAX_POOL_FAILURES`` pool breakages the
   backend stops paying pool start-up and degrades every remaining
   chunk to the parent process.

Chunks are formed once, from job order, before the first dispatch —
their identity is deterministic, so results are placed by chunk index
and the output order (and content, for deterministic workloads) is
identical to a serial run no matter how many recoveries happened.
Every recovery is recorded as a :class:`RetryEvent` in the
:class:`FailureReport` attached to the returned list (a
:class:`JobResults`; plain-list equality is preserved).

Results are always returned in job order, and — because every backend
runs the *same* per-job callable — are bit-for-bit identical across
``backend`` choices for deterministic workloads (pinned by
``tests/test_parallel_backends.py`` and ``tests/test_chaos.py``).
"""

from __future__ import annotations

import atexit
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.obs import CTR_POOL_RESTARTS, EV_POOL_RETRY

__all__ = [
    "BACKENDS",
    "FailureReport",
    "JobResults",
    "RetryEvent",
    "map_jobs",
    "resolve_backend",
    "retire_serve_pools",
    "retire_shard_pools",
    "serve_pool",
    "shard_pool",
    "shutdown_pools",
]

#: Accepted ``backend=`` values (``None`` means ``"thread"``).
BACKENDS = ("thread", "process", "auto")

#: A chunk is re-dispatched onto fresh pools at most this many times
#: before it is assumed to be the crash's cause and runs serially.
_MAX_CHUNK_REDISPATCH = 3

#: After this many pool breakages in one map_jobs call, every remaining
#: chunk degrades to serial (no more pools are built).
_MAX_POOL_FAILURES = 5

#: Exponential backoff before re-dispatch: base · 2^(attempt-1), capped.
_BACKOFF_BASE_S = 0.05
_BACKOFF_CAP_S = 1.0

# Warm process pools, one per worker count; kept for the interpreter's
# lifetime so repeated map_jobs calls (a whole experiment table) pay
# pool start-up once.  Threads pools are cheap and stay per-call.
_PROCESS_POOLS: Dict[int, ProcessPoolExecutor] = {}

# Warm single-worker pools, one per shard index.  The sharded engine
# (:mod:`repro.simulator.sharding`) keeps per-shard graph slices and
# node states *resident in the worker* between rounds, so each shard
# needs process affinity: every submission for shard i must land on the
# same worker.  A plain ``_process_pool(p)`` cannot promise that, so
# shards get dedicated max_workers=1 pools, warm across runs like the
# chunked pools above and shut down with them atexit.
_SHARD_POOLS: Dict[int, ProcessPoolExecutor] = {}

# Warm single-worker pools for the dynamic serving host
# (:mod:`repro.dynamic.serving`).  Same affinity story as the shard
# pools — a serving worker keeps its assigned DynamicRun sessions
# resident between batches, so every batch for a session must land on
# the same process — but an independent lifecycle: a serving-worker
# crash retires only the serving fleet, never a concurrent sharded run
# (and vice versa).
_SERVE_POOLS: Dict[int, ProcessPoolExecutor] = {}


@dataclass(frozen=True)
class RetryEvent:
    """One recovery action taken by the process backend."""

    chunk: int  #: chunk index (deterministic: formed before dispatch)
    jobs: int  #: number of jobs in the chunk
    attempt: int  #: how many times this chunk has failed so far
    error: str  #: repr of the triggering exception
    backoff_s: float  #: sleep before the retry (0 for serial fallback)
    action: str  #: "redispatch" (fresh pool) or "serial" (in parent)


@dataclass(frozen=True)
class FailureReport:
    """What the backend had to do to finish a ``map_jobs`` call.

    A clean run has no events and no pool restarts; callers that care
    (the chaos tests, monitoring) read it off the returned
    :class:`JobResults`, everyone else treats the result as a list.
    """

    backend: str
    events: Tuple[RetryEvent, ...] = ()
    pool_restarts: int = 0
    degraded_to_serial: bool = False

    @property
    def clean(self) -> bool:
        return not self.events and not self.pool_restarts


class JobResults(List[Any]):
    """A plain list of results plus the :class:`FailureReport`.

    Subclassing :class:`list` keeps every existing caller working —
    equality with plain lists, slicing, iteration — while the report
    rides along for those who ask.  The report survives the list
    operations that return a new ``JobResults`` — slicing,
    concatenation, ``copy.copy`` and pickling all preserve it (list
    subclasses silently lose attributes on each of those by default:
    ``list.__getitem__``/``__add__`` return plain lists, and pickle
    calls ``cls()`` with no arguments).
    """

    failure_report: FailureReport

    def __init__(self, results: Sequence[Any] = (),
                 report: Optional[FailureReport] = None):
        super().__init__(results)
        self.failure_report = (
            report if report is not None else FailureReport(backend="unknown")
        )

    def __reduce__(self):
        # The default list-subclass protocol would call JobResults()
        # and drop the report; rebuild from (items, report) instead.
        return (JobResults, (list(self), self.failure_report))

    def __copy__(self) -> "JobResults":
        return JobResults(list(self), self.failure_report)

    def __getitem__(self, index):
        item = super().__getitem__(index)
        if isinstance(index, slice):
            return JobResults(item, self.failure_report)
        return item

    def __add__(self, other) -> "JobResults":
        if not isinstance(other, list):
            return NotImplemented
        return JobResults(list(self) + list(other), self.failure_report)

    def __radd__(self, other) -> "JobResults":
        if not isinstance(other, list):
            return NotImplemented
        return JobResults(list(other) + list(self), self.failure_report)


def shutdown_pools() -> None:
    """Shut down every warm process pool (idempotent; runs atexit)."""
    while _PROCESS_POOLS:
        _, pool = _PROCESS_POOLS.popitem()
        pool.shutdown(wait=False, cancel_futures=True)
    retire_shard_pools()
    retire_serve_pools()


def shard_pool(index: int) -> ProcessPoolExecutor:
    """The persistent single-worker pool dedicated to shard ``index``.

    Created on first use, then warm for the interpreter's lifetime: a
    sweep of sharded runs pays worker start-up once per shard, and the
    worker-resident shard sessions (see
    :mod:`repro.simulator.sharding`) always find their process again.
    """
    pool = _SHARD_POOLS.get(index)
    if pool is None:
        pool = _SHARD_POOLS[index] = ProcessPoolExecutor(max_workers=1)
    return pool


def retire_shard_pools() -> None:
    """Shut down every shard pool (idempotent).

    Crash recovery for the sharded engine: a worker death poisons its
    pool *and* strands the sibling shards' sessions mid-round, so the
    whole shard fleet is retired together and the next sharded run
    starts on fresh workers.
    """
    while _SHARD_POOLS:
        _, pool = _SHARD_POOLS.popitem()
        pool.shutdown(wait=False, cancel_futures=True)


def serve_pool(index: int) -> ProcessPoolExecutor:
    """The persistent single-worker pool for serving worker ``index``.

    Created on first use, then warm for the interpreter's lifetime:
    the serving host's worker-resident sessions always find their
    process again, and successive :class:`~repro.dynamic.serving.
    ServingHost` instances reuse the same warm fleet.
    """
    pool = _SERVE_POOLS.get(index)
    if pool is None:
        pool = _SERVE_POOLS[index] = ProcessPoolExecutor(max_workers=1)
    return pool


def retire_serve_pools(index: Optional[int] = None) -> None:
    """Shut down serving pools (idempotent).

    Crash recovery for the serving host: a dead worker strands its
    resident sessions, so the host retires that worker's pool and
    replays each stranded session from its last checkpoint onto a
    fresh one.  Unlike the shard fleet, serving workers are mutually
    independent — pass ``index`` to retire just the broken one;
    ``None`` retires them all (atexit / host shutdown).
    """
    if index is not None:
        pool = _SERVE_POOLS.pop(index, None)
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        return
    while _SERVE_POOLS:
        _, pool = _SERVE_POOLS.popitem()
        pool.shutdown(wait=False, cancel_futures=True)


atexit.register(shutdown_pools)


def _process_pool(n_workers: int) -> ProcessPoolExecutor:
    pool = _PROCESS_POOLS.get(n_workers)
    if pool is None:
        pool = _PROCESS_POOLS[n_workers] = ProcessPoolExecutor(
            max_workers=n_workers
        )
    return pool


def _retire_pool(n_workers: int, pool: ProcessPoolExecutor) -> None:
    """Drop a broken pool so the next call starts fresh.

    Idempotent, and scoped to the one worker count that broke: healthy
    warm pools for *other* counts deliberately stay alive.
    """
    if _PROCESS_POOLS.get(n_workers) is pool:
        del _PROCESS_POOLS[n_workers]
    pool.shutdown(wait=False, cancel_futures=True)


def _run_chunk(fn: Callable[[Any], Any], chunk: List[Any]) -> List[Any]:
    """Worker-side chunk body (module-level: picklable)."""
    return [fn(j) for j in chunk]


def _run_chunk_traced(
    fn: Callable[[Any], Any], chunk: List[Any]
) -> Tuple[List[Any], Dict[str, Any]]:
    """Worker-side chunk body under a worker-local tracer.

    The parent's tracer cannot cross the process boundary, so the
    chunk runs with its own and ships the drained buffers back with
    the results; the parent absorbs them into its trace.
    """
    tracer = obs.Tracer(f"pool worker pid {os.getpid()}")
    with obs.tracing(tracer):
        results = [fn(j) for j in chunk]
    return results, tracer.drain_remote()


def _note_retry(tr: Optional["obs.Tracer"], ev: RetryEvent) -> None:
    if tr is not None:
        tr.event(
            EV_POOL_RETRY,
            chunk=ev.chunk,
            jobs=ev.jobs,
            attempt=ev.attempt,
            action=ev.action,
            backoff_s=ev.backoff_s,
        )


def _picklable(*objs: Any) -> bool:
    try:
        for obj in objs:
            pickle.dumps(obj)
        return True
    except Exception:
        return False


def resolve_backend(
    backend: Optional[str], fn: Callable[[Any], Any], jobs: Sequence[Any]
) -> str:
    """Resolve a ``backend=`` argument to ``"thread"`` or ``"process"``.

    ``None`` keeps the historical thread default; ``"auto"`` probes
    whether ``fn`` and the first job pickle and falls back to threads
    when they do not (closures, open handles, ...).
    """
    if backend is None:
        return "thread"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS} or None"
        )
    if backend == "auto":
        probe = (fn, jobs[0]) if jobs else (fn,)
        return "process" if _picklable(*probe) else "thread"
    return backend


def _map_process(
    fn: Callable[[Any], Any],
    jobs: List[Any],
    n_workers: int,
    chunksize: int,
) -> JobResults:
    """The crash-recovering process path (see the module docstring)."""
    chunks = [jobs[i : i + chunksize] for i in range(0, len(jobs), chunksize)]
    results: List[Any] = [None] * len(chunks)
    attempts = [0] * len(chunks)
    pending = list(range(len(chunks)))
    events: List[RetryEvent] = []
    pool_failures = 0
    degraded = False
    tr = obs.current()
    # Traced chunks run under a worker-local tracer and return
    # (results, trace payload); serial fallbacks run in the parent,
    # where the parent's tracer is already installed.
    runner = _run_chunk if tr is None else _run_chunk_traced

    while pending:
        if pool_failures >= _MAX_POOL_FAILURES:
            # Rung 3: stop building pools, finish in the parent.
            degraded = True
            for ci in pending:
                ev = RetryEvent(
                    chunk=ci,
                    jobs=len(chunks[ci]),
                    attempt=attempts[ci],
                    error="pool failure budget exhausted",
                    backoff_s=0.0,
                    action="serial",
                )
                events.append(ev)
                _note_retry(tr, ev)
                results[ci] = _run_chunk(fn, chunks[ci])
            pending = []
            break

        pool = _process_pool(n_workers)
        futures: Dict[int, Any] = {}
        for ci in pending:
            try:
                futures[ci] = pool.submit(runner, fn, chunks[ci])
            except BrokenProcessPool:
                break  # pool died before the work even left: retry all

        failed: List[int] = []
        err: Optional[BaseException] = None
        for ci in pending:
            fut = futures.get(ci)
            if fut is None:
                failed.append(ci)
                continue
            try:
                value = fut.result()
            except BrokenProcessPool as exc:
                err = exc
                failed.append(ci)
                continue
            # A genuine job exception (not a dead worker) propagates:
            # retrying deterministic code cannot fix it.
            if tr is not None:
                value, payload = value
                tr.absorb(payload)
            results[ci] = value

        if not failed:
            pending = []
            break

        pool_failures += 1
        if tr is not None:
            tr.count(CTR_POOL_RESTARTS)
        _retire_pool(n_workers, pool)
        err_text = repr(err) if err is not None else "BrokenProcessPool"
        next_pending: List[int] = []
        backoff = 0.0
        for ci in failed:
            attempts[ci] += 1
            if attempts[ci] >= _MAX_CHUNK_REDISPATCH:
                # Rung 2: the chunk itself is the likely killer — run
                # it in the parent so a real fault surfaces normally.
                ev = RetryEvent(
                    chunk=ci,
                    jobs=len(chunks[ci]),
                    attempt=attempts[ci],
                    error=err_text,
                    backoff_s=0.0,
                    action="serial",
                )
                events.append(ev)
                _note_retry(tr, ev)
                results[ci] = _run_chunk(fn, chunks[ci])
            else:
                # Rung 1: fresh pool, exponential backoff.
                wait = min(
                    _BACKOFF_CAP_S,
                    _BACKOFF_BASE_S * 2.0 ** (attempts[ci] - 1),
                )
                backoff = max(backoff, wait)
                ev = RetryEvent(
                    chunk=ci,
                    jobs=len(chunks[ci]),
                    attempt=attempts[ci],
                    error=err_text,
                    backoff_s=wait,
                    action="redispatch",
                )
                events.append(ev)
                _note_retry(tr, ev)
                next_pending.append(ci)
        if next_pending and backoff > 0.0:
            time.sleep(backoff)
        pending = next_pending

    flat: List[Any] = []
    for chunk_results in results:
        flat.extend(chunk_results)
    return JobResults(
        flat,
        FailureReport(
            backend="process",
            events=tuple(events),
            pool_restarts=pool_failures,
            degraded_to_serial=degraded,
        ),
    )


def map_jobs(
    fn: Callable[[Any], Any],
    jobs: Sequence[Any],
    n_workers: Optional[int],
    backend: Optional[str] = None,
    chunksize: Optional[int] = None,
) -> JobResults:
    """Map ``fn`` over ``jobs``, returning results in job order.

    ``n_workers`` of ``None``/``0``/``1`` (or a single job) runs
    serially regardless of ``backend``.  See the module docstring for
    the backend semantics; ``chunksize`` only affects the process
    backend (how many jobs ride one IPC round-trip, and the unit of
    crash recovery).  The returned :class:`JobResults` behaves as a
    plain list and carries a :class:`FailureReport` describing any
    crash recoveries the process backend performed.
    """
    jobs = list(jobs)
    if n_workers is None or n_workers <= 1 or len(jobs) <= 1:
        return JobResults(
            [fn(j) for j in jobs], FailureReport(backend="serial")
        )
    workers = min(n_workers, len(jobs))
    if resolve_backend(backend, fn, jobs) == "thread":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return JobResults(
                list(pool.map(fn, jobs)), FailureReport(backend="thread")
            )
    if chunksize is None:
        chunksize = max(1, len(jobs) // (4 * workers))
    # Pools are keyed by the *requested* count so a warm 4-worker pool
    # is never silently used for an n_workers=2 call (that would skew
    # scaling measurements).
    return _map_process(fn, jobs, n_workers, chunksize)
