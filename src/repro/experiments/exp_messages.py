"""EXP-MSG — message complexity across the three protocols.

The paper trades message size for model weakness twice: the Section 5
simulation keeps the *round* count of Section 4 "at the cost of
increasing message complexity", and the self-stabilising transformer
[23] multiplies message size by the horizon T.  This experiment puts
the three protocols side by side on one instance and measures total
messages, total bits, and peak per-round bits — making both trade-offs
quantitative.

All three protocol runs go through one batched
:func:`repro.simulator.runtime.sweep` call (each row carries its own
machine); pass ``n_workers`` (and ``backend="process"`` for multi-core
execution) to run them on a pool, and ``include_large`` to repeat the
comparison on a large-n cycle.  ``replay`` configures both replay-aware
rows (``"incremental"``/``"scratch"``, bit-identical tables — see
:mod:`repro._util.memo`).  The §5 history row still dominates the wall
clock for n ≳ 10³ — with incremental replay the cost is the linearly
growing messages being metered, no longer the replay loop itself; the
§3 row alone scales past n = 10⁴ comfortably (see ``exp_scaling``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.edge_packing import (
    EdgePackingMachine,
    edge_packing_from_run,
    edge_packing_job,
    schedule_length,
)
from repro.core.vertex_cover import broadcast_vc_from_run, broadcast_vc_job
from repro.experiments.common import ExperimentTable
from repro.graphs import families
from repro.graphs.weights import unit_weights
from repro.selfstab.transformer import SelfStabilisingMachine
from repro.simulator.runtime import sweep

__all__ = ["run", "main"]


def _protocol_jobs(n: int, replay: str = "incremental") -> List[Dict[str, Any]]:
    """The three protocol runs on the n-cycle, as sweep() instances.

    ``replay`` configures both replay-aware machines (the §5 history
    machine and the self-stabilising transformer); results are
    bit-identical across modes — ``benchmarks/bench_replay.py`` times
    exactly this job list in both modes.
    """
    g = families.cycle_graph(n)
    w = unit_weights(n)
    delta, W = 2, 1
    horizon = schedule_length(delta, W)
    return [
        edge_packing_job(g, w, delta=delta, W=W),
        broadcast_vc_job(g, w, delta=delta, W=W, replay=replay),
        {
            "graph": g,
            "machine": SelfStabilisingMachine(
                EdgePackingMachine(), horizon, replay=replay
            ),
            "inputs": list(w),
            "globals_map": {"delta": delta, "W": W},
            "max_rounds": horizon,  # one stabilisation window
        },
    ]


def run(
    n: int = 8,
    n_workers: Optional[int] = None,
    include_large: bool = False,
    large_n: int = 64,
    backend: Optional[str] = None,
    replay: str = "incremental",
) -> ExperimentTable:
    sizes = [n] + ([large_n] if include_large else [])
    table = ExperimentTable(
        experiment_id="EXP-MSG",
        title=f"message complexity on cycles (Δ=2, W=1), n ∈ {sizes}",
        columns=[
            "instance",
            "protocol",
            "model",
            "rounds",
            "messages",
            "total kbits",
            "peak round kbits",
            "bits / (message)",
        ],
    )

    jobs: List[Dict[str, Any]] = []
    for size in sizes:
        jobs.extend(_protocol_jobs(size, replay=replay))
    results = sweep(jobs, n_workers=n_workers, backend=backend)

    horizon = schedule_length(2, 1)
    for i, size in enumerate(sizes):
        port_run, bvc_run, ss = results[3 * i : 3 * i + 3]
        g = jobs[3 * i]["graph"]
        w = unit_weights(size)
        port = edge_packing_from_run(g, w, port_run)
        broadcast = broadcast_vc_from_run(g, w, bvc_run)
        for protocol, model, rounds, res in [
            ("§3 edge packing", "port numbering", port.rounds, port.run),
            ("§5 history simulation", "broadcast", broadcast.rounds, broadcast.run),
            (f"self-stabilising §3 (T={horizon})", "port numbering", ss.rounds, ss),
        ]:
            table.add_row(
                instance=f"cycle{size}",
                protocol=protocol,
                model=model,
                rounds=rounds,
                messages=res.messages_sent,
                **{
                    "total kbits": res.message_bits / 1000,
                    "peak round kbits": res.max_round_bits / 1000,
                    "bits / (message)": res.message_bits
                    / max(1, res.messages_sent),
                },
            )

    base_bits = table.rows[0]["total kbits"]
    table.add_note(
        f"§5 pays ~{table.rows[1]['total kbits'] / base_bits:.0f}x the bits of "
        "§3 for working in the strictly weaker broadcast model"
    )
    table.add_note(
        f"the self-stabilising wrapper pays ~{table.rows[2]['total kbits'] / base_bits:.0f}x "
        f"(the factor-T pipeline) for tolerating arbitrary transient faults"
    )
    assert table.rows[1]["total kbits"] > base_bits
    assert table.rows[2]["total kbits"] > base_bits
    return table


def main() -> None:
    print(run(n_workers=3, include_large=True).render())


if __name__ == "__main__":
    main()
