"""Tests for the Section 5 broadcast-model vertex cover simulation."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.analysis.bounds import bvc_rounds_exact
from repro.core.fractional_packing import maximal_fractional_packing
from repro.core.vertex_cover import vertex_cover_2approx, vertex_cover_broadcast
from repro.graphs import families, ports
from repro.graphs.setcover import vc_to_setcover
from repro.graphs.weights import uniform_weights, unit_weights


def _check(graph, weights):
    res = vertex_cover_broadcast(graph, weights)
    assert res.is_cover()
    assert res.cover_weight <= 2 * res.packing_value
    return res


class TestBasics:
    def test_single_edge(self):
        g = families.path_graph(2)
        res = _check(g, [1, 1])
        # symmetric instance: both endpoints saturated, y = 1
        assert res.cover == frozenset({0, 1})
        assert res.packing_value == 1

    def test_single_edge_weighted(self):
        g = families.path_graph(2)
        res = _check(g, [2, 7])
        assert res.cover == frozenset({0})
        assert res.packing_value == 2

    def test_path3(self):
        g = families.path_graph(3)
        res = _check(g, [1, 1, 1])
        assert 1 in res.cover

    def test_isolated_nodes(self):
        from repro.graphs.topology import PortNumberedGraph

        g = PortNumberedGraph.from_edges(3, [(0, 1)])
        res = _check(g, [1, 1, 5])
        assert 2 not in res.cover

    def test_rounds_formula(self):
        g = families.cycle_graph(4)
        res = _check(g, unit_weights(4))
        assert res.rounds == bvc_rounds_exact(2, 1)


class TestEquivalenceWithDirectRun:
    """The simulation must produce exactly what the Section 4 algorithm
    produces when run directly on the bipartite encoding H."""

    @pytest.mark.parametrize(
        "graph_factory,weights",
        [
            (lambda: families.path_graph(4), [1, 3, 2, 1]),
            (lambda: families.cycle_graph(5), [1, 1, 1, 1, 1]),
            (lambda: families.cycle_graph(6), [2, 1, 2, 1, 2, 1]),
            (lambda: families.star_graph(3), [4, 1, 1, 1]),
        ],
    )
    def test_cover_and_packing_match(self, graph_factory, weights):
        g = graph_factory()
        inst = vc_to_setcover(g, weights)
        # Direct run needs identical global parameters to the simulation:
        # the simulation hard-codes f=2, k=Δ even if the instance's true
        # f/k are smaller, so run the direct algorithm at those parameters.
        direct = maximal_fractional_packing(inst)
        sim = vertex_cover_broadcast(g, weights)
        if (inst.f, inst.k) == (2, g.max_degree):
            # identical parameters: outputs must match exactly
            assert sim.cover == direct.saturated_subsets
            # per-node incident multisets match the direct element values
            for v in g.nodes():
                expected = sorted(
                    (direct.y[e], True) for e in g.incident_edges(v)
                )
                got = sorted(sim.run.outputs[v]["incident"])
                # direct "saturated" flag is per element; recompute:
                expected = []
                for e in g.incident_edges(v):
                    u0, u1 = g.edges[e]
                    expected.append((direct.y[e],
                                     any(
                                         sum((direct.y[e2] for e2 in g.incident_edges(x)), Fraction(0))
                                         == weights[x]
                                         for x in (u0, u1)
                                     )))
                assert sorted(got) == sorted(expected)
        else:
            # parameters differ: both still valid 2-approximations
            assert sim.is_cover()


class TestSymmetryForcing:
    """Section 7: broadcast outputs on regular graphs are forced."""

    def test_frucht_graph_one_third(self):
        g = families.frucht_graph()
        res = _check(g, unit_weights(12))
        assert res.cover == frozenset(range(12))
        for v in g.nodes():
            for (y, sat) in res.run.outputs[v]["incident"]:
                assert y == Fraction(1, 3)
                assert sat

    def test_cycle_one_half(self):
        g = families.cycle_graph(5)
        res = _check(g, unit_weights(5))
        for v in g.nodes():
            for (y, sat) in res.run.outputs[v]["incident"]:
                assert y == Fraction(1, 2)

    def test_port_numbering_invariance(self):
        """Broadcast algorithms cannot see ports: output must not change."""
        g = families.cycle_graph(4)
        w = [2, 1, 2, 1]
        a = vertex_cover_broadcast(g, w)
        b = vertex_cover_broadcast(ports.reversed_ports(g), w)
        assert a.cover == b.cover
        assert a.packing_value == b.packing_value


class TestMessageGrowth:
    def test_history_bits_grow(self):
        """The paper's trade-off: rounds unchanged, message size grows."""
        g = families.path_graph(3)
        res = vertex_cover_broadcast(g, [1, 1, 1])
        bits = res.run.per_round_bits
        # Late rounds carry far larger messages than early rounds.
        assert bits[-1] > 10 * bits[1]
        # Growth is monotone-ish: the total history only accumulates.
        assert bits[-1] >= bits[len(bits) // 2] >= bits[1]
