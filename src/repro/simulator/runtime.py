"""Synchronous execution of machines over a port-numbered graph.

The runtime is the only component that sees node identifiers; machines
receive exactly the local information the model permits.  Rounds are
counted by the runtime (never self-reported by machines), and message
counts / structural bit sizes are metered for the message-complexity
experiments of Section 5.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro._util.ordering import canonical_sorted
from repro._util.sizes import message_size_bits
from repro.graphs.topology import PortNumberedGraph
from repro.simulator.machine import (
    BROADCAST,
    PORT_NUMBERING,
    LocalContext,
    Machine,
)

__all__ = [
    "RunResult",
    "run",
    "run_port_numbering",
    "run_broadcast",
    "run_on_setcover",
]

Observer = Callable[[int, List[Any], List[Any]], None]


@dataclass
class RunResult:
    """Outcome of a synchronous execution.

    Attributes
    ----------
    outputs:
        per-node outputs (indexed by runtime node id).
    rounds:
        number of synchronous communication rounds executed.
    all_halted:
        whether every node halted (vs. hitting ``max_rounds``).
    messages_sent:
        total count of non-``None`` messages placed on links.
    message_bits:
        total structural size of those messages (see
        :func:`repro._util.sizes.message_size_bits`).
    per_round_bits:
        message bits per round, for growth curves.
    states:
        final per-node states (useful for analysis/tests; not part of
        the distributed output).
    """

    outputs: List[Any]
    rounds: int
    all_halted: bool
    messages_sent: int
    message_bits: int
    per_round_bits: List[int]
    states: List[Any]

    @property
    def max_round_bits(self) -> int:
        return max(self.per_round_bits, default=0)


def _make_contexts(
    graph: PortNumberedGraph,
    inputs: Optional[Sequence[Any]],
    globals_map: Optional[Mapping[str, Any]],
    seed: Optional[int],
) -> List[LocalContext]:
    if inputs is not None and len(inputs) != graph.n:
        raise ValueError(f"expected {graph.n} inputs, got {len(inputs)}")
    g = dict(globals_map or {})
    ctxs = []
    for v in graph.nodes():
        rng = random.Random(f"node-rng:{seed}:{v}") if seed is not None else None
        ctxs.append(
            LocalContext(
                degree=graph.degree(v),
                input=None if inputs is None else inputs[v],
                globals=g,
                rng=rng,
            )
        )
    return ctxs


def run(
    graph: PortNumberedGraph,
    machine: Machine,
    inputs: Optional[Sequence[Any]] = None,
    globals_map: Optional[Mapping[str, Any]] = None,
    max_rounds: int = 10_000,
    seed: Optional[int] = None,
    observer: Optional[Observer] = None,
    fault_adversary: Optional[Any] = None,
) -> RunResult:
    """Run ``machine`` on every node of ``graph`` until all halt.

    Dispatches on ``machine.model``.  ``observer(round, states,
    outboxes)`` is called after each round for tracing.  A
    ``fault_adversary`` (see :mod:`repro.simulator.faults`) may corrupt
    states *between* rounds — used by the self-stabilisation
    experiments.
    """
    if machine.model == PORT_NUMBERING:
        deliver = _deliver_port_numbering
    elif machine.model == BROADCAST:
        deliver = _deliver_broadcast
    else:
        raise ValueError(f"unknown model {machine.model!r}")

    ctxs = _make_contexts(graph, inputs, globals_map, seed)
    states: List[Any] = [machine.start(ctxs[v]) for v in graph.nodes()]
    halted: List[bool] = [machine.halted(ctxs[v], states[v]) for v in graph.nodes()]

    rounds = 0
    messages_sent = 0
    message_bits = 0
    per_round_bits: List[int] = []

    while rounds < max_rounds and not all(halted):
        if fault_adversary is not None:
            states = fault_adversary.corrupt(rounds, graph, states)
            halted = [machine.halted(ctxs[v], states[v]) for v in graph.nodes()]

        outboxes: List[Any] = []
        for v in graph.nodes():
            out = machine.emit(ctxs[v], states[v])
            if machine.model == PORT_NUMBERING:
                if out is None:
                    out = [None] * graph.degree(v)
                out = list(out)
                if len(out) != graph.degree(v):
                    raise ValueError(
                        f"node of degree {graph.degree(v)} emitted "
                        f"{len(out)} messages (port-numbering model needs one per port)"
                    )
            outboxes.append(out)

        inboxes = deliver(graph, outboxes)

        # Metering: count each non-None message once per link direction.
        round_bits = 0
        for v in graph.nodes():
            if machine.model == PORT_NUMBERING:
                sent = [m for m in outboxes[v] if m is not None]
                messages_sent += len(sent)
                for m in sent:
                    round_bits += message_size_bits(m)
            elif outboxes[v] is not None:
                # One broadcast payload, delivered along every link.
                d = graph.degree(v)
                messages_sent += d
                round_bits += d * message_size_bits(outboxes[v])
        message_bits += round_bits
        per_round_bits.append(round_bits)

        for v in graph.nodes():
            if not halted[v]:
                states[v] = machine.step(ctxs[v], states[v], inboxes[v])
                halted[v] = machine.halted(ctxs[v], states[v])
        rounds += 1

        if observer is not None:
            observer(rounds, states, outboxes)

    outputs = [machine.output(ctxs[v], states[v]) for v in graph.nodes()]
    return RunResult(
        outputs=outputs,
        rounds=rounds,
        all_halted=all(halted),
        messages_sent=messages_sent,
        message_bits=message_bits,
        per_round_bits=per_round_bits,
        states=states,
    )


def _deliver_port_numbering(
    graph: PortNumberedGraph, outboxes: List[Any]
) -> List[List[Any]]:
    """inbox[v][p] = message sent by the neighbour behind port p."""
    inboxes: List[List[Any]] = [
        [None] * graph.degree(v) for v in graph.nodes()
    ]
    for v in graph.nodes():
        for p in range(graph.degree(v)):
            u, q = graph.port_target(v, p)
            inboxes[u][q] = outboxes[v][p]
    return inboxes


def _deliver_broadcast(
    graph: PortNumberedGraph, outboxes: List[Any]
) -> List[tuple]:
    """inbox[v] = canonically sorted multiset of neighbours' messages.

    Sorting by content (and never by sender) enforces the broadcast
    model: a node cannot tell which neighbour sent which message, nor
    correlate senders across rounds.  Sort keys are computed once per
    sender per round — the same payload is delivered along every link.
    """
    from repro._util.ordering import canonical_key

    keys = [canonical_key(out) for out in outboxes]
    return [
        tuple(
            outboxes[u]
            for u in sorted(graph.neighbours(v), key=lambda u: keys[u])
        )
        for v in graph.nodes()
    ]


def run_port_numbering(graph, machine, **kwargs) -> RunResult:
    """:func:`run`, asserting the machine uses the port-numbering model."""
    if machine.model != PORT_NUMBERING:
        raise ValueError(
            f"machine {type(machine).__name__} is written for {machine.model!r}"
        )
    return run(graph, machine, **kwargs)


def run_broadcast(graph, machine, **kwargs) -> RunResult:
    """:func:`run`, asserting the machine uses the broadcast model."""
    if machine.model != BROADCAST:
        raise ValueError(
            f"machine {type(machine).__name__} is written for {machine.model!r}"
        )
    return run(graph, machine, **kwargs)


def run_on_setcover(instance, machine: Machine, **kwargs) -> RunResult:
    """Run a machine on the bipartite layout of a set cover instance.

    Wires up the node inputs (roles/weights) and global parameters
    (f, k, W) exactly as the paper's model provides them.
    """
    graph = instance.to_bipartite_graph()
    return run(
        graph,
        machine,
        inputs=instance.node_inputs(),
        globals_map=instance.global_params(),
        **kwargs,
    )
