"""The cycle reduction lower bound (Figure 4, Lemma 4, Section 6).

The paper shows that even with unique identifiers, no deterministic
strictly-local algorithm achieves a ``(p - ε)``-approximation of
minimum set cover (``p = min{f, k}``), by a local reduction from
independent set in *numbered directed cycles*:

* Given a directed ``n``-cycle, build the set cover instance ``H``:
  subset node ``v₁`` per cycle node ``v``, element node ``v₂`` per
  cycle node, and ``{u₁, v₂} ∈ A`` iff the directed path from ``u`` to
  ``v`` has length at most ``p - 1``.  Then ``f = k = p``, and (for
  ``p | n``) an optimal cover takes every ``p``-th subset:
  ``|C*| = n/p``.
* From any set cover ``C`` of ``H`` with ``|C| <= (p - ε) n/p`` one
  *locally* extracts an independent set of size ``>= nε/p²`` in the
  cycle — contradicting the Czygrinow et al. / Lenzen–Wattenhofer
  lower bound (Lemma 4) for constant-time deterministic algorithms.

These helpers build ``H``, perform the extraction, and provide the
constant-time independent-set algorithms whose failure on adversarial
numberings Lemma 4 formalises (on the *increasing* numbering, the
radius-r local-max rule returns a single node).
"""

from __future__ import annotations

from fractions import Fraction
from typing import FrozenSet, Iterable, List, Sequence, Set

from repro.graphs.setcover import SetCoverInstance

__all__ = [
    "cycle_setcover_instance",
    "optimal_cycle_cover_size",
    "extract_independent_set",
    "is_independent_in_cycle",
    "local_max_independent_set",
    "adversarial_increasing_ids",
    "independent_set_size_guarantee",
]


def cycle_setcover_instance(n: int, p: int, weight: int = 1) -> SetCoverInstance:
    """Build ``H`` from a directed ``n``-cycle (Figure 4).

    Subset ``v`` covers elements ``v, v+1, ..., v+p-1 (mod n)`` — the
    nodes reachable by directed paths of length ``< p``.
    """
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    if n < p:
        raise ValueError(f"need n >= p, got n={n}, p={p}")
    subsets = tuple(
        frozenset((v + i) % n for i in range(p)) for v in range(n)
    )
    return SetCoverInstance(
        subsets=subsets, weights=tuple(weight for _ in range(n)), n_elements=n
    )


def optimal_cycle_cover_size(n: int, p: int) -> int:
    """``ceil(n/p)``: every subset covers an arc of ``p`` consecutive
    elements, and arcs of the optimal cover tile the cycle."""
    return -(-n // p)


def extract_independent_set(n: int, p: int, cover: Iterable[int]) -> FrozenSet[int]:
    """Section 6 extraction: heads of the maximal paths avoiding the cover.

    ``X = {v : v₁ ∉ C}`` induces a set of directed paths in the cycle
    (no path has ``p`` or more nodes, else some element is uncovered);
    the extraction returns the first node of each path — an independent
    set of size at least ``nε/p²`` when ``|C| <= (p-ε) n/p``.
    """
    chosen = set(cover)
    x = [v for v in range(n) if v not in chosen]
    xset = set(x)
    if len(xset) == n:
        raise ValueError("empty cover cannot cover the instance")
    return frozenset(v for v in x if (v - 1) % n not in xset)


def is_independent_in_cycle(n: int, nodes: Iterable[int]) -> bool:
    """No two chosen nodes adjacent on the cycle."""
    s = set(nodes)
    return all((v + 1) % n not in s for v in s)


def independent_set_size_guarantee(n: int, p: int, cover_size: int) -> int:
    """The Section 6 accounting: |I| >= n·ε/p² with ε = p - p·|C|/(n/p)…

    Concretely: ``|X| = n - |C|`` and — **provided C is a valid cover**
    — each path in the subgraph induced by ``X`` has fewer than ``p``
    nodes (a run of ``p`` uncovered subsets would leave an element
    uncovered), so the number of paths — and hence the extracted
    independent set — is at least ``ceil((n - cover_size) / p)``,
    or 0 when ``X`` is empty.  (Setting ``cover_size = (p-ε)n/p``
    recovers the paper's ``nε/p²`` bound.)
    """
    remaining = n - cover_size
    if remaining <= 0:
        return 0
    return -(-remaining // p)


def local_max_independent_set(ids: Sequence[int], radius: int = 1) -> FrozenSet[int]:
    """The classic constant-time IS rule: join iff your id is the largest
    within ``radius`` hops (both directions) on the cycle.

    Always independent (radius >= 1).  Lemma 4 says *no* such
    constant-time deterministic rule can guarantee a large independent
    set on every numbering — see :func:`adversarial_increasing_ids`.
    """
    if radius < 1:
        raise ValueError("radius must be >= 1")
    n = len(ids)
    if len(set(ids)) != n:
        raise ValueError("identifiers must be unique")
    chosen = []
    for v in range(n):
        window = [ids[(v + d) % n] for d in range(-radius, radius + 1) if d != 0]
        if all(ids[v] > w for w in window):
            chosen.append(v)
    return frozenset(chosen)


def adversarial_increasing_ids(n: int) -> List[int]:
    """The numbering that defeats local-max: ids increase around the cycle.

    Only the globally largest id is a local maximum, so the radius-r
    rule outputs exactly one node out of ``n`` — vanishing fraction, as
    Lemma 4 demands for *some* numbering.
    """
    return list(range(1, n + 1))
