"""Columnar (struct-of-arrays) per-node state for the fast engine.

The object engine steps machines node-by-node through Python objects;
:class:`StateLayout` is the alternative substrate behind
``run(engine="columnar")``: every state field is one preallocated
``int64`` numpy column (per node, or per half-edge), message delivery
is a whole-array CSR gather, and a round is a handful of vectorised
passes instead of ``n`` ``step()`` calls.

The layout mirrors :meth:`repro.graphs.topology.PortNumberedGraph.csr`:
half-edge ``i`` (``offsets[v] <= i < offsets[v+1]``) is node ``v``'s
port ``i - offsets[v]``; ``targets[i]`` is the neighbour behind that
port.  Because the covered rounds of the shipped machines broadcast
*port-uniform* payloads (the same value on every port), delivering a
round is the single gather ``values[targets]`` — no scatter loop.

Machines opt in per run via the columnar protocol on
:class:`repro.simulator.machine.Machine` (``columnar_fields`` /
``start_columnar`` / ``emit_columnar`` / ``step_columnar`` /
``finish_columnar``); the engine falls back to the object path
automatically whenever a run does not qualify, and results are
bit-for-bit identical either way (``tests/test_columnar_engine.py``).

numpy is optional at import time: without it ``HAVE_NUMPY`` is false
and the columnar engine silently falls back to the object engine
(results are identical by contract, so absence only costs speed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

try:  # gated: the rest of the package must import without numpy
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised only on numpy-less hosts
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

__all__ = ["HAVE_NUMPY", "ColumnarPlan", "StateLayout", "np"]


@dataclass(frozen=True)
class ColumnarPlan:
    """What a machine asks the columnar engine to run.

    ``rounds`` is the number of *leading* schedule rounds the machine's
    vectorised kernels cover — after them the engine materialises
    per-node state objects via ``finish_columnar`` and hands the rest
    of the run to the object engine.  ``node_fields``/``edge_fields``
    declare the ``int64`` columns (name, fill value) the kernels use;
    per-node columns have shape ``(n,)``, per-half-edge columns
    ``(2m,)``.
    """

    rounds: int
    node_fields: Tuple[Tuple[str, int], ...] = ()
    edge_fields: Tuple[Tuple[str, int], ...] = ()


class StateLayout:
    """Flat columnar state over a port-numbered graph's CSR arrays.

    Attributes
    ----------
    offsets, targets, rev_ports:
        the graph's CSR arrays as ``int64`` numpy arrays (see
        :meth:`~repro.graphs.topology.PortNumberedGraph.csr`).
    degrees:
        per-node degree column, shape ``(n,)``.
    edge_owner:
        per-half-edge owning node, shape ``(2m,)`` — the inverse of the
        ``offsets`` segmentation, for per-node → per-half-edge
        broadcasts (``col[edge_owner]``).
    halted:
        per-node boolean mask; the engine suppresses emissions from
        masked nodes.  Kernels whose nodes may halt mid-plan must set
        it (the shipped edge-packing kernels never halt mid-plan).
    node, edge:
        the named ``int64`` state columns declared by the machine's
        :class:`ColumnarPlan`.
    aux:
        machine-private scratch (per-run constants, history columns);
        opaque to the engine.
    """

    def __init__(self, graph) -> None:
        if not HAVE_NUMPY:
            raise RuntimeError(
                "StateLayout requires numpy; run(engine='columnar') falls "
                "back to the object engine when numpy is unavailable"
            )
        offsets, flat_targets, flat_rev = graph.csr()
        self.n: int = graph.n
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.targets = np.asarray(flat_targets, dtype=np.int64)
        self.rev_ports = np.asarray(flat_rev, dtype=np.int64)
        self.degrees = np.asarray(graph.degree_array, dtype=np.int64)
        self.edge_owner = np.repeat(
            np.arange(self.n, dtype=np.int64), self.degrees
        )
        self.halted = np.zeros(self.n, dtype=bool)
        self.node: Dict[str, "np.ndarray"] = {}
        self.edge: Dict[str, "np.ndarray"] = {}
        self.aux: Dict[str, object] = {}

    # -- field management ----------------------------------------------

    def add_node_field(self, name: str, fill: int = 0) -> "np.ndarray":
        if name in self.node:
            raise ValueError(f"duplicate node field {name!r}")
        col = np.full(self.n, fill, dtype=np.int64)
        self.node[name] = col
        return col

    def add_edge_field(self, name: str, fill: int = 0) -> "np.ndarray":
        if name in self.edge:
            raise ValueError(f"duplicate edge field {name!r}")
        col = np.full(len(self.targets), fill, dtype=np.int64)
        self.edge[name] = col
        return col

    # -- whole-array passes --------------------------------------------

    def gather(self, node_col: "np.ndarray") -> "np.ndarray":
        """Per-half-edge view of a per-node column: entry ``i`` is the
        sender's value on half-edge ``i`` (port-uniform delivery)."""
        return node_col[self.targets]

    def node_sum(self, edge_col: "np.ndarray") -> "np.ndarray":
        """Per-node sum of a per-half-edge column (CSR segment reduce).

        ``np.add.reduceat`` mishandles empty segments (it returns the
        element *at* the offset instead of the identity), so degree-0
        rows are zeroed explicitly and trailing offsets clamped —
        isolated vertices are first-class here.
        """
        if self.n == 0:
            return np.zeros(0, dtype=np.int64)
        if len(edge_col) == 0:
            return np.zeros(self.n, dtype=np.int64)
        starts = np.minimum(self.offsets[:-1], len(edge_col) - 1)
        sums = np.add.reduceat(edge_col, starts)
        sums[self.degrees == 0] = 0
        return sums

    def node_count(self, edge_mask: "np.ndarray") -> "np.ndarray":
        """Per-node count of set entries in a per-half-edge mask."""
        return self.node_sum(edge_mask.astype(np.int64))
