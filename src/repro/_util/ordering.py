"""Canonical total ordering over message values.

The broadcast model delivers, to each node, the *multiset* of messages
sent by its neighbours: the node must not be able to tell which
neighbour sent which message, nor correlate senders across rounds.
The runtime enforces this by sorting every inbox with a canonical,
content-only key before delivery.  Sorting by content leaks nothing: a
multiset and its canonically sorted tuple carry exactly the same
information.

Messages in this library are built from ``None``, ``bool``, ``int``,
:class:`fractions.Fraction`, ``str``, and (possibly nested) ``tuple`` /
``list`` / frozen ``dict`` values.  :func:`canonical_key` maps any such
value to a key that is totally ordered across *different* types too,
by tagging each value with a type rank.

Keys for deeply immutable tuples are memoised via
:class:`repro._util.identity.IdentityMemo`.  Broadcast payloads repeat
heavily — the Section 5 history machine re-sends a growing tuple whose
elements are the previous rounds' tuples — so a round's key costs
O(new elements) instead of O(total history).  History tuples whose
producer registered the one-element extension relationship
(:func:`repro._util.memo.note_extension`) key even cheaper: the new
key is the parent's cached key plus the new element's key, with no
per-element recursion at all.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Iterable, List, Tuple

from repro._util.identity import IdentityMemo
from repro._util.memo import extension_parent
from repro._util.rationals import ScaledInt

__all__ = ["canonical_key", "canonical_sorted"]

# Type ranks: chosen arbitrarily but fixed, so heterogeneous inboxes
# still sort deterministically.
_RANK_NONE = 0
_RANK_BOOL = 1
_RANK_NUMBER = 2
_RANK_STR = 3
_RANK_TUPLE = 4
_RANK_DICT = 5

# Only deeply immutable tuples are stored.
_KEY_MEMO = IdentityMemo(limit=1 << 16)


def canonical_key(value: Any) -> Tuple:
    """A sort key defining a total order over supported message values."""
    return _key(value)[0]


def _key(value: Any) -> Tuple[Tuple, bool]:
    """``(canonical key, deeply-immutable?)`` — the flag gates memoisation."""
    if value is None:
        return (_RANK_NONE,), True
    if isinstance(value, bool):
        return (_RANK_BOOL, value), True
    if isinstance(value, (int, Fraction)):
        # ints and Fractions compare numerically with each other.
        return (_RANK_NUMBER, Fraction(value)), True
    if type(value) is ScaledInt:
        # Keyed on the reduced value: a ScaledInt sorts exactly where
        # the Fraction it stands for would.
        return (_RANK_NUMBER, value.as_fraction()), True
    if isinstance(value, float):
        raise TypeError(
            "floats are not permitted in messages; use fractions.Fraction"
        )
    if isinstance(value, str):
        return (_RANK_STR, value), True
    if isinstance(value, tuple):
        cached = _KEY_MEMO.get(value)
        if cached is not None:
            return cached, True
        parent = extension_parent(value)
        if parent is not None:
            # value == parent + (value[-1],): extend the parent's
            # cached key (cached implies deeply immutable) instead of
            # re-keying every element.  Cached-parent case only — after
            # a memo wipe, fall through to the full scan rather than
            # recursing down a long extension chain.
            parent_key = _KEY_MEMO.get(parent)
            if parent_key is not None:
                last_key, last_frozen = _key(value[-1])
                key = (_RANK_TUPLE, parent_key[1] + (last_key,))
                if last_frozen:
                    _KEY_MEMO.put(value, key)
                    return key, True
                return key, False
        parts = []
        frozen = True
        for v in value:
            k, f = _key(v)
            parts.append(k)
            frozen &= f
        key = (_RANK_TUPLE, tuple(parts))
        if frozen:
            _KEY_MEMO.put(value, key)
        return key, frozen
    if isinstance(value, list):
        return (_RANK_TUPLE, tuple(canonical_key(v) for v in value)), False
    if isinstance(value, dict):
        items = sorted(
            ((canonical_key(k), canonical_key(v)) for k, v in value.items())
        )
        return (_RANK_DICT, tuple(items)), False
    raise TypeError(
        f"unsupported message value of type {type(value).__name__}: {value!r}"
    )


def canonical_sorted(values: Iterable[Any]) -> List[Any]:
    """Sort ``values`` by :func:`canonical_key` (stable, deterministic)."""
    return sorted(values, key=canonical_key)
