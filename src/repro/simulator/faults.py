"""Transient-fault adversaries for the self-stabilisation experiments.

Section 1.5 of the paper notes that, being deterministic and strictly
local, its algorithms convert into efficient self-stabilising
algorithms via standard techniques ([4, 5, 23]).  The transformer in
:mod:`repro.selfstab` implements the technique of [23]
(Lenzen–Suomela–Wattenhofer): run the T-round algorithm as a pipeline
of T+1 stored states, recomputed every round.  The adversaries here
model the *transient faults* such an algorithm must survive: arbitrary
corruption of node states that eventually stops.
"""

from __future__ import annotations

import random
from typing import Any, Callable, List

from repro.graphs.topology import PortNumberedGraph

__all__ = ["FaultAdversary", "RandomStateCorruption", "TargetedCorruption"]


class FaultAdversary:
    """Base class: ``corrupt`` may rewrite states before a round.

    Contract: corruption must *replace* entries (``states[v] = bad``),
    never mutate a state object in place — the fast runtime detects
    corruption by entry identity and only re-evaluates ``halted`` for
    replaced entries.  (Machine states are treated as immutable values
    everywhere else, so this is the natural style anyway; both
    adversaries below comply.)
    """

    def corrupt(
        self, round_index: int, graph: PortNumberedGraph, states: List[Any]
    ) -> List[Any]:
        return states

    def is_active(self, round_index: int) -> bool:
        """Whether ``corrupt`` could touch any state this round.

        A conservative ``True`` is always sound; returning ``False``
        lets the fast runtime skip the corruption pass (and its
        halted-node re-checks) entirely for that round.  Overrides must
        guarantee ``corrupt`` is a no-op — including on any internal
        RNG — whenever this returns ``False``.
        """
        return True


class RandomStateCorruption(FaultAdversary):
    """Corrupt random nodes' states during rounds ``[0, until_round)``.

    ``corruptor(rng, state)`` produces the corrupted state; by default
    states are replaced by states of *other random nodes* (a harsh but
    type-preserving corruption: the pipeline contents are plausible yet
    wrong).
    """

    def __init__(
        self,
        until_round: int,
        rate: float = 0.3,
        seed: int = 0,
        corruptor: Callable[[random.Random, Any], Any] | None = None,
    ):
        if not (0.0 <= rate <= 1.0):
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        self.until_round = until_round
        self.rate = rate
        self.rng = random.Random(f"faults:{seed}")
        self.corruptor = corruptor
        self.corruptions = 0

    def is_active(self, round_index):
        return round_index < self.until_round

    def corrupt(self, round_index, graph, states):
        if round_index >= self.until_round:
            return states
        states = list(states)
        n = len(states)
        for v in range(n):
            if self.rng.random() < self.rate:
                if self.corruptor is not None:
                    states[v] = self.corruptor(self.rng, states[v])
                else:
                    states[v] = states[self.rng.randrange(n)]
                self.corruptions += 1
        return states


class TargetedCorruption(FaultAdversary):
    """Corrupt an explicit set of nodes at an explicit set of rounds."""

    def __init__(self, plan: dict[int, dict[int, Any]]):
        """``plan[round][node] = corrupted state``."""
        self.plan = plan
        self.corruptions = 0

    def is_active(self, round_index):
        return round_index in self.plan

    def corrupt(self, round_index, graph, states):
        if round_index not in self.plan:
            return states
        states = list(states)
        for v, bad_state in self.plan[round_index].items():
            states[v] = bad_state
            self.corruptions += 1
        return states
