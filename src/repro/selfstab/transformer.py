"""Self-stabilising transformer (Lenzen–Suomela–Wattenhofer [23]).

Section 1.5 of the paper: "standard techniques [4, 5, 23] can be used
to convert our algorithms into efficient self-stabilising algorithms".
The technique of [23] applies to any deterministic synchronous
algorithm with a running time ``T`` that is a function of global
parameters only — exactly what the paper's machines provide:

Every node stores the full *pipeline* of T+1 simulated states —
``pipeline[i]`` claims to be the wrapped machine's state after ``i``
rounds.  In every real round, every node

1. sends, for each level ``i < T``, the message the wrapped machine
   would send from ``pipeline[i]`` (one stacked message);
2. recomputes the whole pipeline from scratch:
   ``pipeline'[0] = start()`` and
   ``pipeline'[i+1] = step(pipeline[i], level-i inbox)``.

Level ``i`` is correct once the preceding ``i`` rounds were fault-free
(induction on levels), so after ``T`` consecutive fault-free rounds
the output — read from ``pipeline[T]`` — is correct *regardless of the
initial or corrupted state*: that is self-stabilisation.  The price is
a factor-``T`` blow-up in message size and local memory, and that the
algorithm never terminates (it keeps re-verifying forever), both
standard for the transformation.

A corrupted level may contain structurally invalid data that makes the
wrapped machine raise; the transformer treats any raising level as
garbage and resets it to ``start()`` — a form of local checking in the
spirit of Awerbuch–Varghese [5].

**Replay modes.**  Recomputing all ``T+1`` levels every real round is
the transformation's textbook description and stays available as
``replay="scratch"`` — the executable reference contract.  The default
``replay="incremental"`` skips levels whose inputs did not change: a
level's successor is a pure function of ``(ctx, state, inbox)``, so a
content-addressed memo (:class:`repro._util.memo.ReplayMemo`, keyed on
fingerprints of exactly those three values) returns the previous
round's result whenever the inputs hash-match, and only *dirtied*
levels — corrupted by a fault adversary, or still converging — are
stepped through the wrapped machine.  In a fault-free steady state
every level hits.  Nodes that cannot be fingerprinted (a per-node
``ctx.rng``, which would make transitions depend on more than the
fingerprinted values, or unpicklable state) transparently fall back to
the scratch path; results are bit-for-bit identical across modes
(``tests/test_replay_memo.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro._util.identity import IdentityMemo
from repro._util.memo import (
    REPLAY_INCREMENTAL,
    FingerprintCache,
    ReplayMemo,
    content_fingerprint,
    validate_replay,
)
from repro._util.ordering import canonical_sorted
from repro.simulator.machine import BROADCAST, PORT_NUMBERING, LocalContext, Machine
from repro.simulator.runtime import RunResult, run

__all__ = ["SelfStabilisingMachine", "run_self_stabilising"]


@dataclass
class _PipelineState:
    pipeline: Tuple[Any, ...]  # T+1 levels

    def clone(self) -> "_PipelineState":
        return _PipelineState(self.pipeline)


class SelfStabilisingMachine(Machine):
    """Wrap a fixed-schedule machine into its self-stabilising version.

    ``inner`` must be deterministic with a round count that equals
    ``horizon`` on every execution (true for the paper's machines,
    whose schedules depend only on the global parameters).
    """

    # Sentinel for "this node cannot be fingerprinted" (IdentityMemo
    # reserves None for misses).
    _NO_FP = b""

    def __init__(
        self, inner: Machine, horizon: int, replay: str = REPLAY_INCREMENTAL
    ):
        if horizon < 0:
            raise ValueError("horizon must be >= 0")
        self.inner = inner
        self.horizon = horizon
        self.model = inner.model
        self.replay = validate_replay(replay)
        incremental = replay == REPLAY_INCREMENTAL
        # (ctx fp, state fp, inbox fp) -> next level state.  Shared
        # across nodes and levels: the key is the full input content,
        # so a hit is semantically identical to re-stepping.
        self._step_memo = ReplayMemo() if incremental else None
        # Fingerprints pipeline states *and* message payloads (both
        # recur across rounds by identity once the memos are warm).
        self._state_fps = FingerprintCache(limit=1 << 15) if incremental else None
        self._ctx_fps: IdentityMemo = IdentityMemo(limit=1 << 12)
        self._starts: IdentityMemo = IdentityMemo(limit=1 << 12)

    def with_replay(self, replay: str) -> "SelfStabilisingMachine":
        validate_replay(replay)
        if replay == self.replay:
            return self
        return SelfStabilisingMachine(self.inner, self.horizon, replay=replay)

    # -- lifecycle -------------------------------------------------------

    def start(self, ctx: LocalContext) -> _PipelineState:
        # A legitimate initial state; faults may replace it arbitrarily.
        levels: List[Any] = [self.inner.start(ctx)]
        for _ in range(self.horizon):
            levels.append(levels[-1])  # placeholder garbage, self-corrects
        return _PipelineState(tuple(levels))

    def halted(self, ctx: LocalContext, state: _PipelineState) -> bool:
        return False  # self-stabilising algorithms run forever

    def output(self, ctx: LocalContext, state: _PipelineState) -> Any:
        return self.inner.output(ctx, state.pipeline[self.horizon])

    # -- communication ----------------------------------------------------

    def _level_emit(self, ctx: LocalContext, level_state: Any) -> Any:
        try:
            return self.inner.emit(ctx, level_state)
        except Exception:
            return self.inner.emit(ctx, self.inner.start(ctx))

    def emit(self, ctx: LocalContext, state: _PipelineState) -> Any:
        if self._step_memo is None:
            return self._emit_scratch(ctx, state)
        # Incremental: the stacked message is a pure function of
        # (ctx, pipeline levels 0..T-1); in a fault-free steady state
        # the pipeline repeats round after round, so the memo returns
        # the *same* stacked object — which also keeps the runtime's
        # identity-memoised metering/keying of the payload O(1).
        ctx_fp = self._ctx_fingerprint(ctx)
        key = None
        if ctx_fp is not None:
            fp_of = self._state_fps.of
            try:
                key = (
                    b"emit",
                    ctx_fp,
                    tuple(fp_of(s) for s in state.pipeline[: self.horizon]),
                )
            except Exception:
                key = None
        if key is not None:
            cached = self._step_memo.get(key)
            if cached is not None:
                return cached[0]
        out = self._emit_scratch(ctx, state)
        if key is not None:
            # 1-tuple wrapper: a silent (None) payload is still cacheable.
            self._step_memo.put(key, (out,))
        return out

    def _emit_scratch(self, ctx: LocalContext, state: _PipelineState) -> Any:
        if self.model == BROADCAST:
            return tuple(
                self._level_emit(ctx, state.pipeline[i]) for i in range(self.horizon)
            )
        # port model: stack per-port messages into per-port tuples
        stacked: List[List[Any]] = [[] for _ in range(ctx.degree)]
        for i in range(self.horizon):
            out = self._level_emit(ctx, state.pipeline[i])
            if out is None:
                out = [None] * ctx.degree
            for p in range(ctx.degree):
                stacked[p].append(out[p])
        return [tuple(msgs) for msgs in stacked]

    def step(
        self, ctx: LocalContext, state: _PipelineState, inbox: Sequence[Any]
    ) -> _PipelineState:
        if self._step_memo is not None:
            ctx_fp = self._ctx_fingerprint(ctx)
            if ctx_fp is not None:
                return self._step_incremental(ctx, ctx_fp, state, inbox)
        new_levels: List[Any] = [self.inner.start(ctx)]
        for i in range(self.horizon):
            level_inbox = self._project_level(ctx, inbox, i)
            prev = state.pipeline[i]
            try:
                nxt = self.inner.step(ctx, prev, level_inbox)
            except Exception:
                # Corrupted level: reset it; correctness re-establishes
                # itself level by level over the next rounds.
                nxt = self.inner.start(ctx)
            new_levels.append(nxt)
        return _PipelineState(tuple(new_levels))

    def _step_incremental(
        self, ctx: LocalContext, ctx_fp: bytes, state: _PipelineState, inbox
    ) -> _PipelineState:
        """Skip levels whose (state, inbox) inputs hash-match a previous
        computation; step only dirtied levels through the wrapped
        machine.  Value-identical to the scratch loop above."""
        memo = self._step_memo
        fp_of = self._state_fps.of
        # Whole-step short-circuit: the new pipeline is a pure function
        # of (ctx, pipeline, stacked inbox).  In a fault-free steady
        # state both repeat round after round, so one lookup replaces
        # the entire per-level loop.
        whole_key = None
        try:
            whole_key = (
                b"step",
                ctx_fp,
                tuple(fp_of(s) for s in state.pipeline),
                tuple(fp_of(m) for m in inbox),
            )
        except Exception:
            pass
        if whole_key is not None:
            cached = memo.get(whole_key)
            if cached is not None:
                return cached
        new_levels: List[Any] = [self._start_state(ctx)]
        for i in range(self.horizon):
            level_inbox = self._project_level(ctx, inbox, i)
            prev = state.pipeline[i]
            try:
                # Per-message fingerprints: emitted payload objects are
                # identity-stable across rounds in steady state (see
                # emit), so this is a dict lookup per message, not a
                # re-pickle of the whole inbox.
                key = (ctx_fp, fp_of(prev), tuple(fp_of(m) for m in level_inbox))
            except Exception:
                key = None  # unfingerprintable level: recompute
            nxt = memo.get(key) if key is not None else None
            if nxt is None:
                try:
                    nxt = self.inner.step(ctx, prev, level_inbox)
                except Exception:
                    nxt = self._start_state(ctx)
                if key is not None and nxt is not None:
                    memo.put(key, nxt)
            new_levels.append(nxt)
        result = _PipelineState(tuple(new_levels))
        if whole_key is not None:
            memo.put(whole_key, result)
        return result

    def _start_state(self, ctx: LocalContext) -> Any:
        """``inner.start(ctx)``, computed once per context.

        Only used on fingerprintable (rng-free) nodes, where ``start``
        is a pure function of the context.
        """
        s0 = self._starts.get(ctx)
        if s0 is None:
            s0 = self.inner.start(ctx)
            if s0 is not None:
                self._starts.put(ctx, s0)
        return s0

    def _ctx_fingerprint(self, ctx: LocalContext) -> Optional[bytes]:
        """Fingerprint of the context fields a pure hook may depend on,
        or ``None`` when this node must use the scratch path (per-node
        rng — transitions could depend on more than the fingerprinted
        values — or unpicklable input/globals)."""
        fp = self._ctx_fps.get(ctx)
        if fp is None:
            if ctx.rng is not None:
                fp = self._NO_FP
            else:
                try:
                    fp = content_fingerprint(
                        (ctx.degree, ctx.input, tuple(sorted(ctx.globals.items())))
                    )
                except Exception:
                    fp = self._NO_FP
            self._ctx_fps.put(ctx, fp)
        return fp or None

    def _project_level(self, ctx: LocalContext, inbox: Sequence[Any], i: int) -> Any:
        if self.model == BROADCAST:
            level_msgs = []
            for stacked in inbox:
                if isinstance(stacked, tuple) and len(stacked) == self.horizon:
                    level_msgs.append(stacked[i])
                else:
                    level_msgs.append(None)  # corrupted neighbour message
            return tuple(canonical_sorted(level_msgs))
        out = []
        for p in range(ctx.degree):
            stacked = inbox[p]
            if isinstance(stacked, tuple) and len(stacked) == self.horizon:
                out.append(stacked[i])
            else:
                out.append(None)
        return out


def run_self_stabilising(
    graph,
    inner: Machine,
    horizon: int,
    rounds: int,
    inputs: Optional[Sequence[Any]] = None,
    globals_map=None,
    fault_adversary=None,
    seed: Optional[int] = None,
    replay: str = REPLAY_INCREMENTAL,
) -> RunResult:
    """Run the transformed machine for a fixed number of real rounds.

    ``replay`` selects the pipeline recompute strategy (see the module
    docstring); results are identical either way.
    """
    machine = SelfStabilisingMachine(inner, horizon, replay=replay)
    return run(
        graph,
        machine,
        inputs=inputs,
        globals_map=globals_map,
        max_rounds=rounds,
        fault_adversary=fault_adversary,
        seed=seed,
    )
