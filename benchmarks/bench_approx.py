"""EXP-TH1d — the 2-approximation guarantee under timing.

Times packing + exact verification + exact optimum on representative
instances; asserts ratio <= 2 with the dual certificate.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from conftest import once
from repro.baselines.exact import exact_min_vertex_cover
from repro.core.vertex_cover import vertex_cover_2approx
from repro.graphs import families
from repro.graphs.weights import adversarial_weights, uniform_weights

CASES = [
    ("petersen", families.petersen_graph()),
    ("grid3x4", families.grid_2d(3, 4)),
    ("gnp14", families.gnp_random(14, 0.25, seed=5)),
]


@pytest.mark.parametrize("name,graph", CASES, ids=[c[0] for c in CASES])
def test_approx_uniform_weights(benchmark, name, graph):
    w = uniform_weights(graph.n, 8, seed=1)

    def kernel():
        res = vertex_cover_2approx(graph, w)
        opt, _ = exact_min_vertex_cover(graph, w)
        return res, opt

    res, opt = once(benchmark, kernel)
    assert res.is_cover()
    assert res.cover_weight <= 2 * opt
    assert res.certificate_ratio <= 1


@pytest.mark.parametrize("name,graph", CASES, ids=[c[0] for c in CASES])
def test_approx_adversarial_weights(benchmark, name, graph):
    w = adversarial_weights(graph.n, 16)

    def kernel():
        res = vertex_cover_2approx(graph, w)
        opt, _ = exact_min_vertex_cover(graph, w)
        return res, opt

    res, opt = once(benchmark, kernel)
    assert res.cover_weight <= 2 * opt


def test_approx_full_harness(benchmark):
    from repro.experiments.exp_approx import run

    table = once(benchmark, run)
    assert all(r <= 2 for r in table.column("ratio"))
