"""Tests for the synchronous runtime: delivery semantics, metering, halting."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, List, Sequence

import pytest

from repro.graphs import families, ports
from repro.simulator.machine import BROADCAST, PORT_NUMBERING, LocalContext, Machine
from repro.simulator.runtime import run, run_broadcast, run_port_numbering


# ----------------------------------------------------------------------
# Tiny machines used as probes
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _ProbeState:
    round: int
    received: tuple


class EchoPortMachine(Machine):
    """Sends its input on every port for `rounds` rounds; records inboxes."""

    model = PORT_NUMBERING

    def __init__(self, rounds: int = 1):
        self.rounds = rounds

    def start(self, ctx):
        return _ProbeState(0, ())

    def emit(self, ctx, state):
        return [("echo", ctx.input, p) for p in range(ctx.degree)]

    def step(self, ctx, state, inbox):
        return _ProbeState(state.round + 1, state.received + (tuple(inbox),))

    def halted(self, ctx, state):
        return state.round >= self.rounds

    def output(self, ctx, state):
        return state.received


class EchoBroadcastMachine(Machine):
    model = BROADCAST

    def __init__(self, rounds: int = 1):
        self.rounds = rounds

    def start(self, ctx):
        return _ProbeState(0, ())

    def emit(self, ctx, state):
        return ("value", ctx.input)

    def step(self, ctx, state, inbox):
        return _ProbeState(state.round + 1, state.received + (inbox,))

    def halted(self, ctx, state):
        return state.round >= self.rounds

    def output(self, ctx, state):
        return state.received


class NeverHaltMachine(Machine):
    model = PORT_NUMBERING

    def start(self, ctx):
        return 0

    def emit(self, ctx, state):
        return [None] * ctx.degree

    def step(self, ctx, state, inbox):
        return state + 1

    def halted(self, ctx, state):
        return False

    def output(self, ctx, state):
        return state


class TestPortDelivery:
    def test_messages_follow_ports(self):
        g = families.path_graph(3)
        res = run_port_numbering(g, EchoPortMachine(), inputs=["a", "b", "c"])
        # node 1 (middle) hears from 0 on its port to 0 and from 2 likewise
        inbox = res.outputs[1][0]
        p0 = g.port_of(1, 0)
        p2 = g.port_of(1, 2)
        assert inbox[p0] == ("echo", "a", g.port_of(0, 1))
        assert inbox[p2] == ("echo", "c", g.port_of(2, 1))

    def test_wrong_emission_arity_rejected(self):
        class BadMachine(EchoPortMachine):
            def emit(self, ctx, state):
                return [1]  # wrong length unless degree == 1

        g = families.star_graph(3)
        with pytest.raises(ValueError, match="emitted"):
            run_port_numbering(g, BadMachine())

    def test_model_mismatch_rejected(self):
        g = families.path_graph(2)
        with pytest.raises(ValueError, match="written for"):
            run_port_numbering(g, EchoBroadcastMachine())
        with pytest.raises(ValueError, match="written for"):
            run_broadcast(g, EchoPortMachine())


class TestBroadcastDelivery:
    def test_inbox_is_sorted_multiset(self):
        g = families.star_graph(3)
        res = run_broadcast(g, EchoBroadcastMachine(), inputs=[10, 3, 1, 2])
        centre_inbox = res.outputs[0][0]
        assert centre_inbox == (("value", 1), ("value", 2), ("value", 3))

    def test_duplicates_preserved(self):
        g = families.star_graph(3)
        res = run_broadcast(g, EchoBroadcastMachine(), inputs=[0, 5, 5, 5])
        assert res.outputs[0][0] == (("value", 5),) * 3

    def test_port_numbering_invisible_in_broadcast(self):
        """Re-numbering ports must not change any broadcast inbox."""
        g = families.grid_2d(3, 3)
        res1 = run_broadcast(g, EchoBroadcastMachine(2), inputs=list(range(9)))
        g2 = ports.reversed_ports(g)
        res2 = run_broadcast(g2, EchoBroadcastMachine(2), inputs=list(range(9)))
        assert res1.outputs == res2.outputs


class TestHaltingAndRounds:
    def test_runs_until_all_halt(self):
        g = families.cycle_graph(5)
        res = run_port_numbering(g, EchoPortMachine(rounds=7))
        assert res.rounds == 7
        assert res.all_halted

    def test_max_rounds_cutoff(self):
        g = families.path_graph(2)
        res = run_port_numbering(g, NeverHaltMachine(), max_rounds=13)
        assert res.rounds == 13
        assert not res.all_halted

    def test_zero_round_machine(self):
        class InstantMachine(NeverHaltMachine):
            def halted(self, ctx, state):
                return True

        g = families.path_graph(3)
        res = run_port_numbering(g, InstantMachine())
        assert res.rounds == 0
        assert res.all_halted

    def test_empty_graph(self):
        g = families.empty_graph(4)
        res = run_port_numbering(g, EchoPortMachine())
        assert res.rounds == 1
        assert res.outputs == [((),)] * 4


class TestMetering:
    def test_message_count_port_model(self):
        g = families.cycle_graph(4)  # 4 nodes, degree 2
        res = run_port_numbering(g, EchoPortMachine())
        assert res.messages_sent == 4 * 2  # one per port per round
        assert res.message_bits > 0
        assert len(res.per_round_bits) == 1

    def test_none_messages_not_counted(self):
        g = families.cycle_graph(4)
        res = run_port_numbering(g, NeverHaltMachine(), max_rounds=5)
        assert res.messages_sent == 0
        assert res.message_bits == 0

    def test_broadcast_counts_per_link(self):
        g = families.star_graph(4)
        res = run_broadcast(g, EchoBroadcastMachine(), inputs=[0] * 5)
        # centre sends to 4 neighbours, each leaf to 1
        assert res.messages_sent == 4 + 4


class TestContextsAndRng:
    def test_inputs_length_checked(self):
        g = families.path_graph(3)
        with pytest.raises(ValueError, match="inputs"):
            run_port_numbering(g, EchoPortMachine(), inputs=[1, 2])

    def test_rng_absent_without_seed(self):
        class RngProbe(EchoPortMachine):
            def start(self, ctx):
                assert ctx.rng is None
                return super().start(ctx)

        run_port_numbering(families.path_graph(2), RngProbe())

    def test_rng_deterministic_per_seed(self):
        class RandomOutput(Machine):
            model = PORT_NUMBERING

            def start(self, ctx):
                return ctx.rng.random()

            def emit(self, ctx, state):
                return [None] * ctx.degree

            def step(self, ctx, state, inbox):
                return state

            def halted(self, ctx, state):
                return True

            def output(self, ctx, state):
                return state

        g = families.path_graph(4)
        a = run_port_numbering(g, RandomOutput(), seed=3).outputs
        b = run_port_numbering(g, RandomOutput(), seed=3).outputs
        c = run_port_numbering(g, RandomOutput(), seed=4).outputs
        assert a == b
        assert a != c
        assert len(set(a)) > 1  # per-node streams differ

    def test_require_global(self):
        ctx = LocalContext(degree=0, globals={"x": 1})
        assert ctx.require_global("x") == 1
        with pytest.raises(KeyError, match="requires global"):
            ctx.require_global("y")


class TestObserverAndFaults:
    def test_observer_called_each_round(self):
        seen = []
        g = families.path_graph(2)
        run_port_numbering(
            g,
            EchoPortMachine(rounds=3),
            observer=lambda r, states, out: seen.append(r),
        )
        assert seen == [1, 2, 3]

    def test_fault_adversary_applied(self):
        from repro.simulator.faults import TargetedCorruption

        g = families.path_graph(2)
        adversary = TargetedCorruption({1: {0: _ProbeState(0, ("corrupted",))}})
        res = run_port_numbering(
            g, EchoPortMachine(rounds=4), fault_adversary=adversary
        )
        assert adversary.corruptions == 1
        assert "corrupted" in res.outputs[0][0] or res.outputs[0][0] == "corrupted" or any(
            "corrupted" in str(x) for x in res.outputs[0]
        )


class TestMeteringPolicy:
    def test_modes_coerce(self):
        from repro.simulator.runtime import Metering

        assert Metering.of(None).mode == Metering.NONE
        assert Metering.of("counts").mode == Metering.COUNTS
        assert Metering.of(Metering("bits")).mode == Metering.BITS
        with pytest.raises(ValueError, match="unknown metering mode"):
            Metering.of("verbose")

    def test_counts_mode_counts_without_bits(self):
        g = families.cycle_graph(4)
        res = run_port_numbering(g, EchoPortMachine(), metering="counts")
        assert res.messages_sent == 8
        assert res.message_bits == 0
        assert res.per_round_bits == []

    def test_none_mode_measures_nothing_but_computes_everything(self):
        g = families.cycle_graph(4)
        off = run_port_numbering(g, EchoPortMachine(), metering="none")
        on = run_port_numbering(g, EchoPortMachine(), metering="bits")
        assert off.messages_sent == 0 and off.message_bits == 0
        assert off.outputs == on.outputs
        assert off.rounds == on.rounds

    def test_broadcast_counts_mode(self):
        g = families.star_graph(4)
        res = run_broadcast(g, EchoBroadcastMachine(), inputs=[0] * 5,
                            metering="counts")
        assert res.messages_sent == 4 + 4
        assert res.message_bits == 0


class TestHaltedSilence:
    def test_halted_nodes_are_silent(self):
        """A node that halts stops being heard, even if its emit hook
        would still produce messages (the runtime never asks)."""

        class Mixed(EchoPortMachine):
            def halted(self, ctx, state):
                return ctx.input == 0 or state.round >= 3

        g = families.path_graph(2)
        res = run_port_numbering(g, Mixed(rounds=3), inputs=[0, 1])
        # node 1 heard only silence from the instantly-halted node 0
        assert all(inbox == (None,) for inbox in res.outputs[1])
        # and node 0's messages were never metered
        assert res.messages_sent == 3  # node 1's one message per round


class TestBatchedRuns:
    def test_run_many_matches_individual_runs(self):
        from repro.simulator.runtime import run, run_many

        class RandomOutput(Machine):
            model = PORT_NUMBERING

            def start(self, ctx):
                return ctx.rng.random()

            def emit(self, ctx, state):
                return None

            def step(self, ctx, state, inbox):
                return state

            def halted(self, ctx, state):
                return True

            def output(self, ctx, state):
                return state

        g = families.cycle_graph(5)
        seeds = [1, 2, 3, 4]
        batch = run_many(g, RandomOutput(), seeds=seeds)
        assert len(batch) == len(seeds)
        for s, res in zip(seeds, batch):
            assert res.outputs == run(g, RandomOutput(), seed=s).outputs

    def test_run_many_with_workers_is_deterministic(self):
        from repro.simulator.runtime import run_many

        g = families.grid_2d(3, 3)
        serial = run_many(g, EchoPortMachine(2), seeds=[None] * 4,
                          inputs=list(range(9)))
        pooled = run_many(g, EchoPortMachine(2), seeds=[None] * 4,
                          inputs=list(range(9)), n_workers=3)
        assert [r.outputs for r in serial] == [r.outputs for r in pooled]
        assert [r.message_bits for r in serial] == [r.message_bits for r in pooled]

    def test_sweep_accepts_mixed_instance_forms(self):
        from repro.simulator.runtime import run, sweep

        g1 = families.path_graph(3)
        g2 = families.cycle_graph(4)
        results = sweep(
            [
                g1,  # bare graph
                (g2, [1, 2, 3, 4]),  # (graph, inputs) pair
                {"graph": g1, "inputs": ["a", "b", "c"]},  # kwargs mapping
            ],
            EchoPortMachine(),
        )
        assert len(results) == 3
        assert results[1].outputs == run(g2, EchoPortMachine(),
                                         inputs=[1, 2, 3, 4]).outputs
        assert results[2].outputs == run(g1, EchoPortMachine(),
                                         inputs=["a", "b", "c"]).outputs

    def test_sweep_routes_setcover_instances(self):
        from repro.graphs.setcover import random_instance
        from repro.simulator.runtime import run_on_setcover, sweep
        from repro.core.fractional_packing import FractionalPackingMachine

        inst = random_instance(3, 4, k=2, f=2, W=4, seed=0)
        swept = sweep([inst], FractionalPackingMachine())
        direct = run_on_setcover(inst, FractionalPackingMachine())
        assert swept[0].outputs == direct.outputs
        assert swept[0].message_bits == direct.message_bits
