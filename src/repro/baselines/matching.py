"""Distributed maximal matching baselines (rows of Table 1).

* :class:`IdMaximalMatchingMachine` — deterministic maximal matching in
  ``O(Δ + log* N)`` rounds in the style of Panconesi & Rizzi [28]:
  orient edges towards higher **unique identifiers**, split into Δ
  forests by the tail's port order, 3-colour each forest with
  Cole–Vishkin + shift-down (seeded by the identifiers), then process
  the ``3Δ`` star classes with propose/accept.  Matched nodes form a
  2-approximate *unweighted* vertex cover.  The machine *requires*
  unique identifiers — precisely the assumption the paper's Section 3
  algorithm removes — and exists here to make Table 1's comparison
  measurable: same simulator, same graphs, different assumptions.

* :class:`RandomisedMatchingMachine` — an Israeli–Itai-flavoured
  randomised maximal matching in the *anonymous* port-numbering model:
  every phase, unmatched nodes propose along a uniformly random link
  to an unmatched neighbour; mutual proposals match.  ``O(log n)``
  rounds in expectation, standing in for the randomised rows [12, 17].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.cole_vishkin import (
    cv_pseudo_parent,
    cv_schedule_length,
    cv_step_colour,
    eliminate_class_colour,
    shift_down_root_colour,
)
from repro.graphs.topology import PortNumberedGraph
from repro.simulator.machine import PORT_NUMBERING, LocalContext, Machine
from repro.simulator.runtime import RunResult, run_port_numbering

__all__ = [
    "IdMaximalMatchingMachine",
    "RandomisedMatchingMachine",
    "MatchingResult",
    "maximal_matching_with_ids",
    "randomised_maximal_matching",
    "id_matching_schedule_length",
]


# ----------------------------------------------------------------------
# Deterministic matching with unique identifiers
# ----------------------------------------------------------------------


@lru_cache(maxsize=None)
def _id_schedule(delta: int, N: int) -> Tuple[Tuple, ...]:
    """Global schedule: ids, forest announce, CV pipeline, 3Δ star stages."""
    schedule: List[Tuple] = [("ids",), ("announce",)]
    for s in range(cv_schedule_length(max(N, 2))):
        schedule.append(("cv", s))
    for x in (3, 4, 5):
        schedule.append(("sd", x))
        schedule.append(("elim", x))
    for i in range(delta):
        for j in range(3):
            schedule.append(("prop", i, j))
            schedule.append(("resp", i, j))
    return tuple(schedule)


def id_matching_schedule_length(delta: int, N: int) -> int:
    """Exact round count — ``O(Δ + log* N)``, N = identifier space."""
    return len(_id_schedule(delta, N))


@dataclass
class _IdState:
    idx: int
    my_id: int
    matched_port: Optional[int] = None
    nbr_ids: List[int] = field(default_factory=list)
    out_ports: List[int] = field(default_factory=list)
    forest_of_out: Dict[int, int] = field(default_factory=dict)
    forest_in: List[Optional[int]] = field(default_factory=list)
    colour_f: Dict[int, int] = field(default_factory=dict)
    children_colour_f: Dict[int, Optional[int]] = field(default_factory=dict)
    responses: Dict[int, str] = field(default_factory=dict)

    def clone(self) -> "_IdState":
        return _IdState(
            idx=self.idx,
            my_id=self.my_id,
            matched_port=self.matched_port,
            nbr_ids=list(self.nbr_ids),
            out_ports=list(self.out_ports),
            forest_of_out=dict(self.forest_of_out),
            forest_in=list(self.forest_in),
            colour_f=dict(self.colour_f),
            children_colour_f=dict(self.children_colour_f),
            responses=dict(self.responses),
        )

    def child_forests(self) -> Dict[int, int]:
        return {i: p for p, i in self.forest_of_out.items()}

    def parent_forests(self) -> set:
        return {i for i in self.forest_in if i is not None}

    def my_forests(self) -> set:
        return self.parent_forests() | set(self.forest_of_out.values())


class IdMaximalMatchingMachine(Machine):
    """Deterministic maximal matching; input ``{"id": unique int}``.

    Globals: ``delta`` (Δ) and ``N`` (identifier space size; ids are
    in ``0..N-1``).  Output ``{"matched": bool, "partner_port": p}``.
    """

    model = PORT_NUMBERING

    def start(self, ctx: LocalContext) -> _IdState:
        my_id = (ctx.input or {}).get("id")
        N = ctx.require_global("N")
        if not isinstance(my_id, int) or not (0 <= my_id < N):
            raise ValueError(f"need a unique id in 0..{N - 1}, got {my_id!r}")
        if ctx.degree > ctx.require_global("delta"):
            raise ValueError("degree exceeds delta")
        return _IdState(
            idx=0,
            my_id=my_id,
            nbr_ids=[-1] * ctx.degree,
            forest_in=[None] * ctx.degree,
        )

    def _schedule(self, ctx: LocalContext) -> Tuple[Tuple, ...]:
        return _id_schedule(ctx.require_global("delta"), ctx.require_global("N"))

    def halted(self, ctx: LocalContext, state: _IdState) -> bool:
        return state.idx >= len(self._schedule(ctx))

    def output(self, ctx: LocalContext, state: _IdState) -> Dict[str, Any]:
        return {
            "matched": state.matched_port is not None,
            "partner_port": state.matched_port,
        }

    def emit(self, ctx: LocalContext, state: _IdState) -> List[Any]:
        d = ctx.degree
        schedule = self._schedule(ctx)
        if state.idx >= len(schedule):
            return [None] * d
        tag = schedule[state.idx]
        kind = tag[0]

        if kind == "ids":
            return [state.my_id] * d
        if kind == "announce":
            out: List[Any] = [None] * d
            for p, i in state.forest_of_out.items():
                out[p] = i
            return out
        if kind in ("cv", "sd", "elim"):
            out = [None] * d
            for p in range(d):
                i = state.forest_in[p]
                if i is not None:
                    out[p] = state.colour_f[i]
            return out
        if kind == "prop":
            _, i, j = tag
            out = [None] * d
            p = state.child_forests().get(i)
            if (
                p is not None
                and state.matched_port is None
                and state.colour_f.get(i) == j
            ):
                out[p] = "propose"
            return out
        if kind == "resp":
            out = [None] * d
            for p, verdict in state.responses.items():
                out[p] = verdict
            return out
        raise AssertionError(f"unknown tag {tag!r}")

    def step(self, ctx: LocalContext, state: _IdState, inbox: Sequence[Any]) -> _IdState:
        schedule = self._schedule(ctx)
        if state.idx >= len(schedule):
            return state
        tag = schedule[state.idx]
        kind = tag[0]
        st = state.clone()

        if kind == "ids":
            st.nbr_ids = list(inbox)
            st.out_ports = [
                p for p in range(ctx.degree) if st.nbr_ids[p] > st.my_id
            ]
            st.forest_of_out = {p: i for i, p in enumerate(st.out_ports)}
            st.colour_f = {i: st.my_id for i in st.forest_of_out.values()}

        elif kind == "announce":
            for p, msg in enumerate(inbox):
                if msg is not None and st.nbr_ids[p] < st.my_id:
                    st.forest_in[p] = msg
                    st.colour_f.setdefault(msg, st.my_id)

        elif kind == "cv":
            child = st.child_forests()
            for i in st.my_forests():
                if i in child:
                    st.colour_f[i] = cv_step_colour(st.colour_f[i], inbox[child[i]])
                else:
                    st.colour_f[i] = cv_step_colour(
                        st.colour_f[i], cv_pseudo_parent(st.colour_f[i])
                    )

        elif kind == "sd":
            child = st.child_forests()
            parents = st.parent_forests()
            for i in st.my_forests():
                prev = st.colour_f[i]
                if i in child:
                    st.colour_f[i] = inbox[child[i]]
                else:
                    st.colour_f[i] = shift_down_root_colour(prev)
                st.children_colour_f[i] = prev if i in parents else None

        elif kind == "elim":
            child = st.child_forests()
            for i in st.my_forests():
                if st.colour_f[i] != tag[1]:
                    continue
                pc = inbox[child[i]] if i in child else None
                st.colour_f[i] = eliminate_class_colour(
                    st.colour_f[i], tag[1], pc, st.children_colour_f.get(i)
                )

        elif kind == "prop":
            _, i, j = tag
            proposers = [
                p
                for p, msg in enumerate(inbox)
                if msg == "propose" and st.forest_in[p] == i
            ]
            if proposers and st.matched_port is None:
                winner = min(proposers)  # lowest port wins
                st.matched_port = winner
                for p in proposers:
                    st.responses[p] = "accept" if p == winner else "reject"
            else:
                for p in proposers:
                    st.responses[p] = "reject"

        elif kind == "resp":
            _, i, j = tag
            p = st.child_forests().get(i)
            if p is not None and inbox[p] == "accept":
                if st.matched_port is not None:
                    raise AssertionError("double match — protocol bug")
                st.matched_port = p
            st.responses = {}

        else:
            raise AssertionError(f"unknown tag {tag!r}")

        st.idx += 1
        return st


# ----------------------------------------------------------------------
# Randomised matching (anonymous)
# ----------------------------------------------------------------------


@dataclass
class _RandState:
    matched_port: Optional[int] = None
    live: Tuple[int, ...] = ()  # ports towards (believed) unmatched neighbours
    proposal_port: Optional[int] = None
    parity: int = 0  # 0 = status round, 1 = proposal round
    started: bool = False
    done: bool = False

    def clone(self) -> "_RandState":
        return _RandState(
            matched_port=self.matched_port,
            live=self.live,
            proposal_port=self.proposal_port,
            parity=self.parity,
            started=self.started,
            done=self.done,
        )


class RandomisedMatchingMachine(Machine):
    """Anonymous randomised maximal matching (needs a seeded runtime).

    Phases of two rounds: (status) every non-halted node announces
    whether it is unmatched; (proposal) unmatched nodes pick a uniform
    random live port and propose; mutual proposals match.  A node halts
    once matched-or-isolated, which is how the runtime detects global
    termination.  Output ``{"matched": bool, "partner_port": p}``.
    """

    model = PORT_NUMBERING

    def start(self, ctx: LocalContext) -> _RandState:
        if ctx.rng is None:
            raise ValueError(
                "randomised matching needs a seeded runtime (pass seed=...)"
            )
        return _RandState(live=tuple(range(ctx.degree)))

    def halted(self, ctx: LocalContext, state: _RandState) -> bool:
        return state.done

    def output(self, ctx: LocalContext, state: _RandState) -> Dict[str, Any]:
        return {
            "matched": state.matched_port is not None,
            "partner_port": state.matched_port,
        }

    def emit(self, ctx: LocalContext, state: _RandState) -> List[Any]:
        d = ctx.degree
        out: List[Any] = [None] * d
        if state.done:
            return out
        if state.parity == 0:
            status = "unmatched" if state.matched_port is None else "matched"
            return [status] * d
        if state.proposal_port is not None:
            out[state.proposal_port] = "propose"
        return out

    def step(self, ctx: LocalContext, state: _RandState, inbox: Sequence[Any]) -> _RandState:
        st = state.clone()
        if st.done:
            return st
        if st.parity == 0:
            # Silence (None) means the neighbour has halted, hence matched
            # or permanently out of play — either way, not available.
            st.live = tuple(
                p for p in st.live if inbox[p] == "unmatched"
            ) if st.matched_port is None else ()
            if st.matched_port is None and st.live:
                st.proposal_port = ctx.rng.choice(st.live)
            else:
                st.proposal_port = None
            st.parity = 1
            st.started = True
            return st
        # proposal round
        if (
            st.proposal_port is not None
            and inbox[st.proposal_port] == "propose"
        ):
            st.matched_port = st.proposal_port
        st.proposal_port = None
        st.parity = 0
        if st.matched_port is not None or not st.live:
            st.done = True
        return st


# ----------------------------------------------------------------------
# Convenience wrappers
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MatchingResult:
    graph: PortNumberedGraph
    matching: FrozenSet[Tuple[int, int]]
    matched_nodes: FrozenSet[int]
    rounds: int
    run: RunResult

    def is_matching(self) -> bool:
        seen = set()
        for (u, v) in self.matching:
            if u in seen or v in seen:
                return False
            seen.add(u)
            seen.add(v)
        return True

    def is_maximal(self) -> bool:
        m = self.matched_nodes
        return all(u in m or v in m for (u, v) in self.graph.edges)


def _assemble_matching(graph: PortNumberedGraph, result: RunResult) -> MatchingResult:
    pairs = set()
    for v in graph.nodes():
        p = result.outputs[v]["partner_port"]
        if p is not None:
            u, q = graph.port_target(v, p)
            if result.outputs[u]["partner_port"] != q:
                raise AssertionError(
                    f"asymmetric matching: {v} points to {u} but not back"
                )
            pairs.add((min(u, v), max(u, v)))
    matched = frozenset(
        v for v in graph.nodes() if result.outputs[v]["matched"]
    )
    return MatchingResult(
        graph=graph,
        matching=frozenset(pairs),
        matched_nodes=matched,
        rounds=result.rounds,
        run=result,
    )


def maximal_matching_with_ids(
    graph: PortNumberedGraph,
    ids: Optional[Sequence[int]] = None,
    delta: Optional[int] = None,
    N: Optional[int] = None,
) -> MatchingResult:
    """Run the deterministic ID-based matching (default ids = node index)."""
    if ids is None:
        ids = list(graph.nodes())
    if len(set(ids)) != graph.n:
        raise ValueError("identifiers must be unique")
    if delta is None:
        delta = graph.max_degree
    if N is None:
        N = max(ids, default=0) + 1
    machine = IdMaximalMatchingMachine()
    needed = id_matching_schedule_length(delta, N)
    result = run_port_numbering(
        graph,
        machine,
        inputs=[{"id": i} for i in ids],
        globals_map={"delta": delta, "N": N},
        max_rounds=needed,
    )
    if not result.all_halted:
        raise RuntimeError("ID matching did not complete its schedule")
    return _assemble_matching(graph, result)


def randomised_maximal_matching(
    graph: PortNumberedGraph, seed: int = 0, max_rounds: int = 10_000
) -> MatchingResult:
    """Run the randomised matching until all nodes halt."""
    machine = RandomisedMatchingMachine()
    result = run_port_numbering(
        graph, machine, seed=seed, max_rounds=max_rounds
    )
    if not result.all_halted:
        raise RuntimeError(f"randomised matching did not halt in {max_rounds} rounds")
    return _assemble_matching(graph, result)
