#!/usr/bin/env python
"""Intra-run sharding benchmark: one run split across worker processes.

Times the large-n ``exp_scaling`` §3 edge-packing workload (the cycle
instance the scaling experiments replay) through ``run(...)`` serially
and with ``shards=p`` (``repro.simulator.sharding``), verifies the two
results are field-for-field identical, and records the measurement in
the ``shards`` section of ``BENCH_perf.json``:

    PYTHONPATH=src python benchmarks/bench_shards.py --n 100000 --shards 4

On a host with >= 4 cores the ``shards`` section is refreshed
**automatically** (no flag needed); on smaller hosts the refresh is
skipped with a clear message — a single-core measurement cannot show
multi-core scaling, and the stale-but-honest recorded number is better
than a degenerate one; pass ``--update`` to force.

The section is informational (host-dependent scaling), so
``compare.py check`` does not gate on it; the bit-identity assertion
here is the hard part of the contract and runs on any host.  The
sharded *speedup* depends on physical cores: with ``--shards 4`` on a
>= 4-core host the sharded run is expected >= 2x the serial engine on
this workload (near-linear scaling minus the boundary-exchange tax —
the n-cycle has exactly as many boundary edges as shard borders, so
per-round compute dominates at this size).  On a single-core host the
boundary exchange is pure overhead — the recorded ``host.cpu_count``
says which regime a measurement came from.

This script is not part of the pytest-benchmark baseline
(``bench_perf.py``); it is a standalone harness because it compares
*execution substrates against each other* rather than a hot path
against history.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments.exp_scaling import _jobs_for  # noqa: E402
from repro.simulator import sharding  # noqa: E402
from repro.simulator.runtime import run  # noqa: E402

BASELINE = Path(__file__).with_name("BENCH_perf.json")


def build_job(n: int):
    """The §3 edge-packing job of the exp_scaling workload."""
    label, job = _jobs_for(n)[0]
    return label, job


def time_run(job, repeats, **kwargs):
    """Best-of-``repeats`` wall clock; returns (seconds, result)."""
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = run(**job, **kwargs)
        best = min(best, time.perf_counter() - t0)
        result = out
    return best, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=100_000,
                        help="cycle size (default 100000)")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of repeats per substrate (default 3)")
    parser.add_argument("--update", action="store_true",
                        help="write the shards section of BENCH_perf.json "
                             "even on a < 4-core host (>= 4 cores refresh "
                             "automatically)")
    args = parser.parse_args(argv)

    label, job = build_job(args.n)
    print(f"{label} on the n={args.n} cycle, shards={args.shards}, "
          f"best of {args.repeats}")

    serial_s, serial = time_run(job, args.repeats)
    # First sharded call pays warm-up (fork + session init); time it
    # separately so the steady-state number reflects the warm pools.
    t0 = time.perf_counter()
    warm = run(**job, shards=args.shards)
    cold_s = time.perf_counter() - t0
    decision = sharding.LAST_DECISION
    if decision is None or not decision.engaged:
        reason = decision.reason if decision else "no decision recorded"
        print(f"FATAL: sharded engine did not engage ({reason}) — "
              f"the measurement would time the serial fallback",
              file=sys.stderr)
        return 1
    sharded_s, sharded = time_run(job, args.repeats, shards=args.shards)

    if not (serial == warm == sharded):
        print("FATAL: sharded result differs from serial — determinism "
              "contract broken", file=sys.stderr)
        return 1

    record = {
        "workload": f"{label}, cycle n={args.n}",
        "shards": args.shards,
        "serial_s": round(serial_s, 4),
        "sharded_cold_s": round(cold_s, 4),
        "sharded_warm_s": round(sharded_s, 4),
        "sharded_vs_serial_speedup": round(serial_s / sharded_s, 2),
        "results_bit_identical": True,
        "host": {
            "cpu_count": os.cpu_count() or 1,
            "python": platform.python_version(),
            "platform": platform.system().lower(),
        },
    }
    print(json.dumps(record, indent=2))

    cores = record["host"]["cpu_count"]
    if cores >= 4:
        # Only meaningful with real cores to spread the shards over.
        assert record["sharded_vs_serial_speedup"] >= 2.0, (
            f"sharded run should be >=2x serial at {args.shards} shards "
            f"on a {cores}-core host"
        )
        print("speedup gate (>=2x vs serial): PASS")
    else:
        print(f"speedup gate skipped: {cores} core(s) cannot demonstrate "
              "multi-core scaling")

    if args.update or cores >= 4:
        baseline = json.loads(BASELINE.read_text()) if BASELINE.exists() else {}
        baseline["shards"] = record
        BASELINE.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
        if args.update:
            print(f"wrote shards section -> {BASELINE}")
        else:
            print(f"auto-refreshed shards section -> {BASELINE} "
                  f"(host has {cores} cores >= 4)")
    else:
        print(f"skip: not refreshing the shards baseline — this host has "
              f"{cores} core(s) (< 4), so the measurement cannot show "
              f"multi-core scaling; the recorded section is kept as-is. "
              f"Re-run on a >= 4-core machine (auto-refreshes) or pass "
              f"--update to force.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
