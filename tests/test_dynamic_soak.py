"""Long-stream soak: 100+ churn batches, incremental ≡ scratch throughout.

The short differential suite (``tests/test_dynamic.py``) drives a
handful of batches per cell; this soak drives **100+** batches per
cell across the full matrix — all three stream adversaries × both
vertex-cover flows × metering off and on — asserting the seven-field
``RunResult`` contract after *every* batch.  Long streams are where
drift compounds: a warm-restart bug that survives 4 batches rarely
survives 100 (stale history columns, memo leaks across generations,
port renumbering debt from repeated vertex churn all accumulate).

The soak also pins the memory contract: :class:`GenerationalMemo`
retires stale generations as the stream advances — the incremental
session's memo never holds more than two generation buckets, no
matter how long the stream runs.

CI runs this suite in the docs job under a hard timeout; cells are
sized so the whole module stays well inside it.
"""

from __future__ import annotations

import pytest

from repro.dynamic import DynamicRun, HubChurn, RandomChurn, SlidingWindowStream
from repro.graphs import families
from repro.graphs.weights import uniform_weights

from helpers import assert_run_results_equal

SOAK_BATCHES = 110


def _stream(kind: str, seed: int, W: int, delta: int, window: int = 4):
    if kind == "random":
        return RandomChurn(edits_per_batch=2, seed=seed, W=W, max_degree=delta)
    if kind == "hubs":
        return HubChurn(edits_per_batch=2, seed=seed)
    # The window must stay below the graph's degree headroom: a window
    # the stream cannot overflow never retires its links, and once the
    # headroom is gone every later batch would come back empty.
    return SlidingWindowStream(
        window=window, edits_per_batch=2, seed=seed, max_degree=delta
    )


def _soak(graph, weights, *, algorithm, delta, W, metering, stream_kind, seed,
          window=4):
    kwargs = dict(algorithm=algorithm, delta=delta, W=W, metering=metering)
    inc = DynamicRun.vertex_cover(graph, weights, mode="incremental", **kwargs)
    scr = DynamicRun.vertex_cover(graph, weights, mode="scratch", **kwargs)
    stream = _stream(stream_kind, seed, W, delta, window=window)
    applied = 0
    for _ in range(SOAK_BATCHES):
        batch = stream.next_batch(inc.graph, inc.inputs)
        if not batch:
            continue
        inc.apply(batch)
        scr.apply(batch)
        applied += 1
        assert_run_results_equal(
            inc.result, scr.result, label_a="incremental", label_b="scratch"
        )
        # The memory contract: stale generations retire as the memo
        # advances, so at most two buckets are ever live.
        assert len(inc._memo._buckets) <= 2
    assert applied >= 100, f"stream went quiet: only {applied} batches"
    assert inc.cover() == scr.cover()
    assert inc.is_cover()


@pytest.mark.parametrize("metering", ["none", "bits"])
@pytest.mark.parametrize("stream_kind", ["random", "hubs", "window"])
def test_soak_port_flow(stream_kind, metering):
    g = families.gnp_random(16, 0.25, seed=31)
    w = uniform_weights(g.n, 3, seed=8)
    _soak(
        g, w,
        algorithm="port", delta=g.max_degree + 2, W=3,
        metering=metering, stream_kind=stream_kind, seed=13,
    )


@pytest.mark.parametrize("metering", ["none", "bits"])
@pytest.mark.parametrize("stream_kind", ["random", "hubs", "window"])
def test_soak_broadcast_flow(stream_kind, metering):
    # broadcast schedule is O(delta * 2^delta) rounds: pin delta=2 and
    # soak on a sparse graph (max degree 2, m=7 at n=12) so insertion
    # streams have degree headroom for 100+ live batches
    g = families.gnp_random(12, 0.09, seed=10)
    assert g.max_degree == 2
    w = uniform_weights(g.n, 3, seed=4)
    _soak(
        g, w,
        algorithm="broadcast", delta=2, W=3,
        metering=metering, stream_kind=stream_kind, seed=17, window=2,
    )
