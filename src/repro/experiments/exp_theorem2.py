"""EXP-TH2 — Theorem 2: maximal fractional packing in O(f²k² + fk log* W).

Sweeps:

* **(f,k) grid**: random bounded instances; measured rounds equal the
  closed-form schedule length, which grows ~ (fk)² at fixed W; the
  f-approximation guarantee is verified against exact optima.
* **W sweep**: rounds at fixed (f,k) grow like log* W.
* **n sweep**: more subsets/elements at fixed (f,k,W) leave the round
  count untouched — strict locality again.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional

from repro._util.logstar import log_star
from repro.analysis.bounds import fractional_packing_rounds_exact
from repro.analysis.verify import check_fractional_packing
from repro.baselines.exact import exact_min_set_cover
from repro.core.set_cover import set_cover_f_approx
from repro.experiments.common import ExperimentTable
from repro.graphs.setcover import random_instance

__all__ = ["run_fk_grid", "run_w_sweep", "run_n_sweep", "run", "main"]


def run_fk_grid(max_f: int = 3, max_k: int = 3) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id="EXP-TH2a",
        title="fractional packing rounds and ratio over the (f, k) grid (W=4)",
        columns=[
            "f", "k", "D=(k-1)f", "rounds measured", "rounds formula",
            "ratio vs OPT", "f-approx holds",
        ],
    )
    for f in range(1, max_f + 1):
        for k in range(1, max_k + 1):
            inst = random_instance(
                n_subsets=2 * k + 2, n_elements=3 * k, k=k, f=f, W=4, seed=f * 10 + k
            )
            # The generator may produce smaller effective f/k; run the
            # machine with the *target* bounds so the schedule matches.
            res = set_cover_f_approx(inst)
            check_fractional_packing(inst, res.y).require()
            opt, _ = exact_min_set_cover(inst)
            ratio = Fraction(res.cover_weight, opt) if opt else Fraction(0)
            table.add_row(
                f=inst.f,
                k=inst.k,
                **{
                    "D=(k-1)f": (inst.k - 1) * inst.f,
                    "rounds measured": res.rounds,
                    "rounds formula": fractional_packing_rounds_exact(
                        inst.f, inst.k, inst.W
                    ),
                    "ratio vs OPT": ratio,
                    "f-approx holds": res.cover_weight <= inst.f * opt,
                },
            )
    assert all(table.column("f-approx holds"))
    table.add_note("rounds track (D+1)^2 = ((k-1)f + 1)^2 — the f²k² term")
    return table


def run_w_sweep(exponents: Optional[List[int]] = None) -> ExperimentTable:
    exponents = exponents or [0, 4, 16, 64, 256]
    table = ExperimentTable(
        experiment_id="EXP-TH2b",
        title="fractional packing rounds vs W at f=k=2",
        columns=["e (W = 2^e)", "log* W", "rounds formula"],
    )
    for e in exponents:
        W = 2**e
        table.add_row(
            **{
                "e (W = 2^e)": e,
                "log* W": log_star(W),
                "rounds formula": fractional_packing_rounds_exact(2, 2, W),
            }
        )
    rounds = table.column("rounds formula")
    table.add_note(
        f"fk·log*W term: rounds go {rounds[0]} -> {rounds[-1]} while W "
        "spans 256 binary orders of magnitude"
    )
    return table


def run_n_sweep(sizes: Optional[List[int]] = None) -> ExperimentTable:
    sizes = sizes or [4, 8, 16]
    table = ExperimentTable(
        experiment_id="EXP-TH2c",
        title="fractional packing rounds vs instance size at f=k=2, W=2",
        columns=["n_subsets", "n_elements", "rounds measured", "cover valid"],
    )
    for m in sizes:
        inst = random_instance(
            n_subsets=m, n_elements=m, k=2, f=2, W=2, seed=m
        )
        if (inst.f, inst.k, inst.W) != (2, 2, 2):
            # regenerate until the target parameters are realised
            for s in range(50):
                inst = random_instance(m, m, k=2, f=2, W=2, seed=1000 + s)
                if (inst.f, inst.k, inst.W) == (2, 2, 2):
                    break
        res = set_cover_f_approx(inst)
        table.add_row(
            n_subsets=inst.n_subsets,
            n_elements=inst.n_elements,
            **{
                "rounds measured": res.rounds,
                "cover valid": res.is_cover(),
            },
        )
    flat = len(set(table.column("rounds measured"))) == 1
    table.add_note(
        f"strict locality (rounds constant in instance size): "
        f"{'HOLDS' if flat else 'FAILS'}"
    )
    return table


def run() -> List[ExperimentTable]:
    return [run_fk_grid(), run_w_sweep(), run_n_sweep()]


def main() -> None:
    for t in run():
        print(t.render())
        print()


if __name__ == "__main__":
    main()
