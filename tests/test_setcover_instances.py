"""Tests for SetCoverInstance and its generators."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.graphs import families
from repro.graphs.setcover import (
    SetCoverInstance,
    partition_instance,
    random_instance,
    symmetric_kpp_instance,
    vc_to_setcover,
)
from tests.conftest import setcover_instances


class TestInstanceBasics:
    def test_parameters(self):
        inst = partition_instance(
            groups=[[0, 1], [1, 2], [2]], weights=[2, 3, 1], n_elements=3
        )
        assert inst.n_subsets == 3
        assert inst.n_elements == 3
        assert inst.k == 2
        assert inst.f == 2  # elements 1 and 2 appear twice
        assert inst.W == 3

    def test_rejects_uncovered_element(self):
        with pytest.raises(ValueError, match="infeasible"):
            partition_instance(groups=[[0]], weights=[1], n_elements=2)

    def test_rejects_out_of_range_element(self):
        with pytest.raises(ValueError, match="outside universe"):
            partition_instance(groups=[[0, 5]], weights=[1], n_elements=2)

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            partition_instance(groups=[[0]], weights=[0], n_elements=1)

    def test_element_to_subsets(self):
        inst = partition_instance(
            groups=[[0, 1], [1]], weights=[1, 1], n_elements=2
        )
        assert inst.element_to_subsets() == [[0], [0, 1]]

    def test_is_cover_and_weight(self):
        inst = partition_instance(
            groups=[[0, 1], [1, 2], [0, 2]], weights=[2, 3, 4], n_elements=3
        )
        assert inst.is_cover([0, 1])
        assert not inst.is_cover([1])
        assert inst.cover_weight([0, 1, 0]) == 5  # duplicates ignored


class TestBipartiteLayout:
    def test_layout_shapes(self):
        inst = partition_instance(
            groups=[[0, 1], [1, 2]], weights=[1, 2], n_elements=3
        )
        g = inst.to_bipartite_graph()
        assert g.n == inst.n_subsets + inst.n_elements
        assert g.m == sum(len(s) for s in inst.subsets)
        assert g.degree(inst.subset_node(0)) == 2
        assert g.degree(inst.element_node(1)) == 2

    def test_node_inputs_roles(self):
        inst = partition_instance(groups=[[0]], weights=[7], n_elements=1)
        inputs = inst.node_inputs()
        assert inputs[0] == {"role": "subset", "weight": 7}
        assert inputs[1] == {"role": "element"}

    def test_global_params(self):
        inst = partition_instance(
            groups=[[0, 1, 2], [0]], weights=[5, 2], n_elements=3
        )
        assert inst.global_params() == {"f": 2, "k": 3, "W": 5}


class TestGenerators:
    @given(setcover_instances())
    @settings(max_examples=40, deadline=None)
    def test_random_instances_respect_bounds(self, inst):
        assert inst.k <= 4
        assert inst.f <= 3
        assert inst.W <= 8
        # feasibility is enforced by the constructor; reaching here means ok
        assert inst.is_cover(range(inst.n_subsets))

    def test_random_instance_deterministic(self):
        a = random_instance(5, 8, k=3, f=2, W=4, seed=9)
        b = random_instance(5, 8, k=3, f=2, W=4, seed=9)
        assert a.subsets == b.subsets and a.weights == b.weights

    def test_random_instance_capacity_check(self):
        with pytest.raises(ValueError, match="capacity"):
            random_instance(2, 10, k=2, f=1)

    def test_vc_to_setcover_parameters(self):
        g = families.cycle_graph(5)
        inst = vc_to_setcover(g, [2] * 5)
        assert inst.n_subsets == 5
        assert inst.n_elements == 5  # edges
        assert inst.f == 2  # every edge has two endpoints
        assert inst.k == 2  # cycle degree
        # covers correspond: subsets = incident edge sets
        for v in g.nodes():
            assert inst.subsets[v] == frozenset(g.incident_edges(v))

    def test_vc_to_setcover_isolated_node(self):
        from repro.graphs.topology import PortNumberedGraph

        g = PortNumberedGraph.from_edges(3, [(0, 1)])
        inst = vc_to_setcover(g, [1, 1, 1])
        assert inst.subsets[2] == frozenset()

    def test_symmetric_kpp(self):
        inst = symmetric_kpp_instance(4)
        assert inst.f == 4 and inst.k == 4
        assert inst.is_cover([0])
        assert inst.cover_weight([0]) == 1
