"""Command-line entry point: run experiments and print their tables.

Usage::

    python -m repro.experiments.cli --list
    python -m repro.experiments.cli table1 figure3
    python -m repro.experiments.cli --all
    python -m repro.experiments.cli --all --markdown > results.md
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time
from typing import List

from repro.experiments import EXPERIMENT_MODULES
from repro.experiments.common import ExperimentTable

__all__ = ["main"]


def _run_one(name: str) -> List[ExperimentTable]:
    module = importlib.import_module(EXPERIMENT_MODULES[name])
    result = module.run()
    return result if isinstance(result, list) else [result]


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of Åstrand & Suomela (SPAA 2010).",
    )
    parser.add_argument("experiments", nargs="*", help="experiment names")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--list", action="store_true", help="list experiment names")
    parser.add_argument(
        "--markdown", action="store_true", help="emit markdown instead of ASCII"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name, module in EXPERIMENT_MODULES.items():
            print(f"{name:10s} {module}")
        return 0

    names = list(EXPERIMENT_MODULES) if args.all else args.experiments
    if not names:
        parser.print_help()
        return 2
    unknown = [n for n in names if n not in EXPERIMENT_MODULES]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        print(f"known: {sorted(EXPERIMENT_MODULES)}", file=sys.stderr)
        return 2

    for name in names:
        started = time.perf_counter()
        tables = _run_one(name)
        elapsed = time.perf_counter() - started
        for table in tables:
            print(table.to_markdown() if args.markdown else table.render())
            print()
        print(f"({name} completed in {elapsed:.1f}s)\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
