"""Exact verifiers for packings and covers.

All checks run on exact rationals — a verifier that used floating
point could silently accept an infeasible packing whose violation is
below the tolerance, defeating the point of the dual certificates.

A vectorised (numpy) feasibility check is provided as well; it is used
by the performance experiment to quantify the cost of exactness, and
as a redundant fast pre-check on large instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from repro.graphs.setcover import SetCoverInstance
from repro.graphs.topology import PortNumberedGraph

__all__ = [
    "PackingCheck",
    "check_edge_packing",
    "check_vertex_cover",
    "check_fractional_packing",
    "check_set_cover",
    "edge_packing_from_result",
    "edge_packing_feasible_fast",
]


@dataclass(frozen=True)
class PackingCheck:
    """Outcome of a packing verification."""

    feasible: bool
    maximal: bool
    violations: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.feasible and self.maximal

    def require(self) -> None:
        if not self.ok:
            raise AssertionError(
                "packing verification failed:\n  " + "\n  ".join(self.violations)
            )


def check_edge_packing(
    graph: PortNumberedGraph,
    weights: Sequence[int],
    y: Mapping[int, Fraction],
) -> PackingCheck:
    """Verify feasibility (``y[v] <= w_v``) and maximality (Section 1.1).

    ``y`` maps edge ids to values.  An edge is saturated iff some
    endpoint ``v`` has ``y[v] = w_v``; the packing is maximal iff every
    edge is saturated.
    """
    violations: List[str] = []
    if set(y.keys()) != set(range(graph.m)):
        violations.append(
            f"y must assign a value to every edge id 0..{graph.m - 1}"
        )
        return PackingCheck(False, False, tuple(violations))

    node_load = [Fraction(0)] * graph.n
    for (u, v) in graph.edges:
        e = graph.edge_id(u, v)
        val = Fraction(y[e])
        if val < 0:
            violations.append(f"edge {(u, v)}: negative value {val}")
        node_load[u] += val
        node_load[v] += val

    feasible = not violations
    for v in graph.nodes():
        if node_load[v] > weights[v]:
            feasible = False
            violations.append(
                f"node {v}: load {node_load[v]} exceeds weight {weights[v]}"
            )

    saturated = [node_load[v] == weights[v] for v in graph.nodes()]
    maximal = True
    for (u, v) in graph.edges:
        if not (saturated[u] or saturated[v]):
            maximal = False
            violations.append(
                f"edge {(u, v)} unsaturated: loads "
                f"{node_load[u]}/{weights[u]} and {node_load[v]}/{weights[v]}"
            )
    return PackingCheck(feasible, maximal, tuple(violations))


def check_vertex_cover(
    graph: PortNumberedGraph, cover: Iterable[int]
) -> Tuple[bool, Tuple[Tuple[int, int], ...]]:
    """Return (is_cover, uncovered_edges)."""
    cset = set(cover)
    uncovered = tuple(
        (u, v) for (u, v) in graph.edges if u not in cset and v not in cset
    )
    return (not uncovered, uncovered)


def check_fractional_packing(
    instance: SetCoverInstance, y: Sequence[Fraction]
) -> PackingCheck:
    """Verify feasibility (``y[s] <= w_s``) and maximality (Section 1.2)."""
    violations: List[str] = []
    if len(y) != instance.n_elements:
        return PackingCheck(
            False, False, (f"need {instance.n_elements} element values",)
        )
    y = [Fraction(v) for v in y]
    for u, val in enumerate(y):
        if val < 0:
            violations.append(f"element {u}: negative value {val}")

    loads = []
    for s, members in enumerate(instance.subsets):
        load = sum((y[u] for u in members), Fraction(0))
        loads.append(load)
        if load > instance.weights[s]:
            violations.append(
                f"subset {s}: load {load} exceeds weight {instance.weights[s]}"
            )
    feasible = not violations

    saturated = [loads[s] == instance.weights[s] for s in range(instance.n_subsets)]
    maximal = True
    for u, owners in enumerate(instance.element_to_subsets()):
        if not any(saturated[s] for s in owners):
            maximal = False
            violations.append(f"element {u} not adjacent to a saturated subset")
    return PackingCheck(feasible, maximal, tuple(violations))


def check_set_cover(
    instance: SetCoverInstance, chosen: Iterable[int]
) -> Tuple[bool, Tuple[int, ...]]:
    """Return (is_cover, uncovered_elements)."""
    covered = set()
    for s in set(chosen):
        covered |= instance.subsets[s]
    uncovered = tuple(sorted(set(range(instance.n_elements)) - covered))
    return (not uncovered, uncovered)


def edge_packing_from_result(result) -> Dict[int, Fraction]:
    """Extract the edge map from an :class:`EdgePackingResult` (alias)."""
    return dict(result.y)


def edge_packing_feasible_fast(
    graph: PortNumberedGraph,
    weights: Sequence[int],
    y_values: Sequence[float],
    tol: float = 1e-9,
) -> bool:
    """Vectorised float feasibility check (numpy).

    Sound only up to ``tol``; the exact checker is authoritative.  Used
    by the performance experiment and as a cheap pre-filter.
    """
    if graph.m == 0:
        return True
    yv = np.asarray([float(v) for v in y_values], dtype=float)
    if (yv < -tol).any():
        return False
    ends = np.asarray(graph.edges, dtype=np.intp)
    load = np.zeros(graph.n, dtype=float)
    np.add.at(load, ends[:, 0], yv)
    np.add.at(load, ends[:, 1], yv)
    return bool((load <= np.asarray(weights, dtype=float) + tol).all())
