"""Exact rational arithmetic helpers.

The paper's algorithms manipulate rational numbers whose denominators
are controlled by Lemma 2 (edge packing: every colour element ``q``
satisfies ``q · (Δ!)^Δ ∈ N``) and by the analogous argument in
Section 4 (fractional packing: ``p(u) · (k!)^{(D+1)²} ∈ N``).  We use
:class:`fractions.Fraction` throughout the core algorithms so these
integrality facts can be *asserted* rather than assumed, and so that
feasibility/maximality verification is exact.

:class:`ScaledInt` is the machine-level fast path those denominator
bounds enable: an exact rational held as an integer numerator against
an explicit (shared, not-necessarily-reduced) denominator.  While the
denominator is shared — which Lemma 2 guarantees for all of Phase I —
add/sub/min/compare are single integer operations with no gcd
normalisation, which is where :class:`~fractions.Fraction` spends most
of its time.  Operations that would push the denominator past the
per-instance ``limit`` return an exact :class:`Fraction` instead
(never an inexact value, never a silent overflow), so the star rounds
of Section 3 and any value outside the lemma's discipline degrade
gracefully to the general representation.
"""

from __future__ import annotations

import math
from fractions import Fraction
from functools import reduce
from math import gcd
from typing import Iterable, Optional, Union

__all__ = [
    "FRACTION_ZERO",
    "FRACTION_ONE",
    "ScaledInt",
    "as_fraction",
    "column_scaled",
    "factorial",
    "is_multiple_of",
    "lcm_denominator",
    "scaled_column",
]

Rational = Union[int, Fraction]

# Shared constants: Fraction construction is surprisingly costly, and
# hot paths compare against 0/1 constantly.  Fractions are immutable,
# so sharing is safe.
FRACTION_ZERO = Fraction(0)
FRACTION_ONE = Fraction(1)


def as_fraction(value: Union[int, str, Fraction]) -> Fraction:
    """Coerce ``value`` to an exact :class:`Fraction`.

    Floats are rejected on purpose: the core algorithms must never see
    an inexact number, otherwise the Lemma 2 integrality invariants
    (and with them the colour encodings) silently break.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise TypeError("booleans are not valid rational values")
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, str):
        return Fraction(value)
    raise TypeError(
        f"expected an exact rational (int/Fraction/str), got {type(value).__name__}"
    )


def factorial(n: int) -> int:
    """``n!`` with validation (thin wrapper over :func:`math.factorial`)."""
    if n < 0:
        raise ValueError(f"factorial of negative number: {n}")
    return math.factorial(n)


def is_multiple_of(value: Rational, unit: Fraction) -> bool:
    """Return ``True`` iff ``value`` is an integer multiple of ``unit``.

    Used to assert the Lemma 2 invariant: colour elements produced
    during Phase I iteration ``t`` are integer multiples of
    ``1 / (Δ!)^t``.
    """
    if unit == 0:
        raise ValueError("unit must be nonzero")
    q = as_fraction(value) / as_fraction(unit)
    return q.denominator == 1


def lcm_denominator(values: Iterable[Rational]) -> int:
    """Least common multiple of the denominators of ``values``.

    Returns 1 for an empty iterable.  Useful when clearing denominators
    to obtain the integer colour encodings of Lemma 2.
    """
    return reduce(
        math.lcm, (as_fraction(v).denominator for v in values), 1
    )


def scaled_column(values: Iterable[Union[int, Fraction, "ScaledInt"]],
                  den: int) -> list:
    """Numerators of ``values`` on the shared denominator ``den``.

    The ScaledInt → ``int64``-column view used by the columnar engine
    (:mod:`repro.simulator.state_layout`): a homogeneous batch of exact
    rationals becomes one flat list of plain integers, suitable for a
    numpy column.  Raises if any value is not an integer multiple of
    ``1/den`` — the same Lemma 2 round-trip check as
    :meth:`ScaledInt.of`, applied column-wise.
    """
    if den < 1:
        raise ValueError(f"denominator must be positive, got {den}")
    nums = []
    for v in values:
        if type(v) is ScaledInt and v.den == den:
            nums.append(v.num)
            continue
        f = v.as_fraction() if type(v) is ScaledInt else as_fraction(v)
        num, rem = divmod(f.numerator * den, f.denominator)
        if rem:
            raise ValueError(f"{f} is not an integer multiple of 1/{den}")
        nums.append(num)
    return nums


def column_scaled(nums: Iterable[int], den: int,
                  limit: Optional[int] = None,
                  cache: Optional[dict] = None) -> list:
    """Rebuild :class:`ScaledInt` objects from an integer column.

    Inverse of :func:`scaled_column`; ``int(...)`` coercion guards
    against numpy scalar types leaking into machine states (their
    silent wraparound arithmetic must never touch the exact grid).

    Repeated numerators share one interned instance (ScaledInt is
    immutable and value-equal, so sharing is observationally inert) —
    columnar workloads repeat a handful of values across thousands of
    entries, and sharing also pools the lazy ``as_fraction`` caches.
    Pass ``cache`` to extend the interning table across several columns
    on the same denominator.
    """
    if cache is None:
        cache = {}
    out = []
    for num in nums:
        v = cache.get(num)
        if v is None:
            v = ScaledInt(int(num), den, limit)
            cache[num] = v
        out.append(v)
    return out


class ScaledInt:
    """Exact rational ``num / den`` with an explicit shared denominator.

    The value is exact but **not normalised**: ``num`` and ``den`` may
    share a common factor.  All observable behaviour (equality,
    ordering, hashing, :meth:`as_fraction`) is defined on the reduced
    value, so two representations of the same rational are
    interchangeable; the unreduced form only buys speed.  ``den`` is
    always positive.

    Arithmetic rules:

    * same-denominator ``+``/``-``/comparisons are single integer
      operations (the Phase I fast path);
    * division by an integer first tries exact numerator division,
      then extends the denominator by the reduced divisor;
    * any operation whose result denominator would exceed ``limit``
      returns the exact :class:`~fractions.Fraction` instead — the
      documented fallback, never a silent loss of exactness;
    * mixing with :class:`~fractions.Fraction` (or another
      :class:`ScaledInt`'s multiplication/division) goes through
      :class:`~fractions.Fraction` arithmetic.

    Instances are immutable by convention (``_frac`` caches the reduced
    form lazily); never mutate ``num``/``den`` after construction —
    machine states share them copy-on-write.
    """

    __slots__ = ("num", "den", "limit", "_frac")

    def __init__(self, num: int, den: int, limit: Optional[int] = None):
        if den <= 0:
            # Comparisons cross-multiply assuming den > 0; a negative
            # denominator would silently invert them.
            raise ValueError(f"denominator must be positive, got {den}")
        self.num = num
        self.den = den
        self.limit = limit
        self._frac: Optional[Fraction] = None

    # -- construction / conversion -------------------------------------

    @classmethod
    def of(
        cls, value: Union[int, Fraction, "ScaledInt"],
        den: int, limit: Optional[int] = None,
    ) -> "ScaledInt":
        """Validated conversion onto denominator ``den``.

        Raises if ``value`` is not an integer multiple of ``1/den`` —
        the Lemma 2 round-trip check.
        """
        if den < 1:
            raise ValueError(f"denominator must be positive, got {den}")
        if isinstance(value, ScaledInt):
            value = value.as_fraction()
        if isinstance(value, bool):
            raise TypeError("booleans are not valid rational values")
        if isinstance(value, int):
            return cls(value * den, den, limit)
        if isinstance(value, Fraction):
            scaled, rem = divmod(value.numerator * den, value.denominator)
            if rem:
                raise ValueError(
                    f"{value} is not an integer multiple of 1/{den}"
                )
            return cls(scaled, den, limit)
        raise TypeError(
            f"expected int/Fraction/ScaledInt, got {type(value).__name__}"
        )

    def as_fraction(self) -> Fraction:
        """The reduced value (cached; the metering/encoding boundary)."""
        f = self._frac
        if f is None:
            num = self.num
            if num == 0:
                f = FRACTION_ZERO
            elif num == self.den:
                f = FRACTION_ONE
            else:
                f = Fraction(num, self.den)
            self._frac = f
        return f

    @property
    def numerator(self) -> int:
        return self.as_fraction().numerator

    @property
    def denominator(self) -> int:
        return self.as_fraction().denominator

    # -- arithmetic -----------------------------------------------------

    def _mixed_addsub(self, onum: int, oden: int, sign: int):
        """``self ± onum/oden`` with minimal denominator growth."""
        sden = self.den
        g = gcd(sden, oden)
        den = sden // g * oden
        num = self.num * (den // sden) + sign * onum * (den // oden)
        limit = self.limit
        if limit is not None and den > limit:
            return Fraction(num, den)
        return ScaledInt(num, den, limit)

    def __add__(self, other):
        t = type(other)
        if t is ScaledInt:
            sden, oden = self.den, other.den
            if sden is oden or sden == oden:
                return ScaledInt(self.num + other.num, sden,
                                 self.limit if self.limit is not None
                                 else other.limit)
            return self._mixed_addsub(other.num, other.den, 1)
        if t is int:
            return ScaledInt(self.num + other * self.den, self.den, self.limit)
        if t is Fraction:
            return self.as_fraction() + other
        return NotImplemented

    def __radd__(self, other):
        t = type(other)
        if t is int:
            return ScaledInt(self.num + other * self.den, self.den, self.limit)
        if t is Fraction:
            return other + self.as_fraction()
        return NotImplemented

    def __sub__(self, other):
        t = type(other)
        if t is ScaledInt:
            sden, oden = self.den, other.den
            if sden is oden or sden == oden:
                return ScaledInt(self.num - other.num, sden,
                                 self.limit if self.limit is not None
                                 else other.limit)
            return self._mixed_addsub(other.num, other.den, -1)
        if t is int:
            return ScaledInt(self.num - other * self.den, self.den, self.limit)
        if t is Fraction:
            return self.as_fraction() - other
        return NotImplemented

    def __rsub__(self, other):
        t = type(other)
        if t is int:
            return ScaledInt(other * self.den - self.num, self.den, self.limit)
        if t is Fraction:
            return other - self.as_fraction()
        return NotImplemented

    def __mul__(self, other):
        if type(other) is int:
            return ScaledInt(self.num * other, self.den, self.limit)
        if type(other) is ScaledInt:
            return self.as_fraction() * other.as_fraction()
        if type(other) is Fraction:
            return self.as_fraction() * other
        return NotImplemented

    __rmul__ = __mul__

    def __truediv__(self, other):
        t = type(other)
        if t is int:
            if other == 0:
                raise ZeroDivisionError("ScaledInt division by zero")
            num = self.num
            if other < 0:
                num, other = -num, -other
            q, rem = divmod(num, other)
            if rem == 0:
                return ScaledInt(q, self.den, self.limit)
            g = gcd(num, other)
            den = self.den * (other // g)
            num //= g
            limit = self.limit
            if limit is not None and den > limit:
                return Fraction(num, den)
            return ScaledInt(num, den, limit)
        if t is ScaledInt:
            return self.as_fraction() / other.as_fraction()
        if t is Fraction:
            return self.as_fraction() / other
        return NotImplemented

    def __rtruediv__(self, other):
        if type(other) in (int, Fraction):
            return other / self.as_fraction()
        return NotImplemented

    def div_exact(self, n: int) -> "ScaledInt":
        """``self / n`` under the fixed-denominator discipline.

        Phase I of Section 3 only ever divides residuals by active
        degrees, which Lemma 2 proves stay on the ``(Δ!)^Δ`` grid; a
        remainder here means that invariant was violated, so it raises
        rather than degrade representation silently.
        """
        q, rem = divmod(self.num, n)
        if rem:
            raise AssertionError(
                f"inexact scaled division {self!r} / {n} — the Lemma 2 "
                f"denominator bound does not cover this value"
            )
        return ScaledInt(q, self.den, self.limit)

    def __neg__(self):
        return ScaledInt(-self.num, self.den, self.limit)

    def __abs__(self):
        return ScaledInt(abs(self.num), self.den, self.limit)

    def __bool__(self):
        return self.num != 0

    # -- comparisons ----------------------------------------------------

    def _parts(self, other):
        """Cross-multiplied integer pair ``(a, b)`` with ``self ~ other``
        iff ``a ~ b``; ``None`` for unsupported operands."""
        t = type(other)
        if t is ScaledInt:
            sden, oden = self.den, other.den
            if sden is oden or sden == oden:
                return self.num, other.num
            return self.num * oden, other.num * sden
        if t is int or t is bool:
            return self.num, other * self.den
        if t is Fraction:
            return (self.num * other.denominator,
                    other.numerator * self.den)
        return None

    def __eq__(self, other):
        parts = self._parts(other)
        if parts is None:
            return NotImplemented
        return parts[0] == parts[1]

    def __lt__(self, other):
        parts = self._parts(other)
        if parts is None:
            return NotImplemented
        return parts[0] < parts[1]

    def __le__(self, other):
        parts = self._parts(other)
        if parts is None:
            return NotImplemented
        return parts[0] <= parts[1]

    def __gt__(self, other):
        parts = self._parts(other)
        if parts is None:
            return NotImplemented
        return parts[0] > parts[1]

    def __ge__(self, other):
        parts = self._parts(other)
        if parts is None:
            return NotImplemented
        return parts[0] >= parts[1]

    def __hash__(self):
        # Hash-compatible with Fraction/int of equal value, so mixed
        # containers (replay memo keys, y dicts) behave.
        return hash(self.as_fraction())

    # -- misc ------------------------------------------------------------

    def __repr__(self) -> str:
        return f"ScaledInt({self.num}, {self.den})"

    def __reduce__(self):
        return (ScaledInt, (self.num, self.den, self.limit))
