"""Shared test helpers: the bit-for-bit RunResult equivalence contract.

Every alternative execution path in the runtime — the columnar engine,
the dynamic incremental mode, crash-recovering pools, and the sharded
intra-run engine — promises results *field-for-field identical* to the
plain serial object engine.  The assertions here are that contract's
single point of truth; the suites import them instead of re-listing the
seven RunResult fields.

On mismatch the error names the first differing field and the node (or
round, for ``per_round_bits``) where the divergence starts, mirroring
the diagnostic style of the CLI's ``--verify`` output
(``repro.cli._verify_diff``), so a failing differential test points at
the locus rather than dumping two whole result objects.
"""

from __future__ import annotations

from typing import Iterable, Tuple

__all__ = [
    "RUN_RESULT_FIELDS",
    "describe_difference",
    "assert_run_results_equal",
    "assert_result_lists_equal",
]

#: Every field of :class:`repro.simulator.runtime.RunResult`, in the
#: order they are compared.  Kept as a tuple so tests can subset it
#: (e.g. skip metering fields when comparing metered vs unmetered runs).
RUN_RESULT_FIELDS: Tuple[str, ...] = (
    "outputs",
    "rounds",
    "all_halted",
    "messages_sent",
    "message_bits",
    "per_round_bits",
    "states",
)


def _short(value, width: int = 48) -> str:
    text = repr(value)
    return text if len(text) <= width else text[: width - 3] + "..."


def describe_difference(a, b, field: str) -> str:
    """Human-readable locus of the first difference in one field."""
    va, vb = getattr(a, field), getattr(b, field)
    if isinstance(va, (list, tuple)) and isinstance(vb, (list, tuple)):
        if len(va) != len(vb):
            return f"lengths differ: {len(va)} != {len(vb)}"
        idx = next(i for i, (x, y) in enumerate(zip(va, vb)) if x != y)
        unit = "round" if field == "per_round_bits" else "node"
        return (
            f"first difference at {unit} {idx}: "
            f"{_short(va[idx])} != {_short(vb[idx])}"
        )
    return f"{_short(va)} != {_short(vb)}"


def assert_run_results_equal(
    a,
    b,
    label_a: str = "a",
    label_b: str = "b",
    fields: Tuple[str, ...] = RUN_RESULT_FIELDS,
) -> None:
    """Assert two RunResults agree on every field, bit for bit.

    Raises AssertionError naming the first differing field and the
    node/round where the values diverge.
    """
    for field in fields:
        if getattr(a, field) != getattr(b, field):
            raise AssertionError(
                f"RunResult field {field!r} differs between {label_a} "
                f"and {label_b}: {describe_difference(a, b, field)}"
            )


def assert_result_lists_equal(
    xs: Iterable,
    ys: Iterable,
    label_a: str = "a",
    label_b: str = "b",
) -> None:
    """Element-wise :func:`assert_run_results_equal` over two sequences."""
    xs, ys = list(xs), list(ys)
    if len(xs) != len(ys):
        raise AssertionError(
            f"result counts differ: {len(xs)} {label_a} != {len(ys)} {label_b}"
        )
    for i, (x, y) in enumerate(zip(xs, ys)):
        assert_run_results_equal(
            x, y, label_a=f"{label_a}[{i}]", label_b=f"{label_b}[{i}]"
        )
