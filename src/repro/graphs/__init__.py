"""Graph and set-cover instance substrate.

Provides the port-numbered topology type used by the simulator, graph
family generators, port-numbering strategies, weight generators, and
the bipartite set-cover instance representation of Section 1.2.
"""

from repro.graphs.topology import PortNumberedGraph
from repro.graphs.weights import (
    max_weight,
    uniform_weights,
    unit_weights,
    validate_weights,
)
from repro.graphs.setcover import SetCoverInstance

from repro.graphs import families, ports, setcover, weights  # noqa: F401

__all__ = [
    "PortNumberedGraph",
    "SetCoverInstance",
    "families",
    "max_weight",
    "ports",
    "setcover",
    "uniform_weights",
    "unit_weights",
    "validate_weights",
    "weights",
]
