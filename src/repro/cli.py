"""Command-line interface for running the algorithms on generated instances.

Examples::

    python -m repro.cli vc --family cycle --n 16 --W 8 --algorithm port
    python -m repro.cli vc --family petersen --algorithm broadcast --json
    python -m repro.cli sc --subsets 8 --elements 14 --k 3 --f 2 --W 9
    python -m repro.cli sweep --family cycle --sizes 64,256,1024 --seeds 3
    python -m repro.cli sweep --family regular --sizes 10000 \\
        --workers 4 --backend process --metering none --json
    python -m repro.cli dynamic --family cycle --n 256 --batches 8 \\
        --stream random --mode incremental --verify
    python -m repro.cli serve --family cycle --n 128 --sessions 8 \\
        --batches 12 --workers 2 --verify
    python -m repro.cli families

``sweep`` runs one instance per (size, seed) pair through the batched
:func:`repro.simulator.runtime.sweep` API — ``--workers N`` executes
instances on a pool, ``--backend process`` uses one warm process pool
for true multi-core parallelism (results are bit-identical to serial),
and ``--json`` emits one machine-readable record per instance for
plotting.  ``vc``/``sweep`` with ``--algorithm broadcast`` also take
``--replay {incremental,scratch}`` — the §5 history replay strategy
(bit-identical results; ``scratch`` is the paper-literal reference).

``vc --fault {loss,duplication,corruption,crash,state}`` injects a
seeded message/crash adversary (:mod:`repro.simulator.faults`) and
runs the algorithm under the self-stabilising transformer, reporting
whether the output recovered to the fault-free reference within T
rounds after the faults stop (``--fault-rate``/``--fault-rounds``/
``--fault-seed`` shape the deterministic schedule).

``dynamic`` runs a churn session (:mod:`repro.dynamic`): an edit
stream mutates the instance batch by batch while the session repairs
the standing cover — ``--mode incremental`` re-executes only the dirty
region, ``--mode scratch`` is the paper-literal full re-solve, and
``--verify`` runs both in lockstep asserting bit-identical results
(on mismatch it names the first differing ``RunResult`` field and
node).  ``--snapshot PATH`` serialises the session after the last
batch; ``--restore PATH`` resumes it later — even in a different
process — and keeps absorbing batches bit-for-bit as if never
interrupted.

``serve`` drives the multiplexed serving host
(:class:`repro.dynamic.serving.ServingHost`): it scripts an
independent churn stream per session (untimed), then serves all
sessions concurrently over ``--workers`` warm worker processes
(``--workers 0`` multiplexes in-process), reporting batch-latency
percentiles via the shared ``latency_ms`` summary shape.  ``--verify``
re-derives every served session's final state and asserts it is
bit-for-bit the state a lone session fed the same stream reaches.

(The experiment harness regenerating the paper's tables lives in
``python -m repro.experiments.cli``; it takes the same
``--workers``/``--backend``/``--json`` flags.)
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro import obs
from repro.baselines.exact import exact_min_set_cover, exact_min_vertex_cover
from repro.core.edge_packing import (
    EdgePackingMachine,
    edge_packing_from_run,
    edge_packing_job,
    maximal_edge_packing,
    schedule_length,
)
from repro.core.set_cover import set_cover_f_approx
from repro.core.vertex_cover import (
    broadcast_vc_from_run,
    broadcast_vc_job,
    vertex_cover_2approx,
    vertex_cover_broadcast,
)
from repro.dynamic import (
    DYNAMIC_MODES,
    DynamicRun,
    HubChurn,
    RandomChurn,
    ServingHost,
    SlidingWindowStream,
    latency_summary,
)
from repro.graphs import families
from repro.graphs.setcover import random_instance
from repro.graphs.weights import uniform_weights, unit_weights
from repro.selfstab.transformer import SelfStabilisingMachine
from repro.simulator.faults import FAULT_KINDS, adversary_from_spec
from repro.simulator.runtime import ENGINES, run, sweep
from repro._util.memo import REPLAY_MODES
from repro._util.parallel import BACKENDS

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed vertex/set cover in anonymous networks "
        "(Åstrand & Suomela, SPAA 2010).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    vc = sub.add_parser("vc", help="2-approximate weighted vertex cover")
    vc.add_argument("--family", default="cycle", help="graph family name")
    vc.add_argument("--n", type=int, default=16, help="size parameter")
    vc.add_argument("--W", type=int, default=1, help="max weight (1 = unweighted)")
    vc.add_argument("--seed", type=int, default=0)
    vc.add_argument(
        "--algorithm",
        choices=["port", "broadcast"],
        default="port",
        help="Section 3 (port numbering) or Section 5 (broadcast)",
    )
    vc.add_argument("--exact", action="store_true", help="also compute the optimum")
    vc.add_argument(
        "--engine",
        choices=list(ENGINES),
        default="object",
        help="runtime execution substrate for --algorithm port "
        "('columnar' vectorises Phase I; results bit-identical)",
    )
    vc.add_argument(
        "--shards", type=int, default=1,
        help="partition the run across worker processes (port algorithm "
        "only; results bit-identical; small graphs fall back to serial)",
    )
    vc.add_argument(
        "--replay",
        choices=list(REPLAY_MODES),
        default="incremental",
        help="history replay strategy for --algorithm broadcast "
        "(results identical; 'scratch' is the paper-literal reference)",
    )
    vc.add_argument(
        "--fault",
        choices=list(FAULT_KINDS),
        default="none",
        help="inject a seeded fault adversary and run the algorithm "
        "under the self-stabilising transformer (port algorithm only); "
        "reports recovery against the fault-free reference",
    )
    vc.add_argument(
        "--fault-rate", type=float, default=0.2,
        help="per-target fault probability while the adversary is active",
    )
    vc.add_argument(
        "--fault-rounds", type=int, default=10,
        help="rounds during which the adversary is active",
    )
    vc.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed of the deterministic fault schedule",
    )
    vc.add_argument("--json", action="store_true", help="machine-readable output")

    sc = sub.add_parser("sc", help="f-approximate weighted set cover")
    sc.add_argument("--subsets", type=int, default=8)
    sc.add_argument("--elements", type=int, default=14)
    sc.add_argument("--k", type=int, default=3)
    sc.add_argument("--f", type=int, default=2)
    sc.add_argument("--W", type=int, default=1)
    sc.add_argument("--seed", type=int, default=0)
    sc.add_argument("--exact", action="store_true")
    sc.add_argument("--json", action="store_true")

    sw = sub.add_parser(
        "sweep",
        help="batched runs over sizes × seeds (multi-core with --backend process)",
    )
    sw.add_argument("--family", default="cycle", help="graph family name")
    sw.add_argument(
        "--sizes", default="64,256",
        help="comma-separated size parameters, one batch of instances each",
    )
    sw.add_argument("--seeds", type=int, default=1,
                    help="instances per size (seeds 0..seeds-1)")
    sw.add_argument("--W", type=int, default=1, help="max weight (1 = unweighted)")
    sw.add_argument(
        "--algorithm",
        choices=["port", "broadcast"],
        default="port",
        help="Section 3 (port numbering) or Section 5 (broadcast)",
    )
    sw.add_argument(
        "--metering",
        choices=["none", "counts", "bits"],
        default="counts",
        help="what to measure per run ('none' is fastest)",
    )
    sw.add_argument(
        "--engine",
        choices=list(ENGINES),
        default="object",
        help="runtime execution substrate for --algorithm port "
        "('columnar' vectorises Phase I; results bit-identical)",
    )
    sw.add_argument(
        "--shards", type=int, default=1,
        help="partition each run across worker processes (port algorithm "
        "only; results bit-identical; small graphs fall back to serial)",
    )
    sw.add_argument(
        "--replay",
        choices=list(REPLAY_MODES),
        default="incremental",
        help="history replay strategy for --algorithm broadcast "
        "(results identical; 'scratch' is the paper-literal reference)",
    )
    sw.add_argument("--workers", type=int, default=None,
                    help="pool size; omit to run serially")
    sw.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default=None,
        help="pool type for --workers (default: thread)",
    )
    sw.add_argument("--json", action="store_true", help="machine-readable output")

    dy = sub.add_parser(
        "dynamic",
        help="maintain a cover under churn (dirty-region warm restarts)",
    )
    dy.add_argument("--family", default="cycle", help="graph family name")
    dy.add_argument("--n", type=int, default=64, help="size parameter")
    dy.add_argument("--W", type=int, default=1, help="max weight (1 = unweighted)")
    dy.add_argument("--seed", type=int, default=0)
    dy.add_argument(
        "--algorithm",
        choices=["port", "broadcast"],
        default="port",
        help="Section 3 (port numbering) or Section 5 (broadcast)",
    )
    dy.add_argument(
        "--mode",
        choices=list(DYNAMIC_MODES),
        default="incremental",
        help="per-batch re-solve strategy (results identical; 'scratch' "
        "is the paper-literal reference)",
    )
    dy.add_argument(
        "--stream",
        choices=["random", "hubs", "window"],
        default="random",
        help="edit stream: random churn, targeted hub churn, or a "
        "sliding window of transient links",
    )
    dy.add_argument("--batches", type=int, default=5, help="edit batches to apply")
    dy.add_argument(
        "--edits-per-batch", type=int, default=2, help="edits per batch"
    )
    dy.add_argument(
        "--metering",
        choices=["none", "counts", "bits"],
        default="none",
        help="what to measure per re-solve ('none' is fastest)",
    )
    dy.add_argument(
        "--verify",
        action="store_true",
        help="run a session in the other mode in lockstep and assert "
        "bit-identical results (every RunResult field)",
    )
    dy.add_argument(
        "--snapshot", metavar="PATH", default=None,
        help="after the last batch, serialise the session to PATH "
        "(resume later with --restore PATH)",
    )
    dy.add_argument(
        "--restore", metavar="PATH", default=None,
        help="resume a session from a --snapshot file instead of "
        "solving afresh (instance, mode and metering come from the "
        "snapshot; --family/--n/--W/--mode are ignored)",
    )
    dy.add_argument("--json", action="store_true", help="machine-readable output")

    se = sub.add_parser(
        "serve",
        help="multiplex many churn sessions over warm worker pools",
    )
    se.add_argument("--family", default="cycle", help="graph family name")
    se.add_argument("--n", type=int, default=64, help="size parameter")
    se.add_argument("--W", type=int, default=1, help="max weight (1 = unweighted)")
    se.add_argument("--seed", type=int, default=0,
                    help="base seed; session i uses seed+i")
    se.add_argument(
        "--algorithm",
        choices=["port", "broadcast"],
        default="port",
        help="Section 3 (port numbering) or Section 5 (broadcast)",
    )
    se.add_argument(
        "--mode",
        choices=list(DYNAMIC_MODES),
        default="incremental",
        help="per-batch re-solve strategy inside each served session",
    )
    se.add_argument(
        "--stream",
        choices=["random", "hubs", "window"],
        default="random",
        help="edit stream driven independently per session",
    )
    se.add_argument("--sessions", type=int, default=4,
                    help="concurrent sessions to serve")
    se.add_argument("--batches", type=int, default=5,
                    help="edit batches per session")
    se.add_argument(
        "--edits-per-batch", type=int, default=2, help="edits per batch"
    )
    se.add_argument(
        "--workers", type=int, default=0,
        help="warm worker processes (0 = multiplex in-process)",
    )
    se.add_argument(
        "--checkpoint-every", type=int, default=16,
        help="committed batches between worker-side checkpoint refreshes",
    )
    se.add_argument(
        "--metering",
        choices=["none", "counts", "bits"],
        default="none",
        help="what each session measures per re-solve",
    )
    se.add_argument(
        "--verify",
        action="store_true",
        help="assert each served session's final state is bit-identical "
        "to a lone session fed the same stream",
    )
    se.add_argument("--json", action="store_true", help="machine-readable output")

    tr = sub.add_parser(
        "trace",
        help="inspect Chrome trace files written by --trace",
    )
    trsub = tr.add_subparsers(dest="trace_command", required=True)
    trsum = trsub.add_parser(
        "summarize",
        help="human-readable span/event/counter summary of a trace file",
    )
    trsum.add_argument("path", help="trace JSON file (from --trace)")

    # Every run-shaped command can capture a trace of itself.
    for cmd in (vc, sw, dy, se):
        cmd.add_argument(
            "--trace", metavar="PATH", default=None,
            help="record a Chrome trace (spans, events, counters; load "
            "in Perfetto or summarize with `repro.cli trace summarize`)",
        )

    sub.add_parser("families", help="list graph family names")
    return parser


def _make_graph(name: str, n: int, seed: int):
    try:
        return families.sized(name, n, seed=seed)
    except KeyError:
        raise SystemExit(
            f"unknown family {name!r}; try `python -m repro.cli families`"
        ) from None


def _run_vc_faulty(args, graph, weights) -> dict:
    """The --fault demo: run the Section 3 machine under the
    self-stabilising transformer while a seeded adversary disturbs it,
    then check the output matches the fault-free reference exactly T
    rounds after the faults stop."""
    if args.algorithm != "port":
        raise SystemExit(
            "--fault demos the self-stabilising transformer on the port "
            "algorithm; use --algorithm port"
        )
    if args.fault_rounds < 1:
        raise SystemExit("need --fault-rounds >= 1")
    delta, W = graph.max_degree, max(1, args.W)
    horizon = schedule_length(delta, W)
    reference = maximal_edge_packing(graph, weights, delta=delta, W=W)
    adversary = adversary_from_spec(
        args.fault,
        until_round=args.fault_rounds,
        rate=args.fault_rate,
        seed=args.fault_seed,
    )
    res = run(
        graph=graph,
        machine=SelfStabilisingMachine(EdgePackingMachine(), horizon),
        inputs=list(weights),
        globals_map={"delta": delta, "W": W},
        max_rounds=args.fault_rounds + horizon,
        fault_adversary=adversary,
    )
    recovered = res.outputs == reference.run.outputs
    payload = {
        "problem": "vertex-cover",
        "algorithm": "port+selfstab",
        "family": args.family,
        "n": graph.n,
        "m": graph.m,
        "max_degree": graph.max_degree,
        "fault": args.fault,
        "fault_rate": args.fault_rate,
        "fault_rounds": args.fault_rounds,
        "fault_seed": args.fault_seed,
        "fault_events": adversary.events,
        "stabilisation_time": horizon,
        "rounds": res.rounds,
        "recovered_within_T": recovered,
    }
    if recovered:
        # recovered ⇒ outputs equal the fault-free packing's exactly,
        # so the cover readout comes from the reference (the selfstab
        # run itself never halts, so it has no halting-based readout)
        cover = reference.saturated
        payload["cover"] = sorted(cover)
        payload["cover_weight"] = sum(weights[v] for v in cover)
    return payload


def _run_vc(args) -> dict:
    graph = _make_graph(args.family, args.n, args.seed)
    weights = (
        unit_weights(graph.n)
        if args.W <= 1
        else uniform_weights(graph.n, args.W, seed=args.seed)
    )
    if args.fault != "none":
        return _run_vc_faulty(args, graph, weights)
    if args.algorithm == "port":
        result = vertex_cover_2approx(
            graph, weights, engine=args.engine, shards=args.shards
        )
    else:
        result = vertex_cover_broadcast(graph, weights, replay=args.replay)
    payload = {
        "problem": "vertex-cover",
        "algorithm": args.algorithm,
        "family": args.family,
        "n": graph.n,
        "m": graph.m,
        "max_degree": graph.max_degree,
        "rounds": result.rounds,
        "cover": sorted(result.cover),
        "cover_weight": result.cover_weight,
        "packing_value": str(result.packing_value),
        "certificate_ratio": str(result.certificate_ratio),
        "is_cover": result.is_cover(),
    }
    if args.exact:
        opt, _ = exact_min_vertex_cover(graph, weights)
        payload["optimum"] = opt
        payload["measured_ratio"] = result.cover_weight / opt if opt else 1.0
    return payload


def _run_sc(args) -> dict:
    instance = random_instance(
        args.subsets, args.elements, k=args.k, f=args.f, W=max(1, args.W),
        seed=args.seed,
    )
    result = set_cover_f_approx(instance)
    payload = {
        "problem": "set-cover",
        "subsets": instance.n_subsets,
        "elements": instance.n_elements,
        "k": instance.k,
        "f": instance.f,
        "W": instance.W,
        "rounds": result.rounds,
        "cover": sorted(result.cover),
        "cover_weight": result.cover_weight,
        "certificate_ratio": str(result.certificate_ratio),
        "is_cover": result.is_cover(),
    }
    if args.exact:
        opt, _ = exact_min_set_cover(instance)
        payload["optimum"] = opt
        payload["measured_ratio"] = result.cover_weight / opt if opt else 1.0
    return payload


def _run_sweep(args) -> dict:
    """Batched (size × seed) runs through the sweep API; JSON-friendly."""
    try:
        sizes = [int(s) for s in args.sizes.split(",") if s.strip()]
    except ValueError:
        raise SystemExit(f"--sizes must be comma-separated integers, got {args.sizes!r}")
    if not sizes or args.seeds < 1:
        raise SystemExit("need at least one size and --seeds >= 1")

    cases = []
    jobs = []
    for n in sizes:
        for seed in range(args.seeds):
            graph = _make_graph(args.family, n, seed)
            weights = (
                unit_weights(graph.n)
                if args.W <= 1
                else uniform_weights(graph.n, args.W, seed=seed)
            )
            cases.append((n, seed, graph, weights))
            if args.algorithm == "port":
                jobs.append(
                    edge_packing_job(
                        graph, weights, metering=args.metering,
                        engine=args.engine, shards=args.shards,
                    )
                )
            else:
                jobs.append(
                    broadcast_vc_job(
                        graph, weights, metering=args.metering, replay=args.replay
                    )
                )

    started = obs.clock()
    results = sweep(jobs, n_workers=args.workers, backend=args.backend)
    elapsed = obs.clock() - started

    assemble = (
        edge_packing_from_run if args.algorithm == "port" else broadcast_vc_from_run
    )
    records = []
    for (n, seed, graph, weights), res in zip(cases, results):
        solved = assemble(graph, weights, res)
        cover = (
            solved.saturated if args.algorithm == "port" else solved.cover
        )
        records.append(
            {
                "size": n,
                "seed": seed,
                "n": graph.n,
                "m": graph.m,
                "max_degree": graph.max_degree,
                "rounds": res.rounds,
                "messages": res.messages_sent,
                "message_bits": res.message_bits,
                "cover_weight": sum(weights[v] for v in cover),
                "packing_value": str(solved.packing_value()
                                     if callable(getattr(solved, "packing_value", None))
                                     else solved.packing_value),
            }
        )
    return {
        "problem": "vertex-cover",
        "algorithm": args.algorithm,
        "family": args.family,
        "metering": args.metering,
        "engine": args.engine if args.algorithm == "port" else None,
        "shards": args.shards if args.algorithm == "port" else None,
        "replay": args.replay if args.algorithm == "broadcast" else None,
        "workers": args.workers,
        "backend": (
            "serial"
            if not args.workers or args.workers <= 1
            else args.backend or "thread"
        ),
        "wall_seconds": elapsed,
        "runs": records,
    }


def _short(value, width: int = 48) -> str:
    text = repr(value)
    return text if len(text) <= width else text[: width - 3] + "..."


def _verify_diff(a, b, field: str) -> str:
    """Human-readable locus of the first difference in a RunResult field."""
    va, vb = getattr(a, field), getattr(b, field)
    if isinstance(va, (list, tuple)) and isinstance(vb, (list, tuple)):
        if len(va) != len(vb):
            return f" (lengths differ: {len(va)} != {len(vb)})"
        idx = next(i for i, (x, y) in enumerate(zip(va, vb)) if x != y)
        unit = "round" if field == "per_round_bits" else "node"
        return (
            f" (first difference at {unit} {idx}: "
            f"{_short(va[idx])} != {_short(vb[idx])})"
        )
    return f" ({_short(va)} != {_short(vb)})"


def _make_stream(kind: str, edits_per_batch: int, seed: int, W: int, delta: int):
    """The churn-stream zoo shared by ``dynamic`` and ``serve``."""
    if kind == "random":
        return RandomChurn(
            edits_per_batch=edits_per_batch, seed=seed, W=W, max_degree=delta
        )
    if kind == "hubs":
        return HubChurn(edits_per_batch=edits_per_batch, seed=seed)
    return SlidingWindowStream(
        window=max(2, edits_per_batch * 2),
        edits_per_batch=edits_per_batch,
        seed=seed,
        max_degree=delta,
    )


def _run_dynamic(args) -> dict:
    """A churn session: apply edit batches, repair the cover live."""
    if args.batches < 1 or args.edits_per_batch < 1:
        raise SystemExit("need --batches >= 1 and --edits-per-batch >= 1")
    if args.restore and args.verify:
        raise SystemExit(
            "--restore cannot be combined with --verify: the shadow "
            "session would need the original pre-churn instance, which "
            "the snapshot does not carry"
        )
    shadow = None
    if args.restore:
        try:
            with open(args.restore, "rb") as fh:
                session = DynamicRun.restore(fh.read())
        except OSError as exc:
            raise SystemExit(f"cannot read --restore file: {exc}")
        except ValueError as exc:
            raise SystemExit(f"--restore rejected: {exc}")
        if session.flow not in ("port", "broadcast"):
            raise SystemExit(
                f"--restore expects a vertex-cover session snapshot, got "
                f"flow {session.flow!r}"
            )
        graph = session.graph
        pinned = session.pinned_globals
        delta, W = pinned["delta"], pinned["W"]
    else:
        graph = _make_graph(args.family, args.n, args.seed)
        weights = (
            unit_weights(graph.n)
            if args.W <= 1
            else uniform_weights(graph.n, args.W, seed=args.seed)
        )
        # Leave one unit of degree headroom so insertion streams have room.
        delta = graph.max_degree + 1
        W = max(1, args.W)
        session_kwargs = dict(
            algorithm=args.algorithm,
            delta=delta,
            W=W,
            metering=args.metering,
        )
        session = DynamicRun.vertex_cover(
            graph, weights, mode=args.mode, **session_kwargs
        )
        if args.verify:
            shadow = DynamicRun.vertex_cover(
                graph, weights,
                mode="scratch" if args.mode == "incremental" else "incremental",
                **session_kwargs,
            )
    other_mode = "scratch" if session.mode == "incremental" else "incremental"
    stream = _make_stream(args.stream, args.edits_per_batch, args.seed, W, delta)

    records = []
    started = obs.clock()
    for _ in range(args.batches):
        batch = stream.next_batch(session.graph, session.inputs)
        if not batch:
            continue
        t0 = obs.clock()
        stats = session.apply(batch)
        wall_ms = (obs.clock() - t0) * 1e3
        if shadow is not None:
            shadow.apply(batch)
            a, b = session.result, shadow.result
            # The full tests/test_dynamic.py contract: every field.
            # (A hard exit, not assert: --verify must verify even
            # under `python -O`.)
            for field in ("outputs", "rounds", "all_halted", "messages_sent",
                          "message_bits", "per_round_bits", "states"):
                if getattr(a, field) != getattr(b, field):
                    raise SystemExit(
                        f"--verify failed at batch {stats.batch}: RunResult."
                        f"{field} differs between {session.mode!r} and "
                        f"{other_mode!r} modes" + _verify_diff(a, b, field)
                    )
        view = session.cover_view()
        records.append(
            {
                "batch": stats.batch,
                "edits": [repr(e) for e in batch],
                "n": stats.n,
                "m": stats.m,
                "dirty_seeds": stats.dirty_seeds,
                "repaired_nodes": stats.repaired_nodes,
                "repaired_fraction": round(stats.repaired_fraction, 4),
                "rounds": stats.rounds,
                "cover_weight": view.cover_weight,
                "certificate_ratio": str(view.certificate_ratio),
                "is_cover": view.covered,
                "wall_ms": round(wall_ms, 2),
            }
        )
    elapsed = obs.clock() - started
    payload = {
        "problem": "dynamic-vertex-cover",
        "algorithm": session.flow,
        "mode": session.mode,
        "stream": args.stream,
        "family": None if args.restore else args.family,
        "n0": graph.n,
        "delta": delta,
        "W": W,
        "metering": session.metering,
        "restored_from": args.restore,
        "batches_applied_total": session.batches_applied,
        "verified_against_scratch": shadow is not None,
        "wall_seconds": elapsed,
        "mean_repaired_fraction": (
            round(sum(r["repaired_fraction"] for r in records) / len(records), 4)
            if records
            else 0.0
        ),
        "latency_ms": _round_latency(
            latency_summary([r["wall_ms"] for r in records])
        ),
        "batches": records,
    }
    if args.snapshot:
        blob = session.snapshot()
        try:
            with open(args.snapshot, "wb") as fh:
                fh.write(blob)
        except OSError as exc:
            raise SystemExit(f"cannot write --snapshot file: {exc}")
        payload["snapshot_path"] = args.snapshot
        payload["snapshot_bytes"] = len(blob)
    return payload


def _round_latency(summary: dict) -> dict:
    return {
        k: (v if k == "count" else round(v, 3)) for k, v in summary.items()
    }


def _run_serve(args) -> dict:
    """Multiplexed serving: script per-session streams, then serve them.

    Stream scripting is untimed and doubles as the verification
    oracle: the driver session that generates each stream ends in the
    exact state the served session must reach."""
    if args.sessions < 1 or args.batches < 1 or args.edits_per_batch < 1:
        raise SystemExit(
            "need --sessions >= 1, --batches >= 1 and --edits-per-batch >= 1"
        )
    if args.workers < 0 or args.checkpoint_every < 1:
        raise SystemExit("need --workers >= 0 and --checkpoint-every >= 1")
    W = max(1, args.W)

    # Untimed: script an independent stream per session via a driver
    # session (which thereby computes the expected final state).
    scripts = []  # (session_id, initial snapshot, batches, driver)
    for i in range(args.sessions):
        seed = args.seed + i
        graph = _make_graph(args.family, args.n, seed)
        weights = (
            unit_weights(graph.n)
            if args.W <= 1
            else uniform_weights(graph.n, W, seed=seed)
        )
        delta = graph.max_degree + 1
        driver = DynamicRun.vertex_cover(
            graph, weights,
            mode=args.mode,
            algorithm=args.algorithm,
            delta=delta,
            W=W,
            metering=args.metering,
        )
        blob0 = driver.snapshot()
        stream = _make_stream(args.stream, args.edits_per_batch, seed, W, delta)
        batches = []
        for _ in range(args.batches):
            batch = stream.next_batch(driver.graph, driver.inputs)
            if not batch:
                continue
            driver.apply(batch)
            batches.append(batch)
        scripts.append((f"session-{i}", blob0, batches, driver))

    # Timed: serve every scripted stream through the host, one
    # multiplexed wave per batch index.
    host = ServingHost(workers=args.workers, checkpoint_every=args.checkpoint_every)
    started = obs.clock()
    for sid, blob0, _, _ in scripts:
        host.open(sid, blob0)
    waves = max((len(b) for _, _, b, _ in scripts), default=0)
    for w in range(waves):
        items = [(sid, b[w]) for sid, _, b, _ in scripts if w < len(b)]
        host.apply_each(items)
    elapsed = obs.clock() - started
    report = host.report()

    if args.verify:
        for sid, _, _, driver in scripts:
            served = DynamicRun.restore(host.snapshot(sid))
            a, b = served.result, driver.result
            for field in ("outputs", "rounds", "all_halted", "messages_sent",
                          "message_bits", "per_round_bits", "states"):
                if getattr(a, field) != getattr(b, field):
                    raise SystemExit(
                        f"--verify failed for {sid}: RunResult.{field} "
                        f"differs between the served session and the solo "
                        f"reference" + _verify_diff(a, b, field)
                    )
    host.shutdown()

    total_batches = report.batches_applied
    return {
        "problem": "dynamic-serving",
        "algorithm": args.algorithm,
        "mode": args.mode,
        "stream": args.stream,
        "family": args.family,
        "n0": args.n,
        "W": W,
        "metering": args.metering,
        "sessions": args.sessions,
        "workers": args.workers,
        "checkpoint_every": args.checkpoint_every,
        "batches_per_session": args.batches,
        "batches_applied": total_batches,
        "worker_recoveries": report.worker_recoveries,
        "verified_against_solo": bool(args.verify),
        "wall_seconds": elapsed,
        "batches_per_sec": (
            round(total_batches / elapsed, 2) if elapsed > 0 else 0.0
        ),
        "latency_ms": _round_latency(report.latency_ms),
        "counters": report.counters,
    }


def _summarize_trace_file(path: str) -> str:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except OSError as exc:
        raise SystemExit(f"cannot read trace file: {exc}")
    except ValueError as exc:
        raise SystemExit(f"{path} is not a JSON trace file: {exc}")
    if not isinstance(data, dict) or "traceEvents" not in data:
        raise SystemExit(
            f"{path} does not look like a Chrome trace (no traceEvents)"
        )
    return obs.summarize_trace(data)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "trace":
        print(_summarize_trace_file(args.path))
        return 0
    tracer = None
    if getattr(args, "trace", None):
        tracer = obs.Tracer(f"repro.cli {args.command}")
        obs.install(tracer)
    try:
        return _dispatch(args)
    finally:
        if tracer is not None:
            obs.uninstall()
            tracer.dump(args.trace)


def _dispatch(args) -> int:
    if args.command == "families":
        for name in sorted(families.FAMILIES):
            print(name)
        return 0
    if args.command == "sweep":
        payload = _run_sweep(args)
        if args.json:
            print(json.dumps(payload, indent=2))
        else:
            meta = {k: v for k, v in payload.items() if k != "runs"}
            print("  ".join(f"{k}={v}" for k, v in meta.items()))
            cols = list(payload["runs"][0])
            print(" | ".join(cols))
            for rec in payload["runs"]:
                print(" | ".join(str(rec[c]) for c in cols))
        return 0
    if args.command == "dynamic":
        payload = _run_dynamic(args)
        if args.json:
            print(json.dumps(payload, indent=2))
        else:
            meta = {k: v for k, v in payload.items() if k != "batches"}
            print("  ".join(f"{k}={v}" for k, v in meta.items()))
            if payload["batches"]:
                cols = [c for c in payload["batches"][0] if c != "edits"]
                print(" | ".join(cols))
                for rec in payload["batches"]:
                    print(" | ".join(str(rec[c]) for c in cols))
        return 0
    if args.command == "serve":
        payload = _run_serve(args)
        if args.json:
            print(json.dumps(payload, indent=2))
        else:
            width = max(len(k) for k in payload)
            for key, value in payload.items():
                print(f"{key.ljust(width)}  {value}")
        return 0
    payload = _run_vc(args) if args.command == "vc" else _run_sc(args)
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        width = max(len(k) for k in payload)
        for key, value in payload.items():
            print(f"{key.ljust(width)}  {value}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
