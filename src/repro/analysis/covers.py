"""Covering graphs and lifts (the Section 7 argument, executable).

Section 7: "we can apply the same reasoning to any covering graph of
G [31, §5]" — a deterministic anonymous algorithm cannot distinguish a
graph from any of its covering graphs, because covering maps preserve
port-numbered (hence also broadcast) views.  Consequently the output
of such an algorithm *factors through the covering map*: all fibre
nodes produce the output of their base node.  This is the engine
behind the Frucht-graph example (the universal cover of a 3-regular
graph is the 3-regular tree).

This module constructs finite covers as *cyclic lifts* (voltage
graphs): given a voltage ``t_e ∈ Z_k`` per edge, the k-lift has nodes
``(v, j)`` and edges ``(u, j) — (v, j + t_e mod k)`` for each edge
``e = {u, v}`` with ``u < v``.  Port numbers are inherited from the
base graph, which makes the projection ``(v, j) -> v`` a genuine
covering map of *port-numbered* graphs.  ``k = 2`` with all voltages 1
is the bipartite double cover.

The companion checker :func:`outputs_factor_through_cover` turns
Section 7's theorem into a property test for any machine in this
library.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.graphs.topology import PortNumberedGraph

__all__ = [
    "cyclic_lift",
    "bipartite_double_cover",
    "lift_inputs",
    "covering_map",
    "outputs_factor_through_cover",
]


def cyclic_lift(
    graph: PortNumberedGraph,
    k: int,
    voltages: Optional[Dict[int, int]] = None,
    seed: Optional[int] = None,
) -> PortNumberedGraph:
    """The k-lift of ``graph`` with the given (or random) edge voltages.

    Node ``(v, j)`` of the lift is numbered ``v + j * n``.  Ports are
    inherited: the lift's node ``(v, j)`` uses port ``p`` to reach the
    fibre-shifted copy of the neighbour that ``v`` reaches through
    port ``p``, with the *same* reverse port — so the projection is a
    covering map of port-numbered graphs.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    n = graph.n
    if voltages is None:
        rng = random.Random(f"lift:{seed}")
        voltages = {e: rng.randrange(k) for e in range(graph.m)}
    if set(voltages) != set(range(graph.m)):
        raise ValueError("need exactly one voltage per edge id")

    ports: List[List[Tuple[int, int]]] = []
    for j in range(k):
        for v in range(n):
            row: List[Tuple[int, int]] = []
            for p, (u, q) in enumerate(graph.ports(v)):
                e = graph.edge_id(v, u)
                t = voltages[e] % k
                # voltage is applied in the u < v -> higher direction
                a, _b = graph.edges[e]
                shift = t if v == a else (-t) % k
                row.append((u + ((j + shift) % k) * n, q))
            ports.append(row)
    # ports[j*n + v] is exactly node (v, j) = id v + j*n: j-major append
    # order coincides with the id scheme.
    return PortNumberedGraph(ports)


def bipartite_double_cover(graph: PortNumberedGraph) -> PortNumberedGraph:
    """The Kronecker / bipartite double cover: 2-lift, all voltages 1."""
    return cyclic_lift(graph, 2, voltages={e: 1 for e in range(graph.m)})


def covering_map(base_n: int, lift_node: int) -> int:
    """Project a lift node id back to its base node (see cyclic_lift)."""
    return lift_node % base_n


def lift_inputs(inputs: Sequence[Any], k: int) -> List[Any]:
    """Lift per-node inputs along the covering map (copy per fibre)."""
    return list(inputs) * k


def outputs_factor_through_cover(
    base_outputs: Sequence[Any],
    lift_outputs: Sequence[Any],
    k: int,
    key: Callable[[Any], Any] = lambda out: out,
) -> bool:
    """Section 7's theorem as a predicate.

    True iff every lift node produced exactly the output of its base
    node (after projecting with ``key``).
    """
    n = len(base_outputs)
    if len(lift_outputs) != k * n:
        raise ValueError("lift outputs have the wrong length")
    return all(
        key(lift_outputs[v + j * n]) == key(base_outputs[v])
        for j in range(k)
        for v in range(n)
    )
