#!/usr/bin/env python
"""Walk through Figure 1 of the paper, value by value.

Runs the Section 4 fractional-packing machine on the reconstructed
Figure 1 instance and narrates the first saturation phase — offers
x_i(s), element values p(u), subset minima q_i(s), the first
saturations, and the DAG B that drives the colouring phase.

Run:  python examples/figure1_walkthrough.py
"""

from fractions import Fraction

from repro.core.fractional_packing import (
    FractionalPackingMachine,
    fp_schedule_length,
)
from repro.experiments.exp_figure1 import figure1_instance
from repro.simulator.runtime import run_on_setcover


def main() -> None:
    inst = figure1_instance()
    print("The Figure 1 instance (reconstructed; see DESIGN.md):")
    for s, members in enumerate(inst.subsets):
        names = ", ".join(f"u{u}" for u in sorted(members))
        print(f"  s{s}: weight {inst.weights[s]:2d}, elements {{{names}}}")
    print(f"  parameters: f={inst.f}, k={inst.k}, W={inst.W}, D=(k-1)f={(inst.k-1)*inst.f}")

    snapshots = {}

    def observer(round_index, states, outboxes):
        if round_index in (3, 4, 5):
            snapshots[round_index] = [s.clone() for s in states]

    run_on_setcover(
        inst,
        FractionalPackingMachine(),
        observer=observer,
        max_rounds=fp_schedule_length(inst.f, inst.k, inst.W),
    )

    n_s = inst.n_subsets
    after_offers = snapshots[4]
    after_phase = snapshots[5]

    print("\nSaturation phase for colour 0 (all elements start with colour 0):")
    subs = after_phase[:n_s]
    elems = after_phase[n_s:]
    print("  offers   x_0(s) =", ", ".join(str(s.x_by_colour[0]) for s in subs))
    print("  values   p(u)   =", ", ".join(str(e.p) for e in elems))
    print("  minima   q_0(s) =", ", ".join(str(s.q_by_colour[0]) for s in subs))
    print("  packing  y(u)   =", ", ".join(str(e.y) for e in elems))

    loads = [
        sum((elems[u].y for u in members), Fraction(0)) for members in inst.subsets
    ]
    print("\nSubset loads after the phase (weight in brackets):")
    for s, load in enumerate(loads):
        mark = "  <- SATURATED (its elements turn black in Fig 1a)" if load == inst.weights[s] else ""
        print(f"  y[s{s}] = {load} [{inst.weights[s]}]{mark}")

    # The DAG B of Lemma 3 (restricted to still-unsaturated elements).
    p = [e.p for e in elems]
    x = [s.x_by_colour[0] for s in subs]
    q = [s.q_by_colour[0] for s in subs]
    saturated_elements = {
        u for s, load in enumerate(loads) if load == inst.weights[s]
        for u in inst.subsets[s]
    }
    print("\nEdges of B (p(u) = x_i(s) and q_i(s) = p(v), both unsaturated):")
    for s, members in enumerate(inst.subsets):
        for u in sorted(members):
            for v in sorted(members):
                if (
                    u != v
                    and p[u] == x[s]
                    and q[s] == p[v]
                    and u not in saturated_elements
                    and v not in saturated_elements
                ):
                    print(f"  u{u} -> u{v}  (via s{s}); p strictly drops: {p[u]} > {p[v]}")
    print("\nLemma 3 in action: values strictly decrease along B, so B is a")
    print("DAG and the p-values double as a proper colouring of it — the")
    print("input to the weak colour reduction of Section 4.5.")


if __name__ == "__main__":
    main()
