"""f-approximate minimum-weight set cover (Sections 1.2 and 4).

The Bar-Yehuda–Even argument generalises verbatim: if ``y`` is a
maximal fractional packing, the saturated subset nodes ``C(y)`` form a
set cover of weight at most ``f · Σ_u y(u) <= f · OPT``, where ``f`` is
the maximum element frequency.  The packing value is the certificate.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Tuple

from repro.core.fractional_packing import (
    FractionalPackingResult,
    maximal_fractional_packing,
)
from repro.graphs.setcover import SetCoverInstance
from repro.simulator.runtime import RunResult

__all__ = ["SetCoverResult", "set_cover_f_approx"]


@dataclass(frozen=True)
class SetCoverResult:
    """A set cover with its dual certificate.

    ``certificate_ratio`` is ``cover_weight / (f · Σ y)``; values
    ``<= 1`` certify the f-approximation without solving the instance.
    """

    instance: SetCoverInstance
    cover: frozenset
    rounds: int
    packing_value: Fraction
    y: Tuple[Fraction, ...]
    run: RunResult

    @property
    def cover_weight(self) -> int:
        return self.instance.cover_weight(self.cover)

    @property
    def certificate_ratio(self) -> Fraction:
        if self.packing_value == 0:
            return Fraction(0) if self.cover_weight == 0 else Fraction(1)
        return Fraction(self.cover_weight) / (
            self.instance.f * self.packing_value
        )

    def is_cover(self) -> bool:
        return self.instance.is_cover(self.cover)


def set_cover_f_approx(
    instance: SetCoverInstance,
    max_rounds: Optional[int] = None,
    arithmetic: str = "scaled",
) -> SetCoverResult:
    """Section 4: f-approximate weighted set cover in the broadcast model.

    ``arithmetic`` selects the machine's exact number representation
    (see :class:`repro.core.fractional_packing.FractionalPackingMachine`).
    """
    packing: FractionalPackingResult = maximal_fractional_packing(
        instance, max_rounds=max_rounds, arithmetic=arithmetic
    )
    return SetCoverResult(
        instance=instance,
        cover=packing.saturated_subsets,
        rounds=packing.rounds,
        packing_value=packing.packing_value(),
        y=packing.y,
        run=packing.run,
    )
