"""EXP-F4 — Figure 4 / Lemma 4: the cycle reduction, measured.

Builds the set cover instances H(n, p) from directed cycles, checks
their optima, runs the paper's f-approximation through the reduction,
and exercises the independent-set extraction of Section 6:

* our anonymous algorithm lands at ratio exactly p on H(n, p) — it
  *cannot* do better (Section 6), so the extraction hands back the
  empty independent set, consistently;
* the constant-time local-max independent set rule does well on a
  random identifier assignment but collapses to a single node on the
  adversarial increasing numbering — the phenomenon Lemma 4 turns into
  the impossibility of local (p-ε)-approximation.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.baselines.exact import exact_min_set_cover
from repro.core.set_cover import set_cover_f_approx
from repro.experiments.common import ExperimentTable
from repro.lowerbounds.cycle_reduction import (
    adversarial_increasing_ids,
    cycle_setcover_instance,
    extract_independent_set,
    independent_set_size_guarantee,
    is_independent_in_cycle,
    local_max_independent_set,
    optimal_cycle_cover_size,
)

__all__ = ["run_reduction", "run_lemma4", "run", "main"]


def run_reduction(cases: Optional[List[Tuple[int, int]]] = None) -> ExperimentTable:
    cases = cases or [(8, 2), (12, 3), (12, 4)]
    table = ExperimentTable(
        experiment_id="EXP-F4a",
        title="Figure 4 reduction: set cover on H(n, p) built from directed cycles",
        columns=[
            "n", "p", "OPT = n/p", "f-approx cover", "ratio",
            "extracted IS size", "IS valid", "size bound holds",
        ],
    )
    for n, p in cases:
        inst = cycle_setcover_instance(n, p)
        assert inst.f == p and inst.k == p
        opt, _ = exact_min_set_cover(inst)
        assert opt == optimal_cycle_cover_size(n, p)
        res = set_cover_f_approx(inst)
        assert res.is_cover()
        ind = extract_independent_set(n, p, res.cover)
        table.add_row(
            n=n,
            p=p,
            **{
                "OPT = n/p": opt,
                "f-approx cover": len(res.cover),
                "ratio": res.cover_weight / opt,
                "extracted IS size": len(ind),
                "IS valid": is_independent_in_cycle(n, ind),
                "size bound holds": len(ind)
                >= independent_set_size_guarantee(n, p, len(res.cover)),
            },
        )
    assert all(table.column("IS valid"))
    assert all(table.column("size bound holds"))
    table.add_note(
        "anonymous algorithms cannot beat ratio p here (Section 6); the "
        "measured ratio equals p exactly, so the extracted independent "
        "set is empty — the reduction is internally consistent"
    )
    return table


def run_lemma4(n: int = 60, radius: int = 1) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id="EXP-F4b",
        title=f"Lemma 4: constant-time IS on numbered {n}-cycles (radius {radius})",
        columns=["numbering", "IS size", "fraction of n", "independent"],
    )
    rng = random.Random(17)
    random_ids = list(range(1, n + 1))
    rng.shuffle(random_ids)
    for name, ids in [
        ("random permutation", random_ids),
        ("adversarial increasing", adversarial_increasing_ids(n)),
    ]:
        ind = local_max_independent_set(ids, radius=radius)
        table.add_row(
            numbering=name,
            **{
                "IS size": len(ind),
                "fraction of n": len(ind) / n,
                "independent": is_independent_in_cycle(n, ind),
            },
        )
    sizes = table.column("IS size")
    assert sizes[1] == 1, "adversarial numbering must defeat local-max"
    table.add_note(
        "a fixed-radius deterministic rule returns Θ(n) nodes on a random "
        "numbering but a single node on the adversarial one — no constant-"
        "time deterministic algorithm finds a large IS on every numbering "
        "(Czygrinow et al. / Lenzen–Wattenhofer), which via the reduction "
        "rules out local (p-ε)-approximation of set cover"
    )
    return table


def run() -> List[ExperimentTable]:
    return [run_reduction(), run_lemma4()]


def main() -> None:
    for t in run():
        print(t.render())
        print()


if __name__ == "__main__":
    main()
