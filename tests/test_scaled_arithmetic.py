"""Differential harness: scaled-integer fast path ≡ Fraction arithmetic.

The machines' ``arithmetic="scaled"`` mode rewrites their hot
transition paths onto :class:`repro._util.rationals.ScaledInt` —
fixed/bounded-denominator integers justified by Lemma 2 (edge packing)
and the Section 4.4 denominator-control argument (fractional packing).
This suite is the contract that the rewrite is *observably invisible*:
on randomised weighted instances — including adversarial weights with
maximal denominators and every Δ ∈ {1..6} — the scaled and Fraction
runs must produce identical covers, packings, colour sequences and
metered bit counts, message for message and round for round.

Instance counts are tracked explicitly: the suite executes well over
200 randomised differential instances.
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro._util.rationals import ScaledInt
from repro.core.colours import encode_colour_sequence
from repro.core.edge_packing import maximal_edge_packing
from repro.core.fractional_packing import maximal_fractional_packing
from repro.core.vertex_cover import vertex_cover_broadcast
from repro.graphs import families
from repro.graphs.setcover import random_instance
from repro.graphs.topology import PortNumberedGraph

# A pool of primes for adversarial weights: pairwise-coprime weights
# maximise the denominators that Phase I offers can reach.
PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61]


# ----------------------------------------------------------------------
# ScaledInt value-type properties (randomised, against Fraction)
# ----------------------------------------------------------------------


class TestScaledIntProperties:
    def frac(self, s):
        return s.as_fraction() if type(s) is ScaledInt else Fraction(s)

    def random_pair(self, rng, den):
        num = rng.randint(-den * 8, den * 8)
        s = ScaledInt(num, den, den * den)
        return s, Fraction(num, den)

    def test_ops_match_fraction_semantics(self):
        rng = random.Random("scaledint-ops")
        for _ in range(300):
            den_a = rng.choice([1, 6, 24, 36, 331776])
            den_b = rng.choice([den_a, den_a, 6, 24])  # bias to shared dens
            a, fa = self.random_pair(rng, den_a)
            b, fb = self.random_pair(rng, den_b)
            assert self.frac(a + b) == fa + fb
            assert self.frac(a - b) == fa - fb
            assert (a == b) == (fa == fb)
            assert (a < b) == (fa < fb)
            assert (a <= b) == (fa <= fb)
            assert (a > b) == (fa > fb)
            assert self.frac(min(a, b)) == min(fa, fb)
            assert self.frac(-a) == -fa
            assert self.frac(abs(a)) == abs(fa)
            assert bool(a) == bool(fa)
            n = rng.randint(1, 9)
            assert self.frac(a * n) == fa * n
            assert self.frac(a / n) == fa / n
            # mixing with ints and Fractions
            assert self.frac(a + n) == fa + n
            assert self.frac(n - a) == n - fa
            assert self.frac(a + fb) == fa + fb
            assert a == fa and fa == self.frac(a)
            assert hash(a) == hash(fa)

    def test_fraction_round_trip(self):
        rng = random.Random("scaledint-roundtrip")
        for _ in range(100):
            den = rng.choice([1, 2, 6, 24, 720, 331776])
            num = rng.randint(-den * 4, den * 4)
            s = ScaledInt.of(Fraction(num, den), den)
            assert s.as_fraction() == Fraction(num, den)
            assert s.numerator == Fraction(num, den).numerator
            assert s.denominator == Fraction(num, den).denominator
        with pytest.raises(ValueError):
            ScaledInt.of(Fraction(1, 7), 24)  # 1/7 not on the 1/24 grid
        with pytest.raises(ValueError):
            ScaledInt.of(1, 0)
        with pytest.raises(TypeError):
            ScaledInt.of(True, 6)

    def test_div_exact_asserts_grid(self):
        s = ScaledInt(6, 24)
        assert s.div_exact(3).as_fraction() == Fraction(2, 24)
        with pytest.raises(AssertionError):
            ScaledInt(7, 24).div_exact(3)

    def test_denominator_limit_falls_back_to_exact_fraction(self):
        s = ScaledInt(5, 6, limit=12)
        out = s / 7  # 5/42: denominator exceeds the limit
        assert type(out) is Fraction and out == Fraction(5, 42)
        t = ScaledInt(1, 4, limit=12) + ScaledInt(1, 5, limit=12)
        assert type(t) is Fraction and t == Fraction(9, 20)
        # within the limit the representation is preserved
        u = ScaledInt(1, 4, limit=12) + ScaledInt(1, 6, limit=12)
        assert type(u) is ScaledInt and u == Fraction(5, 12)

    def test_division_cases(self):
        assert (ScaledInt(6, 4) / 3) == Fraction(1, 2)
        assert (ScaledInt(5, 4) / -2) == Fraction(-5, 8)
        with pytest.raises(ZeroDivisionError):
            ScaledInt(1, 2) / 0

    def test_pickle_round_trip(self):
        import pickle

        s = ScaledInt(7, 24, 576)
        t = pickle.loads(pickle.dumps(s))
        assert t == s and t.den == 24 and t.limit == 576


# ----------------------------------------------------------------------
# Differential runs
# ----------------------------------------------------------------------

# Executed-instance bookkeeping, checked by test_zz_instance_count.
_INSTANCES = {"edge": 0, "fractional": 0, "broadcast": 0}


def assert_edge_packing_differential(graph, weights):
    _INSTANCES["edge"] += 1
    a = maximal_edge_packing(graph, weights, arithmetic="scaled")
    b = maximal_edge_packing(graph, weights, arithmetic="fraction")
    # covers and packings
    assert a.saturated == b.saturated
    assert a.y == b.y
    assert all(type(v) is Fraction for v in a.y.values())
    assert a.rounds == b.rounds
    # outputs (colour ints included) and final states, field for field —
    # ScaledInt compares equal to the Fraction it stands for, so state
    # equality across modes is meaningful
    assert a.run.outputs == b.run.outputs
    assert a.run.states == b.run.states
    # metering, bit for bit
    assert a.run.messages_sent == b.run.messages_sent
    assert a.run.message_bits == b.run.message_bits
    assert a.run.per_round_bits == b.run.per_round_bits
    # colour sequences element for element, and their encodings
    delta = graph.max_degree
    W = max(weights) if weights else 1
    for v in graph.nodes():
        sa, sb = a.run.states[v], b.run.states[v]
        assert tuple(sa.own_seq) == tuple(sb.own_seq)
        assert sa.colour_int == sb.colour_int
        assert sa.colour_int == encode_colour_sequence(sa.own_seq, delta, W)
    return a, b


def random_weighted_graph(rng, max_n=11):
    n = rng.randint(2, max_n)
    density = rng.choice([0.25, 0.4, 0.6, 0.85])
    edges = [
        (i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < density
    ]
    g = PortNumberedGraph.from_edges(n, edges)
    W = rng.choice([1, 3, 8, 16, 61])
    weights = [rng.randint(1, W) for _ in range(n)]
    return g, weights


@pytest.mark.parametrize("seed", range(20))
def test_edge_packing_differential_random(seed):
    """7 random instances per seed: 140 differential edge-packing runs."""
    rng = random.Random(f"diff-ep:{seed}")
    for _ in range(7):
        g, w = random_weighted_graph(rng)
        assert_edge_packing_differential(g, w)


@pytest.mark.parametrize("delta", [1, 2, 3, 4, 5, 6])
def test_edge_packing_differential_regular_delta(delta):
    """Δ ∈ {1..6} on Δ-regular instances (the full digit-mode range)."""
    rng = random.Random(f"diff-reg:{delta}")
    for seed in range(4):
        n = rng.choice([x for x in range(delta + 1, 13) if x * delta % 2 == 0])
        g = families.random_regular(delta, n, seed=seed)
        W = rng.choice([2, 9, 31])
        w = [rng.randint(1, W) for _ in range(g.n)]
        assert_edge_packing_differential(g, w)


@pytest.mark.parametrize("delta", [1, 2, 3, 4, 5, 6])
def test_edge_packing_adversarial_denominators(delta):
    """Pairwise-coprime (prime) weights: the offers' denominators reach
    deep into the (Δ!)^Δ grid — the worst case Lemma 2 allows."""
    rng = random.Random(f"diff-adv:{delta}")
    for trial in range(3):
        # complete graph K_{Δ+1} realises max degree Δ with every edge
        # active as long as possible
        g = families.complete_graph(delta + 1)
        w = rng.sample(PRIMES, g.n)
        assert_edge_packing_differential(g, w)
        # star with prime weights: one division per round at the centre
        g2 = families.star_graph(delta) if delta >= 1 else g
        w2 = rng.sample(PRIMES, g2.n)
        assert_edge_packing_differential(g2, w2)


def test_edge_packing_differential_beyond_digit_mode():
    """Δ large enough that (Δ!)^Δ leaves the machine-word grid: the
    scaled mode must fall back (exactly) and still match bit for bit."""
    rng = random.Random("diff-big")
    for seed in range(3):
        g = families.complete_graph(9)  # Δ = 8: radix far beyond 64 bits
        w = rng.sample(PRIMES, g.n)
        assert_edge_packing_differential(g, w)


@pytest.mark.parametrize("seed", range(12))
def test_fractional_packing_differential(seed):
    """4 random set-cover instances per seed: 48 differential runs."""
    rng = random.Random(f"diff-fp:{seed}")
    for _ in range(4):
        n_subsets = rng.randint(1, 6)
        k = rng.randint(2, 4)
        inst = random_instance(
            n_subsets=n_subsets,
            n_elements=rng.randint(1, min(6, n_subsets * k)),
            k=k,
            f=rng.randint(2, 3),
            W=rng.choice([1, 4, 8, 31]),
            seed=rng.randint(0, 10_000),
        )
        _INSTANCES["fractional"] += 1
        a = maximal_fractional_packing(inst, arithmetic="scaled")
        b = maximal_fractional_packing(inst, arithmetic="fraction")
        assert a.y == b.y
        assert all(type(v) is Fraction for v in a.y)
        assert a.saturated_subsets == b.saturated_subsets
        assert a.rounds == b.rounds
        assert a.run.outputs == b.run.outputs
        assert a.run.messages_sent == b.run.messages_sent
        assert a.run.message_bits == b.run.message_bits
        assert a.run.per_round_bits == b.run.per_round_bits
        # element colours are part of the outputs; check explicitly too
        n_s = inst.n_subsets
        for u in range(inst.n_elements):
            assert (
                a.run.outputs[n_s + u]["colour"]
                == b.run.outputs[n_s + u]["colour"]
            )


@pytest.mark.parametrize(
    "make_graph,weights",
    [
        (lambda: families.path_graph(4), [1, 3, 2, 1]),
        (lambda: families.cycle_graph(5), [2, 3, 5, 7, 11]),
        (lambda: families.star_graph(3), [13, 1, 2, 3]),
    ],
)
def test_broadcast_vc_differential(make_graph, weights):
    """The Section 5 simulation inherits the mode through the inner
    machine and its element replays."""
    _INSTANCES["broadcast"] += 1
    g = make_graph()
    a = vertex_cover_broadcast(g, weights, arithmetic="scaled")
    b = vertex_cover_broadcast(g, weights, arithmetic="fraction")
    assert a.cover == b.cover
    assert a.packing_value == b.packing_value
    assert a.rounds == b.rounds
    assert a.run.outputs == b.run.outputs
    assert a.run.messages_sent == b.run.messages_sent
    assert a.run.message_bits == b.run.message_bits
    assert a.run.per_round_bits == b.run.per_round_bits


def test_zz_instance_count():
    """The ISSUE's floor: at least 200 randomised differential instances.

    (Named zz… so it runs after the parametrised tests in file order.)
    """
    total = sum(_INSTANCES.values())
    assert total >= 200, _INSTANCES
