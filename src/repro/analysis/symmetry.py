"""Automorphism invariance of broadcast-model outputs (Section 7).

The paper: "If a deterministic distributed algorithm A uses the
broadcast model, the output of A (together with the input) must have
the same automorphisms as the graph G (and local inputs, if any)."
These helpers compute automorphism groups (via networkx VF2 on small
graphs) and check outputs for invariance; the Section 7 experiment
uses them to contrast the broadcast and port-numbering algorithms.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.graphs.topology import PortNumberedGraph

__all__ = [
    "automorphisms",
    "is_output_automorphism_invariant",
    "is_vertex_transitive",
    "orbit_partition",
]


def automorphisms(
    graph: PortNumberedGraph,
    inputs: Optional[Sequence[Any]] = None,
    limit: Optional[int] = None,
) -> List[Dict[int, int]]:
    """All (input-preserving) automorphisms of the graph.

    ``inputs``, when given, restricts to automorphisms that map each
    node to a node with an equal local input (weights must be
    preserved for the Section 7 argument to apply).  ``limit`` caps
    enumeration on highly symmetric graphs.
    """
    import networkx as nx
    from networkx.algorithms.isomorphism import GraphMatcher

    g = graph.to_networkx()
    if inputs is not None:
        for v in graph.nodes():
            g.nodes[v]["input"] = inputs[v]
        matcher = GraphMatcher(
            g, g, node_match=lambda a, b: a.get("input") == b.get("input")
        )
    else:
        matcher = GraphMatcher(g, g)
    autos: List[Dict[int, int]] = []
    for mapping in matcher.isomorphisms_iter():
        autos.append(dict(mapping))
        if limit is not None and len(autos) >= limit:
            break
    return autos


def is_output_automorphism_invariant(
    graph: PortNumberedGraph,
    outputs: Sequence[Any],
    inputs: Optional[Sequence[Any]] = None,
    autos: Optional[Iterable[Dict[int, int]]] = None,
    key: Callable[[Any], Any] = lambda out: out,
) -> bool:
    """Check ``output[σ(v)] == output[v]`` for every automorphism σ.

    ``key`` projects outputs before comparison (e.g. extract the
    in-cover bit and ignore diagnostic fields).
    """
    if autos is None:
        autos = automorphisms(graph, inputs)
    for sigma in autos:
        for v in graph.nodes():
            if key(outputs[sigma[v]]) != key(outputs[v]):
                return False
    return True


def orbit_partition(
    graph: PortNumberedGraph, inputs: Optional[Sequence[Any]] = None
) -> List[int]:
    """Orbit id per node under the (input-preserving) automorphism group."""
    autos = automorphisms(graph, inputs)
    parent = list(range(graph.n))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for sigma in autos:
        for v in graph.nodes():
            union(v, sigma[v])
    roots = {find(v) for v in graph.nodes()}
    index = {r: i for i, r in enumerate(sorted(roots))}
    return [index[find(v)] for v in graph.nodes()]


def is_vertex_transitive(graph: PortNumberedGraph) -> bool:
    """True iff the automorphism group has a single node orbit."""
    return len(set(orbit_partition(graph))) <= 1
