"""Multiplexed serving of dynamic sessions over warm worker pools.

A :class:`ServingHost` turns :class:`~repro.dynamic.session.DynamicRun`
from a single-session object into a serving surface: hundreds of
concurrent sessions, each absorbing its own churn stream, multiplexed
over a small fleet of warm worker processes (the
:func:`repro._util.parallel.serve_pool` single-worker pools).  The
paper's constant-round algorithms plus the O(dirty) overlay and
light-cone warm restarts make each batch cheap; the host's job is to
keep many such sessions resident and route batches to them.

Design:

* **Session affinity.**  Sessions are assigned round-robin to workers
  at :meth:`~ServingHost.open` and never migrate while healthy.  The
  worker keeps the live ``DynamicRun`` (graph overlay, history
  columns, memo caches) resident between batches — a batch ships only
  the edit list and returns only the :class:`~repro.dynamic.session.
  BatchStats`, never the session.
* **Snapshots as the transport.**  Sessions enter and leave the host
  as :meth:`DynamicRun.snapshot` bytes — the same durable payload the
  CLI writes to disk — so opening on a worker is just ``restore``.
  With ``workers=0`` the host runs every session in-process (no pools,
  bit-identical results): the mode CI uses on single-core runners.
* **Crash recovery.**  The host keeps, per session, the last
  checkpoint (snapshot bytes, refreshed every ``checkpoint_every``
  committed batches) plus the log of edit batches committed since.  A
  :class:`BrokenProcessPool` retires just that worker's pool
  (:func:`~repro._util.parallel.retire_serve_pools`), and every
  resident session is rebuilt on the fresh worker by restoring its
  checkpoint and replaying its log — sessions are deterministic, so
  the replayed state is bit-for-bit the lost one.  Batches in flight
  during the crash were not committed (the worker died with them) and
  are resubmitted after recovery.

Rejected batches (:class:`~repro.dynamic.edits.EditError` /
``ValueError``) leave the worker-side session untouched per the
session contract, so the host does **not** append them to the replay
log; the exception propagates to the caller.

``tests/test_serving.py`` pins host-vs-solo bit-equality (every
session served by the host ends on exactly the result a lone
``DynamicRun`` fed the same stream produces), in-process vs pooled
equality, and checkpoint-replay recovery after a worker kill.
"""

from __future__ import annotations

import itertools
import math
import os
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro._util.parallel import retire_serve_pools, serve_pool
from repro.dynamic.edits import GraphEdit
from repro.dynamic.session import BatchStats, DynamicRun
from repro.obs import (
    CTR_SERVING_CHECKPOINTS,
    CTR_SERVING_RECOVERIES,
    CTR_SERVING_REPLAYED,
    EV_SERVING_CHECKPOINT,
    EV_SERVING_RECOVERY,
    EV_SERVING_REPLAY,
)

__all__ = ["HostReport", "ServingHost", "latency_summary"]

#: Distinguishes sessions of different hosts sharing one worker fleet.
_HOST_SEQ = itertools.count()


def latency_summary(samples_ms: Sequence[float]) -> Dict[str, float]:
    """Mean/p50/p99/max over wall-clock samples, in milliseconds.

    The shared latency vocabulary: ``repro.cli dynamic --json``, the
    churn experiment and ``benchmarks/bench_serving.py`` all report
    batch latencies through this one shape.  Percentiles use the
    nearest-rank method (exact on small sample counts, no
    interpolation artifacts).
    """
    if not samples_ms:
        return {
            "count": 0,
            "mean_ms": 0.0,
            "p50_ms": 0.0,
            "p99_ms": 0.0,
            "max_ms": 0.0,
        }
    xs = sorted(samples_ms)

    def rank(p: float) -> float:
        return xs[max(0, min(len(xs) - 1, math.ceil(p / 100 * len(xs)) - 1))]

    return {
        "count": len(xs),
        "mean_ms": sum(xs) / len(xs),
        "p50_ms": rank(50),
        "p99_ms": rank(99),
        "max_ms": xs[-1],
    }


# ----------------------------------------------------------------------
# Worker-side registry (module-level: picklable entry points)
# ----------------------------------------------------------------------

#: Sessions resident in *this* process, keyed by the host-namespaced
#: session key.  In a serving worker it holds that worker's sessions;
#: in the host process it is only used by ``workers=0`` in-process
#: hosts (namespacing keeps concurrent hosts apart either way).
_SESSIONS: Dict[str, DynamicRun] = {}


def _w_open(key: str, blob: bytes) -> bool:
    _SESSIONS[key] = DynamicRun.restore(blob)
    return True


def _w_apply(key: str, edits: Sequence[GraphEdit]) -> BatchStats:
    return _SESSIONS[key].apply(edits)


def _w_apply_traced(
    key: str, edits: Sequence[GraphEdit]
) -> Tuple[BatchStats, Dict[str, Any]]:
    """Like :func:`_w_apply`, plus the worker-side trace payload.

    Used when the host process has a tracer installed: the batch span
    and dynamic-batch events recorded inside the worker ship back with
    the stats and are absorbed into the host trace as a worker lane.
    """
    tracer = obs.Tracer(f"serve worker pid {os.getpid()}")
    with obs.tracing(tracer):
        stats = _SESSIONS[key].apply(edits)
    return stats, tracer.drain_remote()


def _w_snapshot(key: str) -> bytes:
    return _SESSIONS[key].snapshot()


def _w_close(key: str) -> bytes:
    return _SESSIONS.pop(key).snapshot()


def _w_recover(
    key: str, blob: bytes, log: Sequence[Sequence[GraphEdit]]
) -> bool:
    """Checkpoint restore + deterministic replay of the committed log."""
    session = DynamicRun.restore(blob)
    for batch in log:
        session.apply(batch)
    _SESSIONS[key] = session
    return True


@dataclass
class _Slot:
    """Host-side bookkeeping for one served session."""

    worker: int  #: worker index (-1 = in-process)
    checkpoint: bytes
    log: List[List[GraphEdit]] = field(default_factory=list)
    batches: int = 0


@dataclass(frozen=True)
class HostReport:
    """A point-in-time view of the host's serving metrics."""

    sessions: int
    workers: int
    batches_applied: int
    worker_recoveries: int
    latency_ms: Dict[str, float]  #: :func:`latency_summary` of batch latencies
    #: Trace-derived serving counters (:data:`repro.obs.COUNTER_NAMES`
    #: vocabulary): checkpoints taken, worker recoveries, batches
    #: replayed during recovery.  Kept host-side, so populated whether
    #: or not a tracer is installed.
    counters: Dict[str, int] = field(default_factory=dict)


class ServingHost:
    """Serve many dynamic sessions over warm worker processes.

    ``workers=0`` (default) multiplexes in-process — deterministic,
    pool-free, the right mode for tests and single-core hosts.
    ``workers=W`` distributes sessions over ``W`` warm single-worker
    pools with session affinity and checkpoint-replay crash recovery.

    ``checkpoint_every`` bounds the recovery replay: after that many
    committed batches the host pulls a fresh snapshot from the worker
    and truncates the log (trade IPC for shorter replays).
    """

    def __init__(self, workers: int = 0, checkpoint_every: int = 16):
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.workers = workers
        self.checkpoint_every = checkpoint_every
        self._ns = f"sh{next(_HOST_SEQ)}"
        self._slots: Dict[str, _Slot] = {}
        self._next_worker = 0
        self._recoveries = 0
        self._latencies: List[float] = []
        self._counters: Dict[str, int] = {
            CTR_SERVING_CHECKPOINTS: 0,
            CTR_SERVING_RECOVERIES: 0,
            CTR_SERVING_REPLAYED: 0,
        }
        self._closed = False

    # -- session lifecycle ----------------------------------------------

    def _key(self, session_id: str) -> str:
        return f"{self._ns}:{session_id}"

    def _slot(self, session_id: str) -> _Slot:
        slot = self._slots.get(session_id)
        if slot is None:
            raise KeyError(f"no open session {session_id!r}")
        return slot

    def open(self, session_id: str, snapshot: bytes) -> None:
        """Open a session from :meth:`DynamicRun.snapshot` bytes."""
        if self._closed:
            raise RuntimeError("host is shut down")
        if session_id in self._slots:
            raise ValueError(f"session {session_id!r} is already open")
        if self.workers:
            worker = self._next_worker % self.workers
            self._next_worker += 1
            self._submit(worker, _w_open, self._key(session_id), snapshot)
        else:
            worker = -1
            _w_open(self._key(session_id), snapshot)
        self._slots[session_id] = _Slot(worker=worker, checkpoint=snapshot)

    def open_session(self, session_id: str, session: DynamicRun) -> None:
        """Open an independent copy of a live session (via snapshot)."""
        self.open(session_id, session.snapshot())

    def snapshot(self, session_id: str) -> bytes:
        """The session's current snapshot (worker round-trip)."""
        slot = self._slot(session_id)
        if slot.worker < 0:
            return _w_snapshot(self._key(session_id))
        return self._submit(slot.worker, _w_snapshot, self._key(session_id))

    def close(self, session_id: str) -> bytes:
        """Evict a session, returning its final snapshot."""
        slot = self._slot(session_id)
        if slot.worker < 0:
            blob = _w_close(self._key(session_id))
        else:
            blob = self._submit(slot.worker, _w_close, self._key(session_id))
        del self._slots[session_id]
        return blob

    def sessions(self) -> List[str]:
        return list(self._slots)

    def shutdown(self) -> None:
        """Drop every session (the warm pools stay for the next host)."""
        for sid in list(self._slots):
            slot = self._slots.pop(sid)
            if slot.worker < 0:
                _SESSIONS.pop(self._key(sid), None)
        self._closed = True

    # -- batches ---------------------------------------------------------

    def apply(
        self, session_id: str, edits: Sequence[GraphEdit]
    ) -> BatchStats:
        """Apply one batch to one session (synchronous)."""
        slot = self._slot(session_id)
        edits = list(edits)
        t0 = obs.clock()
        if slot.worker < 0:
            # In-process: the session records into the host's own
            # tracer (if any) directly; no payload transport needed.
            stats = _w_apply(self._key(session_id), edits)
        else:
            stats = self._submit_apply(session_id, slot, edits)
        self._commit(session_id, slot, edits)
        self._latencies.append((obs.clock() - t0) * 1e3)
        return stats

    def apply_each(
        self, items: Sequence[Tuple[str, Sequence[GraphEdit]]]
    ) -> List[BatchStats]:
        """Apply many (session, batch) pairs, multiplexed over workers.

        Batches for different sessions run concurrently (one in-flight
        lane per worker); batches for the same session keep their list
        order (single-worker pools execute FIFO).  Results come back
        in input order.  If any batch is rejected, the first exception
        is re-raised after every other batch has settled — committed
        siblings stay committed, exactly as if applied one by one.
        """
        items = [(sid, list(edits)) for sid, edits in items]
        t0 = obs.clock()
        if not self.workers:
            results: List[Any] = []
            first_err: Optional[BaseException] = None
            for sid, edits in items:
                try:
                    results.append(self.apply(sid, edits))
                except (Exception,) as exc:
                    if first_err is None:
                        first_err = exc
                    results.append(None)
            if first_err is not None:
                raise first_err
            return results

        tr = obs.current()
        w_apply = _w_apply if tr is None else _w_apply_traced
        futures: List[Any] = []
        for sid, edits in items:
            slot = self._slot(sid)
            futures.append(
                (sid, edits, self._pool(slot.worker).submit(
                    w_apply, self._key(sid), edits
                ))
            )
        results = [None] * len(items)
        broken: List[int] = []
        first_err = None
        for i, (sid, edits, fut) in enumerate(futures):
            slot = self._slots[sid]
            try:
                value = fut.result()
                if tr is not None:
                    value, payload = value
                    tr.absorb(payload, lane=f"serve worker {slot.worker}")
                results[i] = value
                self._commit(sid, slot, edits)
            except BrokenProcessPool:
                broken.append(i)
            except Exception as exc:
                if first_err is None:
                    first_err = exc
        if broken:
            workers = {self._slots[futures[i][0]].worker for i in broken}
            for w in workers:
                self._recover_worker(w)
            # The crashed worker never committed these; re-run in order.
            for i in broken:
                sid, edits, _ = futures[i]
                slot = self._slots[sid]
                try:
                    results[i] = self._submit_apply(sid, slot, edits)
                    self._commit(sid, slot, edits)
                except Exception as exc:
                    if first_err is None:
                        first_err = exc
        elapsed_ms = (obs.clock() - t0) * 1e3
        # One multiplexed wave: attribute the wave's wall clock to each
        # batch would overcount; record the per-batch share.
        if items:
            share = elapsed_ms / len(items)
            self._latencies.extend([share] * len(items))
        if first_err is not None:
            raise first_err
        return results

    def _commit(self, session_id: str, slot: _Slot, edits: List[GraphEdit]) -> None:
        slot.log.append(edits)
        slot.batches += 1
        if slot.worker >= 0 and len(slot.log) >= self.checkpoint_every:
            self._counters[CTR_SERVING_CHECKPOINTS] += 1
            tr = obs.current()
            if tr is not None:
                tr.event(
                    EV_SERVING_CHECKPOINT,
                    session=session_id,
                    batches=len(slot.log),
                )
                tr.count(CTR_SERVING_CHECKPOINTS)
            slot.checkpoint = self._submit(
                slot.worker, _w_snapshot, self._key(session_id)
            )
            slot.log.clear()

    # -- worker plumbing -------------------------------------------------

    def _pool(self, worker: int):
        return serve_pool(worker)

    def _submit(self, worker: int, fn: Any, *args: Any) -> Any:
        """Submit with one recover-and-retry on a dead worker."""
        try:
            return self._pool(worker).submit(fn, *args).result()
        except BrokenProcessPool:
            self._recover_worker(worker)
            return self._pool(worker).submit(fn, *args).result()

    def _submit_apply(
        self, session_id: str, slot: _Slot, edits: List[GraphEdit]
    ) -> BatchStats:
        tr = obs.current()
        w_apply = _w_apply if tr is None else _w_apply_traced
        try:
            value = (
                self._pool(slot.worker)
                .submit(w_apply, self._key(session_id), edits)
                .result()
            )
        except BrokenProcessPool:
            # The dying worker cannot have committed this batch (it
            # died holding it); recover the fleet slice and retry once.
            self._recover_worker(slot.worker)
            value = (
                self._pool(slot.worker)
                .submit(w_apply, self._key(session_id), edits)
                .result()
            )
        if tr is not None:
            value, payload = value
            tr.absorb(payload, lane=f"serve worker {slot.worker}")
        return value

    def _recover_worker(self, worker: int) -> None:
        """Rebuild every session of a dead worker on a fresh process."""
        retire_serve_pools(worker)
        self._recoveries += 1
        self._counters[CTR_SERVING_RECOVERIES] += 1
        tr = obs.current()
        pool = self._pool(worker)  # fresh single-worker pool
        recovered = 0
        for sid, slot in self._slots.items():
            if slot.worker != worker:
                continue
            recovered += 1
            self._counters[CTR_SERVING_REPLAYED] += len(slot.log)
            if tr is not None:
                tr.event(EV_SERVING_REPLAY, session=sid, batches=len(slot.log))
                if slot.log:
                    tr.count(CTR_SERVING_REPLAYED, len(slot.log))
            pool.submit(
                _w_recover, self._key(sid), slot.checkpoint, slot.log
            ).result()
        if tr is not None:
            tr.event(EV_SERVING_RECOVERY, worker=worker, sessions=recovered)
            tr.count(CTR_SERVING_RECOVERIES)

    # -- metrics ---------------------------------------------------------

    def report(self) -> HostReport:
        """Serving metrics so far (latencies host-side, end to end)."""
        return HostReport(
            sessions=len(self._slots),
            workers=self.workers,
            batches_applied=sum(s.batches for s in self._slots.values()),
            worker_recoveries=self._recoveries,
            latency_ms=latency_summary(self._latencies),
            counters=dict(self._counters),
        )
