"""Synchronous execution of machines over a port-numbered graph.

The runtime is the only component that sees node identifiers; machines
receive exactly the local information the model permits.  Rounds are
counted by the runtime (never self-reported by machines), and message
counts / structural bit sizes are metered — when the chosen
:class:`Metering` policy asks for it — for the message-complexity
experiments of Section 5.

Two engines implement the same semantics:

* :func:`run` — the fast engine: CSR flat-array delivery over
  preallocated, reused inbox buffers; halted nodes are skipped
  entirely; per-round method lookups hoisted out of the loop.
* :func:`run_reference` — the executable specification: a plain
  per-node, per-round loop with fresh allocations and no caches.
  ``tests/test_runtime_equivalence.py`` proves the two produce
  identical :class:`RunResult` fields on randomised instances.

**Model semantics (both engines).**  A node that has halted is silent:
the runtime neither calls its ``emit`` hook nor delivers anything on
its behalf — its neighbours see ``None`` on the corresponding ports
(port-numbering model) or a ``None`` entry in their multiset
(broadcast model).  Silence costs no messages and no bits.  A halted
node's state is frozen (``step`` is never called) until a fault
adversary corrupts it back into a non-halted state, after which it
participates again.  Machine hooks must be pure; in particular the
fast engine re-evaluates ``halted`` only when a node's state *object*
changes, which is only correct for pure hooks and for adversaries
that replace corrupted entries rather than mutating state objects in
place (see :class:`repro.simulator.faults.FaultAdversary`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import partial
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro import obs
from repro._util.ordering import canonical_key
from repro._util.parallel import map_jobs
from repro._util.sizes import message_size_bits
from repro.obs import (
    EV_ENGINE_FALLBACK,
    EV_ENGINE_SELECTED,
    SPAN_PHASE,
    SPAN_ROUND,
    SPAN_RUN,
)
from repro.graphs.topology import PortNumberedGraph
from repro.simulator.machine import (
    BROADCAST,
    PORT_NUMBERING,
    LocalContext,
    Machine,
)
from repro.simulator import state_layout

__all__ = [
    "ENGINES",
    "MaxRoundsExceeded",
    "Metering",
    "RunResult",
    "run",
    "run_reference",
    "run_many",
    "sweep",
    "run_port_numbering",
    "run_broadcast",
    "run_on_setcover",
]

Observer = Callable[[int, List[Any], List[Any]], None]

#: Accepted ``engine=`` values for :func:`run`.  ``"object"`` is the
#: per-node fast engine; ``"columnar"`` runs machines that opt in via
#: the columnar protocol (see :mod:`repro.simulator.state_layout`) as
#: whole-array passes, falling back to ``"object"`` automatically for
#: runs that do not qualify.  Results are bit-for-bit identical.
ENGINES = ("object", "columnar")

#: Accepted ``on_max_rounds=`` values for :func:`run` /
#: :func:`run_reference`: ``"return"`` keeps the historical behaviour
#: (a partial RunResult with ``all_halted=False``); ``"raise"`` fails
#: loudly with the round count and the non-halted node ids.
ON_MAX_ROUNDS = ("return", "raise")


class MaxRoundsExceeded(RuntimeError):
    """A run hit ``max_rounds`` with nodes still not halted.

    Carries the executed ``rounds`` and the ``non_halted`` node ids so
    callers can diagnose which part of the network stalled.  Raised by
    :func:`run`/:func:`run_reference` under ``on_max_rounds="raise"``
    and by the one-shot algorithm APIs (which always want a loud
    failure); subclasses :class:`RuntimeError` so pre-existing callers
    that caught that keep working.
    """

    def __init__(self, rounds: int, non_halted: Sequence[int],
                 detail: str = "") -> None:
        self.rounds = rounds
        self.non_halted = list(non_halted)
        shown = ", ".join(map(str, self.non_halted[:16]))
        if len(self.non_halted) > 16:
            shown += f", ... ({len(self.non_halted)} total)"
        message = (
            f"run hit max_rounds={rounds} with {len(self.non_halted)} "
            f"node(s) still not halted: [{shown}]"
        )
        if detail:
            message += f"; {detail}"
        super().__init__(message)

_NONE_KEY = canonical_key(None)

# Shared empty crash set: rounds without a crash adversary pay one
# identity check, not a frozenset construction.
_EMPTY_SET: frozenset = frozenset()


@dataclass(frozen=True)
class Metering:
    """Opt-in metering policy for a run.

    Modes
    -----
    ``"bits"`` (default)
        count every non-``None`` message and meter its structural size
        via :func:`repro._util.sizes.message_size_bits`; fills
        ``messages_sent``, ``message_bits`` and ``per_round_bits``.
    ``"counts"``
        count messages only; ``message_bits`` is 0 and
        ``per_round_bits`` empty.  Skips the (comparatively expensive)
        size recursion.
    ``"none"``
        no metering at all; all three fields are zero/empty.  This is
        the fastest mode — use it for large-instance perf runs where
        only outputs and round counts matter.

    Anywhere a run accepts ``metering=``, a mode string, a ``Metering``
    instance, or ``None`` (meaning ``"none"``) is accepted.
    """

    NONE = "none"
    COUNTS = "counts"
    BITS = "bits"

    mode: str = BITS

    def __post_init__(self) -> None:
        if self.mode not in (self.NONE, self.COUNTS, self.BITS):
            raise ValueError(
                f"unknown metering mode {self.mode!r}; "
                f"expected 'none', 'counts' or 'bits'"
            )

    @classmethod
    def of(cls, spec: Union["Metering", str, None]) -> "Metering":
        """Coerce a run's ``metering=`` argument to a policy."""
        if spec is None:
            return cls(cls.NONE)
        if isinstance(spec, cls):
            return spec
        return cls(spec)

    @property
    def counts_messages(self) -> bool:
        return self.mode != self.NONE

    @property
    def meters_bits(self) -> bool:
        return self.mode == self.BITS


@dataclass
class RunResult:
    """Outcome of a synchronous execution.

    Attributes
    ----------
    outputs:
        per-node outputs (indexed by runtime node id).
    rounds:
        number of synchronous communication rounds executed.
    all_halted:
        whether every node halted (vs. hitting ``max_rounds``).
    messages_sent:
        total count of non-``None`` messages placed on links (0 when
        metering mode is ``"none"``).
    message_bits:
        total structural size of those messages (see
        :func:`repro._util.sizes.message_size_bits`); 0 unless the
        metering mode is ``"bits"``.
    per_round_bits:
        message bits per round, for growth curves; empty unless the
        metering mode is ``"bits"``.
    states:
        final per-node states (useful for analysis/tests; not part of
        the distributed output).
    """

    outputs: List[Any]
    rounds: int
    all_halted: bool
    messages_sent: int
    message_bits: int
    per_round_bits: List[int]
    states: List[Any]

    @property
    def max_round_bits(self) -> int:
        return max(self.per_round_bits, default=0)


def _make_contexts(
    graph: PortNumberedGraph,
    inputs: Optional[Sequence[Any]],
    globals_map: Optional[Mapping[str, Any]],
    seed: Optional[int],
) -> List[LocalContext]:
    if inputs is not None and len(inputs) != graph.n:
        raise ValueError(f"expected {graph.n} inputs, got {len(inputs)}")
    g = dict(globals_map or {})
    ctxs = []
    for v in graph.nodes():
        rng = random.Random(f"node-rng:{seed}:{v}") if seed is not None else None
        ctxs.append(
            LocalContext(
                degree=graph.degree(v),
                input=None if inputs is None else inputs[v],
                globals=g,
                rng=rng,
            )
        )
    return ctxs


def _bad_arity(degree: int, emitted: int) -> ValueError:
    return ValueError(
        f"node of degree {degree} emitted "
        f"{emitted} messages (port-numbering model needs one per port)"
    )


def run(
    graph: PortNumberedGraph,
    machine: Machine,
    inputs: Optional[Sequence[Any]] = None,
    globals_map: Optional[Mapping[str, Any]] = None,
    max_rounds: int = 10_000,
    seed: Optional[int] = None,
    observer: Optional[Observer] = None,
    fault_adversary: Optional[Any] = None,
    metering: Union[Metering, str, None] = Metering.BITS,
    replay: Optional[str] = None,
    engine: str = "object",
    shards: int = 1,
    on_max_rounds: str = "return",
) -> RunResult:
    """Run ``machine`` on every node of ``graph`` until all halt.

    Dispatches on ``machine.model``.  ``observer(round, states,
    outboxes)`` is called after each round for tracing (a halted node's
    outbox entry is ``None``).  A ``fault_adversary`` (see
    :mod:`repro.simulator.faults`) may corrupt states *between* rounds
    — used by the self-stabilisation experiments.  ``metering``
    selects what is measured (see :class:`Metering`).  ``replay``
    (``"incremental"`` / ``"scratch"``, default ``None`` = keep the
    machine's own configuration) reconfigures replay-aware machines —
    the Section 5 history machine, the self-stabilising transformer —
    via :meth:`repro.simulator.machine.Machine.with_replay`; machines
    without replay semantics accept and ignore it.  Results are
    bit-for-bit identical across replay modes.

    ``engine`` selects the execution substrate (see :data:`ENGINES`):
    ``"columnar"`` runs the leading rounds of machines that implement
    the columnar protocol (:mod:`repro.simulator.state_layout`) as
    vectorised whole-array passes, then hands the remainder to the
    object engine.  Runs that do not qualify — machine opted out, no
    numpy, observer/adversary attached, empty graph, values off the
    ``int64`` grid — fall back to ``"object"`` automatically.  Results
    are bit-for-bit identical across engines
    (``tests/test_columnar_engine.py``).

    ``shards`` > 1 partitions the graph's nodes across that many worker
    processes by deterministic hashed ownership and executes the round
    loop with per-round boundary-message exchange — one big run across
    many cores (see :mod:`repro.simulator.sharding`).  Runs that cannot
    engage — an observer attached, a fault adversary that is not
    ``process_safe``, graphs below the size floor, nested inside a
    worker process — fall back to ``shards=1`` automatically, and the
    sharded path takes precedence over ``engine="columnar"`` when both
    apply.  Results are bit-for-bit identical across shard counts
    (``tests/test_shard_differential.py``).

    ``on_max_rounds`` controls what happens when ``max_rounds`` runs
    out with nodes still live: ``"return"`` (default, the historical
    behaviour — the self-stabilisation and dynamic workloads run to a
    round budget on purpose) returns the partial result with
    ``all_halted=False``; ``"raise"`` raises :class:`MaxRoundsExceeded`
    with the round count and the non-halted node ids.

    Semantics: **halted nodes emit nothing** — their ``emit`` hook is
    not called and their neighbours read ``None``/silence on the shared
    links; halted-node messages are never counted or metered.  A halted
    node rejoins only if a fault adversary corrupts its state into a
    non-halted one.

    This is the fast engine.  Port-numbering inboxes are preallocated
    buffers *reused across rounds*: a machine that wants to retain its
    inbox beyond the current ``step`` call must copy it (pure machines
    already do; ``tests/test_columnar_engine.py`` keeps a tripwire on
    the trap).  The columnar path hands kernels read-only inbox
    columns instead, so the aliasing bug cannot recur there.
    :func:`run_reference` is the allocation-per-round executable
    specification with identical observable behaviour.
    """
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    if on_max_rounds not in ON_MAX_ROUNDS:
        raise ValueError(
            f"on_max_rounds must be one of {ON_MAX_ROUNDS}, "
            f"got {on_max_rounds!r}"
        )
    if not isinstance(shards, int) or shards < 1:
        raise ValueError(f"shards must be a positive int, got {shards!r}")
    meter = Metering.of(metering)
    if replay is not None:
        machine = machine.with_replay(replay)
    if machine.model == PORT_NUMBERING:
        engine_fn = _run_fast_port
    elif machine.model == BROADCAST:
        engine_fn = _run_fast_broadcast
    else:
        raise ValueError(f"unknown model {machine.model!r}")

    result: Optional[RunResult] = None
    ctxs: Optional[List[LocalContext]] = None
    tr = obs.current()
    run_t0 = tr.now() if tr is not None else 0.0
    engine_used = "object"
    if shards > 1:
        # Contexts are built lazily: an engaged shard run constructs
        # its own contexts worker-side and must not pay for a parent
        # copy it never reads.
        from repro.simulator import sharding

        result = sharding.run_sharded(
            graph, machine, inputs=inputs, globals_map=globals_map,
            max_rounds=max_rounds, seed=seed, observer=observer,
            fault_adversary=fault_adversary, meter=meter, shards=shards,
        )
        if result is not None:
            engine_used = "sharded"
        elif tr is not None:
            decision = sharding.last_shard_decision()
            tr.event(
                EV_ENGINE_FALLBACK,
                wanted="sharded",
                reason=decision.reason if decision is not None else None,
            )
    if result is None:
        ctxs = _make_contexts(graph, inputs, globals_map, seed)
        if (
            engine == "columnar"
            and machine.model == PORT_NUMBERING
            and observer is None
            and fault_adversary is None
        ):
            result = _run_columnar_port(graph, machine, ctxs, max_rounds, meter)
            if result is not None:
                engine_used = "columnar"
        elif engine == "columnar" and tr is not None:
            tr.event(
                EV_ENGINE_FALLBACK,
                wanted="columnar",
                reason="columnar engine needs the port-numbering model "
                       "with no observer or fault adversary",
            )
        if result is None:
            states: List[Any] = [machine.start(ctxs[v]) for v in graph.nodes()]
            halted: List[bool] = [
                machine.halted(ctxs[v], states[v]) for v in graph.nodes()
            ]
            result = engine_fn(
                graph, machine, ctxs, states, halted,
                max_rounds, observer, fault_adversary, meter,
            )
    if tr is not None:
        tr.event(
            EV_ENGINE_SELECTED,
            engine=engine_used, shards=shards, n=graph.n,
            rounds=result.rounds,
        )
        tr.complete(SPAN_RUN, run_t0, engine=engine_used, n=graph.n)
    if not result.all_halted and on_max_rounds == "raise":
        if ctxs is None:
            ctxs = _make_contexts(graph, inputs, globals_map, seed)
        raise MaxRoundsExceeded(
            rounds=result.rounds,
            non_halted=[
                v for v in graph.nodes()
                if not machine.halted(ctxs[v], result.states[v])
            ],
        )
    return result


def _run_columnar_port(
    graph: PortNumberedGraph,
    machine: Machine,
    ctxs: List[LocalContext],
    max_rounds: int,
    meter: Metering,
) -> Optional[RunResult]:
    """The columnar engine, or ``None`` when this run cannot engage it.

    Runs the machine's declared leading rounds as whole-array passes
    over a :class:`~repro.simulator.state_layout.StateLayout`, then
    materialises per-node states and delegates the remaining rounds to
    :func:`_run_fast_port`.  Covered rounds are port-uniform, so
    delivery is the single gather ``values[targets]``; the gathered
    inbox columns are handed to kernels *read-only* — the columnar
    counterpart of the object engine's reused-buffer trap, made
    impossible rather than documented.
    """
    if not state_layout.HAVE_NUMPY:
        _columnar_fallback("numpy is unavailable")
        return None
    if graph.n == 0 or graph.m == 0:
        _columnar_fallback("graph has no nodes or no edges")
        return None
    plan = machine.columnar_fields(graph, ctxs)
    if plan is None:
        _columnar_fallback("machine declares no columnar plan")
        return None
    if plan.rounds <= 0:
        _columnar_fallback("columnar plan covers no rounds")
        return None
    if plan.rounds > max_rounds:
        _columnar_fallback(
            f"columnar plan needs {plan.rounds} rounds, "
            f"max_rounds is {max_rounds}"
        )
        return None
    np = state_layout.np
    layout = state_layout.StateLayout(graph)
    for name, fill in plan.node_fields:
        layout.add_node_field(name, fill)
    for name, fill in plan.edge_fields:
        layout.add_edge_field(name, fill)
    machine.start_columnar(layout, ctxs)

    degrees = layout.degrees
    count_msgs = meter.counts_messages
    meter_bits = meter.meters_bits
    messages_sent = 0
    message_bits = 0
    per_round_bits: List[int] = []
    tr = obs.current()
    phase_t0 = tr.now() if tr is not None else 0.0
    for r in range(plan.rounds):
        values, sending, decode = machine.emit_columnar(layout, r)
        if layout.halted.any():
            sending = sending & ~layout.halted
        if count_msgs:
            # Port-uniform rounds: a sender pays one message per port.
            messages_sent += int(degrees[sending].sum())
            if meter_bits:
                sent_vals = values[sending]
                uniq, inv = np.unique(sent_vals, return_inverse=True)
                sizes = np.fromiter(
                    (message_size_bits(decode(u)) for u in uniq.tolist()),
                    dtype=np.int64, count=len(uniq),
                )
                round_bits = int((sizes[inv] * degrees[sending]).sum())
                message_bits += round_bits
                per_round_bits.append(round_bits)
        inbox_vals = values[layout.targets]
        inbox_sent = sending[layout.targets]
        inbox_vals.flags.writeable = False
        inbox_sent.flags.writeable = False
        machine.step_columnar(layout, r, inbox_vals, inbox_sent)

    if tr is not None:
        tr.complete(
            SPAN_PHASE, phase_t0, phase="columnar rounds", rounds=plan.rounds
        )
    states = machine.finish_columnar(layout, ctxs)
    halted = [machine.halted(ctxs[v], states[v]) for v in graph.nodes()]
    inner = _run_fast_port(
        graph, machine, ctxs, states, halted,
        max_rounds - plan.rounds, None, None, meter,
    )
    return RunResult(
        outputs=inner.outputs,
        rounds=plan.rounds + inner.rounds,
        all_halted=inner.all_halted,
        messages_sent=messages_sent + inner.messages_sent,
        message_bits=message_bits + inner.message_bits,
        per_round_bits=per_round_bits + inner.per_round_bits,
        states=inner.states,
    )


def _columnar_fallback(reason: str) -> None:
    """Log why the columnar engine could not engage this run."""
    tr = obs.current()
    if tr is not None:
        tr.event(EV_ENGINE_FALLBACK, wanted="columnar", reason=reason)


def _run_fast_port(
    graph: PortNumberedGraph,
    machine: Machine,
    ctxs: List[LocalContext],
    states: List[Any],
    halted: List[bool],
    max_rounds: int,
    observer: Optional[Observer],
    adversary: Optional[Any],
    meter: Metering,
) -> RunResult:
    n = graph.n
    degrees = graph.degree_array

    emit = machine.emit
    step = machine.step
    halted_fn = machine.halted
    size_of = message_size_bits
    count_msgs = meter.counts_messages
    meter_bits = meter.meters_bits

    # Quiescence fast path (see Machine.quiescent): park nodes whose
    # remaining execution is provably silent and inbox-independent, and
    # fast-forward their states once the active loop drains.  Disabled
    # under observers and fault adversaries, which need (or may
    # corrupt) true per-round states.
    quiescent_fn = getattr(machine, "quiescent", None)
    use_parking = (
        quiescent_fn is not None
        and observer is None
        and adversary is None
    )
    parked: List[Tuple[int, int]] = []  # (node, round it was parked after)

    # Message-fault / crash hooks (getattr: duck-typed adversaries that
    # predate the extended contract only corrupt states).
    adv_restarted = adv_paused = adv_tampers = None
    if adversary is not None:
        adv_restarted = getattr(adversary, "restarted", None)
        adv_paused = getattr(adversary, "paused", None)
        adv_tampers = getattr(adversary, "tampers", None)
    start_fn = machine.start

    rounds = 0
    n_halted = sum(halted)
    messages_sent = 0
    message_bits = 0
    per_round_bits: List[int] = []
    live = [v for v in range(n) if not halted[v]]
    # silent[v] == 1 means every slot v feeds already holds None, so a
    # silent round needs no writes at all (inboxes start out all-None).
    silent = bytearray([1]) * n

    if use_parking and live:
        # Nodes already quiescent in their initial state (resumed runs —
        # notably the columnar engine's handoff states) never need a
        # real round: the contract says they emit None and ignore their
        # inboxes from here to halting, so park them straight away.
        still_live = []
        for v in live:
            if quiescent_fn(ctxs[v], states[v]):
                parked.append((v, rounds))
            else:
                still_live.append(v)
        live = still_live

    # Preallocated inboxes, reused across rounds; scatter[v] lists, for
    # each of v's ports in order, the (neighbour inbox, slot) it feeds.
    # Built only when the round loop can actually run — a start state
    # with every node halted or parked (the columnar handoff on fully
    # quiescent instances) skips the allocation entirely.
    inboxes: List[List[Any]] = []
    scatter: List[List[Tuple[List[Any], int]]] = []
    if max_rounds > 0 and n_halted + len(parked) < n:
        offsets, flat_targets, flat_rev = graph.csr()
        inboxes = [[None] * degrees[v] for v in range(n)]
        for v in range(n):
            s, e = offsets[v], offsets[v + 1]
            scatter.append(
                [(inboxes[u], q)
                 for u, q in zip(flat_targets[s:e], flat_rev[s:e])]
            )

    tr = obs.current()
    while rounds < max_rounds and n_halted + len(parked) < n:
        rt0 = tr.now() if tr is not None else 0.0
        paused: frozenset = _EMPTY_SET
        if adversary is not None:
            changed = False
            if adv_restarted is not None:
                for v in sorted(set(adv_restarted(rounds, graph))):
                    states[v] = start_fn(ctxs[v])
                    now = halted_fn(ctxs[v], states[v])
                    if now != halted[v]:
                        halted[v] = now
                        if now:
                            n_halted += 1
                            for dst, q in scatter[v]:
                                dst[q] = None
                            silent[v] = 1
                        else:
                            n_halted -= 1
                    changed = True
            if adversary.is_active(rounds):
                changed = True
                prev = states
                # Hand corrupt() a copy: an adversary that assigns into
                # the list it was given (and returns it) must not alias
                # `prev`, or the identity check below would miss every
                # corruption.
                states = list(adversary.corrupt(rounds, graph, list(prev)))
                for v in range(n):
                    if states[v] is not prev[v] and halted[v] != (
                        now := halted_fn(ctxs[v], states[v])
                    ):
                        halted[v] = now
                        if now:
                            n_halted += 1
                            for dst, q in scatter[v]:
                                dst[q] = None
                            silent[v] = 1
                        else:
                            n_halted -= 1
            if changed:
                live = [v for v in range(n) if not halted[v]]
            if adv_paused is not None:
                paused = frozenset(adv_paused(rounds, graph))

        outboxes: Optional[List[Any]] = [None] * n if observer is not None else None
        round_bits = 0
        if adv_tampers is not None and adv_tampers(rounds):
            # Chaos path: collect every emission, expose the full set
            # of directed links to the adversary, then deliver and
            # meter from the (possibly tampered) link values.  Mirrors
            # the reference engine exactly; the hot path below is
            # untouched in rounds without message tampering.
            rows: List[Any] = [None] * n
            for v in live:
                if v in paused:
                    continue
                out = emit(ctxs[v], states[v])
                if out is None:
                    if outboxes is not None:
                        outboxes[v] = [None] * degrees[v]
                    continue
                d = degrees[v]
                if type(out) is not list and type(out) is not tuple:
                    out = list(out)
                if len(out) != d:
                    raise _bad_arity(d, len(out))
                rows[v] = out
                if outboxes is not None:
                    outboxes[v] = out
            links: Dict[Tuple[int, int], Any] = {}
            for v in range(n):
                row = rows[v]
                if row is None:
                    for p in range(degrees[v]):
                        links[(v, p)] = None
                else:
                    for p in range(degrees[v]):
                        links[(v, p)] = row[p]
            links = adversary.tamper(rounds, graph, links)
            # Every slot is rewritten from the tampered links, and
            # silence is recomputed, so later (fast-path) rounds see a
            # consistent inbox/silent state.
            for v in range(n):
                still = 1
                for p, (dst, q) in enumerate(scatter[v]):
                    m = links[(v, p)]
                    dst[q] = m
                    if m is not None:
                        still = 0
                        if count_msgs:
                            messages_sent += 1
                            if meter_bits:
                                round_bits += size_of(m)
                silent[v] = still
        else:
            for v in live:
                if v in paused:
                    # Crashed this round: silent (like halted) but live.
                    if not silent[v]:
                        for dst, q in scatter[v]:
                            dst[q] = None
                        silent[v] = 1
                    continue
                out = emit(ctxs[v], states[v])
                if out is None:
                    if outboxes is not None:
                        # Observer parity with the reference engine: a
                        # live node's silence shows as an all-None row;
                        # only halted/crashed nodes show as None.
                        outboxes[v] = [None] * degrees[v]
                    if not silent[v]:
                        for dst, q in scatter[v]:
                            dst[q] = None
                        silent[v] = 1
                    continue
                silent[v] = 0
                d = degrees[v]
                if type(out) is not list and type(out) is not tuple:
                    out = list(out)
                if len(out) != d:
                    raise _bad_arity(d, len(out))
                if outboxes is not None:
                    outboxes[v] = out
                for (dst, q), m in zip(scatter[v], out):
                    dst[q] = m
                if count_msgs:
                    if meter_bits:
                        for m in out:
                            if m is not None:
                                messages_sent += 1
                                round_bits += size_of(m)
                    else:
                        for m in out:
                            if m is not None:
                                messages_sent += 1

        next_live: List[int] = []
        just_halted: List[int] = []
        for v in live:
            if v in paused:
                # Frozen: no step, the round's inbox is discarded.
                next_live.append(v)
                continue
            st = step(ctxs[v], states[v], inboxes[v])
            states[v] = st
            if halted_fn(ctxs[v], st):
                halted[v] = True
                n_halted += 1
                just_halted.append(v)
            elif use_parking and silent[v] and quiescent_fn(ctxs[v], st):
                # Only silent nodes can be quiescent (quiescence implies
                # emitting None), so the check is skipped for talkers.
                parked.append((v, rounds + 1))
                just_halted.append(v)  # silence its slots like a halted node
            else:
                next_live.append(v)
        # Silence newly halted/parked nodes only after every step has
        # read its inbox — their final-round messages were deliverable.
        for v in just_halted:
            for dst, q in scatter[v]:
                dst[q] = None
            silent[v] = 1
        live = next_live
        rounds += 1
        if tr is not None:
            tr.complete(SPAN_ROUND, rt0, round=rounds - 1)
        if meter_bits:
            message_bits += round_bits
            per_round_bits.append(round_bits)
        if observer is not None:
            observer(rounds, states, outboxes)

    # Fast-forward parked nodes to where the plain loop would have left
    # them.  A parked node is silent and ignores its inbox, so only its
    # round count matters; the global round count is the max over all
    # nodes, and silent rounds contribute zero messages and bits.
    for v, parked_at in parked:
        st, used = machine.fast_forward(ctxs[v], states[v], max_rounds - parked_at)
        states[v] = st
        if halted_fn(ctxs[v], st):
            n_halted += 1
        if parked_at + used > rounds:
            rounds = parked_at + used
    if meter_bits and len(per_round_bits) < rounds:
        per_round_bits.extend([0] * (rounds - len(per_round_bits)))
        # (silent tail rounds: no messages, no bits)

    outputs = [machine.output(ctxs[v], states[v]) for v in range(n)]
    return RunResult(
        outputs=outputs,
        rounds=rounds,
        all_halted=n_halted == n,
        messages_sent=messages_sent,
        message_bits=message_bits,
        per_round_bits=per_round_bits,
        states=states,
    )


def _run_fast_broadcast(
    graph: PortNumberedGraph,
    machine: Machine,
    ctxs: List[LocalContext],
    states: List[Any],
    halted: List[bool],
    max_rounds: int,
    observer: Optional[Observer],
    adversary: Optional[Any],
    meter: Metering,
) -> RunResult:
    n = graph.n
    degrees = graph.degree_array
    nbrs = [graph.neighbours(v) for v in range(n)]

    emit = machine.emit
    step = machine.step
    halted_fn = machine.halted
    size_of = message_size_bits
    count_msgs = meter.counts_messages
    meter_bits = meter.meters_bits

    rounds = 0
    n_halted = sum(halted)
    messages_sent = 0
    message_bits = 0
    per_round_bits: List[int] = []
    live = [v for v in range(n) if not halted[v]]
    payloads: List[Any] = [None] * n
    keys: List[Any] = [_NONE_KEY] * n

    # Message-fault / crash hooks (getattr: duck-typed adversaries that
    # predate the extended contract only corrupt states).
    adv_restarted = adv_paused = adv_tampers = None
    if adversary is not None:
        adv_restarted = getattr(adversary, "restarted", None)
        adv_paused = getattr(adversary, "paused", None)
        adv_tampers = getattr(adversary, "tampers", None)
    start_fn = machine.start

    tr = obs.current()
    while rounds < max_rounds and n_halted < n:
        rt0 = tr.now() if tr is not None else 0.0
        paused: frozenset = _EMPTY_SET
        if adversary is not None:
            changed = False
            if adv_restarted is not None:
                for v in sorted(set(adv_restarted(rounds, graph))):
                    states[v] = start_fn(ctxs[v])
                    now = halted_fn(ctxs[v], states[v])
                    if now != halted[v]:
                        halted[v] = now
                        if now:
                            n_halted += 1
                            payloads[v] = None
                            keys[v] = _NONE_KEY
                        else:
                            n_halted -= 1
                    changed = True
            if adversary.is_active(rounds):
                changed = True
                prev = states
                # Hand corrupt() a copy: an adversary that assigns into
                # the list it was given (and returns it) must not alias
                # `prev`, or the identity check below would miss every
                # corruption.
                states = list(adversary.corrupt(rounds, graph, list(prev)))
                for v in range(n):
                    if states[v] is not prev[v] and halted[v] != (
                        now := halted_fn(ctxs[v], states[v])
                    ):
                        halted[v] = now
                        if now:
                            n_halted += 1
                            payloads[v] = None
                            keys[v] = _NONE_KEY
                        else:
                            n_halted -= 1
            if changed:
                live = [v for v in range(n) if not halted[v]]
            if adv_paused is not None:
                paused = frozenset(adv_paused(rounds, graph))

        round_bits = 0
        inboxes_t: Optional[List[Any]] = None
        if adv_tampers is not None and adv_tampers(rounds):
            # Chaos path: expose every directed link to the adversary,
            # then deliver and meter from the (possibly tampered) link
            # values.  A stable sort of the received *values* by
            # canonical key equals the normal stable sender-sort, so an
            # untampered chaos round builds identical inboxes.
            for v in live:
                if v in paused:
                    payloads[v] = None
                    keys[v] = _NONE_KEY
                    continue
                p = emit(ctxs[v], states[v])
                payloads[v] = p
                keys[v] = canonical_key(p)
            links: Dict[Tuple[int, int], Any] = {}
            for v in range(n):
                pv = payloads[v]
                for u in nbrs[v]:
                    links[(v, u)] = pv
            links = adversary.tamper(rounds, graph, links)
            if count_msgs:
                for m in links.values():
                    if m is not None:
                        messages_sent += 1
                        if meter_bits:
                            round_bits += size_of(m)
            inboxes_t = [None] * n
            for v in live:
                if v in paused:
                    continue
                received = [links[(u, v)] for u in nbrs[v]]
                received.sort(key=canonical_key)
                inboxes_t[v] = tuple(received)
        else:
            for v in live:
                if v in paused:
                    # Crashed this round: silent (like halted) but live.
                    payloads[v] = None
                    keys[v] = _NONE_KEY
                    continue
                p = emit(ctxs[v], states[v])
                payloads[v] = p
                keys[v] = canonical_key(p)
                if p is not None and count_msgs:
                    # One broadcast payload, delivered along every link.
                    d = degrees[v]
                    messages_sent += d
                    if meter_bits:
                        round_bits += d * size_of(p)

        key_of = keys.__getitem__
        next_live: List[int] = []
        just_halted: List[int] = []
        for v in live:
            if v in paused:
                # Frozen: no step, the round's inbox is discarded.
                next_live.append(v)
                continue
            # inbox = canonically sorted multiset of neighbours'
            # payloads; sorting by content (never by sender) enforces
            # the broadcast model's anonymity.
            if inboxes_t is not None:
                inbox = inboxes_t[v]
            else:
                inbox = tuple(
                    payloads[u] for u in sorted(nbrs[v], key=key_of)
                )
            st = step(ctxs[v], states[v], inbox)
            states[v] = st
            if halted_fn(ctxs[v], st):
                halted[v] = True
                n_halted += 1
                just_halted.append(v)
            else:
                next_live.append(v)
        live = next_live
        rounds += 1
        if tr is not None:
            tr.complete(SPAN_ROUND, rt0, round=rounds - 1)
        if meter_bits:
            message_bits += round_bits
            per_round_bits.append(round_bits)
        if observer is not None:
            observer(rounds, states, list(payloads))
        for v in just_halted:
            payloads[v] = None
            keys[v] = _NONE_KEY

    outputs = [machine.output(ctxs[v], states[v]) for v in range(n)]
    return RunResult(
        outputs=outputs,
        rounds=rounds,
        all_halted=n_halted == n,
        messages_sent=messages_sent,
        message_bits=message_bits,
        per_round_bits=per_round_bits,
        states=states,
    )


# ----------------------------------------------------------------------
# Reference engine (executable specification)
# ----------------------------------------------------------------------


def run_reference(
    graph: PortNumberedGraph,
    machine: Machine,
    inputs: Optional[Sequence[Any]] = None,
    globals_map: Optional[Mapping[str, Any]] = None,
    max_rounds: int = 10_000,
    seed: Optional[int] = None,
    observer: Optional[Observer] = None,
    fault_adversary: Optional[Any] = None,
    metering: Union[Metering, str, None] = Metering.BITS,
    replay: Optional[str] = None,
    on_max_rounds: str = "return",
) -> RunResult:
    """The executable specification of :func:`run`.

    A deliberately plain per-node, per-round loop — fresh inboxes every
    round, no flat arrays, no skip lists, no memo caches — implementing
    the same semantics (halted nodes emit nothing; see :func:`run`).
    The equivalence suite asserts :func:`run` matches this engine
    field-for-field; keep this loop easy to audit.  (``replay`` is a
    *machine*-level knob, so it is honoured here too — engine
    equivalence must hold in every machine configuration; likewise
    ``on_max_rounds``, whose ``"raise"`` mode fails loudly via
    :class:`MaxRoundsExceeded` instead of returning a partial result.)
    """
    if on_max_rounds not in ON_MAX_ROUNDS:
        raise ValueError(
            f"on_max_rounds must be one of {ON_MAX_ROUNDS}, "
            f"got {on_max_rounds!r}"
        )
    meter = Metering.of(metering)
    if replay is not None:
        machine = machine.with_replay(replay)
    if machine.model == PORT_NUMBERING:
        deliver = _deliver_port_numbering
    elif machine.model == BROADCAST:
        deliver = _deliver_broadcast
    else:
        raise ValueError(f"unknown model {machine.model!r}")

    ctxs = _make_contexts(graph, inputs, globals_map, seed)
    states: List[Any] = [machine.start(ctxs[v]) for v in graph.nodes()]
    halted: List[bool] = [machine.halted(ctxs[v], states[v]) for v in graph.nodes()]

    # Message-fault / crash hooks (getattr: duck-typed adversaries that
    # predate the extended contract only corrupt states).
    adv_restarted = adv_paused = adv_tampers = None
    if fault_adversary is not None:
        adv_restarted = getattr(fault_adversary, "restarted", None)
        adv_paused = getattr(fault_adversary, "paused", None)
        adv_tampers = getattr(fault_adversary, "tampers", None)

    rounds = 0
    messages_sent = 0
    message_bits = 0
    per_round_bits: List[int] = []

    tr = obs.current()
    run_t0 = tr.now() if tr is not None else 0.0
    while rounds < max_rounds and not all(halted):
        rt0 = tr.now() if tr is not None else 0.0
        paused: frozenset = _EMPTY_SET
        if fault_adversary is not None:
            if adv_restarted is not None:
                for v in sorted(set(adv_restarted(rounds, graph))):
                    states[v] = machine.start(ctxs[v])
            states = fault_adversary.corrupt(rounds, graph, states)
            halted = [machine.halted(ctxs[v], states[v]) for v in graph.nodes()]
            if adv_paused is not None:
                paused = frozenset(adv_paused(rounds, graph))

        outboxes: List[Any] = []
        for v in graph.nodes():
            if halted[v] or v in paused:
                out = None  # halted (and crashed) nodes are silent
            else:
                out = machine.emit(ctxs[v], states[v])
                if machine.model == PORT_NUMBERING:
                    if out is None:
                        out = [None] * graph.degree(v)
                    out = list(out)
                    if len(out) != graph.degree(v):
                        raise _bad_arity(graph.degree(v), len(out))
            outboxes.append(out)

        tampering = adv_tampers is not None and adv_tampers(rounds)
        if tampering:
            links = _links_of(graph, machine.model, outboxes)
            links = fault_adversary.tamper(rounds, graph, links)
            inboxes = _deliver_links(graph, machine.model, links)
        else:
            inboxes = deliver(graph, outboxes)

        # Metering: count each non-None message once per link direction
        # (after tampering, if any: the wire's view is what is billed).
        if meter.counts_messages:
            round_bits = 0
            if tampering:
                for m in links.values():
                    if m is not None:
                        messages_sent += 1
                        if meter.meters_bits:
                            round_bits += message_size_bits(m)
            else:
                for v in graph.nodes():
                    if machine.model == PORT_NUMBERING:
                        if outboxes[v] is None:
                            continue
                        sent = [m for m in outboxes[v] if m is not None]
                        messages_sent += len(sent)
                        if meter.meters_bits:
                            for m in sent:
                                round_bits += message_size_bits(m)
                    elif outboxes[v] is not None:
                        # One broadcast payload, sent along every link.
                        d = graph.degree(v)
                        messages_sent += d
                        if meter.meters_bits:
                            round_bits += d * message_size_bits(outboxes[v])
            if meter.meters_bits:
                message_bits += round_bits
                per_round_bits.append(round_bits)

        for v in graph.nodes():
            if not halted[v] and v not in paused:
                states[v] = machine.step(ctxs[v], states[v], inboxes[v])
                halted[v] = machine.halted(ctxs[v], states[v])
        rounds += 1
        if tr is not None:
            tr.complete(SPAN_ROUND, rt0, round=rounds - 1)

        if observer is not None:
            observer(rounds, states, outboxes)

    if tr is not None:
        tr.event(
            EV_ENGINE_SELECTED,
            engine="reference", shards=1, n=graph.n, rounds=rounds,
        )
        tr.complete(SPAN_RUN, run_t0, engine="reference", n=graph.n)
    if not all(halted) and on_max_rounds == "raise":
        raise MaxRoundsExceeded(
            rounds=rounds,
            non_halted=[v for v in graph.nodes() if not halted[v]],
        )
    outputs = [machine.output(ctxs[v], states[v]) for v in graph.nodes()]
    return RunResult(
        outputs=outputs,
        rounds=rounds,
        all_halted=all(halted),
        messages_sent=messages_sent,
        message_bits=message_bits,
        per_round_bits=per_round_bits,
        states=states,
    )


def _deliver_port_numbering(
    graph: PortNumberedGraph, outboxes: List[Any]
) -> List[List[Any]]:
    """inbox[v][p] = message sent by the neighbour behind port p."""
    inboxes: List[List[Any]] = [
        [None] * graph.degree(v) for v in graph.nodes()
    ]
    for v in graph.nodes():
        out = outboxes[v]
        if out is None:
            continue  # silent (halted) sender: slots stay None
        for p in range(graph.degree(v)):
            u, q = graph.port_target(v, p)
            inboxes[u][q] = out[p]
    return inboxes


def _deliver_broadcast(
    graph: PortNumberedGraph, outboxes: List[Any]
) -> List[tuple]:
    """inbox[v] = canonically sorted multiset of neighbours' messages.

    Sorting by content (and never by sender) enforces the broadcast
    model: a node cannot tell which neighbour sent which message, nor
    correlate senders across rounds.  Sort keys are computed once per
    sender per round — the same payload is delivered along every link.
    """
    keys = [canonical_key(out) for out in outboxes]
    return [
        tuple(
            outboxes[u]
            for u in sorted(graph.neighbours(v), key=lambda u: keys[u])
        )
        for v in graph.nodes()
    ]


def _links_of(
    graph: PortNumberedGraph, model: str, outboxes: List[Any]
) -> Dict[Tuple[int, int], Any]:
    """Every directed link's in-flight message, as a dict the adversary
    may tamper with.

    Port-numbering keys are ``(sender, port)``; broadcast keys are
    ``(sender, receiver)``.  ``None`` means silence on that link.
    Insertion order is deterministic — sender ascending, then port /
    neighbour order — and seeded adversaries key their hash schedules
    on it, so keep it stable.
    """
    links: Dict[Tuple[int, int], Any] = {}
    if model == PORT_NUMBERING:
        for v in graph.nodes():
            out = outboxes[v]
            for p in range(graph.degree(v)):
                links[(v, p)] = None if out is None else out[p]
    else:
        for v in graph.nodes():
            out = outboxes[v]
            for u in graph.neighbours(v):
                links[(v, u)] = out
    return links


def _deliver_links(
    graph: PortNumberedGraph, model: str, links: Mapping[Tuple[int, int], Any]
) -> List[Any]:
    """Chaos-path counterpart of the two ``_deliver_*`` helpers: build
    inboxes from (possibly tampered) per-link values.

    Broadcast inboxes stable-sort the received *values* by canonical
    key; with untampered links that equals the sender-sort in
    :func:`_deliver_broadcast` (same keys, same stable order), which is
    what keeps chaos rounds bit-for-bit with clean ones.
    """
    if model == PORT_NUMBERING:
        inboxes: List[Any] = [[None] * graph.degree(v) for v in graph.nodes()]
        for v in graph.nodes():
            for p in range(graph.degree(v)):
                u, q = graph.port_target(v, p)
                inboxes[u][q] = links[(v, p)]
        return inboxes
    result: List[Any] = []
    for v in graph.nodes():
        received = [links[(u, v)] for u in graph.neighbours(v)]
        received.sort(key=canonical_key)
        result.append(tuple(received))
    return result


# ----------------------------------------------------------------------
# Batched execution
# ----------------------------------------------------------------------


def _check_process_backend(backend: Optional[str], kwargs: Mapping[str, Any]) -> None:
    """Reject run options whose effects cannot cross a process boundary.

    An ``observer`` works by side effect, and a ``fault_adversary`` may
    accumulate state during the run (e.g. a corruption log read after
    it); in a worker process those parent-side effects happen in the
    child's copy and are silently lost, so the process backend refuses
    both up front (``"auto"`` would usually fall back to threads anyway
    — these are typically closures or stateful objects — but a
    picklable one must not slip through and go quiet).

    Adversaries that declare ``process_safe = True`` (the seeded
    message-fault family: their whole schedule is a pure hash of the
    seed, so the run outcome carries no parent-side state) are allowed.
    """
    if backend not in ("process", "auto"):
        return
    if kwargs.get("observer") is not None:
        raise ValueError(
            "observer side effects do not propagate from worker "
            "processes; use backend='thread' (or serial) instead"
        )
    adversary = kwargs.get("fault_adversary")
    if adversary is not None and not getattr(adversary, "process_safe", False):
        raise ValueError(
            "fault_adversary side effects do not propagate from worker "
            "processes (its diagnostic counters would stay in the "
            "child); use backend='thread' (or serial), or a "
            "process_safe adversary"
        )


def _run_with_seed(
    seed: Optional[int],
    *,
    graph: PortNumberedGraph,
    machine: Machine,
    inputs: Optional[Sequence[Any]],
    globals_map: Optional[Mapping[str, Any]],
    run_kwargs: Mapping[str, Any],
) -> RunResult:
    """Module-level per-seed job body (picklable for backend="process")."""
    return run(
        graph, machine, inputs=inputs, globals_map=globals_map,
        seed=seed, **run_kwargs,
    )


def run_many(
    graph: PortNumberedGraph,
    machine: Machine,
    seeds: Iterable[Optional[int]],
    inputs: Optional[Sequence[Any]] = None,
    globals_map: Optional[Mapping[str, Any]] = None,
    n_workers: Optional[int] = None,
    backend: Optional[str] = None,
    **kwargs: Any,
) -> List[RunResult]:
    """One :func:`run` per seed on a fixed graph/machine, in seed order.

    Amortises context/topology setup across repetitions of a randomised
    experiment.  Extra ``kwargs`` (``max_rounds``, ``metering``,
    ``replay``, ...) are forwarded to every run.  With ``n_workers > 1`` the runs
    execute on a pool chosen by ``backend`` — ``"thread"`` (default;
    machine hooks must be thread-safe, pure machines are),
    ``"process"`` (true multi-core parallelism; graph, machine, inputs
    and results must pickle — every shipped machine does), or
    ``"auto"`` (process when everything pickles, else thread).  Results
    are in the same order as ``seeds`` and bit-for-bit independent of
    the backend.
    """
    _check_process_backend(backend, kwargs)
    one = partial(
        _run_with_seed,
        graph=graph, machine=machine, inputs=inputs,
        globals_map=globals_map, run_kwargs=kwargs,
    )
    return map_jobs(one, list(seeds), n_workers, backend=backend)


def _run_sweep_instance(
    inst: Any,
    *,
    machine: Optional[Machine],
    run_kwargs: Mapping[str, Any],
) -> RunResult:
    """Module-level per-instance job body (picklable for backend="process")."""

    def need_machine() -> Machine:
        if machine is None:
            raise TypeError(
                f"sweep instance {inst!r:.60} provides no 'machine' and "
                f"no default machine was given"
            )
        return machine

    if hasattr(inst, "to_bipartite_graph"):
        return run_on_setcover(inst, need_machine(), **run_kwargs)
    if isinstance(inst, PortNumberedGraph):
        return run(inst, need_machine(), **run_kwargs)
    if isinstance(inst, Mapping):
        merged: Dict[str, Any] = {**run_kwargs, **inst}
        m = merged.pop("machine", machine)
        if m is None:
            raise TypeError(
                "sweep mapping instance has no 'machine' and no "
                "default machine was given"
            )
        return run(machine=m, **merged)
    try:
        graph, inputs = inst
    except (TypeError, ValueError):
        raise TypeError(
            f"sweep instance must be a graph, a (graph, inputs) pair, "
            f"a mapping of run() kwargs, or a set-cover instance; "
            f"got {inst!r:.80}"
        ) from None
    return run(graph, need_machine(), inputs=inputs, **run_kwargs)


def sweep(
    instances: Iterable[Any],
    machine: Optional[Machine] = None,
    n_workers: Optional[int] = None,
    backend: Optional[str] = None,
    **kwargs: Any,
) -> List[RunResult]:
    """One :func:`run` per instance, in instance order.

    Each instance may be a :class:`PortNumberedGraph`, a ``(graph,
    inputs)`` pair, a mapping of :func:`run` keyword arguments (must
    contain ``"graph"``), or a set-cover instance (anything with a
    ``to_bipartite_graph`` method — routed via :func:`run_on_setcover`).
    Extra ``kwargs`` are forwarded to every run; per-instance mappings
    override them, including a per-instance ``"machine"`` — when every
    instance brings its own machine, the ``machine`` argument may be
    omitted entirely.

    With ``n_workers > 1`` instances execute on a pool chosen by
    ``backend``: ``"thread"`` (default), ``"process"`` (multi-core;
    instances, machines and results must pickle) or ``"auto"``.
    Results are bit-for-bit independent of the backend; instances are
    chunked so one warm process pool amortises across a whole
    experiment table (see :mod:`repro._util.parallel`).
    """
    instances = list(instances)
    _check_process_backend(backend, kwargs)
    for inst in instances:
        # Mapping instances merge into the run() kwargs in the worker,
        # so they can smuggle the same process-unsafe options past the
        # kwargs check above.
        if isinstance(inst, Mapping):
            _check_process_backend(backend, inst)
    one = partial(_run_sweep_instance, machine=machine, run_kwargs=kwargs)
    return map_jobs(one, instances, n_workers, backend=backend)


# ----------------------------------------------------------------------
# Model-checked entry points
# ----------------------------------------------------------------------


def run_port_numbering(graph, machine, **kwargs) -> RunResult:
    """:func:`run`, asserting the machine uses the port-numbering model."""
    if machine.model != PORT_NUMBERING:
        raise ValueError(
            f"machine {type(machine).__name__} is written for {machine.model!r}"
        )
    return run(graph, machine, **kwargs)


def run_broadcast(graph, machine, **kwargs) -> RunResult:
    """:func:`run`, asserting the machine uses the broadcast model."""
    if machine.model != BROADCAST:
        raise ValueError(
            f"machine {type(machine).__name__} is written for {machine.model!r}"
        )
    return run(graph, machine, **kwargs)


def run_on_setcover(instance, machine: Machine, **kwargs) -> RunResult:
    """Run a machine on the bipartite layout of a set cover instance.

    Wires up the node inputs (roles/weights) and global parameters
    (f, k, W) exactly as the paper's model provides them.
    """
    graph = instance.to_bipartite_graph()
    return run(
        graph,
        machine,
        inputs=instance.node_inputs(),
        globals_map=instance.global_params(),
        **kwargs,
    )
