"""Identity-keyed memoisation.

The hot paths memoise derived values (schedules, canonical keys,
structural sizes) for objects that are reused across calls — the
shared per-run globals mapping, repeated payload tuples.  Hashing the
object would cost as much as recomputing, so the memo keys on
``id(object)`` instead, which is only sound with two guards that every
call site must share:

* the entry *pins* the key object (a strong reference), so its id
  cannot be recycled while the entry exists;
* a hit re-checks ``entry is obj``, so a stale entry can never be
  served for a different object.

Cached values must describe state the object cannot change (immutable
contents, or fields fixed at construction).  When the memo grows past
its bound it is dropped wholesale — a miss recomputes, it never
mis-answers.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

__all__ = ["IdentityMemo"]


class IdentityMemo:
    """A bounded ``id(obj) -> value`` memo with object pinning.

    ``get`` returns ``None`` on a miss, so values themselves must never
    be ``None`` (true for every current use: schedule tuples, key
    tuples, bit counts).
    """

    __slots__ = ("_entries", "limit")

    def __init__(self, limit: int = 64):
        self._entries: Dict[int, Tuple[Any, Any]] = {}
        self.limit = limit

    def get(self, obj: Any) -> Optional[Any]:
        entry = self._entries.get(id(obj))
        if entry is not None and entry[0] is obj:
            return entry[1]
        return None

    def put(self, obj: Any, value: Any) -> Any:
        entries = self._entries
        if len(entries) >= self.limit:
            entries.clear()
        entries[id(obj)] = (obj, value)
        return value

    def get_or_compute(self, obj: Any, factory: Callable[[], Any]) -> Any:
        value = self.get(obj)
        if value is None:
            value = self.put(obj, factory())
        return value
