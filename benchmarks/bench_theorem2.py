"""EXP-TH2 — Theorem 2 kernels: O(f²k² + fk log* W) fractional packing."""

from __future__ import annotations

import pytest

from conftest import once
from repro.analysis.bounds import fractional_packing_rounds_exact
from repro.analysis.verify import check_fractional_packing
from repro.baselines.exact import exact_min_set_cover
from repro.core.set_cover import set_cover_f_approx
from repro.graphs.setcover import random_instance

CASES = [
    (1, 2),
    (2, 2),
    (2, 3),
    (3, 2),
]


@pytest.mark.parametrize("f,k", CASES, ids=[f"f{f}k{k}" for f, k in CASES])
def test_th2a_fk_scaling(benchmark, f, k):
    inst = random_instance(
        n_subsets=2 * k + 2, n_elements=3 * k, k=k, f=f, W=4, seed=f * 10 + k
    )
    res = once(benchmark, set_cover_f_approx, inst)
    assert res.is_cover()
    assert res.rounds == fractional_packing_rounds_exact(inst.f, inst.k, inst.W)
    check_fractional_packing(inst, res.y).require()
    opt, _ = exact_min_set_cover(inst)
    assert res.cover_weight <= inst.f * opt


def test_th2_rounds_quadratic_shape():
    """Pure formula check (no timing): rounds track (D+1)^2."""
    r22 = fractional_packing_rounds_exact(2, 2, 1)
    r24 = fractional_packing_rounds_exact(2, 4, 1)
    # D goes 2 -> 6: (D+1)^2 goes 9 -> 49; ratio should be near 49/9
    assert 3.0 < r24 / r22 < 8.0


def test_th2_full_harness(benchmark):
    from repro.experiments.exp_theorem2 import run_fk_grid

    table = once(benchmark, run_fk_grid, 2, 3)
    assert all(table.column("f-approx holds"))
