"""Port-numbering strategies.

The validity of the paper's algorithms never depends on *which* port
numbering a graph carries — only their exact outputs do.  The tests
exploit this: correctness invariants must hold under canonical, random,
and adversarial numberings alike.

The :func:`symmetric_complete_bipartite` assignment realises Figure 3
of the paper: a port numbering of ``K_{p,p}`` invariant under a cyclic
automorphism, so every left node has exactly the same local view.
Any deterministic port-numbering algorithm is then forced to make the
same decision at every left node, which yields the ``p = min{f, k}``
lower bound of Section 6.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.graphs.topology import PortNumberedGraph

__all__ = [
    "canonical_ports",
    "random_ports",
    "reversed_ports",
    "symmetric_complete_bipartite",
    "symmetric_cycle",
]


def canonical_ports(graph: PortNumberedGraph) -> PortNumberedGraph:
    """Re-number ports so every node lists neighbours in index order."""
    order = [sorted(graph.neighbours(v)) for v in graph.nodes()]
    return graph.with_neighbour_order(order)


def random_ports(graph: PortNumberedGraph, seed: int = 0) -> PortNumberedGraph:
    """Shuffle every node's port order independently (seeded)."""
    rng = random.Random(f"ports:{seed}")
    order: List[List[int]] = []
    for v in graph.nodes():
        nbrs = list(graph.neighbours(v))
        rng.shuffle(nbrs)
        order.append(nbrs)
    return graph.with_neighbour_order(order)


def reversed_ports(graph: PortNumberedGraph) -> PortNumberedGraph:
    """Reverse every node's port order (deterministic adversary)."""
    order = [list(reversed(graph.neighbours(v))) for v in graph.nodes()]
    return graph.with_neighbour_order(order)


def symmetric_complete_bipartite(p: int) -> PortNumberedGraph:
    """``K_{p,p}`` with the cyclically symmetric port numbering of Fig. 3.

    Left nodes are ``0..p-1``, right nodes ``p..2p-1``.  Left node ``i``
    uses port ``t`` (0-based) to reach right node ``(i + t) mod p``, and
    right node ``j`` uses port ``t`` to reach left node ``(j - t) mod p``.
    The shift ``i -> i+1 (mod p)`` on both sides is then a port-preserving
    automorphism, so all left nodes (and all right nodes) have identical
    views at every radius.
    """
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    ports: List[List[Tuple[int, int]]] = []
    for i in range(p):  # left node i
        row = []
        for t in range(p):
            j = (i + t) % p  # right partner index
            # right node p+j reaches left i on its port t' with i = (j - t') mod p
            t_back = (j - i) % p
            row.append((p + j, t_back))
        ports.append(row)
    for j in range(p):  # right node p+j
        row = []
        for t in range(p):
            i = (j - t) % p
            t_fwd = (j - i) % p
            row.append((i, t_fwd))
        ports.append(row)
    return PortNumberedGraph(ports)


def symmetric_cycle(n: int) -> PortNumberedGraph:
    """Cycle where every node's port 0 points clockwise, port 1 counter.

    A consistently *oriented* cycle: the rotation is a port-preserving
    automorphism, so anonymous deterministic algorithms cannot break
    symmetry on it (every node must produce the same output).
    """
    if n < 3:
        raise ValueError(f"cycle needs n >= 3, got {n}")
    ports = []
    for v in range(n):
        cw = (v + 1) % n
        ccw = (v - 1) % n
        # v's port 0 -> cw neighbour; at cw, this node is its ccw = port 1.
        ports.append([(cw, 1), (ccw, 0)])
    return PortNumberedGraph(ports)
