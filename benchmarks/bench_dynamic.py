#!/usr/bin/env python
"""Dynamic-session benchmark: incremental vs scratch under low churn.

Times :class:`repro.dynamic.DynamicRun` on a low-churn stream — the
workload the dirty-region warm restart exists for: a large sparse
instance (cycle, Δ=2) absorbing one random edit per batch, so each
batch's dependency ball is a small fixed-radius neighbourhood while
the scratch mode re-runs all ``n`` nodes.  Verifies the two modes stay
bit-for-bit identical (the ``tests/test_dynamic.py`` contract,
re-checked here on the benchmark workload) and records the measurement
in the ``dynamic`` section of ``BENCH_perf.json``:

    PYTHONPATH=src python benchmarks/bench_dynamic.py --update

Also times :meth:`DynamicRun.snapshot`/:meth:`DynamicRun.restore` on
the final incremental session (recorded under ``dynamic_snapshot``).

**Gate: incremental must be >=2x faster per batch** — the repaired
region is O(Δ·rounds·edits) nodes against n re-executed from scratch,
so the advantage is algorithmic, not host-dependent, and the gate runs
everywhere.  **Gate: restore must cost no more than one scratch
batch** — durability has to be cheaper than recomputation.

This script is not part of the pytest-benchmark baseline
(``bench_perf.py``); like ``bench_replay.py`` it compares two
configurations against each other rather than a hot path against
history.  ``compare.py check`` ignores the section (missing = skip);
``compare.py update`` preserves it.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.dynamic import DynamicRun, RandomChurn  # noqa: E402
from repro.graphs import families  # noqa: E402
from repro.graphs.weights import unit_weights  # noqa: E402

BASELINE = Path(__file__).with_name("BENCH_perf.json")


def churn_session(mode, n, batches, edits, seed, metering):
    """One full churn session; returns (per-batch seconds, session).

    The stream is seeded and the graph evolves identically in both
    modes, so separately-timed sessions see the same edit sequence.
    """
    session = DynamicRun.vertex_cover(
        families.cycle_graph(n), unit_weights(n), mode=mode, metering=metering
    )
    stream = RandomChurn(edits_per_batch=edits, seed=seed, max_degree=2)
    batch_seconds = 0.0
    applied = 0
    for _ in range(batches):
        batch = stream.next_batch(session.graph, session.inputs)
        if not batch:
            continue
        t0 = time.perf_counter()
        session.apply(batch)
        batch_seconds += time.perf_counter() - t0
        applied += 1
    return batch_seconds / max(1, applied), session


def assert_identical(a, b):
    assert a.outputs == b.outputs
    assert a.rounds == b.rounds
    assert a.all_halted == b.all_halted
    assert a.messages_sent == b.messages_sent
    assert a.message_bits == b.message_bits
    assert a.per_round_bits == b.per_round_bits
    assert a.states == b.states


def host_record():
    return {
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "platform": platform.system().lower(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=2048,
                        help="cycle size (default 2048)")
    parser.add_argument("--batches", type=int, default=8,
                        help="edit batches per session (default 8)")
    parser.add_argument("--edits", type=int, default=1,
                        help="edits per batch — low churn (default 1)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of repeats per mode (default 3)")
    parser.add_argument("--metering", default="none",
                        choices=["none", "counts", "bits"],
                        help="metering mode for the timed sessions "
                             "(default none: pure repair cost)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--update", action="store_true",
                        help="write the dynamic section of BENCH_perf.json")
    args = parser.parse_args(argv)

    print(f"cycle n={args.n}, {args.edits} edit(s)/batch x {args.batches} "
          f"batches, metering {args.metering}, best of {args.repeats}")

    timings, sessions = {}, {}
    for mode in ("incremental", "scratch"):
        best, final = float("inf"), None
        for _ in range(args.repeats):
            per_batch, session = churn_session(
                mode, args.n, args.batches, args.edits, args.seed,
                args.metering,
            )
            if per_batch < best:
                best, final = per_batch, session
        timings[mode], sessions[mode] = best, final

    assert_identical(
        sessions["incremental"].result, sessions["scratch"].result
    )
    assert sessions["incremental"].cover() == sessions["scratch"].cover()
    inc_stats = sessions["incremental"].stats
    mean_fraction = sum(s.repaired_fraction for s in inc_stats) / len(inc_stats)
    speedup = timings["scratch"] / timings["incremental"]

    record = {
        "workload": (
            f"DynamicRun vertex cover, cycle n={args.n}, RandomChurn "
            f"{args.edits} edit(s)/batch x {args.batches} batches, "
            f"metering {args.metering}"
        ),
        "incremental_s_per_batch": round(timings["incremental"], 4),
        "scratch_s_per_batch": round(timings["scratch"], 4),
        "incremental_vs_scratch_speedup": round(speedup, 2),
        "mean_repaired_fraction": round(mean_fraction, 4),
        "results_bit_identical_across_modes": True,
        "host": host_record(),
    }
    print(json.dumps({"dynamic": record}, indent=2))
    assert speedup >= 2.0, (
        f"incremental dynamic sessions should be >=2x scratch on the "
        f"low-churn stream workload; measured {speedup:.2f}x"
    )
    print("dynamic gate (>=2x vs scratch): PASS")

    # -- snapshot/restore timing ---------------------------------------
    # Durability must be cheaper than recomputing: restoring a session
    # from bytes has to beat re-solving one batch from scratch, else
    # nobody would ever snapshot.  Correctness (restored session keeps
    # absorbing edits bit-for-bit) is pinned by
    # tests/test_dynamic_snapshot.py; here we time it and gate the cost.
    session = sessions["incremental"]
    best_snap, blob = float("inf"), b""
    best_restore = float("inf")
    for _ in range(args.repeats):
        t0 = time.perf_counter()
        blob = session.snapshot()
        best_snap = min(best_snap, time.perf_counter() - t0)
        t0 = time.perf_counter()
        restored = DynamicRun.restore(blob)
        best_restore = min(best_restore, time.perf_counter() - t0)
    tail = RandomChurn(edits_per_batch=args.edits, seed=args.seed + 1,
                       max_degree=2)
    batch = tail.next_batch(session.graph, session.inputs)
    session.apply(batch)
    restored.apply(batch)
    assert_identical(session.result, restored.result)

    snapshot_record = {
        "workload": record["workload"],
        "snapshot_s": round(best_snap, 4),
        "restore_s": round(best_restore, 4),
        "snapshot_bytes": len(blob),
        "scratch_batch_s": record["scratch_s_per_batch"],
        "restored_bit_identical": True,
        "host": host_record(),
    }
    print(json.dumps({"dynamic_snapshot": snapshot_record}, indent=2))
    assert best_restore <= timings["scratch"], (
        f"restoring a snapshot should cost no more than one scratch "
        f"batch; measured restore {best_restore:.4f}s vs scratch batch "
        f"{timings['scratch']:.4f}s"
    )
    print("dynamic_snapshot gate (restore <= one scratch batch): PASS")

    if args.update:
        baseline = json.loads(BASELINE.read_text()) if BASELINE.exists() else {}
        baseline["dynamic"] = record
        baseline["dynamic_snapshot"] = snapshot_record
        BASELINE.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
        print(f"wrote dynamic + dynamic_snapshot sections -> {BASELINE}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
