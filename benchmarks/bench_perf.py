"""EXP-PERF — substrate micro-benchmarks (simulator, verify, encodings).

These are *repeated-timing* benchmarks (pytest-benchmark auto-tunes
rounds): they profile the hot paths of the simulator and the exactness
machinery, the knobs that decide how large an instance the library can
handle.

``BENCH_perf.json`` (next to this file) is the checked-in baseline;
``compare.py`` fails a run that regresses a hot path by more than 25%
against it.  See ``README.md`` here for the metering modes and how the
engine benchmarks relate.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.analysis.verify import (
    check_edge_packing,
    edge_packing_feasible_fast,
)
from repro.core.colours import encode_colour_sequence
from repro.core.edge_packing import EdgePackingMachine, maximal_edge_packing
from repro.graphs import families
from repro.graphs.weights import uniform_weights
from repro.simulator.runtime import run, run_reference, sweep
from repro._util.ordering import canonical_sorted
from repro._util.sizes import message_size_bits


@pytest.fixture(scope="module")
def medium_instance():
    g = families.random_regular(4, 128, seed=0)
    w = uniform_weights(128, 8, seed=1)
    res = maximal_edge_packing(g, w)
    return g, w, res


def test_perf_edge_packing_n128(benchmark):
    """Headline: full Section 3 run, metering on (the seed's default)."""
    g = families.random_regular(4, 128, seed=0)
    w = uniform_weights(128, 8, seed=1)
    res = benchmark.pedantic(
        maximal_edge_packing, args=(g, w), rounds=5, iterations=1
    )
    assert res.rounds > 0


def test_perf_edge_packing_n128_nometer(benchmark):
    """Headline: same run with metering off — the pure simulation cost
    (scaled-integer arithmetic, the default)."""
    g = families.random_regular(4, 128, seed=0)
    w = uniform_weights(128, 8, seed=1)
    res = benchmark.pedantic(
        lambda: maximal_edge_packing(g, w, metering="none"),
        rounds=5,
        iterations=1,
    )
    assert res.rounds > 0


def test_perf_edge_packing_n128_fraction_mode(benchmark):
    """The same run on all-Fraction transitions (arithmetic="fraction")
    — the denominator of the scaled-vs-fraction headline."""
    g = families.random_regular(4, 128, seed=0)
    w = uniform_weights(128, 8, seed=1)
    res = benchmark.pedantic(
        lambda: maximal_edge_packing(
            g, w, metering="none", arithmetic="fraction"
        ),
        rounds=5,
        iterations=1,
    )
    assert res.rounds > 0


def test_perf_fast_engine_n128(benchmark):
    """Bare fast engine (no packing assembly/cross-check) — the
    numerator workload of the engine-level speedup headline."""
    g = families.random_regular(4, 128, seed=0)
    w = uniform_weights(128, 8, seed=1)
    res = benchmark.pedantic(
        lambda: run(
            g,
            EdgePackingMachine(),
            inputs=list(w),
            globals_map={"delta": 4, "W": 8},
            metering="none",
        ),
        rounds=5,
        iterations=1,
    )
    assert res.all_halted


def test_perf_reference_engine_n128(benchmark):
    """The executable-specification engine on the same instance — the
    denominator of the engine-level speedup."""
    g = families.random_regular(4, 128, seed=0)
    w = uniform_weights(128, 8, seed=1)
    res = benchmark.pedantic(
        lambda: run_reference(
            g,
            EdgePackingMachine(),
            inputs=list(w),
            globals_map={"delta": 4, "W": 8},
            metering="none",  # engine-vs-engine headline: meter neither side
        ),
        rounds=5,
        iterations=1,
    )
    assert res.all_halted


def test_perf_sweep_batched_n64(benchmark):
    """Batched multi-instance execution through the sweep() API."""
    instances = []
    machine = EdgePackingMachine()
    for s in range(4):
        g = families.random_regular(4, 64, seed=s)
        w = uniform_weights(64, 8, seed=s)
        instances.append(
            {"graph": g, "inputs": list(w), "globals_map": {"delta": 4, "W": 8}}
        )
    results = benchmark.pedantic(
        lambda: sweep(instances, machine, metering="none"),
        rounds=3,
        iterations=1,
    )
    assert all(r.all_halted for r in results)


def test_perf_exact_verification(benchmark, medium_instance):
    g, w, res = medium_instance
    check = benchmark(lambda: check_edge_packing(g, w, res.y))
    assert check.ok


def test_perf_float_verification(benchmark, medium_instance):
    g, w, res = medium_instance
    y_float = [float(res.y[e]) for e in range(g.m)]
    ok = benchmark(lambda: edge_packing_feasible_fast(g, w, y_float))
    assert ok


def test_perf_colour_encoding(benchmark):
    delta, W = 6, 64
    from repro._util.rationals import factorial

    scale = factorial(delta) ** delta
    seq = [Fraction(i * 17 % (W * scale) + 1, scale) for i in range(delta)]
    code = benchmark(lambda: encode_colour_sequence(seq, delta, W))
    assert code > 0


def test_perf_canonical_sort(benchmark):
    values = [((i * 7919) % 97, Fraction(i, 3), f"s{i % 5}") for i in range(200)]
    out = benchmark(lambda: canonical_sorted(values))
    assert len(out) == 200


def test_perf_message_size_metering(benchmark):
    history = tuple(
        (Fraction(i, 3), ("wcv", i, i % 7, Fraction(i + 1, 2))) for i in range(300)
    )
    bits = benchmark(lambda: message_size_bits(history))
    assert bits > 0


def test_perf_message_experiment(benchmark):
    from repro.experiments.exp_messages import run

    table = benchmark.pedantic(run, kwargs={"n": 6}, rounds=3, iterations=1)
    assert len(table.rows) == 3
