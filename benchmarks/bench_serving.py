#!/usr/bin/env python
"""Serving-host benchmark: O(dirty) batches, multiplexed throughput.

Three phases, recorded together in the ``serving`` section of
``BENCH_perf.json``:

1. **O(dirty) overlay gate** (serial, runs everywhere).  A
   ``DynamicRun(mode="incremental")`` session on a cycle absorbs
   pre-scripted k<=8-edit batches (scripting happens *outside* the
   timed region) at two sizes a decade apart — n=10^4 and n=10^5 by
   default.  With the mutable-topology overlay and light-cone warm
   restarts, per-batch cost is O(dirty ball), not O(n): the gate
   asserts the **median** per-batch time at the large size is at most
   ``--o-dirty-ratio`` (default 3.0) times the small size's.  Medians,
   not means: a stream occasionally dirties a region whose cone
   triggers the full-solve fallback, and that legitimate O(n) outlier
   must not mask the O(dirty) steady state.

2. **In-process serving + steady-state memory** (runs everywhere).
   A ``ServingHost(workers=0)`` multiplexes ``--sessions`` sessions
   through ``--batches`` scripted waves; reports batches/sec,
   sessions/sec and the host's p50/p99 batch latency, plus the
   steady-state traced memory (tracemalloc, sessions still resident)
   per session.

3. **Pooled throughput** (needs >= 4 cores; skipped with a clear
   reason below that).  The same workload over ``--workers`` warm
   single-worker pools — the multi-core serving configuration the
   host exists for.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py --update

``--update`` rewrites only the ``serving`` section of the baseline;
``compare.py check`` treats the section as informational (missing =
skip), like the other AUX sections.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
import tracemalloc
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.dynamic import (  # noqa: E402
    DynamicRun,
    RandomChurn,
    ServingHost,
)
from repro.graphs import families  # noqa: E402
from repro.graphs.weights import unit_weights  # noqa: E402
from repro._util.parallel import retire_serve_pools  # noqa: E402

BASELINE = Path(__file__).with_name("BENCH_perf.json")
MIN_POOLED_CORES = 4


def host_record():
    return {
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "platform": platform.system().lower(),
    }


# ----------------------------------------------------------------------
# Phase 1: the O(dirty) gate
# ----------------------------------------------------------------------


def o_dirty_cell(n, k, batches, seed):
    """Median per-batch incremental apply time on a cycle of size n.

    The edit script is generated against the evolving graph *before*
    any timing starts, so the timed region is exactly
    ``session.apply`` — overlay patch + light-cone warm restart.
    """
    session = DynamicRun.vertex_cover(
        families.cycle_graph(n), unit_weights(n),
        mode="incremental", metering="none",
    )
    # Script the batches on a scratch-free twin of the session's state
    # (restore from snapshot), leaving `session` untouched until timing.
    driver = DynamicRun.restore(session.snapshot())
    stream = RandomChurn(edits_per_batch=k, seed=seed, max_degree=2)
    script = []
    while len(script) < batches:
        batch = stream.next_batch(driver.graph, driver.inputs)
        if not batch:
            continue
        driver.apply(batch)
        script.append(batch)

    times = []
    for batch in script:
        t0 = time.perf_counter()
        session.apply(batch)
        times.append(time.perf_counter() - t0)
    assert session.result == driver.result  # scripted == served, bit-for-bit
    return statistics.median(times), times


def run_o_dirty(args):
    cells = {}
    for n in (args.small_n, args.large_n):
        median_s, times = o_dirty_cell(n, args.k, args.o_dirty_batches,
                                       args.seed)
        cells[n] = median_s
        print(f"  n={n}: median {median_s * 1e3:.2f} ms/batch "
              f"(min {min(times) * 1e3:.2f}, max {max(times) * 1e3:.2f})")
    ratio = cells[args.large_n] / cells[args.small_n]
    record = {
        "workload": (
            f"incremental DynamicRun on cycle, {args.k} edits/batch x "
            f"{args.o_dirty_batches} pre-scripted batches"
        ),
        "small_n": args.small_n,
        "large_n": args.large_n,
        "median_ms_small": round(cells[args.small_n] * 1e3, 3),
        "median_ms_large": round(cells[args.large_n] * 1e3, 3),
        "large_over_small_ratio": round(ratio, 3),
        "gate_max_ratio": args.o_dirty_ratio,
    }
    assert ratio <= args.o_dirty_ratio, (
        f"O(dirty) gate: per-batch cost grew {ratio:.2f}x from n="
        f"{args.small_n} to n={args.large_n} (limit "
        f"{args.o_dirty_ratio}x) — batch application is not "
        f"n-independent"
    )
    print(f"  o_dirty gate (ratio {ratio:.2f} <= {args.o_dirty_ratio}): PASS")
    return record


# ----------------------------------------------------------------------
# Phases 2 and 3: serving throughput
# ----------------------------------------------------------------------


def script_sessions(args):
    """Per session: (initial snapshot, scripted batches) — untimed."""
    scripts = []
    for i in range(args.sessions):
        n = args.serve_n
        g = families.cycle_graph(n)
        driver = DynamicRun.vertex_cover(
            g, unit_weights(n), mode="incremental", metering="none",
        )
        blob0 = driver.snapshot()
        stream = RandomChurn(edits_per_batch=2, seed=args.seed + i,
                             max_degree=2)
        script = []
        while len(script) < args.batches:
            batch = stream.next_batch(driver.graph, driver.inputs)
            if not batch:
                continue
            driver.apply(batch)
            script.append(batch)
        scripts.append((f"s{i}", blob0, script))
    return scripts


def serve_scripts(host, scripts):
    """Open + drive all scripted sessions; returns wall seconds."""
    t0 = time.perf_counter()
    for sid, blob0, _ in scripts:
        host.open(sid, blob0)
    waves = max(len(s) for _, _, s in scripts)
    for w in range(waves):
        items = [(sid, s[w]) for sid, _, s in scripts if w < len(s)]
        host.apply_each(items)
    return time.perf_counter() - t0


def throughput_record(args, report, elapsed):
    total = report.batches_applied
    return {
        "sessions": args.sessions,
        "batches_per_session": args.batches,
        "n_per_session": args.serve_n,
        "wall_seconds": round(elapsed, 3),
        "batches_per_sec": round(total / elapsed, 2),
        "sessions_per_sec": round(args.sessions / elapsed, 2),
        "p50_batch_ms": round(report.latency_ms["p50_ms"], 3),
        "p99_batch_ms": round(report.latency_ms["p99_ms"], 3),
        "worker_recoveries": report.worker_recoveries,
    }


def run_in_process(args):
    scripts = script_sessions(args)
    tracemalloc.start()
    host = ServingHost(workers=0)
    elapsed = serve_scripts(host, scripts)
    report = host.report()
    steady_bytes, _peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    record = throughput_record(args, report, elapsed)
    record["workers"] = 0
    # sessions are still resident: this is the steady-state footprint
    record["steady_state_mb_total"] = round(steady_bytes / 1e6, 2)
    record["steady_state_kb_per_session"] = round(
        steady_bytes / 1e3 / args.sessions, 1
    )
    host.shutdown()
    print(f"  in-process: {record['batches_per_sec']} batches/s, "
          f"p99 {record['p99_batch_ms']} ms, "
          f"{record['steady_state_kb_per_session']} kB/session")
    return record


def run_pooled(args):
    cores = os.cpu_count() or 1
    if cores < MIN_POOLED_CORES:
        reason = (
            f"host has {cores} core(s); pooled serving needs >= "
            f"{MIN_POOLED_CORES} to measure real multiplexing"
        )
        print(f"  pooled: SKIPPED — {reason}")
        return {"skipped": reason}
    scripts = script_sessions(args)
    host = ServingHost(workers=args.workers)
    try:
        elapsed = serve_scripts(host, scripts)
        report = host.report()
        record = throughput_record(args, report, elapsed)
        record["workers"] = args.workers
        host.shutdown()
    finally:
        retire_serve_pools()
    print(f"  pooled x{args.workers}: {record['batches_per_sec']} batches/s, "
          f"p99 {record['p99_batch_ms']} ms")
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--small-n", type=int, default=10_000,
                        help="small size for the O(dirty) gate")
    parser.add_argument("--large-n", type=int, default=100_000,
                        help="large size for the O(dirty) gate")
    parser.add_argument("--k", type=int, default=8,
                        help="edits per batch in the O(dirty) gate (<= 8)")
    parser.add_argument("--o-dirty-batches", type=int, default=12,
                        help="scripted batches per O(dirty) cell")
    parser.add_argument("--o-dirty-ratio", type=float, default=3.0,
                        help="max allowed large/small median ratio")
    parser.add_argument("--sessions", type=int, default=16,
                        help="concurrent sessions in the serving phases")
    parser.add_argument("--batches", type=int, default=10,
                        help="batches per served session")
    parser.add_argument("--serve-n", type=int, default=512,
                        help="instance size per served session")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker pools for the pooled phase")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--skip-o-dirty", action="store_true",
                        help="skip the (slow) O(dirty) gate phase")
    parser.add_argument("--update", action="store_true",
                        help="write the serving section of BENCH_perf.json")
    args = parser.parse_args(argv)
    if args.k > 8:
        parser.error("--k must be <= 8 (the O(dirty) gate's contract)")

    record = {"host": host_record()}
    if args.skip_o_dirty:
        print("o_dirty gate: skipped (--skip-o-dirty)")
        record["o_dirty"] = {"skipped": "--skip-o-dirty"}
    else:
        print(f"o_dirty gate: cycle n={args.small_n} vs n={args.large_n}, "
              f"k={args.k}")
        record["o_dirty"] = run_o_dirty(args)
    print(f"serving: {args.sessions} sessions x {args.batches} batches, "
          f"n={args.serve_n}")
    record["in_process"] = run_in_process(args)
    record["pooled"] = run_pooled(args)

    print(json.dumps({"serving": record}, indent=2))
    if args.update:
        baseline = json.loads(BASELINE.read_text()) if BASELINE.exists() else {}
        baseline["serving"] = record
        BASELINE.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
        print(f"wrote serving section -> {BASELINE}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
