"""Vertex cover in the broadcast model by simulation (Section 5).

A vertex cover instance ``(G, w)`` is encoded as the fractional-packing
instance ``(H, w)`` with ``f = 2`` and ``k = Δ``: each node ``v``
becomes a subset node ``s(v)``, each edge ``e`` an element ``u(e)``.
The Section 4 algorithm ``A`` finds a maximal fractional packing of
``H`` — which *is* a maximal edge packing of ``G`` — but the elements
``u(e)`` are not physical computers.

The paper's simulation: each node ``v`` maintains ``h(v, i)``, the full
history of messages its subset node ``s(v)`` has broadcast during
``A``-rounds ``1..i``.  In every ``G``-round each node broadcasts its
entire history.  From its own history and a received neighbour history
``h(u, i-1)``, ``v`` can replay the element machine ``u(e)`` for the
edge towards that neighbour — the element's inbox at each round is
exactly ``{h(v, ·), h(u, ·)}``.  Because the broadcast model makes
``s(v)``'s transition depend only on the *multiset* of element
messages, ``v`` does not need to know which neighbour sent which
history.  Round complexity is unchanged (``O(Δ² + Δ log* W)``); message
*size* grows linearly with the round number — the trade-off the paper
points out, and which :mod:`repro.experiments.exp_section5` measures.

**Replay modes.**  The paper describes the replay as from-scratch:
at G-round ``t`` each element machine is re-simulated through all
``t`` A-rounds, making local recomputation quadratic in the round
number.  ``replay="scratch"`` implements exactly that, and is kept as
the executable reference contract.  The default
``replay="incremental"`` extends the previous round's replay instead:
a content-addressed memo (:class:`repro._util.memo.GenerationalMemo`,
keyed on the *full history contents*, so a hit is semantically
identical to a fresh replay) holds the element states of the previous
generation, and each G-round replays only the one new A-round.  The
growing history tuples are also registered with
:func:`repro._util.memo.note_extension`, so bit-metering and canonical
keying of the rebroadcast histories cost O(1) per round instead of
O(round).  Outputs, rounds, messages and metered bits are bit-for-bit
identical across modes — pinned by ``tests/test_replay_memo.py``.

One extra readout round is appended after ``A`` terminates so that
every node can also report the final packing values of its incident
elements (the covers themselves are known one round earlier).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from repro._util.memo import (
    REPLAY_INCREMENTAL,
    REPLAY_SCRATCH,
    GenerationalMemo,
    note_extension,
    validate_replay,
)
from repro._util.ordering import canonical_sorted
from repro.core.fractional_packing import (
    FractionalPackingMachine,
    fp_schedule_length,
)
from repro.simulator.machine import BROADCAST, LocalContext, Machine

__all__ = ["BroadcastVertexCoverMachine", "bvc_round_count"]


def bvc_round_count(delta: int, W: int) -> int:
    """Exact G-round count: the A-rounds plus one readout round."""
    return fp_schedule_length(2, max(1, delta), W) + 1


@dataclass
class _BVCState:
    idx: int  # current G-round == simulated A-round
    history: Tuple[Any, ...]  # messages s(v) broadcast in A-rounds 0..idx-1
    subset_state: Any  # state of s(v) after idx A-rounds
    incident: Tuple[Any, ...]  # final (y, saturated) multiset, set at readout

    def clone(self) -> "_BVCState":
        return _BVCState(self.idx, self.history, self.subset_state, self.incident)


class BroadcastVertexCoverMachine(Machine):
    """Anonymous broadcast-model machine computing a 2-approximate VC.

    Local input: the node's integer weight.  Globals: ``delta``, ``W``.
    Output: ``{"in_cover": bool, "incident": multiset of
    (y, saturated) pairs, "weight": w}``.
    """

    model = BROADCAST

    def __init__(
        self, arithmetic: str = "scaled", replay: str = REPLAY_INCREMENTAL
    ) -> None:
        # The simulated Section 4 machine inherits the arithmetic mode;
        # replayed element machines therefore use it too.
        self._inner = FractionalPackingMachine(arithmetic=arithmetic)
        self.arithmetic = self._inner.arithmetic
        self.replay = validate_replay(replay)
        # Content-addressed memo of element replays: generation (= replay
        # length) -> {(k, W, own_history, nbr_history): element state}.
        # Keys are full message contents plus the globals the element
        # machine was started with, so a hit is always semantically
        # identical to a fresh replay; evicting never changes results,
        # only wall-clock time.  Unused (None) in scratch mode.
        self._memo = GenerationalMemo() if replay == REPLAY_INCREMENTAL else None

    def with_replay(self, replay: str) -> "BroadcastVertexCoverMachine":
        validate_replay(replay)
        if replay == self.replay:
            return self
        return BroadcastVertexCoverMachine(
            arithmetic=self.arithmetic, replay=replay
        )

    # -- contexts for the simulated H-nodes ------------------------------

    @staticmethod
    def _h_globals(ctx: LocalContext) -> Dict[str, int]:
        delta = ctx.require_global("delta")
        return {"f": 2, "k": max(1, delta), "W": ctx.require_global("W")}

    def _subset_ctx(self, ctx: LocalContext) -> LocalContext:
        return LocalContext(
            degree=ctx.degree,
            input={"role": "subset", "weight": ctx.input},
            globals=self._h_globals(ctx),
        )

    def _element_ctx(self, ctx: LocalContext) -> LocalContext:
        return LocalContext(
            degree=2, input={"role": "element"}, globals=self._h_globals(ctx)
        )

    def _total_a_rounds(self, ctx: LocalContext) -> int:
        g = self._h_globals(ctx)
        return fp_schedule_length(g["f"], g["k"], g["W"])

    # -- lifecycle -------------------------------------------------------

    def start(self, ctx: LocalContext) -> _BVCState:
        w = ctx.input
        if not isinstance(w, int) or isinstance(w, bool) or w < 1:
            raise ValueError(f"node weight must be a positive int, got {w!r}")
        subset_state = self._inner.start(self._subset_ctx(ctx))
        return _BVCState(idx=0, history=(), subset_state=subset_state, incident=())

    def halted(self, ctx: LocalContext, state: _BVCState) -> bool:
        return state.idx > self._total_a_rounds(ctx)

    def output(self, ctx: LocalContext, state: _BVCState) -> Dict[str, Any]:
        return {
            "in_cover": self._inner.output(self._subset_ctx(ctx), state.subset_state)[
                "in_cover"
            ],
            "incident": state.incident,
            "weight": ctx.input,
        }

    # -- communication ----------------------------------------------------

    def emit(self, ctx: LocalContext, state: _BVCState) -> Any:
        if self.halted(ctx, state):
            return None
        return state.history

    def step(
        self, ctx: LocalContext, state: _BVCState, inbox: Sequence[Any]
    ) -> _BVCState:
        total = self._total_a_rounds(ctx)
        if state.idx > total:
            return state
        st = state.clone()
        t = st.idx
        histories = [h for h in inbox if h is not None]
        if len(histories) != ctx.degree:
            raise AssertionError(
                f"expected {ctx.degree} neighbour histories, got {len(histories)}"
            )
        ectx = self._element_ctx(ctx)
        sctx = self._subset_ctx(ctx)

        if t < total:
            # Replay each incident element through t A-rounds to obtain
            # its round-t message, then advance s(v) by one A-round.
            element_msgs: List[Any] = []
            for h_u in histories:
                if len(h_u) != t:
                    raise AssertionError(
                        f"neighbour history has length {len(h_u)}, expected {t}"
                    )
                est = self._replay_element(ectx, st.history, h_u, t)
                element_msgs.append(self._inner.emit(ectx, est))
            subset_msg = self._inner.emit(sctx, st.subset_state)
            st.subset_state = self._inner.step(
                sctx, st.subset_state, tuple(canonical_sorted(element_msgs))
            )
            new_history = st.history + (subset_msg,)
            if self._memo is not None:
                # Incremental mode: let metering/keying derive the new
                # history's size/key from the old one in O(1).
                note_extension(st.history, new_history)
            st.history = new_history
        else:
            # Readout round: histories are complete; extract the final
            # element outputs (the edge packing values).
            summaries = []
            for h_u in histories:
                est = self._replay_element(ectx, st.history, h_u, total)
                out = self._inner.output(ectx, est)
                summaries.append((out["y"], out["saturated"]))
            st.incident = tuple(canonical_sorted(summaries))
        st.idx += 1
        return st

    def _replay_element(
        self,
        ectx: LocalContext,
        own_history: Sequence[Any],
        nbr_history: Sequence[Any],
        rounds: int,
    ) -> Any:
        """Re-simulate the element machine for ``rounds`` A-rounds.

        ``replay="scratch"``: the paper-literal loop — start the element
        machine fresh and step it through all ``rounds`` A-rounds.
        ``replay="incremental"``: look up the previous generation's
        state under the exact history contents and step only the one
        new A-round, so repeated replays cost one step per G-round
        instead of ``t`` steps at G-round ``t``.  Both paths produce
        identical states (the memo key is the full input).
        """
        own = tuple(own_history[:rounds])
        nbr = tuple(nbr_history[:rounds])
        memo = self._memo
        est = None
        start_tau = 0
        if memo is not None:
            # ectx.globals already are the H-globals (f, k, W); keying
            # on them keeps one machine instance safe to reuse across
            # runs with different parameters.
            g = ectx.globals
            kw = (g["k"], g["W"])
            if rounds > 0:
                prev = memo.get(rounds - 1, kw + (own[:-1], nbr[:-1]))
                if prev is not None:
                    est = prev
                    start_tau = rounds - 1
        if est is None:
            est = self._inner.start(ectx)
        for tau in range(start_tau, rounds):
            inbox = tuple(canonical_sorted((own[tau], nbr[tau])))
            est = self._inner.step(ectx, est, inbox)
        if memo is not None:
            memo.put(rounds, kw + (own, nbr), est)
        return est
