"""Shared benchmark helpers.

Benchmarks double as the experiment harness: each one times the kernel
that regenerates a paper artefact and asserts the qualitative claim on
the result, so `pytest benchmarks/ --benchmark-only` both measures and
validates.  Heavyweight kernels use ``benchmark.pedantic`` with a
single round to keep the suite's wall-clock reasonable.
"""

from __future__ import annotations


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under timing and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
