"""Maximal fractional packing in the broadcast model (Section 4).

The instance is the bipartite graph ``H = (S ∪ U, A)``: subset nodes
with weights, element nodes without input.  The algorithm maintains a
fractional packing ``y : U -> Q≥0`` (``y[s] <= w_s`` for every subset)
and an improper colouring ``c : U -> {0, ..., D}`` of the directed
multigraph ``K`` of length-2 paths between elements, where
``D = (k-1)f`` bounds the outdegree of ``K``.

Each of the ``D+1`` iterations runs:

* a **saturation phase** per colour ``i`` (Section 4.3, five broadcast
  rounds): elements announce ``y``; subsets announce residuals;
  elements of colour ``i`` that are unsaturated announce membership;
  subsets with such neighbours offer ``x_i(s) = r(s)/|U_yi(s)|``;
  members take ``p(u) = min`` offer, announce it (subsets record
  ``q_i(s) = min p``), and raise ``y(u)`` by ``p(u)``;
* a **colouring phase** (Section 4.4): unsaturated elements encode
  their ``p`` values into a χ-colouring ``c1`` of the DAG ``B`` of
  Lemma 3 (values strictly decrease along ``B``-edges), run the weak
  Cole–Vishkin reduction of Section 4.5 — each step is the two-round
  triplet relay protocol of the paper — down to the 6-colour fixpoint
  ``c2`` (see DESIGN.md "Documented deviations": the paper says 3; we
  stop at CV's natural fixpoint and let the trivial reduction absorb
  the difference at no asymptotic cost), combine ``c3 = 6c + c2``, and
  reduce back to ``D+1`` colours by eliminating colour classes one at
  a time (two broadcast rounds each).

The outdegree of every unsaturated element in ``K_yc`` drops by at
least one per iteration (each element either lost a ``B``-successor to
saturation or multicoloured one), so after ``D+1`` iterations every
element is saturated: the packing is maximal, and the saturated subset
nodes form an f-approximate minimum-weight set cover.

Round count: ``(D+1) · (5(D+1) + 2 + 2·T_wcv(χ) + 10(D+1))`` =
``O(f²k² + fk log* W)`` (Theorem 2), asserted exactly in tests.

**Arithmetic modes.**  Every ``p(u)`` is an integer multiple of
``1/(k!)^{(D+1)²}`` (the Section 4.4 denominator-control argument), so
the default ``arithmetic="scaled"`` mode runs the saturation phases on
:class:`repro._util.rationals.ScaledInt` values whose denominators
grow only as offers divide residuals (never past the bound — exceeding
it falls back to an exact :class:`~fractions.Fraction`, explicitly,
never silently).  ``arithmetic="fraction"`` keeps the original
all-``Fraction`` transitions; both modes are observably identical
(outputs, colours, metered bits), pinned by the differential suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from functools import lru_cache
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro._util.identity import IdentityMemo
from repro._util.rationals import FRACTION_ZERO, ScaledInt, factorial
from repro.core.colours import chi_fractional_packing, encode_p_value
from repro.core.cole_vishkin import (
    cv_pseudo_parent,
    cv_schedule_length,
    cv_step_colour,
)
from repro.graphs.setcover import SetCoverInstance
from repro.simulator.machine import BROADCAST, LocalContext, Machine
from repro.simulator.runtime import RunResult, run_on_setcover

__all__ = [
    "FractionalPackingMachine",
    "FractionalPackingResult",
    "build_fp_schedule",
    "fp_schedule_length",
    "fp_out_degree_bound",
    "maximal_fractional_packing",
]


def fp_out_degree_bound(f: int, k: int) -> int:
    """``D = (k-1) f``: outdegree bound of the path multigraph ``K``."""
    if f < 1 or k < 1:
        raise ValueError(f"need f >= 1 and k >= 1, got {f}, {k}")
    return (k - 1) * f


@lru_cache(maxsize=None)
def build_fp_schedule(f: int, k: int, W: int) -> Tuple[Tuple, ...]:
    """Deterministic global round schedule for the Section 4 machine."""
    if W < 1:
        raise ValueError(f"need W >= 1, got {W}")
    D = fp_out_degree_bound(f, k)
    n_colours = D + 1
    chi = chi_fractional_packing(k, W, D) + 1
    t_wcv = cv_schedule_length(chi)
    schedule: List[Tuple] = []
    for j in range(n_colours):  # iterations
        for i in range(n_colours):  # saturation phase per colour
            schedule.append(("sat_y", j, i))
            schedule.append(("sat_r", j, i))
            schedule.append(("sat_m", j, i))
            schedule.append(("sat_x", j, i))
            schedule.append(("sat_p", j, i))
        schedule.append(("sync_y", j))
        schedule.append(("sync_r", j))
        for s in range(t_wcv):
            schedule.append(("wcv_elem", j, s))
            schedule.append(("wcv_subset", j, s))
        # Trivial colour reduction: eliminate classes 6(D+1)-1 .. D+1.
        for target in range(6 * n_colours - 1, D, -1):
            schedule.append(("tr_elem", j, target))
            schedule.append(("tr_subset", j, target))
    return tuple(schedule)


def fp_schedule_length(f: int, k: int, W: int) -> int:
    """Exact number of rounds of the Section 4 machine (deterministic)."""
    return len(build_fp_schedule(f, k, W))


def fp_den_limit(f: int, k: int) -> int:
    """Denominator bound for the scaled fast path.

    The Section 4.4 argument bounds every denominator by
    ``(k!)^{(D+1)²}``; past a machine word that exact bound buys
    nothing (the representation falls back to ``Fraction`` either
    way), so it is capped at ``2^64``.
    """
    D = fp_out_degree_bound(f, k)
    phases = (D + 1) ** 2
    kf = factorial(k)
    if phases * kf.bit_length() <= 64:
        return kf ** phases
    return 1 << 64


# ----------------------------------------------------------------------
# Per-node state
# ----------------------------------------------------------------------


@dataclass
class _SubsetState:
    idx: int
    w: int
    r: Any  # residual (ScaledInt or Fraction)
    zero: Any = FRACTION_ZERO  # additive identity in this run's arithmetic
    x_by_colour: Dict[int, Any] = field(default_factory=dict)
    q_by_colour: Dict[int, Any] = field(default_factory=dict)
    wcv_relay: Tuple = ()
    tr_relay: Tuple = ()

    def clone(self) -> "_SubsetState":
        return _SubsetState(
            idx=self.idx,
            w=self.w,
            r=self.r,
            zero=self.zero,
            x_by_colour=dict(self.x_by_colour),
            q_by_colour=dict(self.q_by_colour),
            wcv_relay=self.wcv_relay,
            tr_relay=self.tr_relay,
        )


@dataclass
class _ElementState:
    idx: int
    c: int = 0  # colour in {0..D}
    y: Any = FRACTION_ZERO  # packing value (ScaledInt or Fraction)
    saturated: bool = False
    in_uyi: bool = False  # member of U_yi during the current phase
    p: Optional[Any] = None  # value from this iteration's phase
    cprime: Optional[int] = None  # weak-CV working colour
    c3: Optional[int] = None  # combined colour during trivial reduction

    def clone(self) -> "_ElementState":
        return _ElementState(
            idx=self.idx,
            c=self.c,
            y=self.y,
            saturated=self.saturated,
            in_uyi=self.in_uyi,
            p=self.p,
            cprime=self.cprime,
            c3=self.c3,
        )


class FractionalPackingMachine(Machine):
    """Section 4 algorithm; one program, role-dispatched (paper model).

    Local input: ``{"role": "subset", "weight": w}`` or
    ``{"role": "element"}``.  Globals: ``f``, ``k``, ``W``.

    ``arithmetic`` selects the exact number representation:
    ``"scaled"`` (default) keeps residuals, offers and packing values
    as :class:`ScaledInt` under the Section 4.4 denominator bound,
    ``"fraction"`` the original all-``Fraction`` transitions.  Outputs
    always report plain ``Fraction`` values.
    """

    model = BROADCAST

    ARITHMETIC_MODES = ("scaled", "fraction")

    def __init__(self, arithmetic: str = "scaled") -> None:
        if arithmetic not in self.ARITHMETIC_MODES:
            raise ValueError(
                f"arithmetic must be one of {self.ARITHMETIC_MODES}, "
                f"got {arithmetic!r}"
            )
        self.arithmetic = arithmetic
        # Schedule lookup is on the hot path of every hook; key the
        # memo by the identity of the shared per-run globals mapping.
        self._sched_cache = IdentityMemo()
        # Per-run shared additive identity (scaled mode), so every node
        # starts from the same zero object.
        self._zero_cache = IdentityMemo()

    # -- lifecycle -----------------------------------------------------

    def _zero(self, ctx: LocalContext) -> Any:
        if self.arithmetic != "scaled":
            return FRACTION_ZERO
        return self._zero_cache.get_or_compute(
            ctx.globals,
            lambda: ScaledInt(
                0,
                1,
                fp_den_limit(
                    ctx.require_global("f"), ctx.require_global("k")
                ),
            ),
        )

    def start(self, ctx: LocalContext):
        role = (ctx.input or {}).get("role")
        zero = self._zero(ctx)
        if role == "subset":
            w = ctx.input.get("weight")
            if not isinstance(w, int) or isinstance(w, bool) or w < 1:
                raise ValueError(f"subset weight must be a positive int, got {w!r}")
            if w > ctx.require_global("W"):
                raise ValueError(f"weight {w} exceeds W")
            if ctx.degree > ctx.require_global("k"):
                raise ValueError(f"subset degree {ctx.degree} exceeds k")
            r = zero + w  # w/1 in this run's arithmetic
            return _SubsetState(idx=0, w=w, r=r, zero=zero)
        if role == "element":
            if ctx.degree > ctx.require_global("f"):
                raise ValueError(f"element degree {ctx.degree} exceeds f")
            if ctx.degree == 0:
                raise ValueError("element with no subsets: instance infeasible")
            return _ElementState(idx=0, y=zero)
        raise ValueError(f"node input must declare role subset/element, got {role!r}")

    def _schedule(self, ctx: LocalContext) -> Tuple[Tuple, ...]:
        return self._sched_cache.get_or_compute(
            ctx.globals,
            lambda: build_fp_schedule(
                ctx.require_global("f"),
                ctx.require_global("k"),
                ctx.require_global("W"),
            ),
        )

    def _params(self, ctx: LocalContext) -> Tuple[int, int, int, int]:
        f = ctx.require_global("f")
        k = ctx.require_global("k")
        W = ctx.require_global("W")
        return f, k, W, fp_out_degree_bound(f, k)

    def halted(self, ctx: LocalContext, state) -> bool:
        return state.idx >= len(self._schedule(ctx))

    def output(self, ctx: LocalContext, state) -> Dict[str, Any]:
        # Outputs are the external contract: always plain Fractions,
        # whichever internal arithmetic produced them.
        if isinstance(state, _SubsetState):
            return {"role": "subset", "in_cover": not state.r, "weight": state.w}
        y = state.y
        return {
            "role": "element",
            "y": y.as_fraction() if type(y) is ScaledInt else y,
            "saturated": state.saturated,
            "colour": state.c,
        }

    # -- emit ----------------------------------------------------------

    def emit(self, ctx: LocalContext, state) -> Any:
        schedule = self._schedule(ctx)
        if state.idx >= len(schedule):
            return None
        tag = schedule[state.idx]
        kind = tag[0]
        is_subset = isinstance(state, _SubsetState)

        if kind in ("sat_y", "sync_y"):
            return None if is_subset else state.y
        if kind in ("sat_r", "sync_r"):
            return state.r if is_subset else None
        if kind == "sat_m":
            if is_subset:
                return None
            return bool(state.in_uyi)
        if kind == "sat_x":
            if is_subset:
                return state.x_by_colour.get(tag[2])
            return None
        if kind == "sat_p":
            if is_subset:
                return None
            return state.p if state.in_uyi else None
        if kind == "wcv_elem":
            if is_subset or state.saturated:
                return None
            return ("triplet", state.cprime, state.c, state.p)
        if kind == "wcv_subset":
            return state.wcv_relay if is_subset else None
        if kind == "tr_elem":
            if is_subset or state.saturated:
                return None
            return ("colour", state.c3)
        if kind == "tr_subset":
            return state.tr_relay if is_subset else None
        raise AssertionError(f"unknown schedule tag {tag!r}")

    # -- step ----------------------------------------------------------

    def step(self, ctx: LocalContext, state, inbox: Sequence[Any]):
        schedule = self._schedule(ctx)
        if state.idx >= len(schedule):
            return state
        tag = schedule[state.idx]
        st = state.clone()
        if isinstance(st, _SubsetState):
            self._subset_step(ctx, st, tag, inbox)
        else:
            self._element_step(ctx, st, tag, inbox)
        st.idx += 1
        return st

    # -- subset behaviour ----------------------------------------------

    def _subset_step(
        self, ctx: LocalContext, st: _SubsetState, tag: Tuple, inbox: Sequence[Any]
    ) -> None:
        kind = tag[0]

        if kind in ("sat_y", "sync_y"):
            total = sum((m for m in inbox if m is not None), st.zero)
            st.r = st.w - total
            if st.r < 0:
                raise AssertionError("fractional packing infeasible: y[s] > w_s")
            if kind == "sat_y" and tag[2] == 0:
                # New iteration: forget the previous iteration's offers.
                st.x_by_colour = {}
                st.q_by_colour = {}

        elif kind == "sat_m":
            i = tag[2]
            count = sum(1 for m in inbox if m is True)
            if count > 0 and st.r > 0:
                st.x_by_colour[i] = st.r / count
            # (If r == 0 the subset is saturated; its neighbours already
            # saw r == 0 in sat_r and left U_yi, so count == 0.)

        elif kind == "sat_p":
            i = tag[2]
            values = [m for m in inbox if m is not None]
            if values and i in st.x_by_colour:
                st.q_by_colour[i] = min(values)

        elif kind == "wcv_elem":
            # Build the relay set of Section 4.5 step (ii).
            relay = set()
            for m in inbox:
                if m is None:
                    continue
                _tag, cprime_v, i, p_v = m
                if st.q_by_colour.get(i) == p_v and i in st.x_by_colour:
                    relay.add(("wcv", cprime_v, i, st.x_by_colour[i]))
            st.wcv_relay = tuple(sorted(relay))

        elif kind == "tr_elem":
            colours = sorted(m[1] for m in inbox if m is not None)
            st.tr_relay = ("colours", tuple(colours))

        elif kind in ("sat_r", "sat_x", "sync_r", "wcv_subset", "tr_subset"):
            pass  # subset only talks in these rounds

        else:
            raise AssertionError(f"unknown schedule tag {tag!r}")

    # -- element behaviour -----------------------------------------------

    def _element_step(
        self, ctx: LocalContext, st: _ElementState, tag: Tuple, inbox: Sequence[Any]
    ) -> None:
        kind = tag[0]
        f, k, W, D = self._params(ctx)

        if kind in ("sat_r", "sync_r"):
            residuals = [m for m in inbox if m is not None]
            if len(residuals) != ctx.degree:
                raise AssertionError("element missed a residual broadcast")
            st.saturated = any(r == 0 for r in residuals)
            if kind == "sat_r":
                st.in_uyi = (not st.saturated) and (st.c == tag[2])
            else:
                # Iteration boundary: set up the colouring phase.
                st.in_uyi = False
                if not st.saturated:
                    if st.p is None:
                        raise AssertionError(
                            "unsaturated element reached the colouring phase "
                            "without a p-value"
                        )
                    st.cprime = encode_p_value(st.p, k, W, D)
                else:
                    st.cprime = None

        elif kind == "sat_x":
            if st.in_uyi:
                offers = [m for m in inbox if m is not None]
                if len(offers) != ctx.degree:
                    raise AssertionError(
                        "a neighbour of a U_yi member made no offer "
                        "(it must be in S'; state desync)"
                    )
                st.p = min(offers)

        elif kind == "sat_p":
            if st.in_uyi:
                st.y += st.p

        elif kind == "wcv_subset":
            if st.saturated:
                st.cprime = None
            elif st.cprime is not None:
                received = set()
                for m in inbox:
                    if m is None:
                        continue
                    received.update(m)  # each subset relays a tuple of triplets
                L = {
                    cprime_v
                    for (_tag, cprime_v, i, x) in received
                    if i == st.c and x == st.p and cprime_v != st.cprime
                }
                pseudo = min(L) if L else cv_pseudo_parent(st.cprime)
                st.cprime = cv_step_colour(st.cprime, pseudo)
                if tag[2] == self._last_wcv_step(ctx):
                    # c2 in {0..5}; combine with the old colour: c3 = 6c + c2.
                    st.c3 = 6 * st.c + st.cprime

        elif kind == "tr_subset":
            if not st.saturated:
                target = tag[2]
                if st.c3 == target:
                    banned = set()
                    for m in inbox:
                        if m is None:
                            continue
                        banned.update(c for c in m[1] if c != target)
                    st.c3 = next(
                        c for c in range(D + 1) if c not in banned
                    )
                if target == D + 1:  # last elimination of this iteration
                    if st.c3 > D:
                        raise AssertionError("trivial colour reduction incomplete")
                    st.c = st.c3

        elif kind in ("sat_y", "sync_y", "sat_m", "wcv_elem", "tr_elem"):
            pass  # element only talks in these rounds

        else:
            raise AssertionError(f"unknown schedule tag {tag!r}")

    @lru_cache(maxsize=None)
    def _last_wcv_step_cached(self, f: int, k: int, W: int) -> int:
        D = fp_out_degree_bound(f, k)
        return cv_schedule_length(chi_fractional_packing(k, W, D) + 1) - 1

    def _last_wcv_step(self, ctx: LocalContext) -> int:
        f, k, W, _D = self._params(ctx)
        return self._last_wcv_step_cached(f, k, W)


# ----------------------------------------------------------------------
# Top-level convenience API
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FractionalPackingResult:
    """A maximal fractional packing plus execution metadata."""

    instance: SetCoverInstance
    y: Tuple[Fraction, ...]  # per element
    saturated_subsets: frozenset
    rounds: int
    run: RunResult

    def packing_value(self) -> Fraction:
        """Σ_u y(u) — the dual objective (lower bound on OPT)."""
        return sum(self.y, Fraction(0))

    def cover_weight(self) -> int:
        return sum(
            self.instance.weights[s] for s in self.saturated_subsets
        )


def maximal_fractional_packing(
    instance: SetCoverInstance,
    max_rounds: Optional[int] = None,
    arithmetic: str = "scaled",
    shards: int = 1,
) -> FractionalPackingResult:
    """Run the Section 4 algorithm on a set cover instance.

    ``shards`` partitions the bipartite simulation graph across worker
    processes (see :mod:`repro.simulator.sharding`); results are
    bit-for-bit identical across shard counts.
    """
    machine = FractionalPackingMachine(arithmetic=arithmetic)
    needed = fp_schedule_length(instance.f, instance.k, instance.W)
    result = run_on_setcover(
        instance,
        machine,
        max_rounds=needed if max_rounds is None else max_rounds,
        shards=shards,
    )
    if not result.all_halted:
        raise RuntimeError(
            f"fractional packing did not halt (needs exactly {needed} rounds)"
        )
    n_s = instance.n_subsets
    y = tuple(
        result.outputs[n_s + u]["y"] for u in range(instance.n_elements)
    )
    saturated = frozenset(
        s for s in range(n_s) if result.outputs[s]["in_cover"]
    )
    return FractionalPackingResult(
        instance=instance,
        y=y,
        saturated_subsets=saturated,
        rounds=result.rounds,
        run=result,
    )
