"""EXP-TH1d — the 2-approximation guarantee, measured.

For every instance family: the measured ratio ``w(C)/OPT`` (exact
MILP optimum), the dual certificate ``w(C) <= 2 Σy`` — which certifies
the factor without any solver — and the LP relaxation value for
comparison.  The paper's claim: ratio <= 2 everywhere, with equality
only on instances whose structure forces it (e.g. symmetric cycles).
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Tuple

from repro.baselines.exact import exact_min_vertex_cover
from repro.baselines.lp import vertex_cover_lp_bound
from repro.core.vertex_cover import vertex_cover_2approx
from repro.experiments.common import ExperimentTable
from repro.graphs import families
from repro.graphs.weights import (
    adversarial_weights,
    geometric_weights,
    uniform_weights,
    unit_weights,
)

__all__ = ["run", "main"]


def _instances() -> List[Tuple[str, object, List[int]]]:
    out = []
    for name, g in [
        ("path10", families.path_graph(10)),
        ("cycle9", families.cycle_graph(9)),
        ("cycle10", families.cycle_graph(10)),
        ("star8", families.star_graph(8)),
        ("k5", families.complete_graph(5)),
        ("k33", families.complete_bipartite(3, 3)),
        ("grid3x4", families.grid_2d(3, 4)),
        ("tree2h3", families.balanced_tree(2, 3)),
        ("petersen", families.petersen_graph()),
        ("gnp14", families.gnp_random(14, 0.25, seed=5)),
        ("regular3", families.random_regular(3, 12, seed=2)),
    ]:
        out.append((f"{name}/unit", g, unit_weights(g.n)))
        out.append((f"{name}/uniform8", g, uniform_weights(g.n, 8, seed=1)))
        out.append((f"{name}/geom64", g, geometric_weights(g.n, 64, seed=2)))
        out.append((f"{name}/adversarial", g, adversarial_weights(g.n, 16)))
    return out


def run() -> ExperimentTable:
    table = ExperimentTable(
        experiment_id="EXP-TH1d",
        title="2-approximation guarantee of the Section 3 algorithm",
        columns=[
            "instance",
            "cover weight",
            "OPT",
            "ratio",
            "certificate w(C)/2Σy",
            "LP bound",
        ],
    )
    worst = Fraction(0)
    for name, g, w in _instances():
        res = vertex_cover_2approx(g, w)
        assert res.is_cover()
        opt, _ = exact_min_vertex_cover(g, w)
        ratio = Fraction(res.cover_weight, opt) if opt else Fraction(0)
        worst = max(worst, ratio)
        table.add_row(
            instance=name,
            **{
                "cover weight": res.cover_weight,
                "OPT": opt,
                "ratio": ratio,
                "certificate w(C)/2Σy": res.certificate_ratio,
                "LP bound": vertex_cover_lp_bound(g, w),
            },
        )
    table.add_note(
        f"worst measured ratio {float(worst):.4f} <= 2: "
        + ("HOLDS" if worst <= 2 else "FAILS")
    )
    table.add_note(
        "certificate column <= 1 everywhere certifies 2-approximation "
        "without any solver (Bar-Yehuda–Even duality)"
    )
    return table


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
