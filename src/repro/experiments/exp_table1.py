"""EXP-T1 — Table 1: comparison of fast distributed VC algorithms.

The paper's Table 1 compares prior distributed vertex cover algorithms
along four axes: deterministic?, weighted?, approximation factor, and
running time (with its dependence on n).  Those are *claims from the
literature*; this experiment re-measures them for every algorithm we
implement, on a shared instance battery over the same simulator:

* measured worst-case approximation ratio against the exact optimum;
* measured rounds on a small and a large cycle (Δ fixed): equality
  means the running time is independent of n — the paper's hallmark;
* whether unique identifiers are required (anonymous column).

The headline row to check: *this work* is deterministic, weighted,
2-approximate, anonymous, and its round count does not move when n
quadruples.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, List, Optional, Tuple

from repro.baselines.exact import exact_min_vertex_cover
from repro.baselines.kvy import vertex_cover_kvy
from repro.baselines.matching import (
    maximal_matching_with_ids,
    randomised_maximal_matching,
)
from repro.baselines.ps3approx import vertex_cover_3approx_ps
from repro.core.vertex_cover import vertex_cover_2approx, vertex_cover_broadcast
from repro.experiments.common import ExperimentTable
from repro.graphs import families
from repro.graphs.weights import uniform_weights, unit_weights

__all__ = ["run", "main"]


def _battery() -> List[Tuple[str, object]]:
    return [
        ("path8", families.path_graph(8)),
        ("cycle9", families.cycle_graph(9)),
        ("star6", families.star_graph(6)),
        ("petersen", families.petersen_graph()),
        ("grid3x4", families.grid_2d(3, 4)),
        ("gnp12", families.gnp_random(12, 0.3, seed=1)),
    ]


def _max_ratio(solve: Callable, weighted: bool) -> Fraction:
    """Worst measured cover-weight / OPT over the battery."""
    worst = Fraction(0)
    for _name, g in _battery():
        w = uniform_weights(g.n, 8, seed=3) if weighted else unit_weights(g.n)
        cover_weight = solve(g, w)
        opt, _ = exact_min_vertex_cover(g, w)
        if opt == 0:
            continue
        worst = max(worst, Fraction(cover_weight, opt))
    return worst


def run(n_small: int = 16, n_large: int = 64) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id="EXP-T1",
        title="Table 1 re-measured: distributed vertex cover algorithms",
        columns=[
            "algorithm",
            "deterministic",
            "weighted",
            "anonymous",
            "guarantee",
            "measured max ratio",
            f"rounds cycle n={n_small}",
            f"rounds cycle n={n_large}",
            "rounds depend on n",
        ],
    )
    small = families.cycle_graph(n_small)
    large = families.cycle_graph(n_large)

    # --- this work, Section 3 (port numbering) -------------------------
    def solve_s3(g, w):
        res = vertex_cover_2approx(g, w)
        assert res.is_cover()
        return res.cover_weight

    r_small = vertex_cover_2approx(small, unit_weights(n_small)).rounds
    r_large = vertex_cover_2approx(large, unit_weights(n_large)).rounds
    table.add_row(
        algorithm="this work §3 (edge packing)",
        deterministic=True,
        weighted=True,
        anonymous=True,
        guarantee="2",
        **{
            "measured max ratio": _max_ratio(solve_s3, weighted=True),
            f"rounds cycle n={n_small}": r_small,
            f"rounds cycle n={n_large}": r_large,
            "rounds depend on n": r_small != r_large,
        },
    )

    # --- this work, Section 5 (broadcast) ------------------------------
    def solve_s5_cycles_only(g, w):
        res = vertex_cover_broadcast(g, w)
        assert res.is_cover()
        return res.cover_weight

    rb_small = vertex_cover_broadcast(small, unit_weights(n_small)).rounds
    rb_large = vertex_cover_broadcast(large, unit_weights(n_large)).rounds
    # ratio measured on the low-degree part of the battery (the broadcast
    # simulation is faithful but slow on high-degree graphs)
    worst_b = Fraction(0)
    for name, g in _battery():
        if g.max_degree > 3:
            continue
        w = uniform_weights(g.n, 8, seed=3)
        cw = solve_s5_cycles_only(g, w)
        opt, _ = exact_min_vertex_cover(g, w)
        if opt:
            worst_b = max(worst_b, Fraction(cw, opt))
    table.add_row(
        algorithm="this work §5 (broadcast sim.)",
        deterministic=True,
        weighted=True,
        anonymous=True,
        guarantee="2",
        **{
            "measured max ratio": worst_b,
            f"rounds cycle n={n_small}": rb_small,
            f"rounds cycle n={n_large}": rb_large,
            "rounds depend on n": rb_small != rb_large,
        },
    )

    # --- Polishchuk–Suomela 3-approx [30] -------------------------------
    def solve_ps(g, w):
        res = vertex_cover_3approx_ps(g)
        assert res.is_cover()
        return sum(w[v] for v in res.cover)

    ps_small = vertex_cover_3approx_ps(small).rounds
    ps_large = vertex_cover_3approx_ps(large).rounds
    table.add_row(
        algorithm="Polishchuk–Suomela [30]",
        deterministic=True,
        weighted=False,
        anonymous=True,
        guarantee="3",
        **{
            "measured max ratio": _max_ratio(solve_ps, weighted=False),
            f"rounds cycle n={n_small}": ps_small,
            f"rounds cycle n={n_large}": ps_large,
            "rounds depend on n": ps_small != ps_large,
        },
    )

    # --- Panconesi–Rizzi-style matching with unique ids [28] ------------
    def solve_ids(g, w):
        res = maximal_matching_with_ids(g)
        assert res.is_maximal()
        return sum(w[v] for v in res.matched_nodes)

    id_small = maximal_matching_with_ids(small, N=n_small).rounds
    id_large = maximal_matching_with_ids(large, N=n_large).rounds
    table.add_row(
        algorithm="matching w/ ids (PR [28] style)",
        deterministic=True,
        weighted=False,
        anonymous=False,
        guarantee="2",
        **{
            "measured max ratio": _max_ratio(solve_ids, weighted=False),
            f"rounds cycle n={n_small}": id_small,
            f"rounds cycle n={n_large}": id_large,
            "rounds depend on n": "log* n (schedule)",
        },
    )

    # --- randomised matching ([12, 17] stand-in) ------------------------
    def solve_rand(g, w):
        res = randomised_maximal_matching(g, seed=11)
        assert res.is_maximal()
        return sum(w[v] for v in res.matched_nodes)

    rnd_small = randomised_maximal_matching(small, seed=11).rounds
    rnd_large = randomised_maximal_matching(large, seed=11).rounds
    table.add_row(
        algorithm="randomised matching ([12,17]-style)",
        deterministic=False,
        weighted=False,
        anonymous=True,
        guarantee="2 (exp. O(log n) rounds)",
        **{
            "measured max ratio": _max_ratio(solve_rand, weighted=False),
            f"rounds cycle n={n_small}": rnd_small,
            f"rounds cycle n={n_large}": rnd_large,
            "rounds depend on n": rnd_small != rnd_large,
        },
    )

    # --- edge-colouring-based packing (Section 2 remark / [28]) ---------
    from repro.baselines.edge_colouring import edge_packing_from_colouring

    def solve_ec(g, w):
        res = edge_packing_from_colouring(g, w)
        assert res.is_cover()
        return res.cover_weight()

    ec_small = edge_packing_from_colouring(small, unit_weights(n_small)).rounds
    ec_large = edge_packing_from_colouring(large, unit_weights(n_large)).rounds
    table.add_row(
        algorithm="edge-colouring packing (§2/[28])",
        deterministic=True,
        weighted=True,
        anonymous=False,  # the colouring needs ids to compute distributively
        guarantee="2 (given a colouring)",
        **{
            "measured max ratio": _max_ratio(solve_ec, weighted=True),
            f"rounds cycle n={n_small}": ec_small,
            f"rounds cycle n={n_large}": ec_large,
            "rounds depend on n": "via colouring (log* n)",
        },
    )

    # --- KVY (2 + eps) [16] ---------------------------------------------
    eps = Fraction(1, 4)

    def solve_kvy(g, w):
        res = vertex_cover_kvy(g, w, epsilon=eps)
        assert res.is_cover()
        return res.cover_weight

    kvy_small = vertex_cover_kvy(small, unit_weights(n_small), epsilon=eps).rounds
    kvy_large = vertex_cover_kvy(large, unit_weights(n_large), epsilon=eps).rounds
    table.add_row(
        algorithm="KVY primal-dual (2+eps) [16]",
        deterministic=True,
        weighted=True,
        anonymous=True,
        guarantee="2/(1-eps) = 8/3",
        **{
            "measured max ratio": _max_ratio(solve_kvy, weighted=True),
            f"rounds cycle n={n_small}": kvy_small,
            f"rounds cycle n={n_large}": kvy_large,
            "rounds depend on n": kvy_small != kvy_large,
        },
    )

    # --- qualitative checks (the paper's claims) -------------------------
    s3 = table.rows[0]
    table.add_note(
        "paper claim — this work: deterministic + weighted + 2-approx + "
        f"n-independent rounds: ratio {float(s3['measured max ratio']):.3f} <= 2 "
        f"and rounds {r_small} == {r_large}: "
        + ("HOLDS" if s3["measured max ratio"] <= 2 and r_small == r_large else "FAILS")
    )
    table.add_note(
        "unique-id matching needs identifiers (anonymous = no): its schedule "
        "scales with log* of the id space, which must grow with n"
    )
    return table


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
