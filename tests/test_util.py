"""Unit and property tests for repro._util."""

from __future__ import annotations

import math
from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro._util.logstar import (
    ilog2_ceil,
    ilog2_floor,
    iterated_log_sequence,
    log_star,
)
from repro._util.ordering import canonical_key, canonical_sorted
from repro._util.rationals import (
    as_fraction,
    factorial,
    is_multiple_of,
    lcm_denominator,
)
from repro._util.sizes import message_size_bits


class TestIlog:
    @pytest.mark.parametrize(
        "n,expect", [(1, 0), (2, 1), (3, 1), (4, 2), (5, 2), (8, 3), (1023, 9), (1024, 10)]
    )
    def test_floor_values(self, n, expect):
        assert ilog2_floor(n) == expect

    @pytest.mark.parametrize(
        "n,expect", [(1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (1023, 10), (1024, 10)]
    )
    def test_ceil_values(self, n, expect):
        assert ilog2_ceil(n) == expect

    @given(st.integers(min_value=1, max_value=10**40))
    def test_floor_matches_bitlength(self, n):
        assert ilog2_floor(n) == n.bit_length() - 1

    @given(st.integers(min_value=2, max_value=10**40))
    def test_ceil_bounds_log(self, n):
        c = ilog2_ceil(n)
        assert 2 ** (c - 1) < n <= 2**c

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ilog2_floor(0)
        with pytest.raises(ValueError):
            ilog2_ceil(-1)


class TestLogStar:
    @pytest.mark.parametrize(
        "n,expect",
        [
            (0, 0),
            (1, 0),
            (2, 1),
            (3, 2),
            (4, 2),
            (5, 3),
            (16, 3),
            (17, 4),
            (65536, 4),
            (65537, 5),
            (2**64, 5),
            (2**1024, 5),
        ],
    )
    def test_known_values(self, n, expect):
        assert log_star(n) == expect

    @given(st.integers(min_value=2, max_value=10**60))
    def test_monotone_step(self, n):
        # log*(n) = 1 + log*(ceil(log2 n))
        assert log_star(n) == 1 + log_star(ilog2_ceil(n))

    def test_huge_value_is_tiny(self):
        assert log_star(2 ** (2**16)) == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            log_star(-1)


class TestIteratedLogSequence:
    def test_sequence_terminates_at_one(self):
        seq = iterated_log_sequence(2**40)
        assert seq[0] == 2**40
        assert seq[-1] <= 1

    def test_length_is_logstar_plus_one(self):
        for n in (1, 2, 5, 100, 2**30, 2**100):
            assert len(iterated_log_sequence(n)) == log_star(n) + 1


class TestCanonicalOrdering:
    def test_orders_across_types(self):
        values = ["b", 3, None, True, (1, 2), Fraction(1, 2), "a", {}]
        out = canonical_sorted(values)
        assert out[0] is None
        assert out[1] is True
        assert out[2] == Fraction(1, 2)
        assert out[3] == 3

    def test_ints_and_fractions_interleave_numerically(self):
        out = canonical_sorted([2, Fraction(3, 2), 1, Fraction(5, 2)])
        assert out == [1, Fraction(3, 2), 2, Fraction(5, 2)]

    def test_nested_tuples(self):
        out = canonical_sorted([(2, 1), (1, 9), (1, 2)])
        assert out == [(1, 2), (1, 9), (2, 1)]

    def test_rejects_floats(self):
        with pytest.raises(TypeError):
            canonical_key(1.5)

    def test_dict_keys_sorted(self):
        assert canonical_key({"b": 1, "a": 2}) == canonical_key({"a": 2, "b": 1})

    @given(
        st.lists(
            st.one_of(
                st.none(),
                st.booleans(),
                st.integers(-50, 50),
                st.fractions(),
                st.text(max_size=4),
                st.tuples(st.integers(-5, 5), st.integers(-5, 5)),
            ),
            max_size=12,
        )
    )
    def test_sort_is_deterministic_and_permutation_invariant(self, values):
        import random

        shuffled = list(values)
        random.Random(1).shuffle(shuffled)
        assert canonical_sorted(values) == canonical_sorted(shuffled)


class TestRationals:
    def test_as_fraction_accepts_int_str_fraction(self):
        assert as_fraction(3) == Fraction(3)
        assert as_fraction("2/5") == Fraction(2, 5)
        assert as_fraction(Fraction(1, 7)) == Fraction(1, 7)

    def test_as_fraction_rejects_float_and_bool(self):
        with pytest.raises(TypeError):
            as_fraction(0.5)
        with pytest.raises(TypeError):
            as_fraction(True)

    def test_factorial(self):
        assert factorial(0) == 1
        assert factorial(5) == 120
        with pytest.raises(ValueError):
            factorial(-1)

    def test_is_multiple_of(self):
        assert is_multiple_of(Fraction(3, 4), Fraction(1, 4))
        assert not is_multiple_of(Fraction(1, 3), Fraction(1, 4))
        with pytest.raises(ValueError):
            is_multiple_of(1, Fraction(0))

    @given(st.integers(1, 100), st.integers(1, 30))
    def test_multiples_always_detected(self, num, den):
        unit = Fraction(1, den)
        assert is_multiple_of(num * unit, unit)

    def test_lcm_denominator(self):
        assert lcm_denominator([]) == 1
        assert lcm_denominator([Fraction(1, 4), Fraction(1, 6)]) == 12
        assert lcm_denominator([2, 3]) == 1


class TestMessageSizeBits:
    def test_none_and_bool(self):
        assert message_size_bits(None) == 1
        assert message_size_bits(True) == 1

    def test_int_grows_with_magnitude(self):
        assert message_size_bits(0) == 1
        assert message_size_bits(1) == 2
        assert message_size_bits(2**20) < message_size_bits(2**40)

    def test_fraction(self):
        assert message_size_bits(Fraction(3, 4)) == message_size_bits(3) + message_size_bits(4)

    def test_container_includes_framing(self):
        assert message_size_bits(()) > 0
        assert message_size_bits((1, 2)) > message_size_bits(1) + message_size_bits(2)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            message_size_bits(3.14)

    @given(st.lists(st.integers(-1000, 1000), max_size=10))
    def test_monotone_in_extension(self, values):
        t = tuple(values)
        assert message_size_bits(t + (7,)) > message_size_bits(t)


class TestOrderingSizesCrossCheck:
    """Every canonical_key-supported type must also be meterable, and
    the identity memo caches must never return stale answers."""

    SAMPLES = [
        None,
        True,
        False,
        0,
        -17,
        2**40,
        Fraction(3, 4),
        Fraction(-5, 7),
        "",
        "héllo",
        (),
        (1, "a", None),
        [Fraction(1, 2), (True,)],
        {"k": 1, ("t", 2): [3]},
        ((1, (2, "x")), {True: None}),
    ]

    def test_every_canonical_value_is_meterable(self):
        from repro._util.ordering import canonical_key
        from repro._util.sizes import message_size_bits

        for value in self.SAMPLES:
            canonical_key(value)  # must not raise
            assert message_size_bits(value) >= 1

    def test_both_reject_the_same_unsupported_types(self):
        from repro._util.ordering import canonical_key
        from repro._util.sizes import message_size_bits

        for bad in (1.5, {1, 2}, object()):
            with pytest.raises(TypeError):
                canonical_key(bad)
            with pytest.raises(TypeError):
                message_size_bits(bad)

    def test_dict_payloads_metered_structurally(self):
        from repro._util.sizes import message_size_bits

        assert message_size_bits({"a": 1}) > message_size_bits("a") + message_size_bits(1)
        assert message_size_bits({}) == message_size_bits(())

    def test_memo_repeated_and_mutable_payloads(self):
        from repro._util.ordering import canonical_key
        from repro._util.sizes import message_size_bits

        frozen = (Fraction(1, 2), ("wcv", 3), "s")
        first = message_size_bits(frozen)
        assert message_size_bits(frozen) == first  # memo hit
        assert canonical_key(frozen) == canonical_key(frozen)

        # A tuple holding a *mutable* list must never be served stale.
        inner = [1]
        mixed = (inner, 5)
        before_bits = message_size_bits(mixed)
        before_key = canonical_key(mixed)
        inner.append(2**30)
        assert message_size_bits(mixed) > before_bits
        assert canonical_key(mixed) != before_key

    def test_memo_distinguishes_equal_but_differently_typed_values(self):
        from repro._util.sizes import message_size_bits

        # True == 1 and Fraction(1) == 1, but their structural sizes
        # differ; the caches must not conflate them.
        assert message_size_bits((True,)) != message_size_bits((1,))
        assert message_size_bits((Fraction(1),)) != message_size_bits((1,))
