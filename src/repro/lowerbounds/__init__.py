"""Lower-bound constructions of Section 6 of the paper."""

from repro.lowerbounds.symmetric import (
    symmetric_lower_bound_demo,
    trivial_algorithm_port_sensitivity,
)
from repro.lowerbounds.cycle_reduction import (
    adversarial_increasing_ids,
    cycle_setcover_instance,
    extract_independent_set,
    is_independent_in_cycle,
    local_max_independent_set,
    optimal_cycle_cover_size,
)

__all__ = [
    "adversarial_increasing_ids",
    "cycle_setcover_instance",
    "extract_independent_set",
    "is_independent_in_cycle",
    "local_max_independent_set",
    "optimal_cycle_cover_size",
    "symmetric_lower_bound_demo",
    "trivial_algorithm_port_sensitivity",
]
