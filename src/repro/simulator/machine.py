"""The node-program abstraction.

A :class:`Machine` is a *pure* Mealy machine describing the behaviour
of one node.  Keeping machines pure (all per-node data lives in an
explicit state value, methods have no side effects) is not just a
style choice: Section 5 of the paper *simulates* the Section 4
machines inside another machine, re-running them from recorded message
histories every round — which is only possible when transition
functions are replayable.

Anonymity is enforced structurally: a machine only ever receives a
:class:`LocalContext` (degree, local input, global parameters, an
optional seeded RNG) and its inbox.  Node identifiers exist solely in
the runtime.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from repro._util.memo import validate_replay

__all__ = ["PORT_NUMBERING", "BROADCAST", "LocalContext", "Machine"]

PORT_NUMBERING = "port-numbering"
BROADCAST = "broadcast"


@dataclass(frozen=True)
class LocalContext:
    """Everything a node is allowed to know about itself.

    Attributes
    ----------
    degree:
        the node's degree (both models let a node count its ports /
        incident links).
    input:
        the node's local input — e.g. its weight ``w_v`` for vertex
        cover, or the role/weight dict for set cover instances.  May be
        ``None``.
    globals:
        network-wide parameters every node knows (the paper's Δ, W or
        f, k, W).  A read-only mapping.
    rng:
        a seeded per-node random generator, present only when the
        runtime was given a seed.  Deterministic algorithms must not
        use it; randomised baselines may.
    """

    degree: int
    input: Any = None
    globals: Mapping[str, Any] = field(default_factory=dict)
    rng: Optional[random.Random] = None

    def require_global(self, name: str) -> Any:
        try:
            return self.globals[name]
        except KeyError:
            raise KeyError(
                f"machine requires global parameter {name!r}; provided: "
                f"{sorted(self.globals)}"
            ) from None


class Machine:
    """Base class for node programs.

    Subclasses override the four hooks below.  ``model`` declares which
    communication model the machine is written for; the runtime refuses
    to run a machine under the wrong model.

    Hook contract (all *pure* — no mutation of ``self`` or arguments):

    ``start(ctx) -> state``
        initial state, computed before the first round.
    ``emit(ctx, state) -> message | Sequence[message]``
        in the broadcast model: one message (any canonical value, see
        :mod:`repro._util.ordering`); in the port-numbering model: a
        sequence of ``ctx.degree`` messages, entry ``p`` travelling out
        of port ``p``.  ``None`` entries mean "send nothing" (counted
        as silence, not as a message).
    ``step(ctx, state, inbox) -> state``
        state transition after receiving.  In the port-numbering model
        ``inbox[p]`` is the message that arrived through port ``p``; in
        the broadcast model ``inbox`` is a canonically sorted tuple —
        the multiset of neighbours' messages, stripped of any sender
        information.  The port-model inbox is a runtime-owned buffer
        reused between rounds: copy it if the state must retain it
        (purity already forbids aliasing mutable arguments).
    ``halted(ctx, state) -> bool``
        whether this node has terminated.  Once a node halts its state
        is frozen and the node is *silent*: the runtime stops calling
        ``emit`` and its neighbours read ``None`` on the shared links.
        The runtime stops when every node has halted.
    ``output(ctx, state) -> Any``
        the node's final (or current) output.

    **Optional quiescence protocol** (a pure optimisation; the
    reference engine ignores it, which is what makes the equivalence
    suite meaningful).  A machine may additionally implement

    ``quiescent(ctx, state) -> bool``
        promise that from ``state`` until the node halts, ``emit``
        returns ``None`` every round and ``step`` ignores its inbox
        entirely (the successor depends on the state alone);
    ``fast_forward(ctx, state, max_elapsed) -> (state', elapsed)``
        the state after ``elapsed <= max_elapsed`` such no-op rounds,
        stopping early exactly when the node halts.

    The fast engine uses these to park provably-passive nodes and skip
    their per-round hook calls; observable results (outputs, rounds,
    message and bit counts, final states) are identical by contract.

    **Optional replay protocol.**  Machines that re-derive simulated
    state every round (the Section 5 history machine, the
    self-stabilising transformer) accept a ``replay`` mode —
    ``"incremental"`` (content-addressed reuse of the previous round's
    work, see :mod:`repro._util.memo`) or ``"scratch"`` (the
    paper-literal recompute-everything reference).  ``with_replay``
    lets the runtime apply a run-level ``replay=`` argument uniformly:
    replay-aware machines return a reconfigured copy (with a fresh
    memo), all others validate the mode and return themselves
    unchanged — the knob is a pure optimisation and means nothing to a
    machine that never replays.
    """

    model: str = PORT_NUMBERING

    def with_replay(self, replay: str) -> "Machine":
        """A machine configured for ``replay``; ``self`` if not replay-aware."""
        validate_replay(replay)
        return self

    def start(self, ctx: LocalContext) -> Any:
        raise NotImplementedError

    def emit(self, ctx: LocalContext, state: Any) -> Any:
        raise NotImplementedError

    def step(self, ctx: LocalContext, state: Any, inbox: Sequence[Any]) -> Any:
        raise NotImplementedError

    def halted(self, ctx: LocalContext, state: Any) -> bool:
        raise NotImplementedError

    def output(self, ctx: LocalContext, state: Any) -> Any:
        raise NotImplementedError
