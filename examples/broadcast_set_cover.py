#!/usr/bin/env python
"""Scenario: service placement with single-channel radios (broadcast model).

A fleet of candidate *servers* can each host a service for a bounded
set of *clients* (at most k per server); each client is reachable by
at most f servers; hosting has a per-server cost.  Every client must
be served: a weighted set cover problem, laid out as the bipartite
network of Section 1.2.

The hardware twist: the radios are single-channel — a node can only
broadcast one message to all neighbours and receives an unordered
multiset of replies (the paper's broadcast model, strictly weaker than
port numbering).  The Section 4 algorithm still computes an
f-approximate cover deterministically, in O(f²k² + fk log* W) rounds,
with no identifiers and no port numbers.

Run:  python examples/broadcast_set_cover.py
"""

from repro import set_cover_f_approx
from repro.analysis.verify import check_fractional_packing
from repro.baselines.exact import exact_min_set_cover
from repro.baselines.sequential import greedy_set_cover
from repro.baselines.trivial import set_cover_k_approx_trivial
from repro.graphs.setcover import random_instance


def main() -> None:
    instance = random_instance(
        n_subsets=8, n_elements=14, k=3, f=2, W=9, seed=42
    )
    print(
        f"servers={instance.n_subsets} clients={instance.n_elements} "
        f"k={instance.k} f={instance.f} W={instance.W}"
    )

    # --- the paper's distributed f-approximation -----------------------
    result = set_cover_f_approx(instance)
    assert result.is_cover()
    check_fractional_packing(instance, result.y).require()
    print(f"\nSection 4 algorithm (broadcast model):")
    print(f"  rounds:            {result.rounds}")
    print(f"  servers selected:  {sorted(result.cover)}")
    print(f"  total cost:        {result.cover_weight}")
    print(f"  certificate:       {result.certificate_ratio} (<= 1 proves {instance.f}-approx)")

    # --- reference points ----------------------------------------------
    opt, opt_cover = exact_min_set_cover(instance)
    greedy_w, _ = greedy_set_cover(instance)
    trivial = set_cover_k_approx_trivial(instance)
    print(f"\nreference points:")
    print(f"  exact optimum:     {opt} (cover {sorted(opt_cover)})")
    print(f"  centralised greedy:{greedy_w}")
    print(f"  trivial k-approx:  {trivial.cover_weight} (2 rounds, needs ports)")
    print(f"\nmeasured ratio:      {result.cover_weight / opt:.3f} "
          f"(guarantee: f = {instance.f})")


if __name__ == "__main__":
    main()
