"""Verification, round-bound formulas, and anonymity/symmetry analysis."""

from repro.analysis.verify import (
    PackingCheck,
    check_edge_packing,
    check_fractional_packing,
    check_set_cover,
    check_vertex_cover,
    edge_packing_from_result,
)
from repro.analysis.bounds import (
    bvc_rounds_exact,
    edge_packing_paper_bound,
    edge_packing_rounds_exact,
    fractional_packing_paper_bound,
    fractional_packing_rounds_exact,
)
from repro.analysis.views import (
    broadcast_view_classes,
    port_view_classes,
)
from repro.analysis.symmetry import (
    automorphisms,
    is_output_automorphism_invariant,
    is_vertex_transitive,
)

__all__ = [
    "PackingCheck",
    "automorphisms",
    "broadcast_view_classes",
    "bvc_rounds_exact",
    "check_edge_packing",
    "check_fractional_packing",
    "check_set_cover",
    "check_vertex_cover",
    "edge_packing_from_result",
    "edge_packing_paper_bound",
    "edge_packing_rounds_exact",
    "fractional_packing_paper_bound",
    "fractional_packing_rounds_exact",
    "is_output_automorphism_invariant",
    "is_vertex_transitive",
    "port_view_classes",
]
