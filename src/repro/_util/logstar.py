"""Iterated logarithms and related integer helpers.

The paper states its running times in terms of ``log* W`` (the iterated
base-2 logarithm of the maximum weight) and of ``log* χ`` where ``χ``
is the size of the colour space produced in Phase I / the colouring
phases.  The definitions here follow Section 1.4 of the paper:

    ``log* n = 0``                   if ``n <= 1``,
    ``log* n = 1 + log*(log2 n)``    otherwise.

Because ``χ`` can be an astronomically large integer (for example
``(W (Δ!)^Δ)^Δ``), everything below works on exact Python integers and
never converts to floating point: ``log2`` of an ``int`` is replaced by
the *bit length*, which is ``floor(log2 n) + 1`` and therefore an upper
bound on ``log2 n``.  Using an upper bound is safe everywhere these
functions are used (they size colour-reduction schedules, which must be
*long enough*, and appear inside ``O(·)`` bounds).
"""

from __future__ import annotations

from typing import List

__all__ = [
    "ilog2_floor",
    "ilog2_ceil",
    "log_star",
    "iterated_log_sequence",
]


def ilog2_floor(n: int) -> int:
    """Exact ``floor(log2 n)`` for a positive integer ``n``."""
    if n <= 0:
        raise ValueError(f"ilog2_floor requires a positive integer, got {n!r}")
    return n.bit_length() - 1


def ilog2_ceil(n: int) -> int:
    """Exact ``ceil(log2 n)`` for a positive integer ``n``."""
    if n <= 0:
        raise ValueError(f"ilog2_ceil requires a positive integer, got {n!r}")
    return (n - 1).bit_length()


def log_star(n: int) -> int:
    """Iterated logarithm ``log* n`` (base 2), on exact integers.

    Follows the paper's definition: ``log* n = 0`` for ``n <= 1`` and
    ``1 + log*(log2 n)`` otherwise.  For non-power-of-two integers the
    intermediate ``log2`` is irrational; we round it *up* to
    ``ceil(log2 n)`` which never decreases the result by more than the
    conventional off-by-one slack of ``log*`` and keeps all arithmetic
    exact.  For every practically relevant input the result matches the
    textbook value (e.g. ``log* 2 = 1``, ``log* 16 = 3``,
    ``log* 65536 = 4``, ``log* 2^65536 = 5``).
    """
    if n < 0:
        raise ValueError(f"log_star requires a non-negative integer, got {n!r}")
    count = 0
    while n > 1:
        n = ilog2_ceil(n)
        count += 1
    return count


def iterated_log_sequence(n: int) -> List[int]:
    """The sequence ``[n, ceil(log n), ceil(log ceil(log n)), ..., <=1]``.

    Useful for building colour-reduction schedules whose length must be
    ``log*`` of the initial colour-space size.
    """
    if n < 0:
        raise ValueError(f"iterated_log_sequence requires n >= 0, got {n!r}")
    seq = [n]
    while seq[-1] > 1:
        seq.append(ilog2_ceil(seq[-1]))
    return seq
