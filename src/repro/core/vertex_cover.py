"""2-approximate minimum-weight vertex cover (Sections 1.1, 3 and 5).

The classical Bar-Yehuda–Even argument: if ``y`` is a maximal edge
packing, the saturated nodes ``C(y)`` form a vertex cover of weight at
most ``2 Σ_e y(e) <= 2 · OPT``.  The packing value is therefore a
*certificate*: ``cover_weight / (2 · packing_value) <= 1`` proves the
ratio without knowing OPT.

Two distributed constructions are provided:

* :func:`vertex_cover_2approx` — the Section 3 algorithm in the
  port-numbering model, ``O(Δ + log* W)`` rounds;
* :func:`vertex_cover_broadcast` — the Section 5 simulation in the
  (strictly weaker) broadcast model, ``O(Δ² + Δ log* W)`` rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.core.broadcast_vc import BroadcastVertexCoverMachine, bvc_round_count
from repro.core.edge_packing import EdgePackingResult, maximal_edge_packing
from repro.graphs.topology import PortNumberedGraph
from repro.graphs.weights import max_weight, validate_weights
from repro.simulator.runtime import RunResult, run_broadcast

__all__ = [
    "VertexCoverResult",
    "vertex_cover_2approx",
    "vertex_cover_broadcast",
    "broadcast_vc_job",
    "broadcast_vc_from_run",
]


@dataclass(frozen=True)
class VertexCoverResult:
    """A vertex cover with its dual certificate.

    ``certificate_ratio`` is ``cover_weight / (2 · Σ y)``; values
    ``<= 1`` certify the 2-approximation without solving the instance.
    """

    graph: PortNumberedGraph
    weights: Tuple[int, ...]
    cover: frozenset
    rounds: int
    packing_value: Fraction
    model: str
    run: RunResult

    @property
    def cover_weight(self) -> int:
        return sum(self.weights[v] for v in self.cover)

    @property
    def certificate_ratio(self) -> Fraction:
        if self.packing_value == 0:
            # No edges -> empty cover is optimal; certificate trivially 1.
            return Fraction(0) if self.cover_weight == 0 else Fraction(1)
        return Fraction(self.cover_weight) / (2 * self.packing_value)

    def is_cover(self) -> bool:
        return all(u in self.cover or v in self.cover for (u, v) in self.graph.edges)


def vertex_cover_2approx(
    graph: PortNumberedGraph,
    weights: Sequence[int],
    delta: Optional[int] = None,
    W: Optional[int] = None,
    arithmetic: str = "scaled",
    engine: str = "object",
    shards: int = 1,
) -> VertexCoverResult:
    """Section 3: 2-approximate weighted VC in the port-numbering model.

    ``engine`` selects the runtime's execution substrate (see
    :data:`repro.simulator.runtime.ENGINES`) and ``shards`` the
    intra-run partition width (see :mod:`repro.simulator.sharding`);
    results are bit-for-bit identical across engines and shard counts.
    """
    packing: EdgePackingResult = maximal_edge_packing(
        graph, weights, delta=delta, W=W, arithmetic=arithmetic,
        engine=engine, shards=shards,
    )
    return VertexCoverResult(
        graph=graph,
        weights=packing.weights,
        cover=packing.saturated,
        rounds=packing.rounds,
        packing_value=packing.packing_value(),
        model="port-numbering",
        run=packing.run,
    )


def broadcast_vc_job(
    graph: PortNumberedGraph,
    weights: Sequence[int],
    delta: Optional[int] = None,
    W: Optional[int] = None,
    arithmetic: str = "scaled",
    metering: Any = "bits",
    replay: str = "incremental",
) -> Dict[str, Any]:
    """A validated :func:`repro.simulator.runtime.run` kwargs mapping.

    Suitable as a :func:`repro.simulator.runtime.sweep` instance;
    assemble the resulting :class:`RunResult` with
    :func:`broadcast_vc_from_run`.  ``replay`` selects the history
    replay strategy of the simulation machine (``"incremental"`` /
    ``"scratch"``; identical results, see
    :mod:`repro.core.broadcast_vc`).
    """
    weights = tuple(int(w) for w in weights)
    if delta is None:
        delta = graph.max_degree
    if W is None:
        W = max_weight(weights)
    validate_weights(weights, graph.n, W)
    return {
        "graph": graph,
        "machine": BroadcastVertexCoverMachine(
            arithmetic=arithmetic, replay=replay
        ),
        "inputs": list(weights),
        "globals_map": {"delta": delta, "W": W},
        "max_rounds": bvc_round_count(delta, W),
        "metering": metering,
    }


def broadcast_vc_from_run(
    graph: PortNumberedGraph,
    weights: Sequence[int],
    result: RunResult,
) -> VertexCoverResult:
    """Assemble a :class:`VertexCoverResult` from a finished BVC run.

    Reconstructs the edge packing value from the per-node incident
    multisets (each edge's ``y`` is reported by both endpoints; summing
    all reports counts every edge twice).
    """
    weights = tuple(int(w) for w in weights)
    if not result.all_halted:
        raise RuntimeError(
            f"broadcast VC did not halt within {result.rounds} rounds"
        )
    cover = frozenset(
        v for v in graph.nodes() if result.outputs[v]["in_cover"]
    )
    double_total = sum(
        (y for v in graph.nodes() for (y, _sat) in result.outputs[v]["incident"]),
        Fraction(0),
    )
    return VertexCoverResult(
        graph=graph,
        weights=weights,
        cover=cover,
        rounds=result.rounds,
        packing_value=double_total / 2,
        model="broadcast",
        run=result,
    )


def vertex_cover_broadcast(
    graph: PortNumberedGraph,
    weights: Sequence[int],
    delta: Optional[int] = None,
    W: Optional[int] = None,
    arithmetic: str = "scaled",
    replay: str = "incremental",
) -> VertexCoverResult:
    """Section 5: 2-approximate weighted VC in the broadcast model."""
    job = broadcast_vc_job(
        graph, weights, delta=delta, W=W, arithmetic=arithmetic, replay=replay
    )
    job.pop("graph")
    machine = job.pop("machine")
    result = run_broadcast(graph, machine, **job)
    return broadcast_vc_from_run(graph, weights, result)
