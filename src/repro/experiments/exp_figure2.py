"""EXP-F2 — Figure 2: two iterations of weak colour reduction.

Figure 2 shows the Section 4.5 reduction on a small DAG with initial
colours 10, 20, ..., 90 and the invariant the paper highlights:
"dotted edges are not properly coloured; nevertheless, each node with
a positive outdegree has at least one successor with a different
colour".

This experiment runs the standalone weak reduction on that DAG,
renders the per-step colour trace, and asserts the invariant at every
step plus convergence to the Cole–Vishkin fixpoint palette.
"""

from __future__ import annotations

from typing import List

from repro.core.cole_vishkin import (
    CV_FIXPOINT_COLOURS,
    is_weak_colouring,
    weak_colour_reduction_dag,
)
from repro.experiments.common import ExperimentTable

__all__ = ["figure2_dag", "run", "main"]


def figure2_dag():
    """A 9-node DAG shaped like Figure 2 (values decrease along arrows)."""
    successors = [
        [],        # 0 (colour 10) — sink
        [0],       # 1 (20)
        [0, 1],    # 2 (30)
        [1],       # 3 (40)
        [2, 3],    # 4 (50)
        [3],       # 5 (60)
        [4],       # 6 (70)
        [4, 5],    # 7 (80)
        [6, 7],    # 8 (90)
    ]
    colours = [10, 20, 30, 40, 50, 60, 70, 80, 90]
    return successors, colours


def run() -> ExperimentTable:
    successors, colours = figure2_dag()
    final, trace = weak_colour_reduction_dag(
        successors, colours, chi=91, record_trace=True
    )
    table = ExperimentTable(
        experiment_id="EXP-F2",
        title="Figure 2: weak colour reduction trace (9-node DAG, colours 10..90)",
        columns=["step"] + [f"u{v}" for v in range(9)] + ["weak colouring"],
    )
    for step, cs in enumerate(trace):
        row = {"step": step, "weak colouring": is_weak_colouring(successors, cs)}
        row.update({f"u{v}": cs[v] for v in range(9)})
        table.add_row(**row)

    assert all(table.column("weak colouring")), "invariant broken at some step"
    assert all(0 <= c < CV_FIXPOINT_COLOURS for c in final)
    table.add_note(
        "paper claim: each positive-outdegree node keeps a differing "
        "successor at every step — HOLDS at all steps"
    )
    table.add_note(
        f"palette reduced from 90+ to {CV_FIXPOINT_COLOURS} (CV fixpoint; "
        "see DESIGN.md deviation note on 6 vs 3 colours)"
    )
    return table


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
