#!/usr/bin/env python
"""Lint: all timing in ``src/`` goes through ``repro.obs.clock``.

The observability layer (`docs/observability.md`) owns the process
clock: ``repro.obs.clock`` is the designated timer, so every timed
code path stays observable from one seam and the disabled-tracing
fast path stays honest.  This check fails the build if any file under
``src/`` outside ``src/repro/obs/`` mentions ``perf_counter`` — as a
call, an import, or an alias (the *token* is forbidden, which keeps
the check un-gameable by `from time import perf_counter as pc` style
renames of the import line itself).

Run from the repo root: ``python tools/check_no_raw_timers.py``.
Exit code 0 = clean.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"
ALLOWED = SRC / "repro" / "obs"

FORBIDDEN = "perf_counter"


def main() -> int:
    offenders: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        if ALLOWED in path.parents:
            continue
        text = path.read_text(encoding="utf-8")
        if FORBIDDEN not in text:
            continue
        for lineno, line in enumerate(text.splitlines(), start=1):
            if FORBIDDEN in line:
                rel = path.relative_to(REPO)
                offenders.append(f"{rel}:{lineno}: {line.strip()}")
    if offenders:
        print(
            f"{len(offenders)} raw timer reference(s) outside repro.obs "
            f"(use `repro.obs.clock` — see docs/observability.md):"
        )
        for off in offenders:
            print(f"  {off}")
        return 1
    print(f"ok: no {FORBIDDEN!r} references in src/ outside repro/obs/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
