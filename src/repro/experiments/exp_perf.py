"""EXP-PERF — engineering: simulator throughput and cost of exactness.

Not a paper artefact; quantifies the substrate so the other
experiments' wall-clock behaviour is interpretable:

* node-rounds/second of the port-numbering runtime as n grows, for the
  fast engine (with and without metering) and the reference engine —
  the engine-level speedup the CSR/halted-skip/metering work buys;
* cost of the Section 3 machine per node-round (exact Fractions);
* exact vs vectorised-float packing verification.

The sweep itself runs through :func:`repro.experiments.common.
parallel_map`, the experiment-side face of the batched execution API —
but always serially: the kernels time themselves with wall clocks, and
concurrent kernels contending for the GIL would inflate every number.
"""

from __future__ import annotations

from typing import List, Optional

from repro import obs
from repro.analysis.verify import check_edge_packing, edge_packing_feasible_fast
from repro.core.edge_packing import EdgePackingMachine, maximal_edge_packing
from repro.experiments.common import ExperimentTable, parallel_map
from repro.graphs import families
from repro.graphs.weights import uniform_weights
from repro.simulator.runtime import run as run_fast_engine
from repro.simulator.runtime import run_reference

__all__ = ["run", "main"]


def run(
    sizes: Optional[List[int]] = None,
    degree: int = 3,
) -> ExperimentTable:
    sizes = sizes or [32, 128, 512]
    table = ExperimentTable(
        experiment_id="EXP-PERF",
        title=f"simulator throughput, {degree}-regular graphs, W=8",
        columns=[
            "n",
            "rounds",
            "wall time (s)",
            "node-rounds/s",
            "no-meter (s)",
            "reference (s)",
            "engine speedup",
            "exact verify (s)",
            "float verify (s)",
        ],
    )

    def one(n: int) -> dict:
        g = families.random_regular(degree, n, seed=0)
        w = uniform_weights(n, 8, seed=1)
        # Pin Δ and W explicitly so all three timed runs execute the
        # exact same schedule (W defaults to max(w), which can fall
        # short of 8 on small n and shorten the schedule).
        delta, W = g.max_degree, 8
        t0 = obs.clock()
        res = maximal_edge_packing(g, w, delta=delta, W=W)
        elapsed = obs.clock() - t0

        t0 = obs.clock()
        maximal_edge_packing(g, w, delta=delta, W=W, metering="none")
        nometer_s = obs.clock() - t0

        # Engine speedup compares the bare engines — same machine,
        # same instance, metering off on both sides, no packing
        # assembly/cross-check in either numerator or denominator.
        engine_kwargs = dict(
            inputs=list(w),
            globals_map={"delta": delta, "W": W},
            metering="none",
        )
        t0 = obs.clock()
        run_fast_engine(g, EdgePackingMachine(), **engine_kwargs)
        fast_engine_s = obs.clock() - t0

        t0 = obs.clock()
        run_reference(g, EdgePackingMachine(), **engine_kwargs)
        reference_s = obs.clock() - t0

        t1 = obs.clock()
        check_edge_packing(g, w, res.y).require()
        exact_s = obs.clock() - t1

        y_float = [float(res.y[e]) for e in range(g.m)]
        t2 = obs.clock()
        assert edge_packing_feasible_fast(g, w, y_float)
        float_s = obs.clock() - t2

        return {
            "n": n,
            "rounds": res.rounds,
            "wall time (s)": elapsed,
            "node-rounds/s": n * res.rounds / max(elapsed, 1e-9),
            "no-meter (s)": nometer_s,
            "reference (s)": reference_s,
            "engine speedup": reference_s / max(fast_engine_s, 1e-9),
            "exact verify (s)": exact_s,
            "float verify (s)": float_s,
        }

    # Serial on purpose: each kernel measures wall time (see module
    # docstring), so worker overlap would corrupt the columns.
    for row in parallel_map(one, sizes):
        table.add_row(**row)
    table.add_note(
        "rounds stay constant as n grows (strict locality); wall time "
        "scales ~linearly with n at fixed Δ"
    )
    table.add_note(
        "'engine speedup' = reference engine / fast engine (metering off), "
        "same machine and instance"
    )
    return table


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
