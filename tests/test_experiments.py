"""Tests for the experiment harnesses (fast parameterisations).

Each experiment module must (a) run, (b) return a well-formed table,
(c) have its qualitative claim hold — the claims are asserted inside
the experiments themselves, so a successful run *is* the check; these
tests additionally pin the headline numbers.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.experiments.common import ExperimentTable, fmt


class TestExperimentTable:
    def test_add_and_render(self):
        t = ExperimentTable("X", "demo", ["a", "b"])
        t.add_row(a=1, b=True)
        t.add_row(a=Fraction(1, 2))
        t.add_note("note")
        text = t.render()
        assert "[X] demo" in text
        assert "yes" in text
        assert "1/2" in text
        assert "* note" in text

    def test_unknown_column_rejected(self):
        t = ExperimentTable("X", "demo", ["a"])
        with pytest.raises(KeyError):
            t.add_row(nope=1)

    def test_markdown(self):
        t = ExperimentTable("X", "demo", ["a"])
        t.add_row(a=3)
        md = t.to_markdown()
        assert "| a |" in md and "| 3 |" in md

    def test_fmt(self):
        assert fmt(True) == "yes"
        assert fmt(None) == "—"
        assert fmt(Fraction(3, 1)) == "3"
        assert fmt(0.5) == "0.500"


class TestTheorem1Experiments:
    def test_n_sweep_flat(self):
        from repro.experiments.exp_theorem1 import run_n_sweep

        t = run_n_sweep(ns=[8, 16], degree=3)
        rounds = t.column("rounds measured")
        assert rounds[0] == rounds[1]
        assert all(t.column("maximal packing"))

    def test_delta_sweep_monotone(self):
        from repro.experiments.exp_theorem1 import run_delta_sweep

        t = run_delta_sweep(deltas=[1, 2, 4])
        rounds = t.column("rounds measured")
        assert rounds == sorted(rounds)
        assert rounds[0] < rounds[-1]

    def test_w_sweep_logstar_growth(self):
        from repro.experiments.exp_theorem1 import run_w_sweep

        t = run_w_sweep(exponents=[0, 16, 256], n=8)
        rounds = t.column("rounds measured")
        assert rounds == sorted(rounds)
        # log*-like: going from W=1 to W=2^256 adds only a handful
        assert rounds[-1] - rounds[0] <= 8


class TestApproxExperiment:
    def test_runs_and_holds(self):
        from repro.experiments.exp_approx import run

        t = run()
        ratios = t.column("ratio")
        assert all(r <= 2 for r in ratios)
        assert any(r > 1 for r in ratios)  # approximation, not exact
        certs = t.column("certificate w(C)/2Σy")
        assert all(c <= 1 for c in certs)


class TestTheorem2Experiments:
    def test_fk_grid(self):
        from repro.experiments.exp_theorem2 import run_fk_grid

        t = run_fk_grid(max_f=2, max_k=2)
        assert all(t.column("f-approx holds"))
        measured = t.column("rounds measured")
        formula = t.column("rounds formula")
        assert measured == formula

    def test_n_sweep(self):
        from repro.experiments.exp_theorem2 import run_n_sweep

        t = run_n_sweep(sizes=[4, 8])
        assert len(set(t.column("rounds measured"))) == 1


class TestFigureExperiments:
    def test_figure1_asserts_paper_values(self):
        from repro.experiments.exp_figure1 import run

        t = run()
        assert all(t.column("matches"))

    def test_figure2_invariant(self):
        from repro.experiments.exp_figure2 import run

        t = run()
        assert all(t.column("weak colouring"))

    def test_figure3_tightness(self):
        from repro.experiments.exp_figure3 import run

        t = run(ps=[2, 3])
        assert all(t.column("lower bound tight"))
        assert t.column("f-approx ratio") == [2.0, 3.0]

    def test_figure4_reduction(self):
        from repro.experiments.exp_figure4 import run_reduction, run_lemma4

        t = run_reduction(cases=[(8, 2)])
        assert all(t.column("IS valid"))
        t2 = run_lemma4(n=30)
        assert t2.column("IS size")[1] == 1


class TestSection5Experiment:
    def test_equivalence_and_growth(self):
        from repro.experiments.exp_section5 import run

        t = run()
        assert all(m in (True, None) for m in t.column("cover == direct run"))
        assert all(g > 10 for g in t.column("growth factor"))

    def test_replay_modes_produce_identical_tables(self):
        from repro.experiments.exp_section5 import run

        assert run(replay="scratch").rows == run(replay="incremental").rows

    def test_sweep_workers_and_large_case(self):
        """The sweep port: thread-pooled execution and the large-n case
        (shrunk to keep the smoke test fast) match the serial run."""
        from repro.experiments.exp_section5 import run

        serial = run()
        pooled = run(n_workers=3, include_large=True, large_n=16)
        assert len(pooled.rows) == len(serial.rows) + 1
        for a, b in zip(serial.rows, pooled.rows):
            assert a == b
        large = pooled.rows[-1]
        assert large["instance"] == "cycle16/large"
        assert large["cover valid"]
        # same Δ/W as cycle5 -> identical round count at any n
        assert large["rounds measured"] == pooled.rows[1]["rounds measured"]
        assert large["growth factor"] > 10


class TestSymmetryExperiment:
    def test_invariance_fast_subset(self):
        from repro.experiments.exp_symmetry import run

        t = run(include_slow=False)
        assert all(t.column("broadcast auto-invariant"))


class TestSelfStabExperiment:
    def test_recovery(self):
        from repro.experiments.exp_selfstab import run

        t = run(rates=[0.0, 0.4], n=5)
        assert all(t.column("recovered within T"))

    def test_sweep_pool_and_replay_modes_agree(self):
        """The per-rate sweep on a thread pool, in both replay modes —
        identical tables (process backend is rejected here: the fault
        adversary's corruption counter is a parent-side effect)."""
        from repro.experiments.exp_selfstab import run

        scratch = run(rates=[0.0, 0.3], n=5, replay="scratch")
        pooled = run(rates=[0.0, 0.3], n=5, n_workers=2, replay="incremental")
        assert pooled.rows == scratch.rows

    def test_all_fault_kinds_recover(self):
        """The message-level and crash adversaries, not just state
        corruption: one row per (kind, rate), all recovered within T."""
        from repro.experiments.exp_selfstab import ACTIVE_FAULT_KINDS, run

        t = run(rates=[0.3], n=5)
        assert t.column("fault kind") == list(ACTIVE_FAULT_KINDS)
        assert all(t.column("recovered within T"))
        # every adversary actually did something at rate 0.3
        assert all(c > 0 for c in t.column("corruptions injected"))

    def test_fault_kind_subset_selectable(self):
        from repro.experiments.exp_selfstab import run

        t = run(rates=[0.0, 0.3], n=5, fault_kinds=["loss", "crash"])
        assert t.column("fault kind") == ["loss", "loss", "crash", "crash"]
        assert all(t.column("recovered within T"))


class TestPerfExperiment:
    def test_runs(self):
        from repro.experiments.exp_perf import run

        t = run(sizes=[16, 32])
        assert all(v > 0 for v in t.column("node-rounds/s"))


class TestCli:
    def test_list(self, capsys):
        from repro.experiments.cli import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "figure3" in out

    def test_unknown_experiment(self, capsys):
        from repro.experiments.cli import main

        assert main(["bogus"]) == 2

    def test_run_one(self, capsys):
        from repro.experiments.cli import main

        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "EXP-F2" in out

    def test_markdown_mode(self, capsys):
        from repro.experiments.cli import main

        assert main(["figure2", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "### EXP-F2" in out

    def test_fault_kinds_forwarded_to_selfstab(self, capsys):
        from repro.experiments.cli import main

        assert main(["selfstab", "--fault-kinds", "loss"]) == 0
        out = capsys.readouterr().out
        assert "loss" in out
        assert "duplication" not in out

    def test_bad_fault_kinds_rejected(self, capsys):
        from repro.experiments.cli import main

        assert main(["selfstab", "--fault-kinds", "meteor"]) == 2
        assert "unknown fault kinds" in capsys.readouterr().err


class TestMessagesExperiment:
    def test_tradeoffs_quantified(self):
        from repro.experiments.exp_messages import run

        t = run(n=6)
        bits = t.column("total kbits")
        # broadcast history and selfstab pipeline both cost more than §3
        assert bits[1] > bits[0]
        assert bits[2] > bits[0]
        rounds = t.column("rounds")
        assert rounds[0] == rounds[2]  # selfstab window == schedule length

    def test_sweep_workers_and_large_case(self):
        """Thread-pooled sweep matches serial, and the large-n rows
        (shrunk for the smoke test) show the same trade-off ordering."""
        from repro.experiments.exp_messages import run

        serial = run(n=6)
        pooled = run(n=6, n_workers=3, include_large=True, large_n=12)
        assert len(pooled.rows) == 6
        for a, b in zip(serial.rows, pooled.rows[:3]):
            assert a == b
        large = pooled.rows[3:]
        assert {r["instance"] for r in large} == {"cycle12"}
        assert large[1]["total kbits"] > large[0]["total kbits"]
        assert large[2]["total kbits"] > large[0]["total kbits"]
        # per-node message load of §5 grows with history length, not n:
        # rounds are identical across sizes at equal Δ, W
        assert large[1]["rounds"] == pooled.rows[1]["rounds"]


class TestScalingExperiment:
    def test_rounds_flat_messages_linear(self):
        from repro.experiments.exp_scaling import run

        t = run(ns=[32, 64])
        by_proto = {}
        for row in t.rows:
            by_proto.setdefault(row["protocol"], []).append(row)
        assert len(by_proto) == 2
        for rows in by_proto.values():
            assert len({r["rounds"] for r in rows}) == 1
            assert len({r["messages / n"] for r in rows}) == 1

    def test_process_backend_matches_serial(self):
        from repro.experiments.exp_scaling import run

        serial = run(ns=[24, 48])
        pooled = run(ns=[24, 48], n_workers=2, backend="process")
        assert serial.rows == pooled.rows

    def test_figure_data_shape(self, tmp_path):
        from repro.experiments.exp_scaling import figure_data, run, write_figure

        t = run(ns=[16, 32])
        fig = figure_data(t)
        assert set(fig["curves"]) == {
            "§3 edge packing (G)",
            "§4 fractional packing (H(G))",
        }
        for curve in fig["curves"].values():
            assert curve["n"] == [16, 32]
            assert len(curve["rounds"]) == len(curve["messages"]) == 2
        out = write_figure(t, tmp_path / "fig.json")
        import json

        assert json.loads(out.read_text())["x_axis"] == "n"


class TestCliBackendFlags:
    def test_workers_and_backend_forwarded(self, capsys):
        from repro.experiments.cli import main

        assert main(["scaling", "--workers", "2", "--backend", "auto"]) == 0
        out = capsys.readouterr().out
        assert "EXP-SCALE" in out

    def test_json_output_parses(self, capsys):
        import json

        from repro.experiments.cli import main

        assert main(["scaling", "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert records[0]["experiment"] == "scaling"
        assert records[0]["experiment_id"] == "EXP-SCALE"
        assert records[0]["rows"][0]["rounds"] == 27

    def test_backend_ignored_by_experiments_without_sweeps(self, capsys):
        from repro.experiments.cli import main

        # figure2 has no n_workers/backend parameters; flags are no-ops
        assert main(["figure2", "--workers", "2", "--backend", "process"]) == 0
        assert "EXP-F2" in capsys.readouterr().out


class TestChurnExperiment:
    def test_quality_and_repaired_fraction(self):
        from repro.experiments.exp_churn import run

        t = run(rates=[1, 3], n=96, batches=3)
        assert len(t.rows) == 2
        for row in t.rows:
            assert row["covers valid"] is True
            assert row["incremental == scratch"] is True
            assert 0.0 < row["mean repaired fraction"] <= 1.0
        assert any("HOLDS" in note for note in t.notes)

    def test_process_backend_matches_serial(self):
        from repro.experiments.exp_churn import run

        serial = run(rates=[1, 2], n=64, batches=2)
        pooled = run(rates=[1, 2], n=64, batches=2, n_workers=2, backend="process")

        def algorithmic(rows):
            # latency columns are wall clock — everything else must be
            # bit-identical between serial and pooled execution
            return [
                {k: v for k, v in row.items() if "latency" not in k}
                for row in rows
            ]

        assert algorithmic(serial.rows) == algorithmic(pooled.rows)

    def test_registered_in_cli(self, capsys):
        from repro.experiments.cli import main

        assert main(["churn", "--workers", "2"]) == 0
        assert "EXP-CHURN" in capsys.readouterr().out
