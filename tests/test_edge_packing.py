"""Integration and invariant tests for the Section 3 edge packing machine."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings, HealthCheck

from repro.analysis.bounds import edge_packing_paper_bound, edge_packing_rounds_exact
from repro.analysis.verify import check_edge_packing, check_vertex_cover
from repro.baselines.exact import exact_min_vertex_cover
from repro.baselines.sequential import bar_yehuda_even_packing
from repro.core.edge_packing import (
    build_schedule,
    maximal_edge_packing,
    schedule_length,
)
from repro.core.vertex_cover import vertex_cover_2approx
from repro.graphs import families, ports
from repro.graphs.weights import adversarial_weights, uniform_weights, unit_weights
from tests.conftest import small_graph_suite, weighted_graphs


def _check_full(graph, weights, **kwargs):
    """Run the machine and verify every paper invariant."""
    res = maximal_edge_packing(graph, weights, **kwargs)
    check_edge_packing(graph, weights, res.y).require()
    ok, uncovered = check_vertex_cover(graph, res.saturated)
    assert ok, f"saturated nodes do not cover: {uncovered}"
    # Bar-Yehuda–Even accounting: w(C) <= 2 Σ y(e)
    assert res.cover_weight() <= 2 * res.packing_value()
    return res


class TestSmallInstances:
    def test_single_edge_unit(self):
        g = families.path_graph(2)
        res = _check_full(g, [1, 1])
        assert res.y[0] == 1
        assert res.saturated == frozenset({0, 1})

    def test_single_edge_weighted(self):
        g = families.path_graph(2)
        res = _check_full(g, [2, 5])
        assert res.y[0] == 2  # limited by the lighter endpoint
        assert res.saturated == frozenset({0})

    def test_path3_picks_middle(self):
        g = families.path_graph(3)
        res = _check_full(g, [1, 1, 1])
        assert res.saturated == frozenset({1})

    def test_star_prefers_cheap_leaves(self):
        g = families.star_graph(4)
        res = _check_full(g, [100, 1, 1, 1, 1])
        assert res.saturated == frozenset({1, 2, 3, 4})

    def test_star_prefers_cheap_centre(self):
        g = families.star_graph(4)
        res = _check_full(g, [1, 100, 100, 100, 100])
        assert 0 in res.saturated
        assert res.cover_weight() <= 2 * 1  # centre weight 1, OPT = 1

    def test_triangle(self):
        g = families.complete_graph(3)
        res = _check_full(g, [1, 1, 1])
        assert len(res.saturated) >= 2  # must cover all three edges

    def test_empty_graph(self):
        g = families.empty_graph(5)
        res = _check_full(g, unit_weights(5))
        assert res.saturated == frozenset()
        assert res.y == {}

    def test_isolated_plus_edge(self):
        from repro.graphs.topology import PortNumberedGraph

        g = PortNumberedGraph.from_edges(4, [(1, 3)])
        res = _check_full(g, [5, 2, 5, 2])
        assert 0 not in res.saturated and 2 not in res.saturated


class TestGraphSuite:
    @pytest.mark.parametrize(
        "name,graph", small_graph_suite(), ids=[n for n, _ in small_graph_suite()]
    )
    def test_unit_weights(self, name, graph):
        _check_full(graph, unit_weights(graph.n))

    @pytest.mark.parametrize(
        "name,graph", small_graph_suite(), ids=[n for n, _ in small_graph_suite()]
    )
    def test_uniform_weights(self, name, graph):
        _check_full(graph, uniform_weights(graph.n, 10, seed=1))

    @pytest.mark.parametrize(
        "name,graph", small_graph_suite(), ids=[n for n, _ in small_graph_suite()]
    )
    def test_adversarial_weights(self, name, graph):
        _check_full(graph, adversarial_weights(graph.n, 16))


class TestRoundCounts:
    def test_rounds_match_exact_formula(self):
        for name, g in small_graph_suite():
            w = uniform_weights(g.n, 5, seed=0)
            res = maximal_edge_packing(g, w)
            W = max(w)
            assert res.rounds == edge_packing_rounds_exact(g.max_degree, W), name

    def test_rounds_below_paper_bound(self):
        for delta in (0, 1, 2, 3, 5, 8, 16):
            for W in (1, 2, 16, 2**16, 2**64):
                assert edge_packing_rounds_exact(delta, W) <= edge_packing_paper_bound(
                    delta, W
                ) + 8 * delta  # paper bound uses the same Δ terms; slack absorbs constants

    def test_rounds_independent_of_n(self):
        """Strict locality: rounds depend on (Δ, W) only, never on n."""
        rounds = set()
        for n in (4, 8, 16, 64):
            g = families.cycle_graph(n)
            res = maximal_edge_packing(g, unit_weights(n))
            rounds.add(res.rounds)
        assert len(rounds) == 1

    def test_rounds_grow_with_delta_param(self):
        g = families.path_graph(2)
        r1 = maximal_edge_packing(g, [1, 1], delta=1).rounds
        r2 = maximal_edge_packing(g, [1, 1], delta=6).rounds
        assert r2 > r1

    def test_schedule_structure(self):
        sched = build_schedule(2, 1)
        kinds = [t[0] for t in sched]
        assert kinds.count("p1a") == 2
        assert kinds.count("p1b") == 2
        assert kinds.count("p1_settle") == 1
        assert kinds.count("announce") == 1
        assert kinds.count("sd") == 3 and kinds.count("elim") == 3
        assert kinds.count("star_req") == 6 and kinds.count("star_rep") == 6
        assert len(sched) == schedule_length(2, 1)


class TestDeterminismAndAnonymity:
    def test_deterministic(self):
        g = families.gnp_random(10, 0.4, seed=2)
        w = uniform_weights(10, 7, seed=3)
        a = maximal_edge_packing(g, w)
        b = maximal_edge_packing(g, w)
        assert a.y == b.y and a.saturated == b.saturated

    def test_relabelling_equivariance(self):
        """Outputs must depend on the port-numbered structure only: if we
        rename nodes (ports travelling along), outputs rename with them."""
        g = families.gnp_random(9, 0.4, seed=5)
        w = uniform_weights(9, 5, seed=6)
        rng = random.Random(11)
        perm = list(range(9))
        rng.shuffle(perm)
        h = g.relabel(perm)
        w2 = [0] * 9
        for v in range(9):
            w2[perm[v]] = w[v]
        res_g = maximal_edge_packing(g, w)
        res_h = maximal_edge_packing(h, w2)
        assert {perm[v] for v in res_g.saturated} == set(res_h.saturated)
        for (u, v) in g.edges:
            e_g = g.edge_id(u, v)
            e_h = h.edge_id(perm[u], perm[v])
            assert res_g.y[e_g] == res_h.y[e_h]

    def test_valid_under_any_port_numbering(self):
        g = families.grid_2d(3, 3)
        w = uniform_weights(9, 6, seed=7)
        for variant in (
            g,
            ports.reversed_ports(g),
            ports.random_ports(g, seed=1),
            ports.random_ports(g, seed=2),
        ):
            _check_full(variant, w)

    def test_port_numbering_may_change_output(self):
        """The *solution* may differ per port numbering (only validity is
        invariant).  On an even cycle some numbering breaks symmetry."""
        g = families.cycle_graph(4)
        w = [1, 1, 1, 1]
        covers = set()
        covers.add(maximal_edge_packing(g, w).saturated)
        covers.add(
            maximal_edge_packing(ports.random_ports(g, seed=3), w).saturated
        )
        # not asserting inequality (may coincide) — but all must be valid
        for c in covers:
            ok, _ = check_vertex_cover(g, c)
            assert ok


class TestDeltaWParameters:
    def test_loose_delta_bound_still_correct(self):
        g = families.cycle_graph(5)
        _check_full(g, unit_weights(5), delta=7)

    def test_loose_w_bound_still_correct(self):
        g = families.petersen_graph()
        _check_full(g, unit_weights(10), W=2**20)

    def test_degree_exceeding_delta_rejected(self):
        g = families.star_graph(5)
        with pytest.raises(ValueError, match="exceeds"):
            maximal_edge_packing(g, unit_weights(6), delta=3)

    def test_weight_exceeding_w_rejected(self):
        g = families.path_graph(2)
        with pytest.raises(ValueError):
            maximal_edge_packing(g, [5, 1], W=3)


class TestTwoApproximation:
    @pytest.mark.parametrize(
        "name,graph",
        [(n, g) for n, g in small_graph_suite() if g.n <= 12],
        ids=[n for n, g in small_graph_suite() if g.n <= 12],
    )
    def test_ratio_at_most_two_vs_exact(self, name, graph):
        for seed in (0, 1):
            w = uniform_weights(graph.n, 8, seed=seed)
            res = maximal_edge_packing(graph, w)
            opt, _ = exact_min_vertex_cover(graph, w)
            assert res.cover_weight() <= 2 * opt, (
                f"{name}: cover {res.cover_weight()} > 2 x OPT {opt}"
            )

    def test_matches_bar_yehuda_even_quality_class(self):
        """Both are maximal packings; both must 2-approximate."""
        g = families.gnp_random(10, 0.35, seed=9)
        w = uniform_weights(10, 9, seed=10)
        y_seq, saturated_seq = bar_yehuda_even_packing(g, w)
        check_edge_packing(g, w, y_seq).require()
        res = _check_full(g, w)
        opt, _ = exact_min_vertex_cover(g, w)
        assert sum(w[v] for v in saturated_seq) <= 2 * opt
        assert res.cover_weight() <= 2 * opt


class TestPropertyBased:
    @given(weighted_graphs())
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_invariants_on_random_graphs(self, data):
        g, w, W = data
        res = maximal_edge_packing(g, w, W=W)
        check = check_edge_packing(g, w, res.y)
        assert check.feasible, check.violations
        assert check.maximal, check.violations
        ok, uncovered = check_vertex_cover(g, res.saturated)
        assert ok, uncovered
        assert res.rounds == edge_packing_rounds_exact(g.max_degree, W)
