#!/usr/bin/env python
"""Columnar vs object engine on the Section 3 edge-packing hot path.

Times :func:`repro.simulator.runtime.run` on a large unit-weight cycle
— the workload the columnar engine exists for: Phase I dominates the
object engine's wall time (2Δ+1 rounds of per-node ``emit``/``step``
calls over n nodes), while the columnar engine runs those rounds as a
handful of whole-array numpy passes and hands the cheap remainder
(every node coasts and parks) to the object engine.  Verifies the two
engines stay bit-for-bit identical on every ``RunResult`` field (the
``tests/test_columnar_engine.py`` contract, re-checked on the benchmark
workload) and records the measurement in the ``columnar`` section of
``BENCH_perf.json``:

    PYTHONPATH=src python benchmarks/bench_columnar.py --update

**Gate: columnar must be >=3x faster** at n>=4096 with metering off —
the advantage is a constant-rounds Python-loop vs vectorised-kernel
ratio over the dominant phase, not host-dependent, so the gate runs
everywhere numpy is installed.

This script is not part of the pytest-benchmark baseline
(``bench_perf.py``); like ``bench_dynamic.py`` it compares two
configurations against each other rather than a hot path against
history.  ``compare.py check`` ignores the section (missing = skip);
``compare.py update`` preserves it.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.edge_packing import edge_packing_job  # noqa: E402
from repro.graphs import families  # noqa: E402
from repro.graphs.weights import unit_weights  # noqa: E402
from repro.simulator.runtime import run  # noqa: E402
from repro.simulator.state_layout import HAVE_NUMPY  # noqa: E402

BASELINE = Path(__file__).with_name("BENCH_perf.json")


def timed_runs(graph, weights, metering, repeats):
    """Best-of-``repeats`` wall time per engine, interleaved.

    Alternating the engines inside one loop exposes both to the same
    host conditions (frequency scaling, allocator state, neighbours on
    shared runners); separate back-to-back loops routinely skew the
    ratio either way on busy hosts.  The cyclic collector is paused for
    each timed region: a run allocates tens of thousands of short-lived
    states, so gen-0/gen-2 sweeps otherwise fire mid-run at arbitrary
    points and their pauses swamp the shorter (columnar) timings.
    """
    best = {"object": float("inf"), "columnar": float("inf")}
    results = {}
    for _ in range(repeats):
        for engine in ("object", "columnar"):
            job = edge_packing_job(graph, weights, metering=metering)
            job.pop("graph")
            machine = job.pop("machine")
            gc_was_enabled = gc.isenabled()
            gc.disable()
            t0 = time.perf_counter()
            res = run(graph, machine, engine=engine, **job)
            elapsed = time.perf_counter() - t0
            if gc_was_enabled:
                gc.enable()
            gc.collect()
            if elapsed < best[engine]:
                best[engine], results[engine] = elapsed, res
    return best, results


def assert_identical(a, b):
    assert a.outputs == b.outputs
    assert a.rounds == b.rounds
    assert a.all_halted == b.all_halted
    assert a.messages_sent == b.messages_sent
    assert a.message_bits == b.message_bits
    assert a.per_round_bits == b.per_round_bits
    assert a.states == b.states


def host_record():
    return {
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "platform": platform.system().lower(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=8192,
                        help="cycle size (default 8192)")
    parser.add_argument("--repeats", type=int, default=7,
                        help="best-of interleaved repeats per engine "
                             "(default 7)")
    parser.add_argument("--metering", default="none",
                        choices=["none", "counts", "bits"],
                        help="metering mode for the timed runs "
                             "(default none: pure execution cost)")
    parser.add_argument("--update", action="store_true",
                        help="write the columnar section of BENCH_perf.json")
    args = parser.parse_args(argv)

    if not HAVE_NUMPY:
        print("numpy not installed; columnar engine unavailable — skipping")
        return 0

    graph = families.cycle_graph(args.n)
    weights = unit_weights(args.n)
    print(f"edge packing, cycle n={args.n}, unit weights, "
          f"metering {args.metering}, best of {args.repeats}")

    timings, results = timed_runs(graph, weights, args.metering, args.repeats)

    assert_identical(results["columnar"], results["object"])
    speedup = timings["object"] / timings["columnar"]

    record = {
        "workload": (
            f"edge packing, cycle n={args.n}, unit weights, "
            f"metering {args.metering}"
        ),
        "object_s": round(timings["object"], 4),
        "columnar_s": round(timings["columnar"], 4),
        "columnar_vs_object_speedup": round(speedup, 2),
        "results_bit_identical_across_engines": True,
        "host": host_record(),
    }
    print(json.dumps({"columnar": record}, indent=2))
    assert speedup >= 3.0, (
        f"the columnar engine should be >=3x the object engine on "
        f"n>={args.n} edge packing with metering off; "
        f"measured {speedup:.2f}x"
    )
    print("columnar gate (>=3x vs object): PASS")

    if args.update:
        baseline = json.loads(BASELINE.read_text()) if BASELINE.exists() else {}
        baseline["columnar"] = record
        BASELINE.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
        print(f"wrote columnar section -> {BASELINE}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
