"""Round-count formulas: exact (implementation) and asymptotic (paper).

Because the algorithms are deterministic and follow global round
schedules, the implementation has *closed-form* round counts.  The
tests assert measured rounds equal the exact formulas, and that the
exact formulas stay below the paper-shaped bounds
``O(Δ + log* W)`` / ``O(f²k² + fk log* W)`` with explicit constants.
"""

from __future__ import annotations

from repro._util.logstar import log_star
from repro.core.broadcast_vc import bvc_round_count
from repro.core.colours import chi_edge_packing, chi_fractional_packing
from repro.core.cole_vishkin import cv_schedule_length
from repro.core.edge_packing import schedule_length
from repro.core.fractional_packing import fp_out_degree_bound, fp_schedule_length

__all__ = [
    "edge_packing_rounds_exact",
    "edge_packing_paper_bound",
    "fractional_packing_rounds_exact",
    "fractional_packing_paper_bound",
    "bvc_rounds_exact",
    "cv_steps_bound",
]


def edge_packing_rounds_exact(delta: int, W: int) -> int:
    """Exactly how many rounds :class:`EdgePackingMachine` takes."""
    return schedule_length(delta, W)


def cv_steps_bound(chi: int) -> int:
    """``log*``-shaped upper bound on :func:`cv_schedule_length`.

    ``cv_schedule_length(χ) <= log*(χ) + 4`` — asserted empirically
    over a wide χ range in the tests; the ``+4`` absorbs the last few
    constant-size palette reductions.
    """
    return log_star(chi) + 4


def edge_packing_paper_bound(delta: int, W: int) -> int:
    """Explicit-constant version of Theorem 1's ``O(Δ + log* W)``.

    Our schedule is ``(2Δ+1) + 1 + T_cv + 6 + 6Δ``; with
    ``T_cv <= log* χ + 4`` and ``log* χ <= log* W + log* Δ + 4``
    (Theorem 1's proof shows ``log log χ <= 4 log M``,
    ``M = max(W, Δ, 4)``), the whole thing is at most
    ``8Δ + log* W + log* Δ + 16``.
    """
    return 8 * delta + log_star(W) + log_star(max(delta, 1)) + 16


def fractional_packing_rounds_exact(f: int, k: int, W: int) -> int:
    """Exactly how many rounds :class:`FractionalPackingMachine` takes."""
    return fp_schedule_length(f, k, W)


def fractional_packing_paper_bound(f: int, k: int, W: int) -> int:
    """Explicit-constant version of Theorem 2's ``O(f²k² + fk log* W)``.

    Our schedule is ``(D+1) · (15(D+1) + 2 + 2·T_wcv)`` with
    ``D = (k-1)f < fk`` and ``T_wcv <= log* χ + 4``,
    ``χ = W(k!)^{(D+1)²} + 1`` so ``log* χ <= log* W + log* k + 6``.
    """
    D = fp_out_degree_bound(f, k)
    t_wcv_bound = log_star(W) + log_star(max(k, 2)) + 10
    return (D + 1) * (15 * (D + 1) + 2 + 2 * t_wcv_bound)


def bvc_rounds_exact(delta: int, W: int) -> int:
    """Exactly how many rounds the Section 5 simulation takes."""
    return bvc_round_count(delta, W)
