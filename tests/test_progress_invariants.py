"""Deep progress invariants: the per-iteration arguments of the proofs.

Theorem 1's engine is Lemma 1 (the active subgraph's maximum degree
drops every Phase I iteration); Theorem 2's engine is the Section 4.4
argument (every unsaturated element's outdegree in ``K_yc`` drops
every iteration).  These tests observe the machines mid-run and check
the *proof-level* quantities, not just the final outputs.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List

import pytest

from repro.core.ablations import phase1_reference
from repro.core.edge_packing import ACTIVE
from repro.core.fractional_packing import (
    FractionalPackingMachine,
    build_fp_schedule,
    fp_out_degree_bound,
)
from repro.graphs import families
from repro.graphs.setcover import random_instance, vc_to_setcover
from repro.graphs.weights import uniform_weights
from repro.simulator.runtime import run_on_setcover


class TestLemma1Progress:
    """Max degree of the active subgraph decreases every iteration."""

    @pytest.mark.parametrize("seed", range(5))
    def test_active_degree_strictly_decreases(self, seed):
        g = families.gnp_random(10, 0.5, seed=seed)
        w = uniform_weights(10, 8, seed=seed + 50)
        delta = g.max_degree

        def max_active_degree(iterations: int) -> int:
            ref = phase1_reference(g, w, iterations=iterations)
            deg = [0] * g.n
            for e, s in ref.edge_state.items():
                if s == ACTIVE:
                    u, v = g.edges[e]
                    deg[u] += 1
                    deg[v] += 1
            return max(deg, default=0)

        previous = g.max_degree
        for t in range(1, delta + 1):
            current = max_active_degree(t)
            if previous > 0:
                assert current <= previous - 1, (
                    f"iteration {t}: max active degree {current} did not "
                    f"drop below {previous}"
                )
            previous = current
        assert previous == 0  # Lemma 1's conclusion


def _iteration_end_rounds(f: int, k: int, W: int) -> List[int]:
    """1-based round indices at which each iteration's colouring ends."""
    schedule = build_fp_schedule(f, k, W)
    D = fp_out_degree_bound(f, k)
    ends = []
    for idx, tag in enumerate(schedule):
        if tag[0] == "tr_subset" and tag[2] == D + 1:
            ends.append(idx + 1)
    return ends


def _kyc_out_degrees(instance, states) -> Dict[int, int]:
    """Outdegree of each unsaturated element in K_yc from a state snapshot."""
    n_s = instance.n_subsets
    elements = states[n_s:]
    unsat = {
        u for u in range(instance.n_elements) if not elements[u].saturated
    }
    colour = {u: elements[u].c for u in unsat}
    out: Dict[int, int] = {u: 0 for u in unsat}
    for members in instance.subsets:
        for u in members:
            if u not in unsat:
                continue
            for v in members:
                if v != u and v in unsat and colour[v] == colour[u]:
                    out[u] += 1
    return out


class TestTheorem2Progress:
    """Every unsaturated element loses K_yc-outdegree each iteration."""

    @pytest.mark.parametrize(
        "instance_factory",
        [
            lambda: random_instance(5, 6, k=2, f=2, W=3, seed=4),
            lambda: random_instance(4, 6, k=3, f=2, W=2, seed=9),
            lambda: vc_to_setcover(families.cycle_graph(5), [2, 1, 2, 1, 2]),
        ],
        ids=["rand-k2f2", "rand-k3f2", "cycle-encoding"],
    )
    def test_outdegree_decreases_per_iteration(self, instance_factory):
        inst = instance_factory()
        ends = _iteration_end_rounds(inst.f, inst.k, inst.W)
        snapshots = {}

        def observer(round_index, states, outboxes):
            if round_index in ends:
                snapshots[round_index] = [s.clone() for s in states]

        run_on_setcover(
            inst,
            FractionalPackingMachine(),
            observer=observer,
            max_rounds=len(build_fp_schedule(inst.f, inst.k, inst.W)),
        )

        prev = None
        for r in ends:
            degrees = _kyc_out_degrees(inst, snapshots[r])
            if prev is not None:
                for u, d in degrees.items():
                    if u in prev:
                        assert d <= prev[u] - 1 or prev[u] == 0, (
                            f"element {u}: outdegree {prev[u]} -> {d} "
                            f"did not decrease"
                        )
            prev = degrees
        # after the final iteration everything must be saturated
        assert prev == {}, f"unsaturated elements remain: {sorted(prev)}"

    def test_final_maximality_is_forced_by_progress(self):
        """D+1 iterations x (outdegree <= D) leave nothing unsaturated."""
        inst = random_instance(6, 8, k=2, f=2, W=4, seed=12)
        from repro.core.fractional_packing import maximal_fractional_packing
        from repro.analysis.verify import check_fractional_packing

        res = maximal_fractional_packing(inst)
        check_fractional_packing(inst, res.y).require()
