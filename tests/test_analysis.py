"""Tests for verifiers, view refinement, and symmetry analysis."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.analysis.symmetry import (
    automorphisms,
    is_output_automorphism_invariant,
    is_vertex_transitive,
    orbit_partition,
)
from repro.analysis.verify import (
    check_edge_packing,
    check_fractional_packing,
    check_set_cover,
    check_vertex_cover,
    edge_packing_feasible_fast,
)
from repro.analysis.views import (
    broadcast_view_classes,
    port_view_classes,
    refine_until_stable,
)
from repro.graphs import families, ports
from repro.graphs.setcover import partition_instance
from tests.conftest import gnp_graphs


class TestEdgePackingVerifier:
    def test_accepts_valid(self):
        g = families.path_graph(3)
        y = {0: Fraction(1, 2), 1: Fraction(0)}
        chk = check_edge_packing(g, [1, 1, 1], y)
        assert chk.feasible
        assert not chk.maximal  # no node is saturated

    def test_detects_infeasible(self):
        g = families.path_graph(2)
        chk = check_edge_packing(g, [1, 1], {0: Fraction(2)})
        assert not chk.feasible
        assert any("exceeds" in v for v in chk.violations)

    def test_detects_negative(self):
        g = families.path_graph(2)
        chk = check_edge_packing(g, [1, 1], {0: Fraction(-1)})
        assert not chk.feasible

    def test_detects_missing_edges(self):
        g = families.path_graph(3)
        chk = check_edge_packing(g, [1, 1, 1], {0: Fraction(1)})
        assert not chk.feasible

    def test_maximal_packing_accepted(self):
        g = families.cycle_graph(4)
        y = {e: Fraction(1, 2) for e in range(4)}
        chk = check_edge_packing(g, [1, 1, 1, 1], y)
        assert chk.ok
        chk.require()  # must not raise

    def test_require_raises_with_details(self):
        g = families.path_graph(3)
        chk = check_edge_packing(g, [1, 1, 1], {0: Fraction(0), 1: Fraction(0)})
        with pytest.raises(AssertionError, match="unsaturated"):
            chk.require()

    def test_exactness_no_tolerance(self):
        """A violation of 1/10^30 must be caught — exact arithmetic."""
        g = families.path_graph(2)
        eps = Fraction(1, 10**30)
        chk = check_edge_packing(g, [1, 1], {0: Fraction(1) + eps})
        assert not chk.feasible

    def test_fast_float_check_agrees_on_clean_data(self):
        g = families.cycle_graph(6)
        y = [0.5] * 6
        assert edge_packing_feasible_fast(g, [1] * 6, y)
        assert not edge_packing_feasible_fast(g, [1] * 6, [0.7] * 6)


class TestCoverVerifiers:
    def test_vertex_cover(self):
        g = families.cycle_graph(4)
        ok, unc = check_vertex_cover(g, [0, 2])
        assert ok and unc == ()
        ok, unc = check_vertex_cover(g, [0])
        assert not ok and len(unc) == 2

    def test_set_cover(self):
        inst = partition_instance(
            groups=[[0, 1], [1, 2]], weights=[1, 1], n_elements=3
        )
        ok, unc = check_set_cover(inst, [0, 1])
        assert ok
        ok, unc = check_set_cover(inst, [0])
        assert not ok and unc == (2,)


class TestFractionalPackingVerifier:
    def test_accepts_valid_maximal(self):
        inst = partition_instance(groups=[[0]], weights=[3], n_elements=1)
        chk = check_fractional_packing(inst, [Fraction(3)])
        assert chk.ok

    def test_detects_overload(self):
        inst = partition_instance(groups=[[0]], weights=[3], n_elements=1)
        chk = check_fractional_packing(inst, [Fraction(4)])
        assert not chk.feasible

    def test_detects_nonmaximal(self):
        inst = partition_instance(groups=[[0]], weights=[3], n_elements=1)
        chk = check_fractional_packing(inst, [Fraction(1)])
        assert chk.feasible and not chk.maximal


class TestViewRefinement:
    def test_cycle_all_equivalent(self):
        g = families.cycle_graph(7)
        for t in (0, 1, 3):
            assert len(set(broadcast_view_classes(g, rounds=t))) == 1

    def test_path_endpoint_distinction_spreads(self):
        g = families.path_graph(5)
        c0 = broadcast_view_classes(g, rounds=0)
        assert c0[0] == c0[4] != c0[1]  # degree 1 vs degree 2
        c2 = broadcast_view_classes(g, rounds=2)
        # after 2 rounds the middle node is distinguishable from its nbrs
        assert c2[2] != c2[1]

    def test_inputs_refine_classes(self):
        g = families.cycle_graph(4)
        classes = broadcast_view_classes(g, inputs=[1, 2, 1, 2], rounds=1)
        assert classes[0] == classes[2]
        assert classes[0] != classes[1]

    def test_port_classes_refine_broadcast(self):
        """Port-numbered views are at least as fine as broadcast views."""
        g = families.gnp_random(10, 0.3, seed=4)
        for t in (1, 2):
            b = broadcast_view_classes(g, rounds=t)
            p = port_view_classes(g, rounds=t)
            # same port class => same broadcast class
            for u in g.nodes():
                for v in g.nodes():
                    if p[u] == p[v]:
                        assert b[u] == b[v]

    def test_stabilisation(self):
        g = families.path_graph(6)
        classes, depth = refine_until_stable(g)
        assert depth <= g.n
        # symmetric pairs of the path stay merged forever
        assert classes[0] == classes[5]
        assert classes[1] == classes[4]
        assert classes[2] == classes[3]

    @given(gnp_graphs(max_n=9))
    @settings(max_examples=20, deadline=None)
    def test_refinement_is_monotone(self, g):
        """Classes only split over time, never merge."""
        prev = broadcast_view_classes(g, rounds=0)
        for t in (1, 2, 3):
            cur = broadcast_view_classes(g, rounds=t)
            for u in g.nodes():
                for v in g.nodes():
                    if cur[u] == cur[v]:
                        assert prev[u] == prev[v]
            prev = cur


class TestViewEquivalencePredictsOutputs:
    """The fundamental anonymity property: equal views => equal outputs."""

    def test_broadcast_machine_respects_views(self):
        from repro.core.vertex_cover import vertex_cover_broadcast

        g = families.complete_bipartite(2, 3)
        w = [3, 3, 2, 2, 2]
        res = vertex_cover_broadcast(g, w)
        classes, _ = refine_until_stable(g, inputs=w, model="broadcast")
        for u in g.nodes():
            for v in g.nodes():
                if classes[u] == classes[v]:
                    assert res.run.outputs[u]["in_cover"] == res.run.outputs[v]["in_cover"]

    def test_port_machine_respects_views(self):
        from repro.core.edge_packing import maximal_edge_packing

        g = ports.symmetric_cycle(6)
        res = maximal_edge_packing(g, [1] * 6)
        classes, _ = refine_until_stable(g, inputs=[1] * 6, model="port")
        assert len(set(classes)) == 1  # fully symmetric
        outs = {res.run.outputs[v]["in_cover"] for v in g.nodes()}
        assert len(outs) == 1  # all nodes must answer identically


class TestSymmetry:
    def test_cycle_automorphisms(self):
        g = families.cycle_graph(5)
        autos = automorphisms(g)
        assert len(autos) == 10  # dihedral group D5

    def test_weights_restrict_automorphisms(self):
        g = families.cycle_graph(4)
        autos = automorphisms(g, inputs=[1, 2, 1, 3])
        # only automorphisms preserving the weight labelling survive
        for sigma in autos:
            for v in g.nodes():
                assert [1, 2, 1, 3][sigma[v]] == [1, 2, 1, 3][v]

    def test_vertex_transitive(self):
        assert is_vertex_transitive(families.cycle_graph(6))
        assert is_vertex_transitive(families.petersen_graph())
        assert not is_vertex_transitive(families.path_graph(4))
        assert not is_vertex_transitive(families.frucht_graph())

    def test_orbit_partition_star(self):
        g = families.star_graph(4)
        orbits = orbit_partition(g)
        assert orbits[1] == orbits[2] == orbits[3] == orbits[4]
        assert orbits[0] != orbits[1]

    def test_output_invariance_checker(self):
        g = families.cycle_graph(4)
        assert is_output_automorphism_invariant(g, [1, 1, 1, 1])
        assert not is_output_automorphism_invariant(g, [1, 0, 0, 0])
