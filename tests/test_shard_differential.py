"""Sharded intra-run execution ≡ serial execution, bit for bit.

The sharded engine (:mod:`repro.simulator.sharding`, engaged via
``run(..., shards=p)``) partitions one graph's nodes across worker
processes by hashed ownership and exchanges only boundary messages per
round.  Its contract is the repo-wide one: every
:class:`~repro.simulator.runtime.RunResult` field — outputs, rounds,
halting, exact message/bit counts, per-round bit traces, final states —
must be identical to the serial object engine, for every shard count.

This suite is a seeded property-style fuzzer over that contract
(graph families × Δ × metering × arithmetic × p ∈ {1, 2, 3, 7}), plus
the edges of the envelope:

* degenerate topologies — empty graph, single node, isolated vertices;
* an engagement canary (``sharding.LAST_DECISION``) proving the
  sharded path actually ran rather than silently falling back;
* ``on_max_rounds="raise"`` parity — :class:`MaxRoundsExceeded`
  carries the same round count and non-halted ids as serial;
* ``process_safe`` fault adversaries — bit-identical schedules across
  shard counts, with the diagnostic ``events`` counter synced back.

Fault cases wrap machines in :class:`SelfStabilisingMachine`: the raw
machines assert on desynchronised inboxes by design (see
``tests/test_faults_messages.py``).
"""

from __future__ import annotations

import random

import pytest

from repro.core.edge_packing import (
    EdgePackingMachine,
    edge_packing_job,
    schedule_length,
)
from repro.core.fractional_packing import (
    FractionalPackingMachine,
    fp_schedule_length,
)
from repro.graphs import families
from repro.graphs.setcover import random_instance
from repro.graphs.weights import uniform_weights, unit_weights
from repro.selfstab.transformer import SelfStabilisingMachine
from repro.simulator import sharding
from repro.simulator.faults import (
    RandomStateCorruption,
    adversary_from_spec,
)
from repro.simulator.runtime import (
    MaxRoundsExceeded,
    run,
    run_on_setcover,
)

from helpers import assert_run_results_equal

SHARD_COUNTS = (1, 2, 3, 7)

# Fault constants, following tests/test_faults_messages.py.
DELTA, W = 2, 3
T_PORT = schedule_length(DELTA, W)
FAULTY_ROUNDS = 6
PROCESS_SAFE_KINDS = ("loss", "duplication", "corruption", "crash")


@pytest.fixture
def engage_small(monkeypatch):
    """Drop the engagement floor so the fuzz-sized graphs shard for real
    (production keeps MIN_SHARD_NODES high because IPC dwarfs tiny runs).
    """
    monkeypatch.setattr(sharding, "MIN_SHARD_NODES", 0)


def _run_pair(job, p):
    """(serial, sharded) for one job mapping; both via the public run()."""
    serial = run(**job)
    sharded = run(**dict(job, shards=p))
    return serial, sharded


def _assert_sharded_equal(job, p, engaged=True):
    serial, sharded = _run_pair(job, p)
    if engaged:
        assert sharding.LAST_DECISION is not None
        assert sharding.LAST_DECISION.engaged, sharding.LAST_DECISION.reason
    assert_run_results_equal(
        sharded, serial, label_a=f"shards={p}", label_b="serial"
    )
    return serial, sharded


# ---------------------------------------------------------------------------
# Seeded fuzzer
# ---------------------------------------------------------------------------

def _fuzz_graph(rng):
    """One random port-numbered instance: family, size, weights."""
    family = rng.choice(
        ["cycle", "path", "star", "grid", "tree", "gnp", "bipartite",
         "regular", "complete"]
    )
    if family == "cycle":
        g = families.cycle_graph(rng.randint(3, 20))
    elif family == "path":
        g = families.path_graph(rng.randint(2, 20))
    elif family == "star":
        g = families.star_graph(rng.randint(2, 12))
    elif family == "grid":
        g = families.grid_2d(rng.randint(2, 4), rng.randint(2, 5))
    elif family == "tree":
        g = families.random_tree(rng.randint(4, 20), seed=rng.randint(0, 99))
    elif family == "gnp":
        g = families.gnp_random(
            rng.randint(4, 16), rng.choice([0.2, 0.4, 0.7]),
            seed=rng.randint(0, 99),
        )
    elif family == "bipartite":
        g = families.complete_bipartite(rng.randint(1, 4), rng.randint(1, 5))
    elif family == "regular":
        g = families.random_regular(3, 2 * rng.randint(2, 6),
                                    seed=rng.randint(0, 99))
    else:
        g = families.complete_graph(rng.randint(2, 7))
    W_ = rng.choice([1, 4, 9])
    weights = (
        unit_weights(g.n) if W_ == 1
        else uniform_weights(g.n, W_, seed=rng.randint(0, 99))
    )
    return g, list(weights)


@pytest.mark.parametrize("case", range(10))
def test_fuzz_port_edge_packing(case, engage_small):
    """Random family × Δ × metering × arithmetic × shard count."""
    rng = random.Random(f"shard-fuzz-port:{case}")
    graph, weights = _fuzz_graph(rng)
    if graph.n < 2:  # the fuzzer never emits these, but stay safe
        pytest.skip("singleton graph cannot split")
    job = edge_packing_job(
        graph,
        weights,
        metering=rng.choice(["none", "counts", "bits"]),
        arithmetic=rng.choice(["scaled", "fraction"]),
    )
    p = rng.choice([c for c in SHARD_COUNTS if c > 1])
    _assert_sharded_equal(job, p)


@pytest.mark.parametrize("case", range(6))
def test_fuzz_setcover_broadcast(case, engage_small):
    """The §4 broadcast-model machine over random set cover instances."""
    rng = random.Random(f"shard-fuzz-sc:{case}")
    n_subsets = rng.randint(4, 8)
    k = rng.randint(2, 3)
    instance = random_instance(
        n_subsets,
        rng.randint(3, n_subsets * k),  # feasibility: capacity >= elements
        k=k,
        f=2,
        W=rng.choice([1, 5]),
        seed=rng.randint(0, 99),
    )
    arithmetic = rng.choice(["scaled", "fraction"])
    metering = rng.choice(["none", "counts", "bits"])
    machine = FractionalPackingMachine(arithmetic=arithmetic)
    needed = fp_schedule_length(instance.f, instance.k, instance.W)
    p = rng.choice([c for c in SHARD_COUNTS if c > 1])
    serial = run_on_setcover(
        instance, machine, max_rounds=needed, metering=metering
    )
    sharded = run_on_setcover(
        instance, machine, max_rounds=needed, metering=metering, shards=p
    )
    assert sharding.LAST_DECISION.engaged, sharding.LAST_DECISION.reason
    assert_run_results_equal(
        sharded, serial, label_a=f"shards={p}", label_b="serial"
    )


@pytest.mark.parametrize("p", SHARD_COUNTS)
def test_every_shard_count_one_instance(p, engage_small):
    """All advertised shard counts on one fixed instance (p=1 = serial)."""
    graph = families.cycle_graph(12)
    job = edge_packing_job(graph, uniform_weights(12, 5, seed=2))
    serial, sharded = _run_pair(job, p)
    assert_run_results_equal(
        sharded, serial, label_a=f"shards={p}", label_b="serial"
    )
    if p > 1:
        assert sharding.LAST_DECISION.engaged
        # worker count never exceeds what the graph can feed
        assert sharding.LAST_DECISION.shards == min(p, graph.n)


# ---------------------------------------------------------------------------
# Degenerate topologies
# ---------------------------------------------------------------------------

class TestDegenerateTopologies:
    def test_empty_graph(self, engage_small):
        job = edge_packing_job(families.empty_graph(0), [])
        serial, sharded = _run_pair(job, 4)
        assert not sharding.LAST_DECISION.engaged
        assert "leaves one shard" in sharding.LAST_DECISION.reason
        assert_run_results_equal(sharded, serial)

    def test_single_node(self, engage_small):
        job = edge_packing_job(families.empty_graph(1), [1])
        serial, sharded = _run_pair(job, 4)
        assert not sharding.LAST_DECISION.engaged
        assert_run_results_equal(sharded, serial)

    def test_isolated_vertices(self, engage_small):
        """No edges at all: every shard is pure boundary-free compute."""
        job = edge_packing_job(families.empty_graph(6), [1] * 6)
        _assert_sharded_equal(job, 3)

    def test_two_nodes_more_shards_than_nodes(self, engage_small):
        """p > n clamps to n shards and still matches."""
        job = edge_packing_job(families.path_graph(2), [1, 1])
        _assert_sharded_equal(job, 7)
        assert sharding.LAST_DECISION.shards == 2


# ---------------------------------------------------------------------------
# Engagement canary
# ---------------------------------------------------------------------------

class TestEngagement:
    def test_default_floor_falls_back(self):
        """Without the fixture, fuzz-sized graphs stay serial on purpose."""
        assert sharding.MIN_SHARD_NODES >= 1024
        job = edge_packing_job(families.cycle_graph(40), unit_weights(40))
        serial, sharded = _run_pair(job, 4)
        assert not sharding.LAST_DECISION.engaged
        assert "MIN_SHARD_NODES" in sharding.LAST_DECISION.reason
        assert_run_results_equal(sharded, serial)

    def test_canary_proves_engagement(self, engage_small):
        """The fuzzer's engagement check is not vacuous: a sharded run
        flips LAST_DECISION to engaged with the decided width."""
        job = edge_packing_job(families.cycle_graph(12), unit_weights(12))
        run(**dict(job, shards=3))
        decision = sharding.LAST_DECISION
        assert decision.engaged and decision.shards == 3
        assert decision.reason is None


# ---------------------------------------------------------------------------
# on_max_rounds="raise" through the sharded path
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("p", (2, 7))
def test_max_rounds_raise_parity(p, engage_small):
    """MaxRoundsExceeded carries the same rounds and non-halted ids."""
    graph = families.cycle_graph(10)
    job = edge_packing_job(graph, uniform_weights(10, 4, seed=1))
    job["max_rounds"] = 2  # far below schedule_length: nobody halts

    outcomes = {}
    for label, shards in (("serial", 1), ("sharded", p)):
        with pytest.raises(MaxRoundsExceeded) as info:
            run(**dict(job, shards=shards, on_max_rounds="raise"))
        outcomes[label] = (info.value.rounds, list(info.value.non_halted))
    assert sharding.LAST_DECISION.engaged
    assert outcomes["sharded"] == outcomes["serial"]


@pytest.mark.parametrize("p", (2, 3))
def test_max_rounds_return_parity(p, engage_small):
    """The default on_max_rounds="return" path agrees field-for-field
    on a truncated (not-all-halted) run."""
    graph = families.cycle_graph(10)
    job = edge_packing_job(graph, uniform_weights(10, 4, seed=1))
    job["max_rounds"] = 3
    serial, sharded = _assert_sharded_equal(job, p)
    assert not serial.all_halted  # the truncation actually bit


# ---------------------------------------------------------------------------
# Fault adversaries (process_safe) across shard counts
# ---------------------------------------------------------------------------

def _fault_job():
    graph = families.cycle_graph(8)
    job = edge_packing_job(graph, uniform_weights(8, W, seed=4))
    job["machine"] = SelfStabilisingMachine(EdgePackingMachine(), T_PORT)
    job["max_rounds"] = FAULTY_ROUNDS + T_PORT
    return job


def _adversary(kind):
    return adversary_from_spec(
        kind, until_round=FAULTY_ROUNDS, rate=0.3, seed=1
    )


class TestFaultAdversaries:
    @pytest.mark.parametrize("p", (2, 3))
    @pytest.mark.parametrize("kind", PROCESS_SAFE_KINDS)
    def test_bit_identical_schedules(self, kind, p, engage_small):
        """A seeded process_safe adversary injects the exact same fault
        schedule whether the round runs serially or across p shards."""
        adv_serial = _adversary(kind)
        serial = run(**_fault_job(), fault_adversary=adv_serial)

        adv_sharded = _adversary(kind)
        sharded = run(
            **_fault_job(), fault_adversary=adv_sharded, shards=p
        )
        assert sharding.LAST_DECISION.engaged, sharding.LAST_DECISION.reason
        assert_run_results_equal(
            sharded, serial, label_a=f"shards={p}", label_b="serial"
        )
        # the mutated adversary state (diagnostic event counter) is
        # synced back from the attempt that actually ran
        assert adv_sharded.events == adv_serial.events

    def test_non_process_safe_falls_back(self, engage_small):
        """State corruption rewrites parent-side state objects; the
        sharded engine must refuse and rerun serially, bit-identically."""
        serial = run(
            **_fault_job(),
            fault_adversary=RandomStateCorruption(
                until_round=FAULTY_ROUNDS, rate=0.3, seed=1
            ),
        )
        sharded = run(
            **_fault_job(),
            fault_adversary=RandomStateCorruption(
                until_round=FAULTY_ROUNDS, rate=0.3, seed=1
            ),
            shards=3,
        )
        assert not sharding.LAST_DECISION.engaged
        assert "process_safe" in sharding.LAST_DECISION.reason
        assert_run_results_equal(sharded, serial)
