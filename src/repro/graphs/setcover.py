"""Set cover instances as bipartite graphs (Section 1.2 of the paper).

An instance is a bipartite graph ``H = (S ∪ U, A)``: subset nodes
``s ∈ S`` with positive integer weights, element nodes ``u ∈ U``, and
an edge ``{s, u}`` whenever element ``u`` belongs to subset ``s``.
The global parameters are ``k`` (maximum subset size, i.e. maximum
degree on the ``S`` side), ``f`` (maximum element frequency, maximum
degree on the ``U`` side) and ``W`` (maximum weight).

For the simulator, :meth:`SetCoverInstance.to_bipartite_graph` lays the
instance out as a :class:`PortNumberedGraph` whose first ``|S|`` nodes
are subsets and remaining ``|U|`` nodes are elements; the per-node
local inputs carry the role and (for subsets) the weight — exactly the
information the paper gives each computational entity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.graphs.topology import PortNumberedGraph
from repro.graphs.weights import validate_weights

__all__ = [
    "SetCoverInstance",
    "random_instance",
    "vc_to_setcover",
    "symmetric_kpp_instance",
    "partition_instance",
]


@dataclass(frozen=True)
class SetCoverInstance:
    """An immutable weighted set cover instance.

    Attributes
    ----------
    subsets:
        ``subsets[s]`` is the frozenset of element ids (``0..n_elements-1``)
        belonging to subset ``s``.
    weights:
        positive integer weight per subset.
    n_elements:
        size of the universe ``U``.
    """

    subsets: Tuple[FrozenSet[int], ...]
    weights: Tuple[int, ...]
    n_elements: int

    def __post_init__(self):
        if len(self.weights) != len(self.subsets):
            raise ValueError("need exactly one weight per subset")
        validate_weights(self.weights, len(self.subsets), max(self.weights, default=1))
        covered = set()
        for s, members in enumerate(self.subsets):
            for u in members:
                if not (0 <= u < self.n_elements):
                    raise ValueError(
                        f"subset {s} contains element {u} outside universe "
                        f"0..{self.n_elements - 1}"
                    )
            covered |= members
        if covered != set(range(self.n_elements)):
            missing = sorted(set(range(self.n_elements)) - covered)
            raise ValueError(
                f"infeasible instance: elements {missing[:10]} belong to no subset"
            )

    # ------------------------------------------------------------------
    # Parameters
    # ------------------------------------------------------------------

    @property
    def n_subsets(self) -> int:
        return len(self.subsets)

    @property
    def k(self) -> int:
        """Maximum subset size (``deg(s) <= k``)."""
        return max((len(s) for s in self.subsets), default=1)

    @property
    def f(self) -> int:
        """Maximum element frequency (``deg(u) <= f``)."""
        freq = [0] * self.n_elements
        for members in self.subsets:
            for u in members:
                freq[u] += 1
        return max(freq, default=1)

    @property
    def W(self) -> int:
        """Maximum subset weight."""
        return max(self.weights, default=1)

    def element_to_subsets(self) -> List[List[int]]:
        """``result[u]`` lists the subsets containing element ``u``."""
        out: List[List[int]] = [[] for _ in range(self.n_elements)]
        for s, members in enumerate(self.subsets):
            for u in sorted(members):
                out[u].append(s)
        return out

    # ------------------------------------------------------------------
    # Solution helpers
    # ------------------------------------------------------------------

    def is_cover(self, chosen: Iterable[int]) -> bool:
        chosen_set = set(chosen)
        covered = set()
        for s in chosen_set:
            covered |= self.subsets[s]
        return covered == set(range(self.n_elements))

    def cover_weight(self, chosen: Iterable[int]) -> int:
        return sum(self.weights[s] for s in set(chosen))

    # ------------------------------------------------------------------
    # Simulator layout
    # ------------------------------------------------------------------

    def to_bipartite_graph(self) -> PortNumberedGraph:
        """Lay the instance out for the simulator.

        Nodes ``0..n_subsets-1`` are subset nodes; nodes
        ``n_subsets..n_subsets+n_elements-1`` are element nodes.
        """
        off = self.n_subsets
        edges = [
            (s, off + u) for s, members in enumerate(self.subsets) for u in members
        ]
        return PortNumberedGraph.from_edges(off + self.n_elements, edges)

    def node_inputs(self) -> List[Dict[str, object]]:
        """Per-node local inputs matching :meth:`to_bipartite_graph`.

        Subset nodes receive ``{"role": "subset", "weight": w}``;
        element nodes receive ``{"role": "element"}`` — elements have
        no input in the paper's model beyond their role.
        """
        inputs: List[Dict[str, object]] = [
            {"role": "subset", "weight": self.weights[s]}
            for s in range(self.n_subsets)
        ]
        inputs.extend({"role": "element"} for _ in range(self.n_elements))
        return inputs

    def global_params(self) -> Dict[str, int]:
        """The global knowledge the paper grants every node: f, k, W."""
        return {"f": self.f, "k": self.k, "W": self.W}

    def subset_node(self, s: int) -> int:
        return s

    def element_node(self, u: int) -> int:
        return self.n_subsets + u


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------


def random_instance(
    n_subsets: int,
    n_elements: int,
    k: int,
    f: int,
    W: int = 1,
    seed: int = 0,
) -> SetCoverInstance:
    """Random instance with ``deg(s) <= k``, ``deg(u) <= f``, weights in 1..W.

    Every element joins between 1 and ``f`` subsets chosen uniformly
    among subsets with remaining capacity, so the instance is always
    feasible.  Raises if the capacity ``n_subsets * k`` cannot
    accommodate one membership per element.
    """
    if n_subsets < 1 or n_elements < 1:
        raise ValueError("need at least one subset and one element")
    if k < 1 or f < 1:
        raise ValueError("k and f must be >= 1")
    if n_subsets * k < n_elements:
        raise ValueError(
            f"capacity too small: {n_subsets} subsets of size <= {k} cannot "
            f"cover {n_elements} elements"
        )
    rng = random.Random(f"setcover:{seed}")
    members: List[set] = [set() for _ in range(n_subsets)]
    # First pass: one mandatory membership per element (feasibility).  At
    # most n_elements <= n_subsets * k slots are consumed, so a subset
    # with spare capacity always exists.
    for u in range(n_elements):
        available = [s for s in range(n_subsets) if len(members[s]) < k]
        members[rng.choice(available)].add(u)
    # Second pass: optional extra memberships up to frequency f, limited
    # by whatever capacity is left.
    for u in range(n_elements):
        extra = rng.randint(0, f - 1)
        if extra == 0:
            continue
        available = [
            s for s in range(n_subsets) if len(members[s]) < k and u not in members[s]
        ]
        for s in rng.sample(available, min(extra, len(available))):
            members[s].add(u)
    weights = [rng.randint(1, W) for _ in range(n_subsets)]
    return SetCoverInstance(
        subsets=tuple(frozenset(m) for m in members),
        weights=tuple(weights),
        n_elements=n_elements,
    )


def vc_to_setcover(
    graph: PortNumberedGraph, weights: Sequence[int]
) -> SetCoverInstance:
    """The Section 5 encoding of vertex cover as set cover.

    Each node ``v`` becomes a subset node ``s(v)`` with weight ``w_v``;
    each edge ``e`` becomes an element ``u(e)``.  The parameters become
    ``f = 2`` and ``k = Δ``.  Isolated nodes become empty subsets
    (never selected).
    """
    if len(weights) != graph.n:
        raise ValueError("need one weight per node")
    subsets = tuple(
        frozenset(graph.incident_edges(v)) for v in graph.nodes()
    )
    return SetCoverInstance(
        subsets=subsets, weights=tuple(int(w) for w in weights), n_elements=graph.m
    )


def symmetric_kpp_instance(p: int, weight: int = 1) -> SetCoverInstance:
    """The Figure 3 instance: ``p`` identical subsets over ``p`` elements.

    Every subset contains every element (``K_{p,p}``), all weights
    equal.  ``f = k = p``; the optimum picks a single subset, but any
    deterministic anonymous algorithm must select all ``p`` by
    symmetry, giving approximation ratio exactly ``p = min{f, k}``.
    """
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    all_elements = frozenset(range(p))
    return SetCoverInstance(
        subsets=tuple(all_elements for _ in range(p)),
        weights=tuple(weight for _ in range(p)),
        n_elements=p,
    )


def partition_instance(
    groups: Sequence[Sequence[int]], weights: Sequence[int], n_elements: int
) -> SetCoverInstance:
    """Explicit instance constructor from plain lists (convenience)."""
    return SetCoverInstance(
        subsets=tuple(frozenset(g) for g in groups),
        weights=tuple(int(w) for w in weights),
        n_elements=n_elements,
    )
