"""Differential suite: ``DynamicRun(mode="incremental")`` ≡ ``mode="scratch"``.

The dynamic-network engine (:mod:`repro.dynamic`) may only ever change
wall-clock time: after every edit batch, the dirty-region warm restart
must produce a :class:`~repro.simulator.runtime.RunResult` that is
field-for-field identical to re-running the machine on the fresh graph.
This suite pins that contract across graph families, edit kinds
(including vertex removal that orphans edges), metering modes,
``arithmetic=`` values and seeds, on all three flows (§3 port-model
edge packing, §5 broadcast simulation, §4 set cover) — wired into CI
next to ``tests/test_replay_memo.py``.

Plus unit tests for the edit language and streams themselves.
"""

from __future__ import annotations

import pytest

from repro.dynamic import (
    DYNAMIC_MODES,
    DynamicRun,
    EditError,
    HubChurn,
    RandomChurn,
    SlidingWindowStream,
    add_edge,
    add_vertex,
    apply_edits,
    remove_edge,
    remove_vertex,
    reweight,
    validate_dynamic_mode,
)
from repro.graphs import families
from repro.graphs.setcover import random_instance
from repro.graphs.weights import uniform_weights, unit_weights

from helpers import assert_run_results_equal


def assert_same_result(a, b):
    """Every RunResult field identical — the dynamic-mode contract."""
    assert_run_results_equal(a, b, label_a="incremental", label_b="scratch")


def _session_pair(graph, weights, **kwargs):
    inc = DynamicRun.vertex_cover(graph, weights, mode="incremental", **kwargs)
    scr = DynamicRun.vertex_cover(graph, weights, mode="scratch", **kwargs)
    assert_same_result(inc.result, scr.result)
    return inc, scr


def _apply_both(inc, scr, batch):
    s1 = inc.apply(batch)
    s2 = scr.apply(batch)
    assert_same_result(inc.result, scr.result)
    assert inc.cover() == scr.cover()
    assert inc.cover_weight() == scr.cover_weight()
    assert s1.n == s2.n and s1.m == s2.m and s1.rounds == s2.rounds
    assert s2.repaired_fraction == 1.0  # scratch always re-runs everything
    return s1


# ----------------------------------------------------------------------
# §3 port-model flow across families and edit kinds
# ----------------------------------------------------------------------

_FAMILIES = {
    "cycle12": (lambda: families.cycle_graph(12), lambda n: unit_weights(n), {}),
    "grid4x4": (
        lambda: families.grid_2d(4, 4),
        lambda n: uniform_weights(n, 3, seed=1),
        {"delta": 6, "W": 3},
    ),
    "tree": (
        lambda: families.balanced_tree(2, 3),
        lambda n: uniform_weights(n, 4, seed=2),
        {"delta": 5, "W": 4},
    ),
    "gnp14": (
        lambda: families.gnp_random(14, 0.25, seed=3),
        lambda n: uniform_weights(n, 5, seed=3),
        {"delta": 9, "W": 5},
    ),
}


@pytest.mark.parametrize("name", sorted(_FAMILIES))
def test_random_churn_matches_scratch(name):
    make, make_w, kwargs = _FAMILIES[name]
    g = make()
    inc, scr = _session_pair(g, make_w(g.n), **kwargs)
    delta = inc._globals["delta"]
    W = inc._globals["W"]
    stream = RandomChurn(edits_per_batch=2, seed=11, W=W, max_degree=delta)
    for _ in range(4):
        batch = stream.next_batch(inc.graph, inc.inputs)
        if batch:
            stats = _apply_both(inc, scr, batch)
            assert 0 < stats.repaired_fraction <= 1.0
        assert inc.is_cover() and scr.is_cover()
        assert inc.certificate_ratio() <= 1


def test_vertex_removal_orphans_edges():
    """Removing a vertex drops its incident edges; every former
    neighbour (changed degree, shifted ports) must be repaired."""
    g = families.star_graph(6)  # centre 0 with 6 leaves
    w = uniform_weights(7, 3, seed=5)
    inc, scr = _session_pair(g, w, delta=7, W=3)
    stats = _apply_both(inc, scr, [remove_vertex(0)])  # orphans every edge
    assert inc.graph.m == 0 and inc.graph.n == 6
    assert stats.dirty_seeds == 6  # all former neighbours
    _apply_both(inc, scr, [add_edge(0, 1), add_edge(2, 3)])
    assert inc.is_cover()


def test_vertex_add_and_remove_renumbering():
    g = families.grid_2d(4, 4)
    w = uniform_weights(16, 3, seed=7)
    inc, scr = _session_pair(g, w, delta=6, W=3)
    _apply_both(inc, scr, [remove_vertex(5), reweight(3, 1)])
    _apply_both(inc, scr, [add_vertex(2, neighbours=[0, 4]), remove_edge(0, 1)])
    _apply_both(inc, scr, [remove_vertex(inc.graph.n - 1)])
    assert inc.is_cover()


@pytest.mark.parametrize("metering", ["none", "counts", "bits"])
def test_metering_modes(metering):
    g = families.cycle_graph(14)
    inc, scr = _session_pair(g, unit_weights(14), metering=metering)
    stream = HubChurn(edits_per_batch=1, seed=4)
    for _ in range(3):
        batch = stream.next_batch(inc.graph, inc.inputs)
        if batch:
            _apply_both(inc, scr, batch)
    if metering == "bits":
        assert inc.result.message_bits > 0
    if metering == "none":
        assert inc.result.messages_sent == 0


@pytest.mark.parametrize("arithmetic", ["scaled", "fraction"])
def test_arithmetic_modes(arithmetic):
    g = families.grid_2d(3, 4)
    w = uniform_weights(12, 6, seed=9)
    inc, scr = _session_pair(g, w, delta=5, W=6, arithmetic=arithmetic)
    _apply_both(inc, scr, [remove_edge(*g.edges[0]), reweight(2, 6)])
    _apply_both(inc, scr, [add_edge(*g.edges[0])])


@pytest.mark.parametrize("seed", [None, 0, 13])
def test_seeded_sessions(seed):
    # Seeds materialise per-node RNGs; the deterministic machines
    # ignore them, and the dynamic contract must be unaffected.
    g = families.cycle_graph(10)
    inc, scr = _session_pair(g, unit_weights(10), seed=seed)
    _apply_both(inc, scr, [remove_edge(0, 1)])
    _apply_both(inc, scr, [add_edge(0, 1), remove_edge(4, 5)])


def test_low_churn_repairs_a_strict_minority():
    """On a large sparse instance a single edit's ball must stay well
    below n — the locality claim the benchmark gate builds on."""
    n = 512
    inc, _scr = (
        DynamicRun.vertex_cover(
            families.cycle_graph(n), unit_weights(n), mode="incremental"
        ),
        None,
    )
    stats = inc.apply([remove_edge(100, 101)])
    radius = inc.result.rounds
    assert stats.repaired_nodes <= 2 * (2 * radius + 1)
    assert stats.repaired_fraction < 0.25
    assert inc.is_cover()


# ----------------------------------------------------------------------
# §5 broadcast flow and §4 set-cover flow
# ----------------------------------------------------------------------


def test_broadcast_flow_matches_scratch():
    g = families.path_graph(7)
    w = [1, 3, 2, 1, 2, 3, 1]
    kwargs = dict(algorithm="broadcast", delta=3, W=3)
    inc = DynamicRun.vertex_cover(g, w, mode="incremental", **kwargs)
    scr = DynamicRun.vertex_cover(g, w, mode="scratch", **kwargs)
    assert_same_result(inc.result, scr.result)
    _apply_both(inc, scr, [add_edge(0, 2)])
    _apply_both(inc, scr, [remove_edge(3, 4), reweight(5, 1)])
    _apply_both(inc, scr, [add_edge(3, 4), remove_vertex(6)])
    assert inc.is_cover()


@pytest.mark.parametrize("replay", ["incremental", "scratch"])
def test_broadcast_flow_replay_knob_orthogonal(replay):
    """The machine-level history replay knob composes with the session
    mode; every combination must agree."""
    g = families.cycle_graph(6)
    w = unit_weights(6)
    kwargs = dict(algorithm="broadcast", replay=replay)
    inc = DynamicRun.vertex_cover(g, w, mode="incremental", **kwargs)
    scr = DynamicRun.vertex_cover(g, w, mode="scratch", **kwargs)
    _apply_both(inc, scr, [remove_edge(2, 3)])
    assert inc.is_cover()


def test_setcover_flow_membership_churn():
    inst = random_instance(5, 8, k=3, f=2, W=4, seed=6)
    inc = DynamicRun.set_cover(inst, mode="incremental")
    scr = DynamicRun.set_cover(inst, mode="scratch")
    assert_same_result(inc.result, scr.result)
    g = inc.graph
    removable = next(
        (a, b) for (a, b) in g.edges if g.degree(b) >= 2
    )  # element keeps one covering subset
    _apply_both(inc, scr, [remove_edge(*removable)])
    _apply_both(
        inc,
        scr,
        [add_edge(*removable), reweight(0, {"role": "subset", "weight": 2})],
    )
    assert inc.is_cover()
    assert inc.certificate_ratio() <= 1


def test_setcover_flow_rejects_orphaning_and_vertex_edits():
    inst = random_instance(4, 6, k=3, f=2, W=2, seed=8)
    sess = DynamicRun.set_cover(inst, mode="incremental")
    g = sess.graph
    lonely = next(v for v in g.nodes() if v >= inst.n_subsets and g.degree(v) == 1)
    before = sess.result
    with pytest.raises(ValueError, match="orphans element"):
        sess.apply([remove_edge(g.neighbours(lonely)[0], lonely)])
    with pytest.raises(EditError, match="not supported"):
        sess.apply([remove_vertex(0)])
    assert sess.result is before  # failed batches leave the session intact


# ----------------------------------------------------------------------
# Session-level contracts
# ----------------------------------------------------------------------


def test_pinned_bounds_rejected_identically():
    g = families.cycle_graph(8)
    for mode in DYNAMIC_MODES:
        sess = DynamicRun.vertex_cover(g, unit_weights(8), mode=mode)
        with pytest.raises(ValueError, match="delta"):
            sess.apply([add_edge(0, 4)])  # degree 3 > pinned Δ=2
        with pytest.raises(ValueError):
            sess.apply([reweight(0, 5)])  # weight 5 > pinned W=1
        assert sess.graph.m == 8  # untouched after the failed batches


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        validate_dynamic_mode("bogus")
    with pytest.raises(ValueError):
        DynamicRun.vertex_cover(
            families.cycle_graph(4), unit_weights(4), mode="bogus"
        )


def test_incremental_history_survives_fallback():
    """A batch whose ball covers the whole graph falls back to a full
    recorded solve; the *next* small batch must warm-restart again."""
    n = 256
    inc = DynamicRun.vertex_cover(
        families.cycle_graph(n), unit_weights(n), mode="incremental"
    )
    scr = DynamicRun.vertex_cover(
        families.cycle_graph(n), unit_weights(n), mode="scratch"
    )
    # Many spread-out edits: ball ≈ everything.
    wide = [remove_edge(i, i + 1) for i in range(0, n - 1, 16)]
    s_wide = _apply_both(inc, scr, wide)
    assert s_wide.repaired_fraction == 1.0
    s_small = _apply_both(inc, scr, [add_edge(0, 1)])
    assert s_small.repaired_fraction < 1.0


def test_batch_stats_accounting():
    g = families.cycle_graph(64)
    inc = DynamicRun.vertex_cover(g, unit_weights(64), mode="incremental")
    stats = inc.apply([remove_edge(10, 11), remove_edge(40, 41)])
    assert stats.batch == 1 and stats.n_edits == 2
    assert stats.dirty_seeds == 4
    assert stats.n == 64 and stats.m == 62
    assert 0 < stats.repaired_fraction <= 1.0
    assert inc.batches_applied == 1 and inc.stats == [stats]


# ----------------------------------------------------------------------
# Edit language unit tests
# ----------------------------------------------------------------------


def test_apply_edits_basic():
    batch = apply_edits(
        4, [(0, 1), (1, 2)], [1, 2, 3, 4],
        [add_edge(2, 3), remove_edge(0, 1), reweight(3, 9)],
    )
    assert batch.n == 4
    assert batch.edges == ((1, 2), (2, 3))
    assert batch.inputs == (1, 2, 3, 9)
    assert batch.node_map == (0, 1, 2, 3)
    assert batch.touched == {0, 1, 2, 3}


def test_apply_edits_vertex_removal_renumbers():
    batch = apply_edits(
        4, [(0, 1), (1, 2), (2, 3)], list("abcd"), [remove_vertex(1)]
    )
    assert batch.n == 3
    assert batch.edges == ((1, 2),)  # old (2,3) shifted down
    assert batch.node_map == (0, None, 1, 2)
    assert batch.touched == {0, 1}  # old 0 and old 2, the orphaned ends
    assert batch.inputs == ("a", "c", "d")


def test_apply_edits_add_vertex():
    batch = apply_edits(2, [(0, 1)], [5, 6], [add_vertex(7, neighbours=[0])])
    assert batch.n == 3
    assert batch.edges == ((0, 1), (0, 2))
    assert batch.inputs == (5, 6, 7)
    assert batch.touched == {0, 2}


@pytest.mark.parametrize(
    "bad",
    [
        [add_edge(0, 0)],
        [add_edge(0, 1)],  # duplicate
        [remove_edge(0, 3)],  # missing
        [remove_vertex(9)],
        [reweight(9, 1)],
        [add_vertex(1, neighbours=[0, 0])],
    ],
)
def test_apply_edits_rejects_invalid(bad):
    with pytest.raises(EditError):
        apply_edits(4, [(0, 1)], [1, 1, 1, 1], bad)


def test_streams_produce_valid_batches():
    g = families.grid_2d(4, 4)
    w = uniform_weights(16, 3, seed=0)
    streams = [
        RandomChurn(edits_per_batch=3, seed=1, W=3, max_degree=6),
        HubChurn(edits_per_batch=2, seed=2),
        SlidingWindowStream(window=2, edits_per_batch=2, seed=3, max_degree=6),
    ]
    from repro.graphs.topology import PortNumberedGraph

    for stream in streams:
        n, edges, inputs = g.n, set(g.edges), list(w)
        for _ in range(4):
            graph = PortNumberedGraph.from_edges(n, edges)
            batch = stream.next_batch(graph, inputs)
            # apply_edits validates every edit; an invalid batch raises.
            applied = apply_edits(n, tuple(sorted(edges)), inputs, batch)
            n, edges, inputs = applied.n, set(applied.edges), list(applied.inputs)
            assert graph.max_degree <= 6


def test_generic_session_with_nodes_halted_at_start():
    """A machine whose isolated (degree-0) nodes halt at start() — the
    generic DynamicRun contract must still hold bit-for-bit, including
    the executed round count (regression: the recording used to mark
    start-halted nodes as halting at round 1)."""
    from repro.graphs.topology import PortNumberedGraph
    from repro.simulator.machine import PORT_NUMBERING, Machine

    class LonelyHalts(Machine):
        model = PORT_NUMBERING

        def start(self, ctx):
            return 0 if ctx.degree else 3

        def emit(self, ctx, state):
            return [state] * ctx.degree

        def step(self, ctx, state, inbox):
            return min(3, state + 1)

        def halted(self, ctx, state):
            return state >= 3

        def output(self, ctx, state):
            return state

    def make(mode):
        g = PortNumberedGraph.from_edges(4, [(2, 3)])  # 0, 1 isolated
        return DynamicRun(
            g, [None] * 4, LonelyHalts(), {}, 50, mode=mode, flow="custom"
        )

    inc, scr = make("incremental"), make("scratch")
    assert_same_result(inc.result, scr.result)
    for batch in ([remove_edge(2, 3)], [add_edge(0, 1)], [remove_edge(0, 1)]):
        inc.apply(batch)
        scr.apply(batch)
        assert_same_result(inc.result, scr.result)


def test_streams_drop_label_memory_on_vertex_churn():
    """Label-based stream memory (severed edges, window FIFOs) must not
    survive a node-count change, and forget() clears it explicitly for
    balanced vertex churn the count check cannot see."""
    g = families.star_graph(5)
    w = uniform_weights(6, 2, seed=0)
    hub = HubChurn(edits_per_batch=2, seed=1)
    hub.next_batch(g, w)
    assert hub._severed  # something severed from the star centre
    smaller = families.star_graph(4)
    hub.next_batch(smaller, uniform_weights(5, 2, seed=0))
    assert hub._n_severed == smaller.n  # cache rebuilt for the new labels
    hub._severed = [(0, 1)]
    hub.forget()
    assert hub._severed == [] and hub._n_severed is None

    win = SlidingWindowStream(window=1, edits_per_batch=1, seed=2, max_degree=6)
    win.next_batch(g, w)
    win._live = [(0, 1)]
    win.forget()
    assert win._live == [] and win._n_live is None


def test_exp_churn_runs_on_every_sized_family():
    from repro.graphs.families import sized

    for family in ("grid", "gnp", "tree", "petersen"):
        g = sized(family, 16, seed=0)
        assert g.n > 0
    from repro.experiments.exp_churn import _churn_cell

    cell = _churn_cell(("grid", 16, 2, 1, 2, 0))
    assert cell["always_cover"] and cell["always_equal"]
