"""Self-stabilising transformer (Lenzen–Suomela–Wattenhofer [23]).

Section 1.5 of the paper: "standard techniques [4, 5, 23] can be used
to convert our algorithms into efficient self-stabilising algorithms".
The technique of [23] applies to any deterministic synchronous
algorithm with a running time ``T`` that is a function of global
parameters only — exactly what the paper's machines provide:

Every node stores the full *pipeline* of T+1 simulated states —
``pipeline[i]`` claims to be the wrapped machine's state after ``i``
rounds.  In every real round, every node

1. sends, for each level ``i < T``, the message the wrapped machine
   would send from ``pipeline[i]`` (one stacked message);
2. recomputes the whole pipeline from scratch:
   ``pipeline'[0] = start()`` and
   ``pipeline'[i+1] = step(pipeline[i], level-i inbox)``.

Level ``i`` is correct once the preceding ``i`` rounds were fault-free
(induction on levels), so after ``T`` consecutive fault-free rounds
the output — read from ``pipeline[T]`` — is correct *regardless of the
initial or corrupted state*: that is self-stabilisation.  The price is
a factor-``T`` blow-up in message size and local memory, and that the
algorithm never terminates (it keeps re-verifying forever), both
standard for the transformation.

A corrupted level may contain structurally invalid data that makes the
wrapped machine raise; the transformer treats any raising level as
garbage and resets it to ``start()`` — a form of local checking in the
spirit of Awerbuch–Varghese [5].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro._util.ordering import canonical_sorted
from repro.simulator.machine import BROADCAST, PORT_NUMBERING, LocalContext, Machine
from repro.simulator.runtime import RunResult, run

__all__ = ["SelfStabilisingMachine", "run_self_stabilising"]


@dataclass
class _PipelineState:
    pipeline: Tuple[Any, ...]  # T+1 levels

    def clone(self) -> "_PipelineState":
        return _PipelineState(self.pipeline)


class SelfStabilisingMachine(Machine):
    """Wrap a fixed-schedule machine into its self-stabilising version.

    ``inner`` must be deterministic with a round count that equals
    ``horizon`` on every execution (true for the paper's machines,
    whose schedules depend only on the global parameters).
    """

    def __init__(self, inner: Machine, horizon: int):
        if horizon < 0:
            raise ValueError("horizon must be >= 0")
        self.inner = inner
        self.horizon = horizon
        self.model = inner.model

    # -- lifecycle -------------------------------------------------------

    def start(self, ctx: LocalContext) -> _PipelineState:
        # A legitimate initial state; faults may replace it arbitrarily.
        levels: List[Any] = [self.inner.start(ctx)]
        for _ in range(self.horizon):
            levels.append(levels[-1])  # placeholder garbage, self-corrects
        return _PipelineState(tuple(levels))

    def halted(self, ctx: LocalContext, state: _PipelineState) -> bool:
        return False  # self-stabilising algorithms run forever

    def output(self, ctx: LocalContext, state: _PipelineState) -> Any:
        return self.inner.output(ctx, state.pipeline[self.horizon])

    # -- communication ----------------------------------------------------

    def _level_emit(self, ctx: LocalContext, level_state: Any) -> Any:
        try:
            return self.inner.emit(ctx, level_state)
        except Exception:
            return self.inner.emit(ctx, self.inner.start(ctx))

    def emit(self, ctx: LocalContext, state: _PipelineState) -> Any:
        if self.model == BROADCAST:
            return tuple(
                self._level_emit(ctx, state.pipeline[i]) for i in range(self.horizon)
            )
        # port model: stack per-port messages into per-port tuples
        stacked: List[List[Any]] = [[] for _ in range(ctx.degree)]
        for i in range(self.horizon):
            out = self._level_emit(ctx, state.pipeline[i])
            if out is None:
                out = [None] * ctx.degree
            for p in range(ctx.degree):
                stacked[p].append(out[p])
        return [tuple(msgs) for msgs in stacked]

    def step(
        self, ctx: LocalContext, state: _PipelineState, inbox: Sequence[Any]
    ) -> _PipelineState:
        new_levels: List[Any] = [self.inner.start(ctx)]
        for i in range(self.horizon):
            level_inbox = self._project_level(ctx, inbox, i)
            prev = state.pipeline[i]
            try:
                nxt = self.inner.step(ctx, prev, level_inbox)
            except Exception:
                # Corrupted level: reset it; correctness re-establishes
                # itself level by level over the next rounds.
                nxt = self.inner.start(ctx)
            new_levels.append(nxt)
        return _PipelineState(tuple(new_levels))

    def _project_level(self, ctx: LocalContext, inbox: Sequence[Any], i: int) -> Any:
        if self.model == BROADCAST:
            level_msgs = []
            for stacked in inbox:
                if isinstance(stacked, tuple) and len(stacked) == self.horizon:
                    level_msgs.append(stacked[i])
                else:
                    level_msgs.append(None)  # corrupted neighbour message
            return tuple(canonical_sorted(level_msgs))
        out = []
        for p in range(ctx.degree):
            stacked = inbox[p]
            if isinstance(stacked, tuple) and len(stacked) == self.horizon:
                out.append(stacked[i])
            else:
                out.append(None)
        return out


def run_self_stabilising(
    graph,
    inner: Machine,
    horizon: int,
    rounds: int,
    inputs: Optional[Sequence[Any]] = None,
    globals_map=None,
    fault_adversary=None,
    seed: Optional[int] = None,
) -> RunResult:
    """Run the transformed machine for a fixed number of real rounds."""
    machine = SelfStabilisingMachine(inner, horizon)
    return run(
        graph,
        machine,
        inputs=inputs,
        globals_map=globals_map,
        max_rounds=rounds,
        fault_adversary=fault_adversary,
        seed=seed,
    )
