"""Polishchuk–Suomela local 3-approximation for vertex cover [30].

"A simple local 3-approximation algorithm for vertex cover" (IPL
2009): simulate a maximal matching in the **bipartite double cover**
of the graph.  Every node plays two roles — a *white* copy that
proposes along its ports in order, and a *black* copy that accepts the
lowest-port proposal it has received while unmatched.  A node joins
the cover iff either of its copies is matched.

Anonymous, port-numbering model, unweighted, ``2Δ`` rounds, factor 3 —
the row "deterministic / unweighted / 3 / O(Δ)" of Table 1.  It is the
natural foil for the paper's Section 3 algorithm, which achieves
factor 2, weighted, in ``O(Δ + log* W)`` rounds under the *same*
assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Sequence

from repro.graphs.topology import PortNumberedGraph
from repro.simulator.machine import PORT_NUMBERING, LocalContext, Machine
from repro.simulator.runtime import RunResult, run_port_numbering

__all__ = [
    "PolishchukSuomelaMachine",
    "PSResult",
    "vertex_cover_3approx_ps",
    "ps_round_count",
]


def ps_round_count(delta: int) -> int:
    """Exact round count: two rounds per port index."""
    return 2 * delta


@dataclass
class _PSState:
    idx: int = 0
    white_matched_port: Optional[int] = None
    black_matched_port: Optional[int] = None
    responses: Dict[int, str] = field(default_factory=dict)

    def clone(self) -> "_PSState":
        return _PSState(
            idx=self.idx,
            white_matched_port=self.white_matched_port,
            black_matched_port=self.black_matched_port,
            responses=dict(self.responses),
        )


class PolishchukSuomelaMachine(Machine):
    """BDC-matching 3-approximation; globals: ``delta``; no input."""

    model = PORT_NUMBERING

    def start(self, ctx: LocalContext) -> _PSState:
        if ctx.degree > ctx.require_global("delta"):
            raise ValueError("degree exceeds delta")
        return _PSState()

    def halted(self, ctx: LocalContext, state: _PSState) -> bool:
        return state.idx >= ps_round_count(ctx.require_global("delta"))

    def output(self, ctx: LocalContext, state: _PSState) -> Dict[str, Any]:
        return {
            "in_cover": (
                state.white_matched_port is not None
                or state.black_matched_port is not None
            ),
            "white_port": state.white_matched_port,
            "black_port": state.black_matched_port,
        }

    def emit(self, ctx: LocalContext, state: _PSState) -> List[Any]:
        d = ctx.degree
        out: List[Any] = [None] * d
        phase, parity = divmod(state.idx, 2)
        if parity == 0:  # white copies propose along port `phase`
            if state.white_matched_port is None and phase < d:
                out[phase] = "propose"
        else:  # black copies answer
            for p, verdict in state.responses.items():
                out[p] = verdict
        return out

    def step(self, ctx: LocalContext, state: _PSState, inbox: Sequence[Any]) -> _PSState:
        st = state.clone()
        phase, parity = divmod(st.idx, 2)
        if parity == 0:
            # Black copy gathers this phase's proposals.
            proposers = [p for p, m in enumerate(inbox) if m == "propose"]
            if proposers and st.black_matched_port is None:
                winner = min(proposers)
                st.black_matched_port = winner
                for p in proposers:
                    st.responses[p] = "accept" if p == winner else "reject"
            else:
                for p in proposers:
                    st.responses[p] = "reject"
        else:
            if (
                st.white_matched_port is None
                and phase < ctx.degree
                and inbox[phase] == "accept"
            ):
                st.white_matched_port = phase
            st.responses = {}
        st.idx += 1
        return st


@dataclass(frozen=True)
class PSResult:
    graph: PortNumberedGraph
    cover: FrozenSet[int]
    rounds: int
    run: RunResult

    def is_cover(self) -> bool:
        return all(
            u in self.cover or v in self.cover for (u, v) in self.graph.edges
        )

    @property
    def cover_size(self) -> int:
        return len(self.cover)


def vertex_cover_3approx_ps(
    graph: PortNumberedGraph, delta: Optional[int] = None
) -> PSResult:
    """Run the PS 3-approximation (unweighted)."""
    if delta is None:
        delta = graph.max_degree
    machine = PolishchukSuomelaMachine()
    result = run_port_numbering(
        graph,
        machine,
        globals_map={"delta": delta},
        max_rounds=max(1, ps_round_count(delta)),
    )
    if not result.all_halted:
        raise RuntimeError("PS machine did not complete its schedule")
    cover = frozenset(v for v in graph.nodes() if result.outputs[v]["in_cover"])
    return PSResult(graph=graph, cover=cover, rounds=result.rounds, run=result)
