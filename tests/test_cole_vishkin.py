"""Tests for the Cole–Vishkin machinery (classic, GPS, and weak variants)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro._util.logstar import log_star
from repro.core.cole_vishkin import (
    CV_FIXPOINT_COLOURS,
    cv_pseudo_parent,
    cv_schedule_length,
    cv_step_colour,
    eliminate_class_colour,
    is_proper_forest_colouring,
    is_weak_colouring,
    shift_down_root_colour,
    three_colour_rooted_forest,
    weak_colour_reduction_dag,
)


class TestCvStep:
    def test_known_example(self):
        # own = 0b0110, parent = 0b0100: lowest differing bit is 1,
        # bit_1(own) = 1 -> new colour 2*1 + 1 = 3.
        assert cv_step_colour(0b0110, 0b0100) == 3

    def test_equal_colours_rejected(self):
        with pytest.raises(ValueError):
            cv_step_colour(5, 5)

    @given(st.integers(0, 2**64), st.integers(0, 2**64))
    @settings(max_examples=200)
    def test_adjacent_nodes_stay_distinct(self, a, b):
        """The CV guarantee: if c(u) != c(v) and v is u's parent, the new
        colours differ regardless of v's own parent."""
        if a == b:
            return
        new_a = cv_step_colour(a, b)  # u with parent v
        for c in (a ^ 1, b ^ 1, 12345):  # several possible grandparents
            if c == b:
                continue
            new_b = cv_step_colour(b, c)
            assert new_a != new_b

    @given(st.integers(0, 2**32))
    def test_pseudo_parent_differs(self, c):
        assert cv_pseudo_parent(c) != c


class TestSchedule:
    def test_small_values(self):
        assert cv_schedule_length(1) == 0
        assert cv_schedule_length(6) == 0
        assert cv_schedule_length(7) == 1

    def test_logstar_shape(self):
        """Schedule length tracks log* up to an additive constant."""
        for chi in (2, 10, 2**10, 2**100, 2**1000, 2**10000):
            assert cv_schedule_length(chi) <= log_star(chi) + 4

    def test_monotone(self):
        values = [cv_schedule_length(2**k) for k in range(1, 40)]
        assert all(a <= b for a, b in zip(values, values[1:], strict=False) if True) or True
        assert values == sorted(values)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            cv_schedule_length(0)


class TestHelpers:
    def test_shift_down_root_avoids_own(self):
        for c in range(6):
            assert shift_down_root_colour(c) != c
            assert shift_down_root_colour(c) in (0, 1, 2)

    def test_eliminate_class_picks_free_colour(self):
        assert eliminate_class_colour(4, 4, 0, 1) == 2
        assert eliminate_class_colour(4, 4, None, 0) in (1, 2)
        assert eliminate_class_colour(2, 4, 0, 1) == 2  # not in class: unchanged


def _random_forest(rng: random.Random, n: int):
    """Random rooted forest as a parent array."""
    parent = []
    for v in range(n):
        if v == 0 or rng.random() < 0.2:
            parent.append(None)
        else:
            parent.append(rng.randrange(v))
    return parent


class TestThreeColourForest:
    @pytest.mark.parametrize("seed", range(8))
    def test_proper_three_colouring(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 40)
        parent = _random_forest(rng, n)
        chi = 10**9
        initial = rng.sample(range(chi), n)  # distinct colours (like ids)
        colours, steps = three_colour_rooted_forest(parent, initial, chi)
        assert all(c in (0, 1, 2) for c in colours)
        assert is_proper_forest_colouring(parent, colours)
        assert steps == cv_schedule_length(chi)

    def test_single_node(self):
        colours, _ = three_colour_rooted_forest([None], [42], 100)
        assert colours[0] in (0, 1, 2)

    def test_path_tree(self):
        n = 20
        parent = [None] + list(range(n - 1))
        colours, _ = three_colour_rooted_forest(parent, list(range(n)), n)
        assert is_proper_forest_colouring(parent, colours)
        assert set(colours) <= {0, 1, 2}

    def test_improper_initial_rejected(self):
        with pytest.raises(ValueError, match="not proper"):
            three_colour_rooted_forest([None, 0], [7, 7], 8)


def _random_dag_with_decreasing_values(rng: random.Random, n: int):
    """DAG whose colours strictly decrease along edges (like Lemma 3)."""
    values = rng.sample(range(1, 10**6), n)
    successors = [[] for _ in range(n)]
    for u in range(n):
        for v in range(n):
            if values[v] < values[u] and rng.random() < 0.15:
                successors[u].append(v)
    return successors, values


class TestWeakColourReduction:
    @pytest.mark.parametrize("seed", range(10))
    def test_reaches_fixpoint_palette(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 30)
        successors, values = _random_dag_with_decreasing_values(rng, n)
        colours, _ = weak_colour_reduction_dag(successors, values, chi=10**6)
        assert all(0 <= c < CV_FIXPOINT_COLOURS for c in colours)
        assert is_weak_colouring(successors, colours)

    def test_figure2_style_chain(self):
        """A DAG shaped like Figure 2: values decrease along arrows."""
        # 9 nodes, colours 10..90; edges from higher to lower initial colour
        successors = [[], [0], [0, 1], [1], [2, 3], [3], [4], [4, 5], [6, 7]]
        colours = [10, 20, 30, 40, 50, 60, 70, 80, 90]
        out, trace = weak_colour_reduction_dag(
            successors, colours, chi=91, record_trace=True
        )
        assert is_weak_colouring(successors, out)
        assert all(0 <= c < 6 for c in out)
        # invariant holds at every intermediate step too
        for step_colours in trace:
            assert is_weak_colouring(successors, step_colours)

    def test_rejects_invalid_initial(self):
        with pytest.raises(ValueError, match="weak colouring"):
            weak_colour_reduction_dag([[1], []], [5, 5], chi=6)

    def test_empty_dag(self):
        colours, _ = weak_colour_reduction_dag([[], []], [100, 100], chi=101)
        assert all(0 <= c < 6 for c in colours)

    def test_common_successor_colour_semantics(self):
        """All successors selected via l(u) share one colour: the CV step
        treats them as a single parent and must separate u from each."""
        successors = [[1, 2], [], []]
        colours = [50, 7, 7]  # both successors same colour != own
        out, _ = weak_colour_reduction_dag(successors, colours, chi=51)
        assert out[0] != out[1] or out[0] != out[2] or is_weak_colouring(successors, out)
        assert is_weak_colouring(successors, out)
