"""Ablations and sequential references for the Section 3 algorithm.

Two purposes:

1. **Cross-checking.** :func:`phase1_reference` re-implements Phase I
   of the edge-packing algorithm as plain sequential mathematics (no
   messages, no simulator).  The test suite asserts the distributed
   machine reaches *exactly* this state after its Phase I rounds —
   protocol and mathematics are verified against each other.

2. **Ablation.** DESIGN.md calls for measuring what each design piece
   buys.  Phase I alone (the offer/accept step with colour growth) is
   *not* sufficient: Lemma 1 only guarantees that surviving edges are
   multicoloured, not saturated.  :func:`phase1_only_cover_attempt`
   quantifies the gap — how many edges Phase II must still saturate,
   and on which instances Phase I alone would already be maximal.
   (A companion ablation drops the colour bookkeeping entirely, which
   recovers the KVY-style baseline in :mod:`repro.baselines.kvy`: the
   offer/accept step without colours has no Δ-round termination
   guarantee.)
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.graphs.topology import PortNumberedGraph
from repro.core.edge_packing import ACTIVE, MULTICOLOURED, SATURATED

__all__ = [
    "Phase1State",
    "phase1_reference",
    "phase1_only_cover_attempt",
]


@dataclass(frozen=True)
class Phase1State:
    """Sequential Phase I outcome.

    ``edge_state[e]`` is SATURATED or MULTICOLOURED (ACTIVE must be
    gone after Δ iterations — Lemma 1); ``colour_seq[v]`` is the
    Lemma 2 sequence grown at node ``v``.
    """

    y: Dict[int, Fraction]
    residual: Tuple[Fraction, ...]
    edge_state: Dict[int, str]
    colour_seq: Tuple[Tuple[Fraction, ...], ...]

    @property
    def saturated_nodes(self) -> FrozenSet[int]:
        return frozenset(
            v for v, r in enumerate(self.residual) if r == 0
        )

    def multicoloured_edges(self) -> List[int]:
        return [e for e, s in self.edge_state.items() if s == MULTICOLOURED]


def phase1_reference(
    graph: PortNumberedGraph,
    weights: Sequence[int],
    iterations: Optional[int] = None,
) -> Phase1State:
    """Sequential Phase I: Section 3.2 steps (i)-(iii), `iterations` times.

    Semantics mirror the distributed machine exactly: all offers are
    computed from the same pre-round state; an edge whose endpoint
    saturates this iteration becomes SATURATED even if its colour
    elements also differed (saturation takes precedence, matching the
    machine's next-round upgrade of MULTI to SAT).
    """
    n = graph.n
    if iterations is None:
        iterations = graph.max_degree
    one = Fraction(1)
    residual = [Fraction(int(w)) for w in weights]
    y: Dict[int, Fraction] = {e: Fraction(0) for e in range(graph.m)}
    state: Dict[int, str] = {e: ACTIVE for e in range(graph.m)}
    seqs: List[List[Fraction]] = [[] for _ in range(n)]

    for _t in range(iterations):
        active = [e for e, s in state.items() if s == ACTIVE]
        deg_yc = [0] * n
        for e in active:
            u, v = graph.edges[e]
            deg_yc[u] += 1
            deg_yc[v] += 1
        x: List[Optional[Fraction]] = [
            residual[v] / deg_yc[v] if residual[v] > 0 and deg_yc[v] > 0 else None
            for v in range(n)
        ]
        # step (ii): every active edge accepts the minimum offer
        for e in active:
            u, v = graph.edges[e]
            if x[u] is None or x[v] is None:
                raise AssertionError("active edge without mutual offers")
            inc = min(x[u], x[v])
            y[e] += inc
            residual[u] -= inc
            residual[v] -= inc
        # step (iii): grow colour sequences (1 for nodes outside V_yc)
        elements = [x[v] if x[v] is not None else one for v in range(n)]
        for v in range(n):
            seqs[v].append(elements[v])
        # resolve edge states: saturation beats multicolouring
        for e in active:
            u, v = graph.edges[e]
            if residual[u] == 0 or residual[v] == 0:
                state[e] = SATURATED
            elif elements[u] != elements[v]:
                state[e] = MULTICOLOURED
        # multicoloured edges whose endpoint saturates in a *later*
        # iteration leave the set A as well (they are saturated) — the
        # machine learns this from the next saturation-bit exchange.
        for e, s in state.items():
            if s == MULTICOLOURED:
                u, v = graph.edges[e]
                if residual[u] == 0 or residual[v] == 0:
                    state[e] = SATURATED

    return Phase1State(
        y=y,
        residual=tuple(residual),
        edge_state=dict(state),
        colour_seq=tuple(tuple(s) for s in seqs),
    )


@dataclass(frozen=True)
class Phase1Ablation:
    """Outcome of running Phase I alone and stopping."""

    unsaturated_edges: int
    total_edges: int
    cover_is_valid: bool
    phase2_needed: bool


def phase1_only_cover_attempt(
    graph: PortNumberedGraph, weights: Sequence[int]
) -> Phase1Ablation:
    """Run Phase I only; measure how far from a vertex cover it lands.

    The "cover" attempted is the set of saturated nodes after Phase I.
    Phase II exists precisely because this is sometimes not a cover:
    multicoloured edges have both endpoints unsaturated.
    """
    ref = phase1_reference(graph, weights)
    multi = ref.multicoloured_edges()
    saturated = ref.saturated_nodes
    uncovered = [
        e for e in range(graph.m)
        if not (graph.edges[e][0] in saturated or graph.edges[e][1] in saturated)
    ]
    return Phase1Ablation(
        unsaturated_edges=len(uncovered),
        total_edges=graph.m,
        cover_is_valid=not uncovered,
        phase2_needed=bool(multi) and bool(uncovered),
    )
