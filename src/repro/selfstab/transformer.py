"""Self-stabilising transformer (Lenzen–Suomela–Wattenhofer [23]).

Section 1.5 of the paper: "standard techniques [4, 5, 23] can be used
to convert our algorithms into efficient self-stabilising algorithms".
The technique of [23] applies to any deterministic synchronous
algorithm with a running time ``T`` that is a function of global
parameters only — exactly what the paper's machines provide:

Every node stores the full *pipeline* of T+1 simulated states —
``pipeline[i]`` claims to be the wrapped machine's state after ``i``
rounds.  In every real round, every node

1. sends, for each level ``i < T``, the message the wrapped machine
   would send from ``pipeline[i]`` (one stacked message);
2. recomputes the whole pipeline from scratch:
   ``pipeline'[0] = start()`` and
   ``pipeline'[i+1] = step(pipeline[i], level-i inbox)``.

Level ``i`` is correct once the preceding ``i`` rounds were fault-free
(induction on levels), so after ``T`` consecutive fault-free rounds
the output — read from ``pipeline[T]`` — is correct *regardless of the
initial or corrupted state*: that is self-stabilisation.  The price is
a factor-``T`` blow-up in message size and local memory, and that the
algorithm never terminates (it keeps re-verifying forever), both
standard for the transformation.

A corrupted level may contain structurally invalid data that makes the
wrapped machine raise; the transformer treats any raising level as
garbage and resets it to ``start()`` — a form of local checking in the
spirit of Awerbuch–Varghese [5].

**Replay modes.**  Recomputing all ``T+1`` levels every real round is
the transformation's textbook description and stays available as
``replay="scratch"`` — the executable reference contract.  The default
``replay="incremental"`` skips levels whose inputs did not change: a
level's successor is a pure function of ``(ctx, state, inbox)``, so a
content-addressed memo (:class:`repro._util.memo.ReplayMemo`, keyed on
fingerprints of exactly those three values) returns the previous
round's result whenever the inputs hash-match, and only *dirtied*
levels — corrupted by a fault adversary, or still converging — are
stepped through the wrapped machine.  In a fault-free steady state
every level hits.  Nodes that cannot be fingerprinted (a per-node
``ctx.rng``, which would make transitions depend on more than the
fingerprinted values, or unpicklable state) transparently fall back to
the scratch path; results are bit-for-bit identical across modes
(``tests/test_replay_memo.py``).

For a *cheap* wrapped machine — most visibly during its convergence
window, where pipeline levels are fresh objects and every fingerprint
is a real pickle — fingerprinting can cost more than the stepping it
skips.  The machine therefore measures both sides continuously
(:class:`_AdaptiveFingerprinting`): when a probe window's fingerprint
cost exceeds the measured cost of the steps its hits avoided, both
hooks fall back to the plain scratch path for a back-off window
before probing again — so the steady state (where one whole-step hit
replaces the entire pipeline recompute) is always rediscovered.  Like
everything else here the adaptivity is wall-clock only; results never
change.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.obs import clock as _clock
from typing import Any, List, Optional, Sequence, Tuple

from repro._util.identity import IdentityMemo
from repro._util.memo import (
    REPLAY_INCREMENTAL,
    FingerprintCache,
    ReplayMemo,
    content_fingerprint,
    validate_replay,
)
from repro._util.ordering import canonical_sorted
from repro.simulator.machine import BROADCAST, PORT_NUMBERING, LocalContext, Machine
from repro.simulator.runtime import RunResult, run

__all__ = ["SelfStabilisingMachine", "run_self_stabilising"]


@dataclass
class _PipelineState:
    pipeline: Tuple[Any, ...]  # T+1 levels

    def clone(self) -> "_PipelineState":
        return _PipelineState(self.pipeline)


class _AdaptiveFingerprinting:
    """Wall-clock policy: probe whether fingerprinting currently pays.

    For a *cheap* wrapped machine, fingerprinting a pipeline level can
    cost more than simply re-stepping it — most visibly during the
    convergence window, where levels are fresh objects every round and
    each fingerprint is a real pickle.  The machine measures both
    sides over a probe window of ``step`` calls: the time spent
    building fingerprints, the time spent in the wrapped machine's
    ``step`` (giving a running average step cost), and how many steps
    the memo hits actually avoided.  When the measured fingerprint
    cost exceeds the measured cost of the steps it saved
    (``fp_time > avg_step_time × steps_avoided``), fingerprinting is
    disabled for a back-off window — the scratch stepping path runs
    instead — and then probed again, so a machine whose steps *are*
    worth skipping (or a run entering the fault-free steady state,
    where one whole-step hit replaces the entire pipeline recompute)
    is always rediscovered.

    The policy only ever changes wall-clock time: the plain path *is*
    the scratch step body, the memo stays content-addressed, and every
    differential test holds whatever this decides.
    """

    __slots__ = (
        "probe", "backoff", "plain_left", "avg_step", "disables",
        "_calls", "_fp_s", "_step_s", "_stepped", "_avoided",
    )

    PROBE = 24
    BACKOFF = 240

    def __init__(self, probe: int = PROBE, backoff: int = BACKOFF):
        self.probe = probe
        self.backoff = backoff
        self.plain_left = 0
        self.avg_step: Optional[float] = None  # EMA of one inner.step
        self.disables = 0  # back-off windows triggered (for tests/stats)
        self._reset_window()

    def _reset_window(self) -> None:
        self._calls = 0
        self._fp_s = 0.0
        self._step_s = 0.0
        self._stepped = 0
        self._avoided = 0

    def use_fingerprints(self) -> bool:
        """Called once per ``step``; False = take the scratch path."""
        if self.plain_left > 0:
            self.plain_left -= 1
            return False
        return True

    def plain_now(self) -> bool:
        """Whether a back-off window is active (``emit`` follows the
        ``step``-side decision without consuming the budget)."""
        return self.plain_left > 0

    def note(self, fp_seconds: float, step_seconds: float,
             stepped: int, avoided: int) -> None:
        """Account one fingerprinted ``step`` call: time spent on
        fingerprints, time spent in ``stepped`` real steps, and how
        many steps the memo hits ``avoided``."""
        self._calls += 1
        self._fp_s += fp_seconds
        self._step_s += step_seconds
        self._stepped += stepped
        self._avoided += avoided
        if self._calls < self.probe:
            return
        if self._stepped:
            sample = self._step_s / self._stepped
            self.avg_step = (
                sample if self.avg_step is None
                else 0.5 * self.avg_step + 0.5 * sample
            )
        if self.avg_step is not None:
            saved = self.avg_step * self._avoided
            if self._fp_s > saved:
                # The fingerprints cost more than the stepping they
                # saved: stop paying for a while.
                self.plain_left = self.backoff
                self.disables += 1
        self._reset_window()

    def note_emit(self, fp_seconds: float, avoided: int) -> None:
        """Account an ``emit``-side fingerprint (its hits avoid one
        ``inner.emit`` per level, valued at the step average; no
        probe-window tick — the window is counted in ``step`` calls)."""
        self._fp_s += fp_seconds
        self._avoided += avoided


class SelfStabilisingMachine(Machine):
    """Wrap a fixed-schedule machine into its self-stabilising version.

    ``inner`` must be deterministic with a round count that equals
    ``horizon`` on every execution (true for the paper's machines,
    whose schedules depend only on the global parameters).
    """

    # Sentinel for "this node cannot be fingerprinted" (IdentityMemo
    # reserves None for misses).
    _NO_FP = b""

    def __init__(
        self, inner: Machine, horizon: int, replay: str = REPLAY_INCREMENTAL
    ):
        if horizon < 0:
            raise ValueError("horizon must be >= 0")
        self.inner = inner
        self.horizon = horizon
        self.model = inner.model
        self.replay = validate_replay(replay)
        incremental = replay == REPLAY_INCREMENTAL
        # (ctx fp, state fp, inbox fp) -> next level state.  Shared
        # across nodes and levels: the key is the full input content,
        # so a hit is semantically identical to re-stepping.
        self._step_memo = ReplayMemo() if incremental else None
        # Fingerprints pipeline states *and* message payloads (both
        # recur across rounds by identity once the memos are warm).
        self._state_fps = FingerprintCache(limit=1 << 15) if incremental else None
        # Measured fingerprint-vs-step adaptivity (wall-clock only):
        # during unprofitable convergence windows step() falls back to
        # plain stepping instead of paying for fingerprints that miss.
        self._adapt = _AdaptiveFingerprinting() if incremental else None
        self._ctx_fps: IdentityMemo = IdentityMemo(limit=1 << 12)
        self._starts: IdentityMemo = IdentityMemo(limit=1 << 12)

    def with_replay(self, replay: str) -> "SelfStabilisingMachine":
        validate_replay(replay)
        if replay == self.replay:
            return self
        return SelfStabilisingMachine(self.inner, self.horizon, replay=replay)

    # -- lifecycle -------------------------------------------------------

    def start(self, ctx: LocalContext) -> _PipelineState:
        # A legitimate initial state; faults may replace it arbitrarily.
        levels: List[Any] = [self.inner.start(ctx)]
        for _ in range(self.horizon):
            levels.append(levels[-1])  # placeholder garbage, self-corrects
        return _PipelineState(tuple(levels))

    def halted(self, ctx: LocalContext, state: _PipelineState) -> bool:
        return False  # self-stabilising algorithms run forever

    def output(self, ctx: LocalContext, state: _PipelineState) -> Any:
        return self.inner.output(ctx, state.pipeline[self.horizon])

    # -- communication ----------------------------------------------------

    def _level_emit(self, ctx: LocalContext, level_state: Any) -> Any:
        try:
            return self.inner.emit(ctx, level_state)
        except Exception:
            return self.inner.emit(ctx, self.inner.start(ctx))

    def emit(self, ctx: LocalContext, state: _PipelineState) -> Any:
        if self._step_memo is None or self._adapt.plain_now():
            return self._emit_scratch(ctx, state)
        # Incremental: the stacked message is a pure function of
        # (ctx, pipeline levels 0..T-1); in a fault-free steady state
        # the pipeline repeats round after round, so the memo returns
        # the *same* stacked object — which also keeps the runtime's
        # identity-memoised metering/keying of the payload O(1).
        ctx_fp = self._ctx_fingerprint(ctx)
        key = None
        t0 = _clock()
        if ctx_fp is not None:
            fp_of = self._state_fps.of
            try:
                key = (
                    b"emit",
                    ctx_fp,
                    tuple(fp_of(s) for s in state.pipeline[: self.horizon]),
                )
            except Exception:
                key = None
        fp_s = _clock() - t0
        if key is not None:
            cached = self._step_memo.get(key)
            if cached is not None:
                self._adapt.note_emit(fp_s, self.horizon)
                return cached[0]
        self._adapt.note_emit(fp_s, 0)
        out = self._emit_scratch(ctx, state)
        if key is not None:
            # 1-tuple wrapper: a silent (None) payload is still cacheable.
            self._step_memo.put(key, (out,))
        return out

    def _emit_scratch(self, ctx: LocalContext, state: _PipelineState) -> Any:
        if self.model == BROADCAST:
            return tuple(
                self._level_emit(ctx, state.pipeline[i]) for i in range(self.horizon)
            )
        # port model: stack per-port messages into per-port tuples
        stacked: List[List[Any]] = [[] for _ in range(ctx.degree)]
        for i in range(self.horizon):
            out = self._level_emit(ctx, state.pipeline[i])
            if out is None:
                out = [None] * ctx.degree
            for p in range(ctx.degree):
                stacked[p].append(out[p])
        return [tuple(msgs) for msgs in stacked]

    def step(
        self, ctx: LocalContext, state: _PipelineState, inbox: Sequence[Any]
    ) -> _PipelineState:
        if self._step_memo is not None and self._adapt.use_fingerprints():
            ctx_fp = self._ctx_fingerprint(ctx)
            if ctx_fp is not None:
                return self._step_incremental(ctx, ctx_fp, state, inbox)
        new_levels: List[Any] = [self.inner.start(ctx)]
        for i in range(self.horizon):
            level_inbox = self._project_level(ctx, inbox, i)
            prev = state.pipeline[i]
            try:
                nxt = self.inner.step(ctx, prev, level_inbox)
            except Exception:
                # Corrupted level: reset it; correctness re-establishes
                # itself level by level over the next rounds.
                nxt = self.inner.start(ctx)
            new_levels.append(nxt)
        return _PipelineState(tuple(new_levels))

    def _step_incremental(
        self, ctx: LocalContext, ctx_fp: bytes, state: _PipelineState, inbox
    ) -> _PipelineState:
        """Skip levels whose (state, inbox) inputs hash-match a previous
        computation; step only dirtied levels through the wrapped
        machine.  Value-identical to the scratch loop above.

        Fingerprinting and stepping are both timed, feeding the
        :class:`_AdaptiveFingerprinting` policy that decides whether
        the *next* calls take this path at all."""
        memo = self._step_memo
        fp_of = self._state_fps.of
        fp_s = 0.0
        step_s = 0.0
        stepped = 0
        avoided = 0
        # Whole-step short-circuit: the new pipeline is a pure function
        # of (ctx, pipeline, stacked inbox).  In a fault-free steady
        # state both repeat round after round, so one lookup replaces
        # the entire per-level loop.
        whole_key = None
        t0 = _clock()
        try:
            whole_key = (
                b"step",
                ctx_fp,
                tuple(fp_of(s) for s in state.pipeline),
                tuple(fp_of(m) for m in inbox),
            )
        except Exception:
            pass
        fp_s += _clock() - t0
        if whole_key is not None:
            cached = memo.get(whole_key)
            if cached is not None:
                self._adapt.note(fp_s, step_s, 0, self.horizon)
                return cached
        new_levels: List[Any] = [self._start_state(ctx)]
        for i in range(self.horizon):
            level_inbox = self._project_level(ctx, inbox, i)
            prev = state.pipeline[i]
            t0 = _clock()
            try:
                # Per-message fingerprints: emitted payload objects are
                # identity-stable across rounds in steady state (see
                # emit), so this is a dict lookup per message, not a
                # re-pickle of the whole inbox.
                key = (ctx_fp, fp_of(prev), tuple(fp_of(m) for m in level_inbox))
            except Exception:
                key = None  # unfingerprintable level: recompute
            fp_s += _clock() - t0
            nxt = None
            if key is not None:
                nxt = memo.get(key)
                if nxt is not None:
                    avoided += 1
            if nxt is None:
                t0 = _clock()
                try:
                    nxt = self.inner.step(ctx, prev, level_inbox)
                except Exception:
                    nxt = self._start_state(ctx)
                step_s += _clock() - t0
                stepped += 1
                if key is not None and nxt is not None:
                    memo.put(key, nxt)
            new_levels.append(nxt)
        result = _PipelineState(tuple(new_levels))
        if whole_key is not None:
            memo.put(whole_key, result)
        self._adapt.note(fp_s, step_s, stepped, avoided)
        return result

    def _start_state(self, ctx: LocalContext) -> Any:
        """``inner.start(ctx)``, computed once per context.

        Only used on fingerprintable (rng-free) nodes, where ``start``
        is a pure function of the context.
        """
        s0 = self._starts.get(ctx)
        if s0 is None:
            s0 = self.inner.start(ctx)
            if s0 is not None:
                self._starts.put(ctx, s0)
        return s0

    def _ctx_fingerprint(self, ctx: LocalContext) -> Optional[bytes]:
        """Fingerprint of the context fields a pure hook may depend on,
        or ``None`` when this node must use the scratch path (per-node
        rng — transitions could depend on more than the fingerprinted
        values — or unpicklable input/globals)."""
        fp = self._ctx_fps.get(ctx)
        if fp is None:
            if ctx.rng is not None:
                fp = self._NO_FP
            else:
                try:
                    fp = content_fingerprint(
                        (ctx.degree, ctx.input, tuple(sorted(ctx.globals.items())))
                    )
                except Exception:
                    fp = self._NO_FP
            self._ctx_fps.put(ctx, fp)
        return fp or None

    def _project_level(self, ctx: LocalContext, inbox: Sequence[Any], i: int) -> Any:
        if self.model == BROADCAST:
            level_msgs = []
            for stacked in inbox:
                if isinstance(stacked, tuple) and len(stacked) == self.horizon:
                    level_msgs.append(stacked[i])
                else:
                    level_msgs.append(None)  # corrupted neighbour message
            return tuple(canonical_sorted(level_msgs))
        out = []
        for p in range(ctx.degree):
            stacked = inbox[p]
            if isinstance(stacked, tuple) and len(stacked) == self.horizon:
                out.append(stacked[i])
            else:
                out.append(None)
        return out


def run_self_stabilising(
    graph,
    inner: Machine,
    horizon: int,
    rounds: int,
    inputs: Optional[Sequence[Any]] = None,
    globals_map=None,
    fault_adversary=None,
    seed: Optional[int] = None,
    replay: str = REPLAY_INCREMENTAL,
) -> RunResult:
    """Run the transformed machine for a fixed number of real rounds.

    ``replay`` selects the pipeline recompute strategy (see the module
    docstring); results are identical either way.
    """
    machine = SelfStabilisingMachine(inner, horizon, replay=replay)
    return run(
        graph,
        machine,
        inputs=inputs,
        globals_map=globals_map,
        max_rounds=rounds,
        fault_adversary=fault_adversary,
        seed=seed,
    )
