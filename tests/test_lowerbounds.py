"""Tests for the Section 6 lower-bound constructions."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.exact import exact_min_set_cover
from repro.core.set_cover import set_cover_f_approx
from repro.lowerbounds.cycle_reduction import (
    adversarial_increasing_ids,
    cycle_setcover_instance,
    extract_independent_set,
    independent_set_size_guarantee,
    is_independent_in_cycle,
    local_max_independent_set,
    optimal_cycle_cover_size,
)
from repro.lowerbounds.symmetric import (
    symmetric_lower_bound_demo,
    trivial_algorithm_port_sensitivity,
)


class TestSymmetricLowerBound:
    @pytest.mark.parametrize("p", [1, 2, 3, 4])
    def test_f_approx_forced_to_ratio_p(self, p):
        demo = symmetric_lower_bound_demo(p)
        assert demo.cover == frozenset(range(p))
        assert demo.matches_lower_bound
        assert demo.ratio == p

    @pytest.mark.parametrize("p", [2, 3, 5])
    def test_trivial_algorithm_port_sensitivity(self, p):
        sizes = trivial_algorithm_port_sensitivity(p)
        assert sizes["canonical"] == 1  # all elements break ties identically
        assert sizes["symmetric"] == p  # symmetry forces the worst case


class TestCycleInstance:
    def test_structure(self):
        inst = cycle_setcover_instance(9, 3)
        assert inst.n_subsets == 9 and inst.n_elements == 9
        assert inst.f == 3 and inst.k == 3
        assert inst.subsets[0] == frozenset({0, 1, 2})
        assert inst.subsets[8] == frozenset({8, 0, 1})

    def test_optimum(self):
        for n, p in [(9, 3), (12, 4), (10, 5), (16, 2)]:
            inst = cycle_setcover_instance(n, p)
            opt, cover = exact_min_set_cover(inst)
            assert opt == optimal_cycle_cover_size(n, p) == n // p

    def test_non_divisible_optimum(self):
        inst = cycle_setcover_instance(10, 3)
        opt, _ = exact_min_set_cover(inst)
        assert opt == optimal_cycle_cover_size(10, 3) == 4

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            cycle_setcover_instance(2, 3)
        with pytest.raises(ValueError):
            cycle_setcover_instance(5, 0)


class TestExtraction:
    def test_extract_from_partial_cover(self):
        n, p = 12, 3
        cover = {0, 3, 6, 9}  # optimal cover
        ind = extract_independent_set(n, p, cover)
        # X = complement; heads of each run of consecutive non-cover nodes
        assert ind == frozenset({1, 4, 7, 10})
        assert is_independent_in_cycle(n, ind)

    def test_extract_is_always_independent(self):
        n, p = 15, 3
        for cover in ({0, 5, 10}, {0, 1, 2}, set(range(0, 15, 2))):
            ind = extract_independent_set(n, p, cover)
            assert is_independent_in_cycle(n, ind)

    def test_size_guarantee_for_valid_covers(self):
        """The ceil((n-|C|)/p) bound holds whenever C is a valid cover."""
        n, p = 20, 4
        inst = cycle_setcover_instance(n, p)
        for stride in (4, 3, 2):
            cover = set(range(0, n, stride))
            assert inst.is_cover(cover)
            ind = extract_independent_set(n, p, cover)
            assert len(ind) >= independent_set_size_guarantee(n, p, len(cover))

    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=2, max_value=6),
        st.sets(st.integers(min_value=0, max_value=29)),
    )
    @settings(max_examples=60, deadline=None)
    def test_extraction_independence_property(self, p, mult, extra):
        n = p * mult
        # Build a VALID cover: the optimal every-p-th skeleton plus noise,
        # minus at least one node so X is non-empty.
        cover = set(range(0, n, p)) | {v % n for v in extra}
        if len(cover) == n:
            cover.discard(max(cover))
        inst = cycle_setcover_instance(n, p)
        assert inst.is_cover(cover)
        ind = extract_independent_set(n, p, cover)
        assert is_independent_in_cycle(n, ind)
        assert len(ind) >= independent_set_size_guarantee(n, p, len(cover))

    def test_full_pipeline_with_our_algorithm(self):
        """Anonymous f-approx on H: ratio must be >= p (it is exactly p);
        the extraction accordingly yields the empty independent set."""
        n, p = 12, 3
        inst = cycle_setcover_instance(n, p)
        res = set_cover_f_approx(inst)
        assert res.is_cover()
        ratio = res.cover_weight / (n // p)
        assert ratio >= p  # consistent with the lower bound for anonymity
        ind = extract_independent_set(n, p, res.cover)
        assert is_independent_in_cycle(n, ind)
        assert len(ind) >= independent_set_size_guarantee(n, p, len(res.cover))


class TestLocalMaxIndependentSet:
    def test_always_independent(self):
        import random

        rng = random.Random(3)
        ids = list(range(1, 21))
        rng.shuffle(ids)
        for r in (1, 2, 3):
            ind = local_max_independent_set(ids, radius=r)
            assert is_independent_in_cycle(20, ind)

    def test_random_numbering_gives_fair_fraction(self):
        import random

        rng = random.Random(5)
        ids = list(range(1, 61))
        rng.shuffle(ids)
        ind = local_max_independent_set(ids, radius=1)
        assert len(ind) >= 60 // 10  # typically ~ n/3

    def test_adversarial_numbering_defeats_it(self):
        """Lemma 4 in action: increasing ids leave a single local max."""
        for n in (10, 30, 100):
            ids = adversarial_increasing_ids(n)
            ind = local_max_independent_set(ids, radius=1)
            assert len(ind) == 1
            ind3 = local_max_independent_set(ids, radius=3)
            assert len(ind3) == 1

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            local_max_independent_set([1, 1, 2], radius=1)
