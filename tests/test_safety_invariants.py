"""Every-round safety invariants.

Final-state checks cannot catch an algorithm that is transiently
infeasible (e.g. overpacks a node and retreats).  These tests observe
the machines at *every* round and assert the safety properties the
proofs rely on throughout:

* edge packing: ``y[v] <= w_v`` always, ``y`` monotonically
  non-decreasing per edge, edge states only move forward in the
  lattice ACTIVE -> MULTICOLOURED -> SATURATED;
* fractional packing: ``y[s] <= w_s`` always, element colours within
  ``{0..D}`` at iteration boundaries, ``y(u)`` non-decreasing.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List

import pytest

from repro.core.edge_packing import (
    ACTIVE,
    MULTICOLOURED,
    SATURATED,
    EdgePackingMachine,
    schedule_length,
)
from repro.core.fractional_packing import (
    FractionalPackingMachine,
    fp_out_degree_bound,
    fp_schedule_length,
)
from repro.graphs import families
from repro.graphs.setcover import random_instance
from repro.graphs.weights import uniform_weights
from repro.simulator.runtime import run_on_setcover, run_port_numbering

_ORDER = {ACTIVE: 0, MULTICOLOURED: 1, SATURATED: 2}


class TestEdgePackingSafety:
    @pytest.mark.parametrize("seed", range(3))
    def test_invariants_every_round(self, seed):
        g = families.gnp_random(9, 0.45, seed=seed)
        w = uniform_weights(9, 7, seed=seed + 30)
        delta, W = g.max_degree, 7

        prev_y: List[Dict[int, Fraction]] = [dict()]
        prev_states: List[Dict[int, str]] = [dict()]
        violations: List[str] = []

        def observer(round_index, states, outboxes):
            y_now: Dict[int, Fraction] = {}
            st_now: Dict[int, str] = {}
            for v in g.nodes():
                st = states[v]
                # feasibility at every instant
                if st.r < 0:
                    violations.append(f"round {round_index}: node {v} residual < 0")
                load = sum(st.y, Fraction(0))
                if load > w[v]:
                    violations.append(
                        f"round {round_index}: node {v} overpacked {load} > {w[v]}"
                    )
                for p in range(g.degree(v)):
                    e = g.edge_of_port(v, p)
                    y_now.setdefault(e, st.y[p])
                    # monotone y per edge
                    if e in prev_y[0] and st.y[p] < prev_y[0][e]:
                        violations.append(
                            f"round {round_index}: edge {e} y decreased"
                        )
                    # forward-only edge states (per endpoint view)
                    key = (v, e)
                    before = prev_states[0].get(key)
                    if before is not None and _ORDER[st.estate[p]] < _ORDER[before]:
                        violations.append(
                            f"round {round_index}: edge {e} state regressed "
                            f"{before} -> {st.estate[p]} at node {v}"
                        )
                    st_now[key] = st.estate[p]
            prev_y[0] = y_now
            prev_states[0] = st_now

        run_port_numbering(
            g,
            EdgePackingMachine(),
            inputs=list(w),
            globals_map={"delta": delta, "W": W},
            observer=observer,
            max_rounds=schedule_length(delta, W),
        )
        assert not violations, "\n".join(violations[:10])


class TestFractionalPackingSafety:
    @pytest.mark.parametrize("seed", [1, 5])
    def test_invariants_every_round(self, seed):
        inst = random_instance(5, 7, k=2, f=2, W=4, seed=seed)
        D = fp_out_degree_bound(inst.f, inst.k)
        n_s = inst.n_subsets
        violations: List[str] = []
        last_y = [Fraction(0)] * inst.n_elements

        def observer(round_index, states, outboxes):
            elements = states[n_s:]
            for u, st in enumerate(elements):
                if st.y < last_y[u]:
                    violations.append(f"round {round_index}: y(u{u}) decreased")
                last_y[u] = st.y
                if not (0 <= st.c <= D):
                    violations.append(
                        f"round {round_index}: element {u} colour {st.c} out of range"
                    )
            for s in range(n_s):
                load = sum(
                    (elements[u].y for u in inst.subsets[s]), Fraction(0)
                )
                if load > inst.weights[s]:
                    violations.append(
                        f"round {round_index}: subset {s} overpacked"
                    )

        run_on_setcover(
            inst,
            FractionalPackingMachine(),
            observer=observer,
            max_rounds=fp_schedule_length(inst.f, inst.k, inst.W),
        )
        assert not violations, "\n".join(violations[:10])
