"""Smoke tests: every example script must run cleanly."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 3, "the deliverable requires at least three examples"
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names


@pytest.mark.parametrize("script", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"{script.name} failed:\n--- stdout ---\n{proc.stdout[-2000:]}"
        f"\n--- stderr ---\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script.name} produced no output"
