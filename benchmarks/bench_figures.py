"""EXP-F1 / EXP-F2 — the worked-example figures as benchmarks."""

from __future__ import annotations

from conftest import once


def test_figure1_trace(benchmark):
    from repro.experiments.exp_figure1 import run

    table = once(benchmark, run)
    assert all(table.column("matches"))


def test_figure1_full_algorithm(benchmark):
    from repro.core.set_cover import set_cover_f_approx
    from repro.experiments.exp_figure1 import figure1_instance

    inst = figure1_instance()
    res = once(benchmark, set_cover_f_approx, inst)
    assert res.is_cover()
    assert res.certificate_ratio <= 1


def test_figure2_weak_reduction(benchmark):
    from repro.experiments.exp_figure2 import run

    table = once(benchmark, run)
    assert all(table.column("weak colouring"))


def test_figure2_large_dag(benchmark):
    """Weak reduction scaled up: 400-node random decreasing DAG."""
    import random

    from repro.core.cole_vishkin import (
        is_weak_colouring,
        weak_colour_reduction_dag,
    )

    rng = random.Random(5)
    n = 400
    values = rng.sample(range(1, 10**9), n)
    successors = [[] for _ in range(n)]
    order = sorted(range(n), key=lambda v: values[v])
    for i, u in enumerate(order):
        for v in order[:i]:
            if rng.random() < 4.0 / n:
                successors[u].append(v)

    colours = once(
        benchmark,
        lambda: weak_colour_reduction_dag(successors, values, chi=10**9)[0],
    )
    assert is_weak_colouring(successors, colours)
    assert all(0 <= c < 6 for c in colours)
