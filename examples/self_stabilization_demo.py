#!/usr/bin/env python
"""Self-stabilisation demo: surviving transient memory corruption.

Section 1.5 of the paper observes that, being deterministic and
strictly local, its algorithms convert into self-stabilising ones by
standard techniques.  Here the Section 3 edge-packing machine is
wrapped in the pipeline transformer of Lenzen–Suomela–Wattenhofer [23]
and bombarded with random state corruption; once the faults stop, the
network provably re-converges to a correct maximal edge packing within
T rounds (T = the algorithm's schedule length).

Run:  python examples/self_stabilization_demo.py
"""

from repro.analysis.verify import check_edge_packing
from repro.core.edge_packing import (
    EdgePackingMachine,
    maximal_edge_packing,
    schedule_length,
)
from repro.graphs import families
from repro.graphs.weights import uniform_weights
from repro.selfstab.transformer import run_self_stabilising
from repro.simulator.faults import RandomStateCorruption


def main() -> None:
    n = 8
    graph = families.cycle_graph(n)
    weights = uniform_weights(n, 4, seed=11)
    delta, W = 2, 4
    horizon = schedule_length(delta, W)

    reference = maximal_edge_packing(graph, weights, delta=delta, W=W)
    print(f"{n}-cycle, weights {weights}")
    print(f"wrapped algorithm schedule length T = {horizon} rounds")
    print(f"fault-free cover: {sorted(reference.saturated)}\n")

    for rate in (0.2, 0.5, 0.8):
        faulty_rounds = 15
        adversary = RandomStateCorruption(
            until_round=faulty_rounds, rate=rate, seed=int(rate * 100)
        )
        result = run_self_stabilising(
            graph,
            EdgePackingMachine(),
            horizon=horizon,
            rounds=faulty_rounds + horizon,
            inputs=list(weights),
            globals_map={"delta": delta, "W": W},
            fault_adversary=adversary,
        )
        recovered = result.outputs == reference.run.outputs

        # independently verify the recovered packing
        y = {}
        for v in graph.nodes():
            for p in range(graph.degree(v)):
                y[graph.edge_of_port(v, p)] = result.outputs[v]["y"][p]
        check = check_edge_packing(graph, weights, y)

        print(
            f"fault rate {rate:.1f}: {adversary.corruptions:3d} corruptions over "
            f"{faulty_rounds} rounds -> after T more rounds: "
            f"output == reference: {recovered}, "
            f"packing feasible={check.feasible} maximal={check.maximal}"
        )

    print("\nthe price: every message carries the whole T-level pipeline —")
    print("a factor-T blowup in message size, the standard cost of [23].")


if __name__ == "__main__":
    main()
