"""EXP-F3 / EXP-F4 — the lower-bound experiments as benchmarks."""

from __future__ import annotations

import pytest

from conftest import once


@pytest.mark.parametrize("p", [2, 3, 4])
def test_figure3_symmetric_kpp(benchmark, p):
    from repro.lowerbounds.symmetric import symmetric_lower_bound_demo

    demo = once(benchmark, symmetric_lower_bound_demo, p)
    assert demo.matches_lower_bound
    assert demo.cover == frozenset(range(p))


def test_figure3_port_sensitivity(benchmark):
    from repro.lowerbounds.symmetric import trivial_algorithm_port_sensitivity

    sizes = once(benchmark, trivial_algorithm_port_sensitivity, 4)
    assert sizes == {"canonical": 1, "symmetric": 4}


@pytest.mark.parametrize("n,p", [(8, 2), (12, 3)])
def test_figure4_reduction(benchmark, n, p):
    from repro.core.set_cover import set_cover_f_approx
    from repro.lowerbounds.cycle_reduction import (
        cycle_setcover_instance,
        extract_independent_set,
        is_independent_in_cycle,
    )

    inst = cycle_setcover_instance(n, p)

    def kernel():
        res = set_cover_f_approx(inst)
        return res, extract_independent_set(n, p, res.cover)

    res, ind = once(benchmark, kernel)
    assert res.is_cover()
    assert is_independent_in_cycle(n, ind)


def test_figure4_lemma4_adversarial(benchmark):
    from repro.lowerbounds.cycle_reduction import (
        adversarial_increasing_ids,
        local_max_independent_set,
    )

    n = 500
    ids = adversarial_increasing_ids(n)
    ind = once(benchmark, local_max_independent_set, ids, 2)
    assert len(ind) == 1  # the lower-bound phenomenon
