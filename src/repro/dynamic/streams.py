"""Edit-stream generators: adversaries for the dynamic engine.

Where :mod:`repro.simulator.faults` supplies adversaries that corrupt
node *states* between rounds (the self-stabilisation threat model),
the streams here supply adversaries that churn the *instance itself*
between solves — the dynamic-network threat model.  Each stream is a
stateful generator: ``next_batch(graph, inputs)`` inspects the current
instance and returns a batch of valid :class:`~repro.dynamic.edits.
GraphEdit` values for :meth:`repro.dynamic.session.DynamicRun.apply`.

All streams are seeded and deterministic.  A stream may return fewer
edits than configured when the graph offers no legal move (nothing
left to remove, graph already complete, degree budget exhausted) — it
never returns an invalid edit.
"""

from __future__ import annotations

import random
from bisect import insort
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.dynamic.edits import GraphEdit, add_edge, remove_edge, reweight
from repro.graphs.topology import PortNumberedGraph

__all__ = [
    "EditStream",
    "RandomChurn",
    "HubChurn",
    "SetCoverChurn",
    "SlidingWindowStream",
]


class EditStream:
    """Base class: a stateful source of edit batches.

    Streams that remember edges across batches (:class:`HubChurn`'s
    severed links, :class:`SlidingWindowStream`'s window) store them by
    node label.  Vertex removal shifts labels; the streams drop their
    memory automatically whenever the node count changes, but a batch
    of *caller-supplied* edits that removes and adds vertices in equal
    number keeps the count unchanged and is invisible to that check —
    call :meth:`forget` after applying your own vertex edits to a
    session a stream is also driving.
    """

    def next_batch(
        self, graph: PortNumberedGraph, inputs: Sequence[Any]
    ) -> List[GraphEdit]:
        raise NotImplementedError

    def forget(self) -> None:
        """Drop any remembered node-label state (see the class note)."""


def _degree_room(degrees: Sequence[int], u: int, v: int, max_degree: Optional[int]) -> bool:
    if max_degree is None:
        return True
    return degrees[u] < max_degree and degrees[v] < max_degree


def _random_absent_edge(
    rng: random.Random,
    n: int,
    edge_set: set,
    degrees: Sequence[int],
    max_degree: Optional[int],
    tries: int = 64,
) -> Optional[Tuple[int, int]]:
    """A uniform-ish absent edge respecting the degree budget, or None."""
    if n < 2:
        return None
    for _ in range(tries):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        e = (u, v) if u < v else (v, u)
        if e not in edge_set and _degree_room(degrees, u, v, max_degree):
            return e
    return None


class RandomChurn(EditStream):
    """Uniform random churn: remove existing edges, insert absent
    ones, occasionally reweight a node.

    ``max_degree`` (typically the session's pinned Δ) keeps insertions
    inside the degree budget; ``W`` enables reweights (drawn uniformly
    in ``1..W``) when ``> 1``.
    """

    def __init__(
        self,
        edits_per_batch: int = 2,
        seed: int = 0,
        p_add: float = 0.45,
        p_remove: float = 0.45,
        W: int = 1,
        max_degree: Optional[int] = None,
    ):
        if edits_per_batch < 1:
            raise ValueError("edits_per_batch must be >= 1")
        total = p_add + p_remove
        if total > 1.0 + 1e-9 or p_add < 0 or p_remove < 0:
            raise ValueError("need p_add, p_remove >= 0 with p_add + p_remove <= 1")
        self.edits_per_batch = edits_per_batch
        self.p_add = p_add
        self.p_remove = p_remove
        self.W = W
        self.max_degree = max_degree
        self.rng = random.Random(f"random-churn:{seed}")

    def next_batch(self, graph, inputs):
        rng = self.rng
        n = graph.n
        edge_set = set(graph.edges)
        # One sorted view, kept sorted across picks (identical contents
        # to re-sorting the set per pick, without the O(m log m) each).
        edge_list = sorted(edge_set)
        degrees = list(graph.degree_array)
        batch: List[GraphEdit] = []

        def pick_removal() -> None:
            e = rng.choice(edge_list)
            edge_set.discard(e)
            edge_list.remove(e)
            degrees[e[0]] -= 1
            degrees[e[1]] -= 1
            batch.append(remove_edge(*e))

        for _ in range(self.edits_per_batch):
            roll = rng.random()
            if roll >= self.p_add + self.p_remove:
                if self.W > 1 and n:
                    v = rng.randrange(n)
                    batch.append(reweight(v, rng.randint(1, self.W)))
                    continue
                # No reweights in the unweighted case: spend the slot on
                # a removal (or an insertion below if nothing is left).
                roll = 0.0
            if roll < self.p_remove and edge_set:
                pick_removal()
                continue
            e = _random_absent_edge(rng, n, edge_set, degrees, self.max_degree)
            if e is not None:
                edge_set.add(e)
                insort(edge_list, e)
                degrees[e[0]] += 1
                degrees[e[1]] += 1
                batch.append(add_edge(*e))
            elif edge_set:
                pick_removal()
        return batch


class HubChurn(EditStream):
    """Targeted churn at the hubs: each batch detaches random incident
    edges of the current maximum-degree node, re-attaching a previously
    severed one when the budget allows.

    Hubs are where an edit's dependency ball is largest, so this is the
    adversarial stream for the incremental mode (the repaired fraction
    it forces is the subsystem's worst case short of global edits).
    """

    def __init__(self, edits_per_batch: int = 2, seed: int = 0):
        if edits_per_batch < 1:
            raise ValueError("edits_per_batch must be >= 1")
        self.edits_per_batch = edits_per_batch
        self.rng = random.Random(f"hub-churn:{seed}")
        self._severed: List[Tuple[int, int]] = []
        self._n_severed: Optional[int] = None  # node count the cache refers to

    def forget(self):
        self._severed = []
        self._n_severed = None

    def next_batch(self, graph, inputs):
        rng = self.rng
        # Severed edges are remembered by node label; any vertex edit
        # shifts labels, so a changed node count invalidates the cache
        # (re-attaching a shifted pair would join the wrong sensors).
        if self._n_severed != graph.n:
            self._severed = []
            self._n_severed = graph.n
        edge_set = set(graph.edges)
        degrees = list(graph.degree_array)
        # Incidence map built once per batch and maintained across
        # edits (scanning the whole edge set per pick is O(m) each).
        incident_map: Dict[int, Set[Tuple[int, int]]] = {
            v: set() for v in range(graph.n)
        }
        for e in edge_set:
            incident_map[e[0]].add(e)
            incident_map[e[1]].add(e)
        batch: List[GraphEdit] = []
        for _ in range(self.edits_per_batch):
            # Re-attach an old severed edge half the time, if legal.
            if self._severed and rng.random() < 0.5:
                e = self._severed.pop(rng.randrange(len(self._severed)))
                if e not in edge_set and e[0] < len(degrees) and e[1] < len(degrees):
                    edge_set.add(e)
                    incident_map[e[0]].add(e)
                    incident_map[e[1]].add(e)
                    degrees[e[0]] += 1
                    degrees[e[1]] += 1
                    batch.append(add_edge(*e))
                    continue
            if not edge_set:
                continue
            hub = max(range(graph.n), key=lambda v: (degrees[v], -v))
            incident = sorted(incident_map[hub])
            if not incident:
                continue
            e = rng.choice(incident)
            edge_set.discard(e)
            incident_map[e[0]].discard(e)
            incident_map[e[1]].discard(e)
            degrees[e[0]] -= 1
            degrees[e[1]] -= 1
            self._severed.append(e)
            batch.append(remove_edge(*e))
        return batch


class SetCoverChurn(EditStream):
    """Membership churn for the set-cover flow's bipartite layout.

    Every edit the stream emits respects the pinned session bounds
    (:meth:`repro.dynamic.session.DynamicRun.set_cover`): an edge is
    only ever added between a subset node and an element node and only
    while the subset stays within size ``k`` and the element within
    frequency ``f``; a removal never orphans an element (its degree
    stays ``>= 1``); reweights target subset nodes with weights drawn
    uniformly in ``1..W``.  Roles are read off the session's role-dict
    inputs each batch, so the stream follows the instance as it drifts.

    ``f``/``k``/``W`` default to the *current* instance's values at
    each batch; pass the session's pinned bounds to let the stream
    churn up to them instead.
    """

    def __init__(
        self,
        edits_per_batch: int = 2,
        seed: int = 0,
        p_add: float = 0.45,
        p_remove: float = 0.45,
        f: Optional[int] = None,
        k: Optional[int] = None,
        W: Optional[int] = None,
    ):
        if edits_per_batch < 1:
            raise ValueError("edits_per_batch must be >= 1")
        total = p_add + p_remove
        if total > 1.0 + 1e-9 or p_add < 0 or p_remove < 0:
            raise ValueError("need p_add, p_remove >= 0 with p_add + p_remove <= 1")
        self.edits_per_batch = edits_per_batch
        self.p_add = p_add
        self.p_remove = p_remove
        self.f = f
        self.k = k
        self.W = W
        self.rng = random.Random(f"setcover-churn:{seed}")

    def next_batch(self, graph, inputs):
        rng = self.rng
        subsets = [
            v for v in range(graph.n) if inputs[v].get("role") == "subset"
        ]
        elements = [
            v for v in range(graph.n) if inputs[v].get("role") == "element"
        ]
        if not subsets or not elements:
            return []
        edge_set = set(graph.edges)
        degrees = list(graph.degree_array)
        f = self.f if self.f is not None else max(degrees[e] for e in elements)
        k = self.k if self.k is not None else max(degrees[s] for s in subsets)
        W = self.W if self.W is not None else max(
            inputs[s].get("weight", 1) for s in subsets
        )
        batch: List[GraphEdit] = []

        def try_add() -> bool:
            for _ in range(64):
                s = rng.choice(subsets)
                u = rng.choice(elements)
                if degrees[s] >= k or degrees[u] >= f:
                    continue
                e = (s, u) if s < u else (u, s)
                if e in edge_set:
                    continue
                edge_set.add(e)
                degrees[s] += 1
                degrees[u] += 1
                batch.append(add_edge(*e))
                return True
            return False

        def try_remove() -> bool:
            # Only edges whose element endpoint keeps degree >= 1.
            candidates = [
                e
                for e in sorted(edge_set)
                if degrees[e[0] if inputs[e[0]]["role"] == "element" else e[1]]
                > 1
            ]
            if not candidates:
                return False
            e = rng.choice(candidates)
            edge_set.discard(e)
            degrees[e[0]] -= 1
            degrees[e[1]] -= 1
            batch.append(remove_edge(*e))
            return True

        for _ in range(self.edits_per_batch):
            roll = rng.random()
            if roll >= self.p_add + self.p_remove:
                if W > 1:
                    s = rng.choice(subsets)
                    batch.append(
                        reweight(
                            s,
                            {"role": "subset", "weight": rng.randint(1, W)},
                        )
                    )
                    continue
                roll = 0.0
            if roll < self.p_remove:
                if try_remove() or try_add():
                    continue
            else:
                if try_add() or try_remove():
                    continue
        return batch


class SlidingWindowStream(EditStream):
    """A sliding window of transient links: every batch inserts fresh
    random edges, and once more than ``window`` stream-inserted edges
    are live the oldest are removed again (FIFO) — the classic
    dynamic-stream model where each edge has a bounded lifetime.
    """

    def __init__(
        self,
        window: int = 8,
        edits_per_batch: int = 1,
        seed: int = 0,
        max_degree: Optional[int] = None,
    ):
        if window < 1 or edits_per_batch < 1:
            raise ValueError("window and edits_per_batch must be >= 1")
        self.window = window
        self.edits_per_batch = edits_per_batch
        self.max_degree = max_degree
        self.rng = random.Random(f"sliding-window:{seed}")
        self._live: List[Tuple[int, int]] = []  # FIFO of stream-inserted edges
        self._n_live: Optional[int] = None  # node count the FIFO refers to

    def forget(self):
        self._live = []
        self._n_live = None

    def next_batch(self, graph, inputs):
        rng = self.rng
        n = graph.n
        edge_set = set(graph.edges)
        degrees = list(graph.degree_array)
        # Window entries are node-label pairs: vertex edits shift labels
        # (drop the whole window), and outside edge edits may have
        # removed entries (filter them).
        if self._n_live != n:
            self._live = []
            self._n_live = n
        self._live = [e for e in self._live if e in edge_set]
        batch: List[GraphEdit] = []
        for _ in range(self.edits_per_batch):
            e = _random_absent_edge(rng, n, edge_set, degrees, self.max_degree)
            if e is not None:
                edge_set.add(e)
                degrees[e[0]] += 1
                degrees[e[1]] += 1
                self._live.append(e)
                batch.append(add_edge(*e))
            while len(self._live) > self.window:
                old = self._live.pop(0)
                if old in edge_set:
                    edge_set.discard(old)
                    degrees[old[0]] -= 1
                    degrees[old[1]] -= 1
                    batch.append(remove_edge(*old))
        return batch
