"""The symmetric instance lower bound (Figure 3, Section 6).

On the complete bipartite instance ``K_{p,p}`` with all weights equal
and a cyclically symmetric port numbering, every subset node has the
same local view at every radius.  A deterministic algorithm therefore
makes the same decision at every subset node: the only valid decision
is "join the cover" (choosing nothing covers nothing), so the computed
cover has size ``p`` while the optimum is 1 — approximation ratio
exactly ``p = min{f, k}``.  This matches the upper bounds (the paper's
f-approximation and the trivial k-approximation), so the bound is
tight.

The demo functions below make the argument *measurable*:

* the paper's broadcast-model f-approximation on the symmetric
  instance returns all ``p`` subsets (it never sees ports at all);
* the trivial k-approximation — which *does* use port numbers — picks
  one subset per element: a single subset under the canonical
  numbering (ratio 1!) but all ``p`` subsets under the symmetric
  numbering.  Symmetry of the *port assignment* is exactly what makes
  the instance hard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet

from repro.core.set_cover import set_cover_f_approx
from repro.graphs.ports import symmetric_complete_bipartite
from repro.graphs.setcover import SetCoverInstance, symmetric_kpp_instance
from repro.simulator.runtime import run
from repro.baselines.trivial import TrivialSetCoverMachine

__all__ = ["symmetric_lower_bound_demo", "trivial_algorithm_port_sensitivity"]


@dataclass(frozen=True)
class SymmetricDemoResult:
    p: int
    cover: FrozenSet[int]
    cover_weight: int
    optimum: int
    ratio: float

    @property
    def matches_lower_bound(self) -> bool:
        """Ratio equals p = min{f, k} exactly."""
        return self.cover_weight == self.p * self.optimum


def symmetric_lower_bound_demo(p: int) -> SymmetricDemoResult:
    """Run the paper's f-approximation on the Figure 3 instance."""
    instance = symmetric_kpp_instance(p)
    res = set_cover_f_approx(instance)
    return SymmetricDemoResult(
        p=p,
        cover=res.cover,
        cover_weight=res.cover_weight,
        optimum=1,
        ratio=res.cover_weight / 1,
    )


def trivial_algorithm_port_sensitivity(p: int) -> Dict[str, int]:
    """The trivial k-approximation under two port numberings of K_{p,p}.

    Returns cover sizes: ``{"canonical": ..., "symmetric": ...}``.
    Under the canonical numbering every element's port 0 leads to
    subset 0, so the cover has size 1.  Under the symmetric numbering
    element ``j``'s port 0 leads to subset ``j``, so all ``p`` subsets
    are chosen — the deterministic algorithm is forced to the lower
    bound by symmetry alone.
    """
    instance = symmetric_kpp_instance(p)
    sizes: Dict[str, int] = {}

    canonical = instance.to_bipartite_graph()
    symmetric = symmetric_complete_bipartite(p)

    for name, graph in (("canonical", canonical), ("symmetric", symmetric)):
        result = run(
            graph,
            TrivialSetCoverMachine(),
            inputs=instance.node_inputs(),
            globals_map=instance.global_params(),
            max_rounds=2,
        )
        cover = {
            s for s in range(instance.n_subsets) if result.outputs[s]["in_cover"]
        }
        if not instance.is_cover(cover):
            raise AssertionError(f"trivial algorithm returned a non-cover ({name})")
        sizes[name] = len(cover)
    return sizes
