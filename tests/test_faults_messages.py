"""Message-fault and crash adversaries: fast ≡ reference, determinism.

The chaos contract this suite pins (ISSUE 6):

* **engine equivalence** — ``run()`` equals ``run_reference()``
  field-for-field under every fault kind, in both models;
* **determinism** — a seeded adversary's fault schedule is a pure
  function of its constructor arguments: two fresh instances with the
  same seed produce identical runs *and* identical event counts;
* **recovery** — the self-stabilising transformer (paper Section 1.5)
  recovers the fault-free output within T rounds after the faults stop,
  for message faults and crashes just as for state corruption.

Machines are wrapped in :class:`SelfStabilisingMachine` throughout:
the raw machines assert on desynchronised inboxes by design, and
surviving arbitrary transient faults is exactly what the transformer
is for.
"""

from __future__ import annotations

import pytest

from repro.core.broadcast_vc import BroadcastVertexCoverMachine
from repro.core.edge_packing import (
    EdgePackingMachine,
    edge_packing_job,
    schedule_length,
)
from repro.core.vertex_cover import broadcast_vc_job
from repro.graphs import families
from repro.graphs.weights import uniform_weights
from repro.selfstab.transformer import SelfStabilisingMachine
from repro.simulator.faults import (
    FAULT_KINDS,
    ComposedAdversary,
    MessageCorruption,
    MessageDuplication,
    MessageLoss,
    NodeCrash,
    RandomCrashes,
    RandomStateCorruption,
    adversary_from_spec,
)
from repro.simulator.runtime import run, run_reference

from helpers import assert_run_results_equal

FAULTY_KINDS = tuple(k for k in FAULT_KINDS if k != "none")

N = 8
DELTA, W = 2, 3
T_PORT = schedule_length(DELTA, W)  # 27: full recovery horizon
T_BCAST = 12  # equivalence only: any pipeline depth exercises the hooks
FAULTY_ROUNDS = 6


def _graph():
    return families.cycle_graph(N)


def _weights():
    return list(uniform_weights(N, W, seed=4))


def _port_job(max_rounds=FAULTY_ROUNDS + T_PORT):
    job = edge_packing_job(_graph(), _weights())
    job["machine"] = SelfStabilisingMachine(EdgePackingMachine(), T_PORT)
    job["max_rounds"] = max_rounds
    return job


def _bcast_job(max_rounds=FAULTY_ROUNDS + T_BCAST):
    job = dict(broadcast_vc_job(_graph(), _weights()))
    job["machine"] = SelfStabilisingMachine(
        BroadcastVertexCoverMachine(), T_BCAST
    )
    job["max_rounds"] = max_rounds
    return job


def _adversary(kind, seed=1, rate=0.3):
    return adversary_from_spec(
        kind, until_round=FAULTY_ROUNDS, rate=rate, seed=seed
    )


class TestEngineEquivalence:
    """fast ≡ reference bit-for-bit under every adversary."""

    @pytest.mark.parametrize("kind", FAULTY_KINDS)
    @pytest.mark.parametrize("jobfn", [_port_job, _bcast_job],
                             ids=["port", "broadcast"])
    def test_fast_equals_reference(self, kind, jobfn):
        # a fresh adversary per engine: stateful ones (duplication,
        # state corruption) must not leak one run's buffer into the next
        fast = run(fault_adversary=_adversary(kind), **jobfn())
        ref = run_reference(fault_adversary=_adversary(kind), **jobfn())
        # every RunResult field, with a field-naming diff on mismatch
        assert_run_results_equal(fast, ref, label_a="fast", label_b="reference")

    @pytest.mark.parametrize("jobfn", [_port_job, _bcast_job],
                             ids=["port", "broadcast"])
    def test_composed_adversary(self, jobfn):
        def mk():
            return ComposedAdversary(
                MessageLoss(FAULTY_ROUNDS, rate=0.2, seed=3),
                RandomCrashes(FAULTY_ROUNDS, rate=0.1, seed=7),
                RandomStateCorruption(FAULTY_ROUNDS, rate=0.2, seed=9),
            )

        fast = run(fault_adversary=mk(), **jobfn())
        ref = run_reference(fault_adversary=mk(), **jobfn())
        assert_run_results_equal(fast, ref, label_a="fast", label_b="reference")

    def test_crash_stop_never_halts(self):
        # crash-stop: node 2 goes down at round 1 and never recovers,
        # so the run ends by max_rounds with the node still live-frozen
        def mk():
            return NodeCrash({2: (1, None), 5: (0, 4)})

        job = _port_job(max_rounds=30)
        fast = run(fault_adversary=mk(), **job)
        ref = run_reference(fault_adversary=mk(), **job)
        assert_run_results_equal(fast, ref, label_a="fast", label_b="reference")
        assert not fast.all_halted
        assert fast.rounds == 30

    def test_explicit_crash_recover(self):
        def mk():
            return NodeCrash({0: (2, 5), 3: (2, 5)})

        # a node rebooted at round 5 needs a full pipeline refill, so
        # give it recover_round + T rounds before reading outputs
        job = _port_job(max_rounds=5 + T_PORT)
        fast = run(fault_adversary=mk(), **job)
        ref = run_reference(fault_adversary=mk(), **job)
        assert_run_results_equal(fast, ref, label_a="fast", label_b="reference")
        fault_free = run(**edge_packing_job(_graph(), _weights()))
        assert fast.outputs == fault_free.outputs


class TestDeterminism:
    """Same seed ⇒ same fault schedule, same run, same event count."""

    @pytest.mark.parametrize("kind", FAULTY_KINDS)
    def test_same_seed_same_run(self, kind):
        a1, a2 = _adversary(kind, seed=5), _adversary(kind, seed=5)
        r1 = run(fault_adversary=a1, **_port_job())
        r2 = run(fault_adversary=a2, **_port_job())
        assert_run_results_equal(r1, r2, label_a="seed-run-1", label_b="seed-run-2")
        assert a1.events == a2.events

    @pytest.mark.parametrize("kind", ("loss", "corruption", "crash"))
    def test_seed_changes_schedule(self, kind):
        # metering sees the faults, so two seeds that injected anything
        # almost surely differ somewhere in the per-round traffic
        runs = [
            run(fault_adversary=_adversary(kind, seed=s, rate=0.4),
                **_port_job())
            for s in (1, 2, 3)
        ]
        assert len({tuple(r.per_round_bits) for r in runs}) > 1

    @pytest.mark.parametrize("kind", FAULTY_KINDS)
    def test_events_counted(self, kind):
        adv = _adversary(kind, seed=5)
        run(fault_adversary=adv, **_port_job())
        assert adv.events > 0

    def test_duplication_instance_reusable_across_runs(self):
        # the one-round buffer must self-heal when the round counter
        # restarts (fresh run, same instance): run 2 == a fresh run
        shared = MessageDuplication(FAULTY_ROUNDS, rate=0.4, seed=6)
        first = run(fault_adversary=shared, **_port_job())
        second = run(fault_adversary=shared, **_port_job())
        fresh = run(
            fault_adversary=MessageDuplication(
                FAULTY_ROUNDS, rate=0.4, seed=6
            ),
            **_port_job(),
        )
        assert_run_results_equal(first, second, label_a="run-1", label_b="run-2")
        assert_run_results_equal(second, fresh, label_a="run-2", label_b="fresh")


class TestSelfStabilisingRecovery:
    """Section 1.5: the transformer recovers from *any* transient fault
    — message-level and crash faults included — within T clean rounds."""

    @pytest.mark.parametrize("kind", FAULTY_KINDS)
    def test_recovers_fault_free_output(self, kind):
        fault_free = run(**edge_packing_job(_graph(), _weights()))
        res = run(
            fault_adversary=_adversary(kind, seed=2), **_port_job()
        )
        assert res.outputs == fault_free.outputs

    def test_recovers_from_crash_recover_plan(self):
        fault_free = run(**edge_packing_job(_graph(), _weights()))
        res = run(
            fault_adversary=NodeCrash({1: (0, 3), 4: (2, 6), 6: (5, 6)}),
            **_port_job(),
        )
        assert res.outputs == fault_free.outputs


class TestContracts:
    def test_fault_kinds_tuple(self):
        # the CLIs build their --fault choices from this
        assert FAULT_KINDS == (
            "none", "state", "loss", "duplication", "corruption", "crash"
        )

    def test_spec_none(self):
        assert adversary_from_spec(None) is None
        assert adversary_from_spec("none") is None

    def test_spec_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            adversary_from_spec("gremlins")

    @pytest.mark.parametrize("kind", FAULTY_KINDS)
    def test_spec_builds_each_kind(self, kind):
        adv = adversary_from_spec(kind, until_round=5, rate=0.1, seed=0)
        assert adv is not None
        assert adv.events == 0 or kind == "crash"  # NodeCrash plans eagerly

    @pytest.mark.parametrize(
        "cls", [MessageLoss, MessageCorruption, MessageDuplication]
    )
    def test_rate_validated(self, cls):
        with pytest.raises(ValueError, match="rate"):
            cls(5, rate=1.5)

    def test_crash_plan_validated(self):
        with pytest.raises(ValueError, match="invalid crash interval"):
            NodeCrash({0: (3, 3)})
        with pytest.raises(ValueError, match="invalid crash interval"):
            NodeCrash({0: (-1, 2)})

    def test_process_safety_flags(self):
        assert MessageLoss(5).process_safe
        assert MessageCorruption(5).process_safe
        assert MessageDuplication(5).process_safe
        assert NodeCrash({}).process_safe
        assert RandomCrashes(5).process_safe
        assert not RandomStateCorruption(5).process_safe
        assert ComposedAdversary(MessageLoss(5), NodeCrash({})).process_safe
        assert not ComposedAdversary(
            MessageLoss(5), RandomStateCorruption(5)
        ).process_safe

    def test_composed_events_sum(self):
        a, b = MessageLoss(FAULTY_ROUNDS, rate=0.4), MessageLoss(
            FAULTY_ROUNDS, rate=0.4, seed=9
        )
        comp = ComposedAdversary(a, b)
        run(fault_adversary=comp, **_port_job())
        assert comp.events == a.events + b.events > 0

    def test_tamper_keeps_silence_free(self):
        # MessageLoss drops messages *before* the wire: lost messages
        # are not metered, so total traffic falls below the clean run
        clean = run(**_port_job())
        lossy = run(
            fault_adversary=MessageLoss(FAULTY_ROUNDS, rate=0.5, seed=1),
            **_port_job(),
        )
        assert lossy.messages_sent < clean.messages_sent
