"""Tests for the Lemma 2 colour encodings."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro._util.rationals import factorial
from repro.core.colours import (
    chi_edge_packing,
    chi_fractional_packing,
    colour_radix,
    decode_colour_sequence,
    encode_colour_sequence,
    encode_p_value,
)


@st.composite
def lemma2_sequences(draw, max_delta: int = 4, max_w: int = 6):
    """Random valid Phase I colour sequences: q in (0, W], q(Δ!)^Δ ∈ N."""
    delta = draw(st.integers(min_value=1, max_value=max_delta))
    W = draw(st.integers(min_value=1, max_value=max_w))
    scale = factorial(delta) ** delta
    seq = [
        Fraction(draw(st.integers(min_value=1, max_value=W * scale)), scale)
        for _ in range(delta)
    ]
    return delta, W, seq


class TestChi:
    def test_paper_formula(self):
        # χ = (W (Δ!)^Δ)^Δ
        assert chi_edge_packing(2, 3) == (3 * 2**2) ** 2
        assert chi_edge_packing(3, 1) == (6**3) ** 3
        assert chi_edge_packing(0, 5) == 1

    def test_chi_fractional(self):
        # χ = W (k!)^{(D+1)^2}
        assert chi_fractional_packing(2, 3, 1) == 3 * 2**4
        assert chi_fractional_packing(1, 1, 0) == 1

    def test_radix(self):
        assert colour_radix(2, 3) == 3 * 4 + 1

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            chi_edge_packing(-1, 1)
        with pytest.raises(ValueError):
            chi_edge_packing(2, 0)


class TestEncoding:
    def test_simple_roundtrip(self):
        seq = [Fraction(1), Fraction(1, 2), Fraction(3, 2)]
        code = encode_colour_sequence(seq, delta=3, W=2)
        assert decode_colour_sequence(code, delta=3, W=2) == seq

    @given(lemma2_sequences())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, data):
        delta, W, seq = data
        code = encode_colour_sequence(seq, delta, W)
        assert decode_colour_sequence(code, delta, W) == seq

    @given(lemma2_sequences())
    @settings(max_examples=60, deadline=None)
    def test_order_preserving(self, data):
        """Integer order must equal lexicographic order on sequences."""
        delta, W, seq_a = data
        # construct a second sequence with the same parameters
        scale = factorial(delta) ** delta
        seq_b = list(reversed(seq_a))
        code_a = encode_colour_sequence(seq_a, delta, W)
        code_b = encode_colour_sequence(seq_b, delta, W)
        assert (code_a < code_b) == (seq_a < seq_b)
        assert (code_a == code_b) == (seq_a == seq_b)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError, match="exactly"):
            encode_colour_sequence([Fraction(1)], delta=2, W=1)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            encode_colour_sequence([Fraction(5)], delta=1, W=2)
        with pytest.raises(ValueError, match="outside"):
            encode_colour_sequence([Fraction(0)], delta=1, W=2)

    def test_non_lemma2_denominator_rejected(self):
        # Δ=1: scale = 1, so 1/2 is not allowed
        with pytest.raises(ValueError, match="integral"):
            encode_colour_sequence([Fraction(1, 2)], delta=1, W=1)

    def test_within_chi_bound(self):
        # encoded values of Δ-length sequences stay below radix^Δ
        delta, W = 3, 2
        top = [Fraction(W)] * delta
        code = encode_colour_sequence(top, delta, W)
        assert code < colour_radix(delta, W) ** delta


class TestPValueEncoding:
    def test_strictly_increasing(self):
        k, W, D = 2, 2, 1
        scale = factorial(k) ** ((D + 1) ** 2)
        values = [Fraction(i, scale) for i in range(1, 10)]
        codes = [encode_p_value(p, k, W, D) for p in values]
        assert codes == sorted(codes)
        assert len(set(codes)) == len(codes)

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            encode_p_value(Fraction(0), 2, 1, 1)
        with pytest.raises(ValueError):
            encode_p_value(Fraction(3), 2, 2, 1)

    def test_integrality_checked(self):
        # k=1: scale = 1, so any proper fraction violates integrality
        with pytest.raises(ValueError, match="integrality"):
            encode_p_value(Fraction(1, 3), 1, 1, 0)

    def test_in_chi_range(self):
        k, W, D = 3, 4, 2
        chi = chi_fractional_packing(k, W, D)
        assert encode_p_value(Fraction(W), k, W, D) == chi
        scale = factorial(k) ** ((D + 1) ** 2)
        assert encode_p_value(Fraction(1, scale), k, W, D) == 1
