"""Tests for the baseline algorithms (Table 1 rows and ground truth)."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings, HealthCheck

from repro.analysis.verify import check_edge_packing, check_vertex_cover
from repro.baselines.exact import (
    brute_force_set_cover,
    brute_force_vertex_cover,
    exact_min_set_cover,
    exact_min_vertex_cover,
)
from repro.baselines.kvy import vertex_cover_kvy
from repro.baselines.lp import set_cover_lp_bound, vertex_cover_lp_bound
from repro.baselines.matching import (
    id_matching_schedule_length,
    maximal_matching_with_ids,
    randomised_maximal_matching,
)
from repro.baselines.ps3approx import ps_round_count, vertex_cover_3approx_ps
from repro.baselines.sequential import (
    bar_yehuda_even_packing,
    greedy_set_cover,
    sequential_maximal_matching,
)
from repro.baselines.trivial import set_cover_k_approx_trivial
from repro.graphs import families
from repro.graphs.setcover import (
    partition_instance,
    random_instance,
    symmetric_kpp_instance,
)
from repro.graphs.weights import uniform_weights, unit_weights
from tests.conftest import small_graph_suite, gnp_graphs


SMALL = [(n, g) for n, g in small_graph_suite() if g.n <= 12]


class TestExactSolvers:
    @pytest.mark.parametrize("name,graph", SMALL, ids=[n for n, _ in SMALL])
    def test_milp_matches_brute_force_vc(self, name, graph):
        w = uniform_weights(graph.n, 5, seed=2)
        milp_w, milp_cover = exact_min_vertex_cover(graph, w)
        bf_w, _ = brute_force_vertex_cover(graph, w)
        assert milp_w == bf_w
        ok, _ = check_vertex_cover(graph, milp_cover)
        assert ok

    def test_milp_matches_brute_force_sc(self):
        for seed in range(4):
            inst = random_instance(4, 6, k=3, f=2, W=5, seed=seed)
            milp_w, milp_cover = exact_min_set_cover(inst)
            bf_w, _ = brute_force_set_cover(inst)
            assert milp_w == bf_w
            assert inst.is_cover(milp_cover)

    def test_known_optima(self):
        assert exact_min_vertex_cover(families.path_graph(3), [1, 1, 1])[0] == 1
        assert exact_min_vertex_cover(families.cycle_graph(5), [1] * 5)[0] == 3
        assert exact_min_vertex_cover(families.complete_graph(4), [1] * 4)[0] == 3
        assert exact_min_vertex_cover(families.star_graph(5), [1] * 6)[0] == 1

    def test_empty_graph(self):
        assert exact_min_vertex_cover(families.empty_graph(3), [1, 1, 1]) == (
            0,
            frozenset(),
        )

    def test_brute_force_guard(self):
        with pytest.raises(ValueError, match="limited"):
            brute_force_vertex_cover(families.cycle_graph(30), [1] * 30)


class TestLpBounds:
    @pytest.mark.parametrize("name,graph", SMALL, ids=[n for n, _ in SMALL])
    def test_lp_below_opt(self, name, graph):
        w = uniform_weights(graph.n, 5, seed=4)
        lp = vertex_cover_lp_bound(graph, w)
        opt, _ = exact_min_vertex_cover(graph, w)
        assert lp <= opt + 1e-7

    def test_lp_half_integral_cycle(self):
        # odd cycle: LP optimum = n/2 (all x = 1/2)
        lp = vertex_cover_lp_bound(families.cycle_graph(5), [1] * 5)
        assert abs(lp - 2.5) < 1e-7

    def test_sc_lp_below_opt(self):
        inst = random_instance(5, 8, k=3, f=2, W=4, seed=5)
        lp = set_cover_lp_bound(inst)
        opt, _ = exact_min_set_cover(inst)
        assert lp <= opt + 1e-7


class TestSequentialBaselines:
    @pytest.mark.parametrize("name,graph", SMALL, ids=[n for n, _ in SMALL])
    def test_bye_produces_maximal_packing(self, name, graph):
        w = uniform_weights(graph.n, 6, seed=1)
        y, saturated = bar_yehuda_even_packing(graph, w)
        check_edge_packing(graph, w, y).require()
        ok, _ = check_vertex_cover(graph, saturated)
        assert ok

    def test_bye_respects_edge_order(self):
        g = families.path_graph(3)
        y1, _ = bar_yehuda_even_packing(g, [1, 1, 1], edge_order=[0, 1])
        y2, _ = bar_yehuda_even_packing(g, [1, 1, 1], edge_order=[1, 0])
        assert y1[0] == 1 and y2[1] == 1

    def test_greedy_set_cover_valid(self):
        for seed in range(3):
            inst = random_instance(5, 9, k=3, f=3, W=5, seed=seed)
            w, cover = greedy_set_cover(inst)
            assert inst.is_cover(cover)
            assert w == inst.cover_weight(cover)

    def test_sequential_matching_maximal(self):
        g = families.grid_2d(3, 3)
        m = sequential_maximal_matching(g)
        matched = {v for e in m for v in e}
        assert all(u in matched or v in matched for (u, v) in g.edges)


class TestIdMatching:
    @pytest.mark.parametrize("name,graph", SMALL, ids=[n for n, _ in SMALL])
    def test_maximal_matching(self, name, graph):
        res = maximal_matching_with_ids(graph)
        assert res.is_matching()
        assert res.is_maximal()

    def test_rounds_independent_of_n_at_fixed_id_space(self):
        """With N fixed, rounds depend only on Δ — but N must grow with
        n for ids to stay unique, which is precisely Linial's point."""
        N = 1024
        rounds = set()
        for n in (8, 16, 64):
            g = families.cycle_graph(n)
            res = maximal_matching_with_ids(g, N=N)
            rounds.add(res.rounds)
        assert len(rounds) == 1
        assert rounds.pop() == id_matching_schedule_length(2, N)

    def test_rounds_grow_with_id_space(self):
        # log* N growth: enormous id spaces cost a few more rounds
        r_small = id_matching_schedule_length(2, 2**4)
        r_large = id_matching_schedule_length(2, 2**(2**16))
        assert r_small < r_large

    def test_custom_ids(self):
        g = families.cycle_graph(5)
        res = maximal_matching_with_ids(g, ids=[9, 3, 7, 1, 5], N=10)
        assert res.is_maximal()

    def test_duplicate_ids_rejected(self):
        g = families.path_graph(3)
        with pytest.raises(ValueError, match="unique"):
            maximal_matching_with_ids(g, ids=[1, 1, 2])

    def test_cover_is_2_approx_unweighted(self):
        for name, g in SMALL:
            res = maximal_matching_with_ids(g)
            ok, _ = check_vertex_cover(g, res.matched_nodes)
            assert ok
            opt, _ = exact_min_vertex_cover(g, unit_weights(g.n))
            assert len(res.matched_nodes) <= 2 * opt


class TestRandomisedMatching:
    @pytest.mark.parametrize("seed", range(5))
    def test_maximal_matching(self, seed):
        g = families.gnp_random(12, 0.3, seed=seed)
        res = randomised_maximal_matching(g, seed=seed)
        assert res.is_matching()
        assert res.is_maximal()

    def test_deterministic_given_seed(self):
        g = families.grid_2d(3, 3)
        a = randomised_maximal_matching(g, seed=7)
        b = randomised_maximal_matching(g, seed=7)
        assert a.matching == b.matching

    def test_requires_seed(self):
        from repro.simulator.runtime import run_port_numbering
        from repro.baselines.matching import RandomisedMatchingMachine

        with pytest.raises(ValueError, match="seed"):
            run_port_numbering(
                families.path_graph(2), RandomisedMatchingMachine()
            )

    def test_empty_and_single(self):
        res = randomised_maximal_matching(families.empty_graph(3), seed=1)
        assert res.matching == frozenset()


class TestPolishchukSuomela:
    @pytest.mark.parametrize("name,graph", SMALL, ids=[n for n, _ in SMALL])
    def test_valid_cover_within_3x(self, name, graph):
        res = vertex_cover_3approx_ps(graph)
        assert res.is_cover()
        opt, _ = exact_min_vertex_cover(graph, unit_weights(graph.n))
        assert res.cover_size <= 3 * opt

    def test_round_count(self):
        g = families.grid_2d(3, 3)
        res = vertex_cover_3approx_ps(g)
        assert res.rounds == ps_round_count(g.max_degree) == 2 * 4

    def test_anonymous_no_input_needed(self):
        res = vertex_cover_3approx_ps(families.cycle_graph(7))
        assert res.is_cover()


class TestTrivialSetCover:
    def test_valid_cover_within_kx(self):
        for seed in range(4):
            inst = random_instance(5, 8, k=3, f=3, W=6, seed=seed)
            res = set_cover_k_approx_trivial(inst)
            assert res.is_cover()
            opt, _ = exact_min_set_cover(inst)
            assert res.cover_weight <= inst.k * opt

    def test_two_rounds(self):
        inst = random_instance(4, 6, k=3, f=2, seed=1)
        assert set_cover_k_approx_trivial(inst).rounds == 2

    def test_picks_min_weight(self):
        inst = partition_instance(
            groups=[[0], [0]], weights=[5, 2], n_elements=1
        )
        res = set_cover_k_approx_trivial(inst)
        assert res.cover == frozenset({1})

    def test_symmetric_instance_picks_one_per_element(self):
        # ports break the tie the broadcast model cannot break
        inst = symmetric_kpp_instance(3)
        res = set_cover_k_approx_trivial(inst)
        assert res.is_cover()
        assert len(res.cover) <= 3


class TestKvy:
    @pytest.mark.parametrize("name,graph", SMALL, ids=[n for n, _ in SMALL])
    def test_valid_cover_within_guarantee(self, name, graph):
        w = uniform_weights(graph.n, 6, seed=3)
        res = vertex_cover_kvy(graph, w, epsilon=Fraction(1, 4))
        assert res.is_cover()
        opt, _ = exact_min_vertex_cover(graph, w)
        assert res.cover_weight <= res.guarantee * opt

    def test_tighter_epsilon_not_worse_guarantee(self):
        g = families.gnp_random(10, 0.4, seed=2)
        w = uniform_weights(10, 8, seed=2)
        res_loose = vertex_cover_kvy(g, w, epsilon=Fraction(1, 2))
        res_tight = vertex_cover_kvy(g, w, epsilon=Fraction(1, 100))
        assert res_tight.guarantee < res_loose.guarantee
        assert res_tight.is_cover() and res_loose.is_cover()

    def test_terminates_and_rounds_reported(self):
        g = families.complete_graph(6)
        res = vertex_cover_kvy(g, unit_weights(6))
        assert res.rounds >= 2
