"""Shared fixtures, helpers and hypothesis strategies."""

from __future__ import annotations

import random
from fractions import Fraction
from typing import List, Tuple

import pytest
from hypothesis import strategies as st

from repro.graphs import families
from repro.graphs.topology import PortNumberedGraph

# ----------------------------------------------------------------------
# Deterministic graph suites
# ----------------------------------------------------------------------


def small_graph_suite() -> List[Tuple[str, PortNumberedGraph]]:
    """A deterministic suite covering structurally diverse topologies."""
    return [
        ("empty4", families.empty_graph(4)),
        ("single_edge", families.path_graph(2)),
        ("path5", families.path_graph(5)),
        ("cycle4", families.cycle_graph(4)),
        ("cycle5", families.cycle_graph(5)),
        ("star5", families.star_graph(5)),
        ("k4", families.complete_graph(4)),
        ("k33", families.complete_bipartite(3, 3)),
        ("grid33", families.grid_2d(3, 3)),
        ("tree23", families.balanced_tree(2, 3)),
        ("caterpillar", families.caterpillar(4, 2)),
        ("petersen", families.petersen_graph()),
        ("frucht", families.frucht_graph()),
        ("hypercube3", families.hypercube(3)),
        ("gnp", families.gnp_random(12, 0.3, seed=7)),
        ("regular3", families.random_regular(3, 10, seed=3)),
    ]


@pytest.fixture(params=small_graph_suite(), ids=lambda p: p[0])
def named_graph(request):
    return request.param


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------


@st.composite
def gnp_graphs(draw, max_n: int = 12):
    """Random G(n, p) graphs as PortNumberedGraph."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    density = draw(st.sampled_from([0.15, 0.3, 0.5, 0.8]))
    rng = random.Random(f"hyp-gnp:{seed}")
    edges = [
        (i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < density
    ]
    return PortNumberedGraph.from_edges(n, edges)


@st.composite
def weighted_graphs(draw, max_n: int = 10, max_w: int = 16):
    """(graph, weights, W) triples with integer weights in 1..W."""
    g = draw(gnp_graphs(max_n=max_n))
    W = draw(st.integers(min_value=1, max_value=max_w))
    weights = draw(
        st.lists(
            st.integers(min_value=1, max_value=W),
            min_size=g.n,
            max_size=g.n,
        )
    )
    return g, weights, W


@st.composite
def trees(draw, max_n: int = 12):
    """Random trees via random parent assignment."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    if n == 1:
        return PortNumberedGraph.from_edges(1, [])
    parents = [
        draw(st.integers(min_value=0, max_value=v - 1)) for v in range(1, n)
    ]
    edges = [(parents[v - 1], v) for v in range(1, n)]
    return PortNumberedGraph.from_edges(n, edges)


@st.composite
def setcover_instances(draw, max_subsets: int = 6, max_elements: int = 8,
                       max_k: int = 4, max_f: int = 3, max_w: int = 8):
    """Random feasible bounded-degree set cover instances."""
    from repro.graphs.setcover import random_instance

    n_subsets = draw(st.integers(min_value=1, max_value=max_subsets))
    k = draw(st.integers(min_value=1, max_value=max_k))
    n_elements = draw(
        st.integers(min_value=1, max_value=min(max_elements, n_subsets * k))
    )
    f = draw(st.integers(min_value=1, max_value=max_f))
    W = draw(st.integers(min_value=1, max_value=max_w))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return random_instance(n_subsets, n_elements, k=k, f=f, W=W, seed=seed)


# ----------------------------------------------------------------------
# Assertion helpers
# ----------------------------------------------------------------------


def assert_exact_fraction(value) -> Fraction:
    assert isinstance(value, (int, Fraction)), f"inexact value {value!r}"
    return Fraction(value)
