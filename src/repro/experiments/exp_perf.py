"""EXP-PERF — engineering: simulator throughput and cost of exactness.

Not a paper artefact; quantifies the substrate so the other
experiments' wall-clock behaviour is interpretable:

* node-rounds/second of the port-numbering runtime as n grows;
* cost of the Section 3 machine per node-round (exact Fractions);
* exact vs vectorised-float packing verification.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.analysis.verify import check_edge_packing, edge_packing_feasible_fast
from repro.core.edge_packing import maximal_edge_packing
from repro.experiments.common import ExperimentTable
from repro.graphs import families
from repro.graphs.weights import uniform_weights

__all__ = ["run", "main"]


def run(sizes: Optional[List[int]] = None, degree: int = 3) -> ExperimentTable:
    sizes = sizes or [32, 128, 512]
    table = ExperimentTable(
        experiment_id="EXP-PERF",
        title=f"simulator throughput, {degree}-regular graphs, W=8",
        columns=[
            "n",
            "rounds",
            "wall time (s)",
            "node-rounds/s",
            "exact verify (s)",
            "float verify (s)",
        ],
    )
    for n in sizes:
        g = families.random_regular(degree, n, seed=0)
        w = uniform_weights(n, 8, seed=1)
        t0 = time.perf_counter()
        res = maximal_edge_packing(g, w)
        elapsed = time.perf_counter() - t0

        t1 = time.perf_counter()
        check_edge_packing(g, w, res.y).require()
        exact_s = time.perf_counter() - t1

        y_float = [float(res.y[e]) for e in range(g.m)]
        t2 = time.perf_counter()
        assert edge_packing_feasible_fast(g, w, y_float)
        float_s = time.perf_counter() - t2

        table.add_row(
            n=n,
            rounds=res.rounds,
            **{
                "wall time (s)": elapsed,
                "node-rounds/s": n * res.rounds / max(elapsed, 1e-9),
                "exact verify (s)": exact_s,
                "float verify (s)": float_s,
            },
        )
    table.add_note(
        "rounds stay constant as n grows (strict locality); wall time "
        "scales ~linearly with n at fixed Δ"
    )
    return table


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
