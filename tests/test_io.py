"""Round-trip tests for JSON serialisation."""

from __future__ import annotations

import json
from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.core.edge_packing import maximal_edge_packing
from repro.graphs import families
from repro.graphs.setcover import random_instance
from repro.graphs.weights import uniform_weights
from repro.io import (
    graph_from_json,
    graph_to_json,
    packing_from_json,
    packing_to_json,
    setcover_from_json,
    setcover_to_json,
)
from tests.conftest import gnp_graphs


class TestGraphJson:
    def test_roundtrip_preserves_ports(self):
        from repro.graphs.ports import random_ports

        g = random_ports(families.grid_2d(3, 3), seed=4)
        back = graph_from_json(graph_to_json(g))
        assert back == g  # equality includes the port numbering

    @given(gnp_graphs(max_n=10))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, g):
        assert graph_from_json(graph_to_json(g)) == g

    def test_rejects_foreign_document(self):
        with pytest.raises(ValueError, match="not a"):
            graph_from_json(json.dumps({"format": "something-else"}))

    def test_indent_is_cosmetic(self):
        g = families.path_graph(3)
        compact = graph_to_json(g)
        pretty = graph_to_json(g, indent=2)
        assert graph_from_json(compact) == graph_from_json(pretty)


class TestSetCoverJson:
    def test_roundtrip(self):
        inst = random_instance(5, 8, k=3, f=2, W=6, seed=3)
        back = setcover_from_json(setcover_to_json(inst))
        assert back.subsets == inst.subsets
        assert back.weights == inst.weights
        assert back.n_elements == inst.n_elements

    def test_rejects_bad_format(self):
        with pytest.raises(ValueError):
            setcover_from_json("{}")


class TestPackingJson:
    def test_roundtrip_exact_fractions(self):
        g = families.cycle_graph(5)
        w = uniform_weights(5, 7, seed=2)
        res = maximal_edge_packing(g, w)
        text = packing_to_json(res.y, res.saturated, w)
        back = packing_from_json(text)
        assert back["y"] == res.y  # exact Fractions, no float drift
        assert back["saturated"] == res.saturated
        assert back["weights"] == list(w)

    def test_huge_denominators_survive(self):
        y = {0: Fraction(1, 3**50), 1: Fraction(2**80, 7)}
        back = packing_from_json(packing_to_json(y, [0], [1, 1]))
        assert back["y"] == y

    def test_rejects_bad_format(self):
        with pytest.raises(ValueError):
            packing_from_json(json.dumps({"format": "x"}))
