"""EXP-S5 — the Section 5 broadcast simulation as benchmarks.

The interesting measurements: G-round count equals the A-round count
(+1 readout), and per-round message bits grow linearly (the history
rebroadcast).  Wall-clock here is dominated by exactly that growth.
"""

from __future__ import annotations

import pytest

from conftest import once
from repro.analysis.bounds import bvc_rounds_exact
from repro.core.vertex_cover import vertex_cover_broadcast
from repro.graphs import families
from repro.graphs.weights import unit_weights


@pytest.mark.parametrize(
    "name,graph",
    [
        ("path4", families.path_graph(4)),
        ("cycle6", families.cycle_graph(6)),
        ("cycle12", families.cycle_graph(12)),
    ],
    ids=["path4", "cycle6", "cycle12"],
)
def test_s5_broadcast_vc_delta2(benchmark, name, graph):
    res = once(benchmark, vertex_cover_broadcast, graph, unit_weights(graph.n))
    assert res.is_cover()
    assert res.rounds == bvc_rounds_exact(graph.max_degree, 1)
    bits = res.run.per_round_bits
    assert bits[-1] > 100 * bits[0] / max(1, bits[0]) or bits[-1] > bits[0]


def test_s5_broadcast_vc_delta3(benchmark):
    g = families.star_graph(3)
    res = once(benchmark, vertex_cover_broadcast, g, [2, 1, 1, 1])
    assert res.is_cover()
    assert res.rounds == bvc_rounds_exact(3, 2)


def test_s5_equivalence_harness(benchmark):
    from repro.experiments.exp_section5 import run

    table = once(benchmark, run)
    assert all(m in (True, None) for m in table.column("cover == direct run"))
