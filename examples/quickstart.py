#!/usr/bin/env python
"""Quickstart: 2-approximate weighted vertex cover in an anonymous network.

Builds a small weighted graph, runs the paper's Section 3 algorithm
(maximal edge packing in the port-numbering model), verifies the
result, and prints the dual certificate that proves the approximation
factor without ever solving the instance exactly.

Run:  python examples/quickstart.py
"""

from fractions import Fraction

from repro import vertex_cover_2approx
from repro.analysis.verify import check_edge_packing
from repro.baselines.exact import exact_min_vertex_cover
from repro.core.edge_packing import maximal_edge_packing
from repro.graphs import families


def main() -> None:
    # A 3x4 grid with weights favouring the interior nodes.
    graph = families.grid_2d(3, 4)
    weights = [1 if graph.degree(v) <= 2 else 3 for v in graph.nodes()]

    print(f"graph: {graph}")
    print(f"weights: {weights}")
    print()

    # --- the distributed algorithm -----------------------------------
    result = vertex_cover_2approx(graph, weights)

    print(f"synchronous rounds:   {result.rounds}")
    print(f"cover:                {sorted(result.cover)}")
    print(f"cover weight:         {result.cover_weight}")
    print(f"packing value Σy(e):  {result.packing_value}")

    # --- the certificate ----------------------------------------------
    # Bar-Yehuda & Even: w(C) <= 2 Σy(e) <= 2 OPT.  The first inequality
    # is checkable locally; the certificate ratio is w(C) / (2 Σy).
    print(f"certificate ratio:    {result.certificate_ratio} (<= 1 proves 2-approx)")
    assert result.is_cover()
    assert result.certificate_ratio <= 1

    # --- compare against the exact optimum (small instance) -----------
    opt, opt_cover = exact_min_vertex_cover(graph, weights)
    print(f"exact optimum:        {opt} (cover {sorted(opt_cover)})")
    print(f"measured ratio:       {result.cover_weight / opt:.3f}  (guarantee: 2)")

    # --- inspect the underlying maximal edge packing -------------------
    packing = maximal_edge_packing(graph, weights)
    check = check_edge_packing(graph, weights, packing.y)
    print(f"edge packing feasible={check.feasible} maximal={check.maximal}")
    heaviest = max(packing.y.items(), key=lambda kv: kv[1])
    u, v = graph.edges[heaviest[0]]
    print(f"largest edge value:   y({{{u},{v}}}) = {heaviest[1]}")


if __name__ == "__main__":
    main()
