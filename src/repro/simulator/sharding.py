"""Sharded intra-run execution: one graph partitioned across processes.

The process backend (:mod:`repro._util.parallel`) parallelises *across*
runs; this module parallelises *within* one run.  Nodes are partitioned
across ``p`` worker processes by deterministic hashed ownership —
``owner(v) = hash64(v) % p`` with stable global node ids — and each
worker keeps a resident *shard session*: its nodes' contexts, states,
inbox buffers, and a per-shard slice of the graph's CSR adjacency
(taken from :class:`~repro.simulator.state_layout.StateLayout` when
numpy is available), so the delivery scatter runs shard-locally.

Each synchronous round is two phases over the warm single-worker pools
in :mod:`repro._util.parallel` (one pool per shard, so every submission
for a shard lands on the worker holding its session):

1. **emit** — every shard applies the round's crash/restart plan, runs
   ``emit`` for its live nodes, scatters messages bound for locally
   owned nodes directly into their inbox buffers, and returns only the
   *boundary* messages (those crossing shard ownership) batched per
   destination shard;
2. **step** — the parent routes the boundary batches (chunked at
   :data:`BOUNDARY_CHUNK` messages per IPC frame), each shard imports
   them, runs ``step``, and reports how many of its nodes are still
   live.

The paper's algorithms run in a *constant* number of rounds (27 for the
Section 3 edge packing, 165 for Section 4) regardless of ``n``, so the
per-round barrier count is a small constant — the property that makes
this partitioning pay off (see ``benchmarks/bench_shards.py``).

**Equivalence contract.**  Sharded ≡ serial ≡ reference, bit-for-bit,
on every :class:`~repro.simulator.runtime.RunResult` field including
the metering counts (pinned by ``tests/test_shard_differential.py``).
The per-node seeded RNG streams (``node-rng:{seed}:{v}``), the
quiescence-parking fast path, ``on_max_rounds="raise"`` diagnostics,
and ``process_safe`` fault adversaries all behave identically:

* **metering** is summed sender-side per shard exactly as the serial
  engine bills it (order-independent integer sums);
* **parking** runs shard-locally — a parked node's fast-forward needs
  no neighbour data by contract;
* **fault adversaries** stay entirely in the parent.  Crash plans
  (``paused``/``restarted``) are evaluated once per round and routed to
  the owning shards; in rounds where ``tampers(round)`` is true the
  shards return their full emission rows, the parent assembles the
  complete links mapping in the engines' canonical order (sender
  ascending, then port/neighbour), applies ``tamper`` *once*, meters
  the tampered values, and ships every shard its rewritten inbox slots
  — so stateful-but-deterministic schedules (e.g.
  :class:`~repro.simulator.faults.MessageDuplication`'s one-round
  buffer, :class:`~repro.simulator.faults.MessageCorruption`'s
  cross-link picks) see exactly the serial engine's link map.  The run
  operates on a deep copy of the adversary and syncs its diagnostic
  state back on success, so a mid-run fallback to the serial engine
  replays against a pristine instance.

**Fallback.**  A run that cannot engage — observer attached, adversary
not ``process_safe``, graph below :data:`MIN_SHARD_NODES`, already
inside a worker process, unpicklable payloads, a crashed shard pool —
falls back to the serial engine with identical results;
:func:`last_shard_decision` records the decision and the reason (the
test suites' engagement canary; the module global ``LAST_DECISION``
remains as a deprecated, racy mirror).  Worker crashes reuse the PR 6 recovery
ladder shape: retire the shard pools, retry the whole run once on
fresh workers, then degrade to serial.
"""

from __future__ import annotations

import copy
import hashlib
import itertools
import multiprocessing
import os
import random
import threading
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro import obs
from repro._util import parallel
from repro._util.ordering import canonical_key
from repro.obs import EV_SHARD_BOUNDARY, EV_SHARD_DECISION, SPAN_ROUND
from repro._util.sizes import message_size_bits
from repro.graphs.topology import PortNumberedGraph
from repro.simulator import state_layout
from repro.simulator.machine import (
    BROADCAST,
    PORT_NUMBERING,
    LocalContext,
    Machine,
)
from repro.simulator.runtime import Metering, RunResult, _bad_arity, _NONE_KEY

__all__ = [
    "BOUNDARY_CHUNK",
    "LAST_DECISION",
    "MAX_SHARDS",
    "MIN_SHARD_NODES",
    "ShardDecision",
    "hash64",
    "last_shard_decision",
    "owner",
    "run_sharded",
    "shard_fallback_reason",
]

#: Runs on graphs smaller than this fall back to serial: with only a
#: few thousand nodes the fixed two-barriers-per-round IPC cost
#: dominates any per-node speedup.  The differential tests monkeypatch
#: this to 0 to exercise the sharded path on tiny graphs.
MIN_SHARD_NODES = 1024

#: Hard cap on the shard count (each shard owns a dedicated
#: single-worker pool; requests beyond the cap are clamped).
MAX_SHARDS = 64

#: Maximum boundary messages per IPC frame: a round's import batch for
#: one shard is split across multiple submissions beyond this, bounding
#: the size of any single pickle frame.
BOUNDARY_CHUNK = 8192


def hash64(v: int) -> int:
    """Deterministic 64-bit hash of a node id.

    blake2b rather than Python's ``hash()``: stable across processes
    (no ``PYTHONHASHSEED`` dependence), platforms and sessions, so
    shard ownership — and therefore every per-shard structure — is a
    pure function of ``(v, p)``.
    """
    digest = hashlib.blake2b(
        int(v).to_bytes(8, "little", signed=True), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


def owner(v: int, shards: int) -> int:
    """The shard that owns node ``v`` under ``shards``-way hashing."""
    return hash64(v) % shards


@dataclass(frozen=True)
class ShardDecision:
    """Why the most recent ``run(..., shards>1)`` did or did not shard.

    ``engaged`` is True only when the sharded engine produced the
    returned result; ``reason`` names the fallback cause otherwise.
    """

    engaged: bool
    shards: int
    reason: Optional[str] = None


#: Deprecated mirror of :func:`last_shard_decision`'s record, kept for
#: existing callers.  Being a plain module global it is racy under
#: concurrent runs — read the thread-local accessor instead.
LAST_DECISION: Optional[ShardDecision] = None

_DECISIONS = threading.local()


def _set_decision(decision: ShardDecision) -> None:
    """Record a shard engage/fallback decision everywhere it is read:
    the thread-local accessor, the deprecated module global, and (when
    tracing) an :data:`~repro.obs.EV_SHARD_DECISION` event.
    """
    global LAST_DECISION
    _DECISIONS.value = decision
    LAST_DECISION = decision
    tr = obs.current()
    if tr is not None:
        tr.event(
            EV_SHARD_DECISION,
            engaged=decision.engaged,
            shards=decision.shards,
            reason=decision.reason,
        )


def last_shard_decision() -> Optional[ShardDecision]:
    """The decision made by this thread's most recent ``run(...,
    shards>1)`` call — the differential suites' engagement canary.

    Runs with ``shards=1`` never consult this module and leave the
    record untouched; ``None`` means no sharded run has been attempted
    on this thread yet.  Thread-local (unlike the deprecated
    :data:`LAST_DECISION` global), so concurrent runs on other threads
    cannot clobber the record between a run and its check.
    """
    return getattr(_DECISIONS, "value", None)

# One sharded run at a time: the shard sessions are keyed per pool
# worker, and two concurrent runs would interleave their round
# submissions.  A second concurrent caller falls back to serial rather
# than queueing (no deadlock, identical results).
_ENGAGE_LOCK = threading.Lock()

_TOKENS = itertools.count()


def shard_fallback_reason(
    graph: PortNumberedGraph,
    machine: Machine,
    observer: Optional[Any],
    fault_adversary: Optional[Any],
    shards: int,
    max_rounds: int,
) -> Optional[str]:
    """Why this run cannot engage the sharded engine (None = it can).

    Pure eligibility — pool health and picklability are discovered (and
    recovered from) during execution instead.
    """
    if multiprocessing.parent_process() is not None:
        return "already inside a worker process (no nested shard fleets)"
    if observer is not None:
        return "observer needs true per-round states in the parent"
    if fault_adversary is not None and not getattr(
        fault_adversary, "process_safe", False
    ):
        return "fault adversary is not process_safe"
    if graph.n < MIN_SHARD_NODES:
        return (
            f"graph has {graph.n} node(s), below "
            f"MIN_SHARD_NODES={MIN_SHARD_NODES}"
        )
    if min(shards, MAX_SHARDS, graph.n) <= 1:
        return f"{graph.n} node(s) across {shards} shard(s) leaves one shard"
    if max_rounds <= 0:
        return "max_rounds <= 0 leaves no rounds to parallelise"
    return None


class _ShardAbort(Exception):
    """Abort the sharded attempt and fall back to the serial engine."""

    def __init__(self, reason: str) -> None:
        self.reason = reason
        super().__init__(reason)


def run_sharded(
    graph: PortNumberedGraph,
    machine: Machine,
    *,
    inputs: Optional[Sequence[Any]],
    globals_map: Optional[Mapping[str, Any]],
    max_rounds: int,
    seed: Optional[int],
    observer: Optional[Any],
    fault_adversary: Optional[Any],
    meter: Metering,
    shards: int,
) -> Optional[RunResult]:
    """Execute one run across shard workers, or ``None`` to fall back.

    Called by :func:`repro.simulator.runtime.run` when ``shards > 1``;
    a ``None`` return means the caller must run the serial engine —
    either the run is ineligible (see :func:`shard_fallback_reason`) or
    the shard fleet failed and the crash ladder degraded to serial.
    Results are bit-for-bit identical either way.
    """
    if inputs is not None and len(inputs) != graph.n:
        # Same loud failure the serial path raises from _make_contexts.
        raise ValueError(f"expected {graph.n} inputs, got {len(inputs)}")
    reason = shard_fallback_reason(
        graph, machine, observer, fault_adversary, shards, max_rounds
    )
    if reason is not None:
        _set_decision(ShardDecision(False, shards, reason))
        return None
    if not _ENGAGE_LOCK.acquire(blocking=False):
        _set_decision(ShardDecision(
            False, shards, "another sharded run is already in flight"
        ))
        return None
    try:
        p = min(shards, MAX_SHARDS, graph.n)
        reason = "shard pool failed twice; rerunning serially"
        for _attempt in range(2):
            adv = None
            if fault_adversary is not None:
                try:
                    # The attempt mutates adversary state (tamper
                    # buffers, event counters); work on a copy so a
                    # fallback replays against a pristine instance.
                    adv = copy.deepcopy(fault_adversary)
                except Exception:
                    _set_decision(ShardDecision(
                        False, shards,
                        "fault adversary cannot be deep-copied",
                    ))
                    return None
            try:
                result = _execute(
                    graph, machine, inputs, globals_map,
                    max_rounds, seed, adv, meter, p,
                )
            except BrokenProcessPool:
                parallel.retire_shard_pools()
                continue
            except _ShardAbort as exc:
                reason = exc.reason
                break
            except Exception as exc:
                reason = (
                    f"sharded attempt failed ({type(exc).__name__}: {exc}); "
                    "rerunning serially"
                )
                break
            if fault_adversary is not None and adv is not None:
                _sync_adversary(fault_adversary, adv)
            _set_decision(ShardDecision(True, p, None))
            return result
        _set_decision(ShardDecision(False, shards, reason))
        return None
    finally:
        _ENGAGE_LOCK.release()


def _sync_adversary(original: Any, used: Any) -> None:
    """Copy the executed adversary's diagnostic state back onto the
    caller's instance (event counters, schedule memos, round buffers).
    """
    try:
        vars(original).update(vars(used))
    except TypeError:
        pass  # __slots__ or C-implemented adversary: counters stay behind


def _chunks(items: List[Any], size: int) -> List[List[Any]]:
    if len(items) <= size:
        return [items]
    return [items[i:i + size] for i in range(0, len(items), size)]


def _execute(
    graph: PortNumberedGraph,
    machine: Machine,
    inputs: Optional[Sequence[Any]],
    globals_map: Optional[Mapping[str, Any]],
    max_rounds: int,
    seed: Optional[int],
    adversary: Optional[Any],
    meter: Metering,
    p: int,
) -> RunResult:
    n = graph.n
    model = machine.model
    owners = [hash64(v) % p for v in range(n)]
    owned: List[List[int]] = [[] for _ in range(p)]
    for v, o in enumerate(owners):
        owned[o].append(v)

    count_msgs = meter.counts_messages
    meter_bits = meter.meters_bits
    size_of = message_size_bits

    # Parking mirrors the serial engine's gate: port model only, no
    # observer (checked upstream) and no adversary.
    use_parking = (
        model == PORT_NUMBERING
        and adversary is None
        and getattr(machine, "quiescent", None) is not None
    )

    adv_restarted = adv_paused = adv_tampers = None
    if adversary is not None:
        adv_restarted = getattr(adversary, "restarted", None)
        adv_paused = getattr(adversary, "paused", None)
        adv_tampers = getattr(adversary, "tampers", None)

    token = f"shard-run:{os.getpid()}:{next(_TOKENS)}"
    pools = [parallel.shard_pool(i) for i in range(p)]
    tr = obs.current()
    spec_common = {
        "model": model,
        "graph": graph,
        "machine": machine,
        "owners": owners,
        "inputs": list(inputs) if inputs is not None else None,
        "globals_map": dict(globals_map or {}),
        "seed": seed,
        "metering": meter.mode,
        "max_rounds": max_rounds,
        "use_parking": use_parking,
        # Workers buffer their own spans and ship them back in the
        # finish payload; the parent absorbs them into one trace.
        "trace": tr is not None,
    }

    finished = False
    try:
        futs = [
            pools[i].submit(
                _shard_call, token, "init",
                {**spec_common, "index": i, "owned": owned[i]},
            )
            for i in range(p)
        ]
        unfinished = sum(f.result() for f in futs)

        rounds = 0
        messages_sent = 0
        message_bits = 0
        per_round_bits: List[int] = []

        while rounds < max_rounds and unfinished > 0:
            rt0 = tr.now() if tr is not None else 0.0
            restarted_by: Optional[List[List[int]]] = None
            paused_by: Optional[List[List[int]]] = None
            chaos = False
            if adversary is not None:
                if adv_restarted is not None:
                    rs = sorted(set(adv_restarted(rounds, graph)))
                    if rs:
                        restarted_by = [[] for _ in range(p)]
                        for v in rs:
                            restarted_by[owners[v]].append(v)
                if adversary.is_active(rounds):
                    raise _ShardAbort(
                        f"fault adversary corrupts states (round {rounds})"
                    )
                if adv_paused is not None:
                    ps = list(adv_paused(rounds, graph))
                    if ps:
                        paused_by = [[] for _ in range(p)]
                        for v in ps:
                            paused_by[owners[v]].append(v)
                chaos = bool(adv_tampers is not None and adv_tampers(rounds))

            futs = [
                pools[i].submit(
                    _shard_call, token, "emit",
                    (
                        restarted_by[i] if restarted_by is not None else (),
                        paused_by[i] if paused_by is not None else (),
                        chaos,
                    ),
                )
                for i in range(p)
            ]

            round_bits = 0
            if chaos:
                rows: Dict[int, Any] = {}
                for f in futs:
                    rows.update(f.result())
                # Assemble the full directed-links mapping in the
                # serial engines' canonical insertion order — seeded
                # adversaries key their schedules on it.
                links: Dict[Tuple[int, int], Any] = {}
                if model == PORT_NUMBERING:
                    for v in range(n):
                        row = rows.get(v)
                        if row is None:
                            for pt in range(graph.degree(v)):
                                links[(v, pt)] = None
                        else:
                            for pt in range(graph.degree(v)):
                                links[(v, pt)] = row[pt]
                else:
                    for v in range(n):
                        pv = rows.get(v)
                        for u in graph.neighbours(v):
                            links[(v, u)] = pv
                links = adversary.tamper(rounds, graph, links)
                if model == PORT_NUMBERING:
                    # Every inbox slot is rewritten from the tampered
                    # links and sender silence recomputed, exactly like
                    # the serial chaos path; metering bills the parent.
                    slot_by: List[List[Tuple[int, int, Any]]] = [
                        [] for _ in range(p)
                    ]
                    still_by: List[List[Tuple[int, int]]] = [
                        [] for _ in range(p)
                    ]
                    for v in range(n):
                        still = 1
                        for pt, (u, q) in enumerate(graph.ports(v)):
                            m = links[(v, pt)]
                            slot_by[owners[u]].append((u, q, m))
                            if m is not None:
                                still = 0
                                if count_msgs:
                                    messages_sent += 1
                                    if meter_bits:
                                        round_bits += size_of(m)
                        still_by[owners[v]].append((v, still))
                    futs = [
                        pools[i].submit(
                            _shard_call, token, "step",
                            ((), (slot_by[i], still_by[i])),
                        )
                        for i in range(p)
                    ]
                else:
                    if count_msgs:
                        for m in links.values():
                            if m is not None:
                                messages_sent += 1
                                if meter_bits:
                                    round_bits += size_of(m)
                    inbox_by: List[Dict[int, Tuple[Any, ...]]] = [
                        {} for _ in range(p)
                    ]
                    for v in range(n):
                        received = [links[(u, v)] for u in graph.neighbours(v)]
                        received.sort(key=canonical_key)
                        inbox_by[owners[v]][v] = tuple(received)
                    futs = [
                        pools[i].submit(
                            _shard_call, token, "step", ((), inbox_by[i])
                        )
                        for i in range(p)
                    ]
            else:
                batches: List[List[Any]] = [[] for _ in range(p)]
                for f in futs:
                    out_batches, msgs, bits = f.result()
                    for dest, items in out_batches.items():
                        batches[dest].extend(items)
                    messages_sent += msgs
                    round_bits += bits
                futs = []
                n_chunks = 0
                for i in range(p):
                    *head, tail = _chunks(batches[i], BOUNDARY_CHUNK)
                    n_chunks += len(head) + 1
                    for chunk in head:
                        pools[i].submit(_shard_call, token, "import", chunk)
                    futs.append(
                        pools[i].submit(_shard_call, token, "step", (tail, None))
                    )
                if tr is not None:
                    tr.event(
                        EV_SHARD_BOUNDARY,
                        round=rounds,
                        messages=sum(len(b) for b in batches),
                        chunks=n_chunks,
                    )
            unfinished = sum(f.result() for f in futs)
            if tr is not None:
                tr.complete(SPAN_ROUND, rt0, round=rounds)
            rounds += 1
            if meter_bits:
                message_bits += round_bits
                per_round_bits.append(round_bits)

        futs = [
            pools[i].submit(_shard_call, token, "finish", None)
            for i in range(p)
        ]
        finished = True
        states: List[Any] = [None] * n
        outputs: List[Any] = [None] * n
        n_halted = 0
        for i, f in enumerate(futs):
            info = f.result()
            for v, st in info["states"]:
                states[v] = st
            for v, out in info["outputs"]:
                outputs[v] = out
            n_halted += info["n_halted"]
            if info["rounds"] > rounds:
                rounds = info["rounds"]
            if tr is not None:
                tr.absorb(info.get("trace"), lane=f"shard {i}")
        if meter_bits and len(per_round_bits) < rounds:
            per_round_bits.extend([0] * (rounds - len(per_round_bits)))
            # (silent tail rounds: no messages, no bits)
        return RunResult(
            outputs=outputs,
            rounds=rounds,
            all_halted=n_halted == n,
            messages_sent=messages_sent,
            message_bits=message_bits,
            per_round_bits=per_round_bits,
            states=states,
        )
    finally:
        if not finished:
            # Best-effort session teardown after an abort; single-worker
            # pools run FIFO, so a close lands before any later run's
            # init reuses the worker.
            for i in range(p):
                try:
                    pools[i].submit(_shard_call, token, "close", None)
                except Exception:
                    pass


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

#: Worker-resident shard sessions, keyed by run token.  One pool worker
#: hosts at most one live session per run; tokens are unique per
#: (parent pid, run), so a crashed parent's leftovers can never collide.
_SESSIONS: Dict[str, Any] = {}


def _shard_call(token: str, op: str, payload: Any) -> Any:
    """Single worker-side dispatch point for every shard operation."""
    if op == "init":
        session = (
            _PortShardSession(payload)
            if payload["model"] == PORT_NUMBERING
            else _BroadcastShardSession(payload)
        )
        _SESSIONS[token] = session
        return len(session.live)
    if op == "close":
        _SESSIONS.pop(token, None)
        return None
    session = _SESSIONS[token]
    if op == "emit":
        return session.phase_emit(*payload)
    if op == "import":
        session.pending_imports.extend(payload)
        return None
    if op == "step":
        return session.phase_step(*payload)
    if op == "finish":
        result = session.finish()
        del _SESSIONS[token]
        return result
    raise ValueError(f"unknown shard op {op!r}")


def _csr_arrays(graph: PortNumberedGraph):
    """The graph's CSR adjacency, as a StateLayout's int64 columns when
    numpy is available (cheap per-node slicing), else the plain lists.
    """
    if state_layout.HAVE_NUMPY and graph.n > 0 and graph.m > 0:
        layout = state_layout.StateLayout(graph)
        return layout.offsets, layout.targets, layout.rev_ports
    return graph.csr()


class _ShardSessionBase:
    """State shared by both models' shard sessions."""

    def __init__(self, spec: Mapping[str, Any]) -> None:
        self.graph: PortNumberedGraph = spec["graph"]
        self.machine: Machine = spec["machine"]
        self.index: int = spec["index"]
        self.owners: List[int] = spec["owners"]
        self.owned: List[int] = spec["owned"]
        self.max_rounds: int = spec["max_rounds"]
        meter = Metering.of(spec["metering"])
        self.count_msgs = meter.counts_messages
        self.meter_bits = meter.meters_bits

        inputs = spec["inputs"]
        seed = spec["seed"]
        g = dict(spec["globals_map"])
        ctxs: Dict[int, LocalContext] = {}
        for v in self.owned:
            # Identical to runtime._make_contexts: same RNG stream per
            # global node id, one shared globals dict per shard.
            rng = (
                random.Random(f"node-rng:{seed}:{v}")
                if seed is not None
                else None
            )
            ctxs[v] = LocalContext(
                degree=self.graph.degree(v),
                input=None if inputs is None else inputs[v],
                globals=g,
                rng=rng,
            )
        self.ctxs = ctxs
        start = self.machine.start
        halted_fn = self.machine.halted
        self.states: Dict[int, Any] = {v: start(ctxs[v]) for v in self.owned}
        self.halted: Dict[int, bool] = {
            v: halted_fn(ctxs[v], self.states[v]) for v in self.owned
        }
        self.n_halted = sum(self.halted.values())
        self.live: List[int] = [v for v in self.owned if not self.halted[v]]
        self.paused: frozenset = frozenset()
        self.pending_imports: List[Any] = []
        # Worker-side span buffer: a session-local tracer whose drained
        # events ride home in the finish payload (the parent's tracer
        # cannot cross the process boundary).
        self.tracer = (
            obs.Tracer(f"shard {self.index} pid {os.getpid()}")
            if spec.get("trace")
            else None
        )
        self._round_t0 = 0.0
        self._obs_round = 0

    def _obs_round_begin(self) -> None:
        if self.tracer is not None:
            self._round_t0 = self.tracer.now()

    def _obs_round_end(self) -> None:
        if self.tracer is not None:
            self.tracer.complete(
                SPAN_ROUND, self._round_t0, round=self._obs_round
            )
            self._obs_round += 1

    def _obs_payload(self) -> Optional[Dict[str, Any]]:
        return self.tracer.drain_remote() if self.tracer is not None else None

    def _drain_imports(self, imports: Sequence[Any]) -> List[Any]:
        if self.pending_imports:
            merged = self.pending_imports
            merged.extend(imports)
            self.pending_imports = []
            return merged
        return list(imports)


class _PortShardSession(_ShardSessionBase):
    """One shard of a port-numbering run, resident in its pool worker."""

    def __init__(self, spec: Mapping[str, Any]) -> None:
        super().__init__(spec)
        graph = self.graph
        owners = self.owners
        me = self.index
        self.degrees: Dict[int, int] = {
            v: graph.degree(v) for v in self.owned
        }
        self.silent: Dict[int, bool] = {v: True for v in self.owned}

        quiescent_fn = getattr(self.machine, "quiescent", None)
        self.use_parking = bool(spec["use_parking"]) and quiescent_fn is not None
        self.quiescent_fn = quiescent_fn
        self.parked: List[Tuple[int, int]] = []
        self.rounds_done = 0
        if self.use_parking and self.live:
            still_live = []
            for v in self.live:
                if quiescent_fn(self.ctxs[v], self.states[v]):
                    self.parked.append((v, 0))
                else:
                    still_live.append(v)
            self.live = still_live

        # Per-shard CSR slice: inbox buffers for owned nodes, and for
        # each owned sender a per-port route — either the local
        # (neighbour inbox, slot) pair the serial scatter would write,
        # or the (dest shard, neighbour, slot) boundary address.
        offsets, targets, rev = _csr_arrays(graph)
        self.inboxes: Dict[int, List[Any]] = {
            v: [None] * self.degrees[v] for v in self.owned
        }
        routes: Dict[int, List[Any]] = {}
        local_slots: Dict[int, List[Tuple[List[Any], int]]] = {}
        boundary_in: List[Tuple[List[Any], int]] = []
        for v in self.owned:
            s, e = int(offsets[v]), int(offsets[v + 1])
            row: List[Any] = []
            loc: List[Tuple[List[Any], int]] = []
            inbox_v = self.inboxes[v]
            for pt, (u, q) in enumerate(zip(targets[s:e], rev[s:e])):
                u, q = int(u), int(q)
                if owners[u] == me:
                    entry = (self.inboxes[u], q)
                    row.append(entry)
                    loc.append(entry)
                else:
                    row.append((owners[u], u, q))
                    # v's port pt hears from the remote neighbour u, so
                    # this inbox slot is fed across the boundary and is
                    # reset before every import pass.
                    boundary_in.append((inbox_v, pt))
            routes[v] = row
            local_slots[v] = loc
        self.routes = routes
        self.local_slots = local_slots
        self.boundary_in = boundary_in

    def _apply_restarts(self, restarted: Sequence[int]) -> None:
        start = self.machine.start
        halted_fn = self.machine.halted
        for v in restarted:
            self.states[v] = start(self.ctxs[v])
            now = halted_fn(self.ctxs[v], self.states[v])
            if now != self.halted[v]:
                self.halted[v] = now
                if now:
                    self.n_halted += 1
                    for dst, q in self.local_slots[v]:
                        dst[q] = None
                    self.silent[v] = True
                else:
                    self.n_halted -= 1
        self.live = [v for v in self.owned if not self.halted[v]]

    def phase_emit(
        self, restarted: Sequence[int], paused: Sequence[int], chaos: bool
    ) -> Any:
        self._obs_round_begin()
        if restarted:
            self._apply_restarts(restarted)
        self.paused = frozenset(paused) if paused else frozenset()
        emit = self.machine.emit
        ctxs, states = self.ctxs, self.states

        if chaos:
            rows: Dict[int, List[Any]] = {}
            for v in self.live:
                if v in self.paused:
                    continue
                out = emit(ctxs[v], states[v])
                if out is None:
                    continue
                d = self.degrees[v]
                if type(out) is not list and type(out) is not tuple:
                    out = list(out)
                if len(out) != d:
                    raise _bad_arity(d, len(out))
                rows[v] = list(out)
            return rows

        batches: Dict[int, List[Tuple[int, int, Any]]] = {}
        msgs = 0
        bits = 0
        count, mbits = self.count_msgs, self.meter_bits
        size_of = message_size_bits
        silent = self.silent
        for v in self.live:
            if v in self.paused:
                if not silent[v]:
                    for dst, q in self.local_slots[v]:
                        dst[q] = None
                    silent[v] = True
                continue
            out = emit(ctxs[v], states[v])
            if out is None:
                if not silent[v]:
                    for dst, q in self.local_slots[v]:
                        dst[q] = None
                    silent[v] = True
                continue
            silent[v] = False
            d = self.degrees[v]
            if type(out) is not list and type(out) is not tuple:
                out = list(out)
            if len(out) != d:
                raise _bad_arity(d, len(out))
            for route, m in zip(self.routes[v], out):
                if len(route) == 2:
                    route[0][route[1]] = m
                elif m is not None:
                    # Boundary silence needs no message: the receiving
                    # shard resets its boundary-fed slots every round.
                    batches.setdefault(route[0], []).append(
                        (route[1], route[2], m)
                    )
            if count:
                if mbits:
                    for m in out:
                        if m is not None:
                            msgs += 1
                            bits += size_of(m)
                else:
                    for m in out:
                        if m is not None:
                            msgs += 1
        return batches, msgs, bits

    def phase_step(
        self, imports: Sequence[Tuple[int, int, Any]], chaos_payload: Any
    ) -> int:
        inboxes = self.inboxes
        if chaos_payload is not None:
            slots, stills = chaos_payload
            for u, q, m in slots:
                inboxes[u][q] = m
            for v, still in stills:
                self.silent[v] = bool(still)
        else:
            for dst, q in self.boundary_in:
                dst[q] = None
            for u, q, m in self._drain_imports(imports):
                inboxes[u][q] = m

        step = self.machine.step
        halted_fn = self.machine.halted
        ctxs, states = self.ctxs, self.states
        next_live: List[int] = []
        just_halted: List[int] = []
        for v in self.live:
            if v in self.paused:
                next_live.append(v)
                continue
            st = step(ctxs[v], states[v], inboxes[v])
            states[v] = st
            if halted_fn(ctxs[v], st):
                self.halted[v] = True
                self.n_halted += 1
                just_halted.append(v)
            elif (
                self.use_parking
                and self.silent[v]
                and self.quiescent_fn(ctxs[v], st)
            ):
                self.parked.append((v, self.rounds_done + 1))
                just_halted.append(v)
            else:
                next_live.append(v)
        for v in just_halted:
            for dst, q in self.local_slots[v]:
                dst[q] = None
            self.silent[v] = True
        self.live = next_live
        self.rounds_done += 1
        self._obs_round_end()
        return len(next_live)

    def finish(self) -> Dict[str, Any]:
        machine = self.machine
        halted_fn = machine.halted
        local_rounds = 0
        for v, parked_at in self.parked:
            st, used = machine.fast_forward(
                self.ctxs[v], self.states[v], self.max_rounds - parked_at
            )
            self.states[v] = st
            if halted_fn(self.ctxs[v], st):
                self.n_halted += 1
            if parked_at + used > local_rounds:
                local_rounds = parked_at + used
        output = machine.output
        return {
            "states": [(v, self.states[v]) for v in self.owned],
            "outputs": [
                (v, output(self.ctxs[v], self.states[v])) for v in self.owned
            ],
            "n_halted": self.n_halted,
            "rounds": local_rounds,
            "trace": self._obs_payload(),
        }


class _BroadcastShardSession(_ShardSessionBase):
    """One shard of a broadcast-model run, resident in its pool worker."""

    def __init__(self, spec: Mapping[str, Any]) -> None:
        super().__init__(spec)
        graph = self.graph
        owners = self.owners
        me = self.index
        self.degrees = {v: graph.degree(v) for v in self.owned}
        # Neighbour lists annotated with locality, in port order (the
        # serial engine's tie-break order for the stable payload sort).
        self.nbr_local: Dict[int, List[Tuple[int, bool]]] = {}
        self.send_dests: Dict[int, List[int]] = {}
        for v in self.owned:
            nbrs = graph.neighbours(v)
            self.nbr_local[v] = [(u, owners[u] == me) for u in nbrs]
            self.send_dests[v] = sorted(
                {owners[u] for u in nbrs if owners[u] != me}
            )
        self.payload: Dict[int, Any] = {v: None for v in self.owned}
        self.key: Dict[int, Any] = {v: _NONE_KEY for v in self.owned}

    def _apply_restarts(self, restarted: Sequence[int]) -> None:
        start = self.machine.start
        halted_fn = self.machine.halted
        for v in restarted:
            self.states[v] = start(self.ctxs[v])
            now = halted_fn(self.ctxs[v], self.states[v])
            if now != self.halted[v]:
                self.halted[v] = now
                if now:
                    self.n_halted += 1
                    self.payload[v] = None
                    self.key[v] = _NONE_KEY
                else:
                    self.n_halted -= 1
        self.live = [v for v in self.owned if not self.halted[v]]

    def phase_emit(
        self, restarted: Sequence[int], paused: Sequence[int], chaos: bool
    ) -> Any:
        self._obs_round_begin()
        if restarted:
            self._apply_restarts(restarted)
        self.paused = frozenset(paused) if paused else frozenset()
        emit = self.machine.emit
        ctxs, states = self.ctxs, self.states
        payload, key = self.payload, self.key

        if chaos:
            rows: Dict[int, Any] = {}
            for v in self.live:
                if v in self.paused:
                    payload[v] = None
                    key[v] = _NONE_KEY
                    continue
                pl = emit(ctxs[v], states[v])
                payload[v] = pl
                key[v] = canonical_key(pl)
                if pl is not None:
                    rows[v] = pl
            return rows

        batches: Dict[int, List[Tuple[int, Any]]] = {}
        msgs = 0
        bits = 0
        count, mbits = self.count_msgs, self.meter_bits
        size_of = message_size_bits
        for v in self.live:
            if v in self.paused:
                payload[v] = None
                key[v] = _NONE_KEY
                continue
            pl = emit(ctxs[v], states[v])
            payload[v] = pl
            key[v] = canonical_key(pl)
            if pl is not None:
                if count:
                    d = self.degrees[v]
                    msgs += d
                    if mbits:
                        bits += d * size_of(pl)
                for dest in self.send_dests[v]:
                    batches.setdefault(dest, []).append((v, pl))
        return batches, msgs, bits

    def phase_step(
        self, imports: Sequence[Tuple[int, Any]], chaos_payload: Any
    ) -> int:
        step = self.machine.step
        halted_fn = self.machine.halted
        ctxs, states = self.ctxs, self.states
        payload, key = self.payload, self.key

        remote: Dict[int, Tuple[Any, Any]] = {}
        if chaos_payload is None:
            for u, pl in self._drain_imports(imports):
                remote[u] = (pl, canonical_key(pl))
        none_entry = (None, _NONE_KEY)

        next_live: List[int] = []
        just_halted: List[int] = []
        for v in self.live:
            if v in self.paused:
                next_live.append(v)
                continue
            if chaos_payload is not None:
                inbox = chaos_payload[v]
            else:
                vals: List[Any] = []
                ks: List[Any] = []
                for u, is_local in self.nbr_local[v]:
                    if is_local:
                        vals.append(payload[u])
                        ks.append(key[u])
                    else:
                        pl, k = remote.get(u, none_entry)
                        vals.append(pl)
                        ks.append(k)
                # Stable sort by canonical key with ties in neighbour
                # (port) order — exactly the serial engine's
                # sorted(nbrs[v], key=key_of) payload sequence.
                order = sorted(range(len(ks)), key=ks.__getitem__)
                inbox = tuple(vals[i] for i in order)
            st = step(ctxs[v], states[v], inbox)
            states[v] = st
            if halted_fn(ctxs[v], st):
                self.halted[v] = True
                self.n_halted += 1
                just_halted.append(v)
            else:
                next_live.append(v)
        for v in just_halted:
            payload[v] = None
            key[v] = _NONE_KEY
        self.live = next_live
        self._obs_round_end()
        return len(next_live)

    def finish(self) -> Dict[str, Any]:
        output = self.machine.output
        return {
            "states": [(v, self.states[v]) for v in self.owned],
            "outputs": [
                (v, output(self.ctxs[v], self.states[v])) for v in self.owned
            ],
            "n_halted": self.n_halted,
            "rounds": 0,
            "trace": self._obs_payload(),
        }
