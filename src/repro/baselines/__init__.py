"""Baselines: prior-work algorithms and ground-truth solvers.

* :mod:`repro.baselines.exact` — exact minimum-weight vertex cover and
  set cover (MILP via scipy/HiGHS, with a brute-force cross-check).
* :mod:`repro.baselines.lp` — LP relaxation bounds.
* :mod:`repro.baselines.sequential` — centralised Bar-Yehuda–Even
  maximal edge packing and greedy set cover.
* :mod:`repro.baselines.matching` — deterministic maximal matching
  with unique identifiers (Panconesi–Rizzi style) and a randomised
  maximal matching; both give 2-approximate *unweighted* VC.
* :mod:`repro.baselines.ps3approx` — Polishchuk–Suomela anonymous
  local 3-approximation (bipartite double cover matching).
* :mod:`repro.baselines.trivial` — the k-approximation for set cover.
* :mod:`repro.baselines.kvy` — Khuller–Vishkin–Young style
  (2+ε)-approximate primal-dual vertex cover.
"""

from repro.baselines.edge_colouring import (
    EdgeColouringPackingMachine,
    edge_packing_from_colouring,
    greedy_edge_colouring,
    is_proper_edge_colouring,
)
from repro.baselines.exact import (
    brute_force_set_cover,
    brute_force_vertex_cover,
    exact_min_set_cover,
    exact_min_vertex_cover,
)
from repro.baselines.lp import set_cover_lp_bound, vertex_cover_lp_bound
from repro.baselines.sequential import (
    bar_yehuda_even_packing,
    greedy_set_cover,
    sequential_maximal_matching,
)
from repro.baselines.matching import (
    IdMaximalMatchingMachine,
    RandomisedMatchingMachine,
    maximal_matching_with_ids,
    randomised_maximal_matching,
)
from repro.baselines.ps3approx import (
    PolishchukSuomelaMachine,
    vertex_cover_3approx_ps,
)
from repro.baselines.trivial import (
    TrivialSetCoverMachine,
    set_cover_k_approx_trivial,
)
from repro.baselines.kvy import KVYMachine, vertex_cover_kvy

__all__ = [
    "EdgeColouringPackingMachine",
    "IdMaximalMatchingMachine",
    "KVYMachine",
    "PolishchukSuomelaMachine",
    "RandomisedMatchingMachine",
    "TrivialSetCoverMachine",
    "bar_yehuda_even_packing",
    "brute_force_set_cover",
    "brute_force_vertex_cover",
    "edge_packing_from_colouring",
    "greedy_edge_colouring",
    "is_proper_edge_colouring",
    "exact_min_set_cover",
    "exact_min_vertex_cover",
    "greedy_set_cover",
    "maximal_matching_with_ids",
    "randomised_maximal_matching",
    "sequential_maximal_matching",
    "set_cover_k_approx_trivial",
    "set_cover_lp_bound",
    "vertex_cover_3approx_ps",
    "vertex_cover_kvy",
    "vertex_cover_lp_bound",
]
