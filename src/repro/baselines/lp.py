"""LP relaxation bounds for vertex cover and set cover.

The fractional optimum ``LP`` satisfies ``LP <= OPT``, and the paper's
dual packings satisfy ``Σ y <= LP`` (any feasible packing is a feasible
dual solution), so ``cover weight / LP`` upper-bounds the true
approximation ratio on instances too large for the exact solver.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.graphs.setcover import SetCoverInstance
from repro.graphs.topology import PortNumberedGraph

__all__ = ["vertex_cover_lp_bound", "set_cover_lp_bound"]


def vertex_cover_lp_bound(
    graph: PortNumberedGraph, weights: Sequence[int]
) -> float:
    """Optimal value of the VC LP relaxation (HiGHS)."""
    from scipy.optimize import linprog

    if graph.m == 0:
        return 0.0
    n = graph.n
    a = np.zeros((graph.m, n))
    for e, (u, v) in enumerate(graph.edges):
        a[e, u] = -1.0
        a[e, v] = -1.0
    res = linprog(
        c=np.asarray(weights, dtype=float),
        A_ub=a,
        b_ub=-np.ones(graph.m),
        bounds=[(0.0, 1.0)] * n,
        method="highs",
    )
    if not res.success:
        raise RuntimeError(f"LP solver failed: {res.message}")
    return float(res.fun)


def set_cover_lp_bound(instance: SetCoverInstance) -> float:
    """Optimal value of the SC LP relaxation (HiGHS)."""
    from scipy.optimize import linprog

    if instance.n_elements == 0:
        return 0.0
    n = instance.n_subsets
    a = np.zeros((instance.n_elements, n))
    for s, members in enumerate(instance.subsets):
        for u in members:
            a[u, s] = -1.0
    res = linprog(
        c=np.asarray(instance.weights, dtype=float),
        A_ub=a,
        b_ub=-np.ones(instance.n_elements),
        bounds=[(0.0, 1.0)] * n,
        method="highs",
    )
    if not res.success:
        raise RuntimeError(f"LP solver failed: {res.message}")
    return float(res.fun)
