"""Maximal edge packing from an edge colouring (Section 2 of the paper).

The related-work section describes the classical route to maximal edge
packings: "Given an edge colouring with k colours, we can find a
maximal edge packing in O(k) rounds: first saturate all edges of
colour 1 in parallel, then saturate all edges of colour 2 in parallel,
etc."  Edges of one colour class form a matching, so the saturations
within a class never contend.

The catch — and the reason the paper's own algorithm exists — is that
*computing* the edge colouring distributively requires unique
identifiers and Ω(log* n) rounds (Linial), and is outright impossible
in anonymous networks.  Here the colouring is computed centrally
(greedy, at most 2Δ-1 colours) and handed to the nodes as local input,
which makes the O(k) saturation phase measurable on the same simulator
while exhibiting exactly the assumption the paper removes.

Local input per node: the tuple of colours of its incident edges, in
port order.  Globals: ``n_colours``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.graphs.topology import PortNumberedGraph
from repro.graphs.weights import max_weight, validate_weights
from repro.simulator.machine import PORT_NUMBERING, LocalContext, Machine
from repro.simulator.runtime import RunResult, run_port_numbering

__all__ = [
    "greedy_edge_colouring",
    "is_proper_edge_colouring",
    "EdgeColouringPackingMachine",
    "EdgeColouringPackingResult",
    "edge_packing_from_colouring",
]


def greedy_edge_colouring(graph: PortNumberedGraph) -> Dict[int, int]:
    """Proper edge colouring with at most ``2Δ - 1`` colours (greedy).

    Each edge avoids the colours already used at both endpoints; at
    most ``2(Δ-1)`` colours are blocked, so colour ``2Δ - 1`` is always
    available.  Returns ``{edge id: colour}`` with colours ``0..``.
    """
    used: List[set] = [set() for _ in range(graph.n)]
    colouring: Dict[int, int] = {}
    for e, (u, v) in enumerate(graph.edges):
        blocked = used[u] | used[v]
        colour = next(c for c in range(len(blocked) + 1) if c not in blocked)
        colouring[e] = colour
        used[u].add(colour)
        used[v].add(colour)
    return colouring


def is_proper_edge_colouring(
    graph: PortNumberedGraph, colouring: Dict[int, int]
) -> bool:
    """No two edges sharing an endpoint have the same colour."""
    for v in graph.nodes():
        colours = [colouring[e] for e in graph.incident_edges(v)]
        if len(colours) != len(set(colours)):
            return False
    return True


@dataclass
class _ECState:
    idx: int
    r: Fraction
    y: List[Fraction]
    port_colours: Tuple[int, ...]

    def clone(self) -> "_ECState":
        return _ECState(
            idx=self.idx,
            r=self.r,
            y=list(self.y),
            port_colours=self.port_colours,
        )


class EdgeColouringPackingMachine(Machine):
    """One round per colour class: exchange residuals, saturate the class.

    Local input: ``{"weight": w, "port_colours": (...)}``; globals:
    ``n_colours``.  In round ``c`` every node announces its residual on
    every port; each edge of colour ``c`` then raises ``y`` by the
    minimum of its endpoints' residuals — computed identically at both
    endpoints, so no acknowledgement round is needed.
    """

    model = PORT_NUMBERING

    def start(self, ctx: LocalContext) -> _ECState:
        w = ctx.input["weight"]
        port_colours = tuple(ctx.input["port_colours"])
        if len(port_colours) != ctx.degree:
            raise ValueError("need one edge colour per port")
        n_colours = ctx.require_global("n_colours")
        if any(not (0 <= c < n_colours) for c in port_colours):
            raise ValueError("port colour out of range")
        return _ECState(
            idx=0,
            r=Fraction(int(w)),
            y=[Fraction(0)] * ctx.degree,
            port_colours=port_colours,
        )

    def halted(self, ctx: LocalContext, state: _ECState) -> bool:
        return state.idx >= ctx.require_global("n_colours")

    def output(self, ctx: LocalContext, state: _ECState):
        return {"in_cover": state.r == 0, "y": tuple(state.y)}

    def emit(self, ctx: LocalContext, state: _ECState) -> List:
        if self.halted(ctx, state):
            return [None] * ctx.degree
        return [state.r] * ctx.degree

    def step(self, ctx: LocalContext, state: _ECState, inbox: Sequence) -> _ECState:
        st = state.clone()
        colour = st.idx
        # Edges of this colour form a matching: at most one port matches.
        for p in range(ctx.degree):
            if st.port_colours[p] != colour:
                continue
            nbr_r = inbox[p]
            if nbr_r is None:
                raise AssertionError("missing residual on a colour-class edge")
            inc = min(st.r, nbr_r)
            st.y[p] += inc
            st.r -= inc
        st.idx += 1
        return st


@dataclass(frozen=True)
class EdgeColouringPackingResult:
    graph: PortNumberedGraph
    weights: Tuple[int, ...]
    n_colours: int
    y: Dict[int, Fraction]
    saturated: FrozenSet[int]
    rounds: int
    run: RunResult

    def packing_value(self) -> Fraction:
        return sum(self.y.values(), Fraction(0))

    def cover_weight(self) -> int:
        return sum(self.weights[v] for v in self.saturated)

    def is_cover(self) -> bool:
        return all(
            u in self.saturated or v in self.saturated
            for (u, v) in self.graph.edges
        )


def edge_packing_from_colouring(
    graph: PortNumberedGraph,
    weights: Sequence[int],
    colouring: Optional[Dict[int, int]] = None,
) -> EdgeColouringPackingResult:
    """Run the O(k)-round packing given (or computing) an edge colouring."""
    weights = tuple(int(w) for w in weights)
    validate_weights(weights, graph.n, max_weight(weights))
    if colouring is None:
        colouring = greedy_edge_colouring(graph)
    if not is_proper_edge_colouring(graph, colouring):
        raise ValueError("edge colouring is not proper")
    n_colours = max(colouring.values(), default=-1) + 1

    inputs = []
    for v in graph.nodes():
        port_colours = tuple(
            colouring[graph.edge_of_port(v, p)] for p in range(graph.degree(v))
        )
        inputs.append({"weight": weights[v], "port_colours": port_colours})

    result = run_port_numbering(
        graph,
        EdgeColouringPackingMachine(),
        inputs=inputs,
        globals_map={"n_colours": max(1, n_colours)},
        max_rounds=max(1, n_colours),
    )
    if not result.all_halted:
        raise RuntimeError("edge-colouring packing did not finish")

    y: Dict[int, Fraction] = {}
    for v in graph.nodes():
        for p in range(graph.degree(v)):
            e = graph.edge_of_port(v, p)
            val = result.outputs[v]["y"][p]
            if y.setdefault(e, val) != val:
                raise AssertionError(f"endpoint disagreement on edge {e}")
    saturated = frozenset(
        v for v in graph.nodes() if result.outputs[v]["in_cover"]
    )
    return EdgeColouringPackingResult(
        graph=graph,
        weights=weights,
        n_colours=n_colours,
        y=y,
        saturated=saturated,
        rounds=result.rounds,
        run=result,
    )
